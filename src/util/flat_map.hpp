// dvv/util/flat_map.hpp
//
// FlatMap<K, V>: an associative container over a sorted contiguous vector.
//
// Every clock in this library (version vectors, dotted version vectors,
// DVVSets, causal-context maps) is a small map from an actor identifier to
// a counter.  In the regimes the paper cares about these maps have between
// one and a few dozen entries (bounded by the replication degree for DVV,
// by the number of writing clients for client-side version vectors), so a
// sorted vector dominates node-based containers: no per-entry allocation,
// trivially cache-friendly iteration, O(log n) point lookup.
//
// Using the same substrate for *every* mechanism also keeps the paper's
// O(1)-vs-O(n) comparison honest: the DVV advantage measured by
// bench_comparison_cost comes from the algorithm (a single dot lookup
// instead of an entrywise scan), not from giving the baseline a slower
// container.
//
// The interface is a pragmatic subset of std::map plus the handful of
// bulk operations clock algebra needs (pointwise merge via merge_with).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace dvv::util {

template <typename K, typename V, typename Compare = std::less<K>>
class FlatMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using value_type = std::pair<K, V>;
  using container_type = std::vector<value_type>;
  using iterator = typename container_type::iterator;
  using const_iterator = typename container_type::const_iterator;
  using size_type = std::size_t;

  FlatMap() = default;

  FlatMap(std::initializer_list<value_type> init) {
    entries_.assign(init.begin(), init.end());
    normalize();
  }

  /// Builds from an arbitrary (possibly unsorted, possibly duplicated) range.
  /// On duplicate keys the *last* occurrence wins, matching repeated
  /// insert_or_assign semantics.
  template <typename InputIt>
  FlatMap(InputIt first, InputIt last) : entries_(first, last) {
    normalize();
  }

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] size_type size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(size_type n) { entries_.reserve(n); }

  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator cbegin() const noexcept { return entries_.cbegin(); }
  [[nodiscard]] const_iterator cend() const noexcept { return entries_.cend(); }

  [[nodiscard]] const_iterator find(const K& key) const noexcept {
    auto it = lower_bound(key);
    if (it != entries_.end() && keys_equal(it->first, key)) return it;
    return entries_.end();
  }

  [[nodiscard]] iterator find(const K& key) noexcept {
    auto it = lower_bound_mut(key);
    if (it != entries_.end() && keys_equal(it->first, key)) return it;
    return entries_.end();
  }

  [[nodiscard]] bool contains(const K& key) const noexcept {
    return find(key) != entries_.end();
  }

  /// Point lookup returning a value, with `fallback` for absent keys.
  /// This is the primitive clock comparison is built from: a version
  /// vector maps absent actors to counter 0.
  [[nodiscard]] V get_or(const K& key, const V& fallback) const noexcept {
    auto it = find(key);
    return it == entries_.end() ? fallback : it->second;
  }

  /// Inserts or overwrites.  Returns a reference to the stored value.
  V& insert_or_assign(const K& key, V value) {
    auto it = lower_bound_mut(key);
    if (it != entries_.end() && keys_equal(it->first, key)) {
      it->second = std::move(value);
      return it->second;
    }
    it = entries_.insert(it, value_type(key, std::move(value)));
    return it->second;
  }

  /// std::map-style operator[]: default-constructs missing values.
  V& operator[](const K& key) {
    auto it = lower_bound_mut(key);
    if (it != entries_.end() && keys_equal(it->first, key)) return it->second;
    it = entries_.insert(it, value_type(key, V{}));
    return it->second;
  }

  [[nodiscard]] const V& at(const K& key) const {
    auto it = find(key);
    DVV_ASSERT_MSG(it != entries_.end(), "FlatMap::at: missing key");
    return it->second;
  }

  size_type erase(const K& key) {
    auto it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }

  iterator erase(const_iterator pos) { return entries_.erase(pos); }

  /// Pointwise merge: for every key in `other`, combine(existing, theirs)
  /// if the key is present here, otherwise adopt theirs.  This single
  /// primitive expresses version-vector join (combine = max) and causal
  /// context accumulation.  Linear in size() + other.size().
  template <typename Combine>
  void merge_with(const FlatMap& other, Combine&& combine) {
    container_type out;
    out.reserve(entries_.size() + other.entries_.size());
    auto a = entries_.begin();
    auto b = other.entries_.begin();
    Compare less{};
    while (a != entries_.end() && b != other.entries_.end()) {
      if (less(a->first, b->first)) {
        out.push_back(std::move(*a++));
      } else if (less(b->first, a->first)) {
        out.push_back(*b++);
      } else {
        out.emplace_back(a->first, combine(a->second, b->second));
        ++a;
        ++b;
      }
    }
    out.insert(out.end(), std::make_move_iterator(a),
               std::make_move_iterator(entries_.end()));
    out.insert(out.end(), b, other.entries_.end());
    entries_ = std::move(out);
  }

  /// Removes entries for which `pred(key, value)` holds.
  template <typename Pred>
  size_type erase_if(Pred&& pred) {
    auto it = std::remove_if(entries_.begin(), entries_.end(),
                             [&](const value_type& kv) { return pred(kv.first, kv.second); });
    auto n = static_cast<size_type>(entries_.end() - it);
    entries_.erase(it, entries_.end());
    return n;
  }

  [[nodiscard]] const container_type& entries() const noexcept { return entries_; }

  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    return a.entries_ == b.entries_;
  }

 private:
  static bool keys_equal(const K& a, const K& b) noexcept {
    Compare less{};
    return !less(a, b) && !less(b, a);
  }

  [[nodiscard]] const_iterator lower_bound(const K& key) const noexcept {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const value_type& kv, const K& k) {
                              return Compare{}(kv.first, k);
                            });
  }

  [[nodiscard]] iterator lower_bound_mut(const K& key) noexcept {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const value_type& kv, const K& k) {
                              return Compare{}(kv.first, k);
                            });
  }

  /// Sort + dedup (last occurrence wins), used by the range constructor.
  void normalize() {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const value_type& a, const value_type& b) {
                       return Compare{}(a.first, b.first);
                     });
    // Keep the last of each equal-key run.
    auto out = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end();) {
      auto run = it;
      while (run + 1 != entries_.end() && keys_equal(run->first, (run + 1)->first)) ++run;
      *out++ = std::move(*run);
      it = run + 1;
    }
    entries_.erase(out, entries_.end());
  }

  container_type entries_;
};

}  // namespace dvv::util
