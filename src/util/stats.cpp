#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace dvv::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel combination of Welford accumulators.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const noexcept {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::quantile(double q) const {
  DVV_ASSERT(q >= 0.0 && q <= 1.0);
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return xs_[std::min(idx, xs_.size() - 1)];
}

double Samples::max() const {
  if (xs_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return xs_.back();
}

double Samples::min() const {
  if (xs_.empty()) return std::numeric_limits<double>::quiet_NaN();
  ensure_sorted();
  return xs_.front();
}

Histogram::Histogram(std::size_t buckets) : counts_(buckets, 0) {
  DVV_ASSERT(buckets != 0);
}

void Histogram::add(std::uint64_t value) noexcept {
  const std::size_t idx =
      std::min(static_cast<std::size_t>(value), counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

std::uint64_t Histogram::bucket(std::size_t i) const noexcept {
  DVV_ASSERT(i < counts_.size());
  return counts_[i];
}

double BucketHistogram::quantile(double q) const noexcept {
  const std::uint64_t n = total();
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += bucket(i);
    if (cumulative >= rank) return static_cast<double>(bucket_upper(i));
  }
  return static_cast<double>(bucket_upper(kBuckets - 1));
}

void BucketHistogram::merge(const BucketHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts_[i].fetch_add(other.bucket(i), std::memory_order_relaxed);
  }
  total_.fetch_add(other.total(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
}

void BucketHistogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string Histogram::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out += std::to_string(i);
    if (i + 1 == counts_.size()) out += "+";
    out += ": " + std::to_string(counts_[i]) + "\n";
  }
  return out;
}

}  // namespace dvv::util
