// dvv/util/assert.hpp
//
// Internal assertion macros.
//
// DVV_ASSERT is an invariant check that is active in every build type:
// causality-tracking bugs are silent data-loss bugs (a wrongly dominated
// sibling is simply discarded), so the cost of always-on checks in the
// library's hot paths is deliberately accepted.  The simulator and the
// benches measure algorithmic *shape* (entries, bytes, comparisons), which
// assertions do not distort.
//
// DVV_DEBUG_ASSERT compiles away in NDEBUG builds; use it for checks that
// are quadratic or worse (e.g. full causal-history subset validation).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dvv::util::detail {

/// Last-words hook run after the failure message but before abort().
/// Defined (and pointed at the flight-recorder dump) in src/obs/obs.cpp;
/// referencing the symbol here is what pulls that translation unit into
/// every binary that can assert, so the hook is always installed.
extern void (*assert_fail_hook)() noexcept;

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "dvv: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg == nullptr ? "" : msg);
  if (assert_fail_hook != nullptr) assert_fail_hook();
  std::abort();
}

}  // namespace dvv::util::detail

#define DVV_ASSERT(expr)                                                          \
  do {                                                                            \
    if (!(expr)) [[unlikely]] {                                                   \
      ::dvv::util::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);       \
    }                                                                             \
  } while (false)

#define DVV_ASSERT_MSG(expr, msg)                                                 \
  do {                                                                            \
    if (!(expr)) [[unlikely]] {                                                   \
      ::dvv::util::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));         \
    }                                                                             \
  } while (false)

#if defined(NDEBUG)
#define DVV_DEBUG_ASSERT(expr) ((void)0)
#else
#define DVV_DEBUG_ASSERT(expr) DVV_ASSERT(expr)
#endif
