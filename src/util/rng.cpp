#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace dvv::util {

double Rng::exponential(double mean) noexcept {
  DVV_ASSERT(mean > 0.0);
  // Inverse-CDF; uniform01() is in [0,1), so 1-u is in (0,1] and log is finite.
  return -mean * std::log(1.0 - uniform01());
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) : skew_(skew) {
  DVV_ASSERT(n != 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), skew);
    cdf_[k] = acc;
  }
  const double total = cdf_.back();
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the last bin short
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace dvv::util
