// dvv/util/rng.hpp
//
// Deterministic random number generation for the simulator, the workload
// generators and the property-test suites.
//
// Everything in this repository that is "random" flows through Rng seeded
// explicitly by the caller; benches print their seed, so every reported
// row is exactly reproducible.  The generator is xoshiro256**, seeded via
// SplitMix64 (the construction recommended by the xoshiro authors), which
// is small, fast, and has no dependency on the platform's <random> quality.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace dvv::util {

/// SplitMix64 step; used for seeding and for cheap stateless mixing
/// (e.g. hashing a (seed, index) pair into an independent stream).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  `bound` must be nonzero.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept {
    DVV_ASSERT(bound != 0);
    __extension__ using U128 = unsigned __int128;  // GCC/Clang builtin
    std::uint64_t x = next();
    U128 m = static_cast<U128>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<U128>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    DVV_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Exponentially distributed double with the given mean (>0).
  double exponential(double mean) noexcept;

  /// Picks a uniformly random element index from a nonempty container size.
  std::size_t index(std::size_t size) noexcept {
    DVV_ASSERT(size != 0);
    return static_cast<std::size_t>(below(size));
  }

  /// Fisher-Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// client/server its own stream so that adding one actor does not
  /// perturb every other actor's randomness.
  [[nodiscard]] Rng fork() noexcept { return Rng(next()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Zipf-distributed sampler over {0, 1, ..., n-1} with skew `s`.
///
/// Key popularity in storage workloads is famously Zipfian; the metadata
/// benches (E5/E6) use this to concentrate concurrent client writes on hot
/// keys, the regime where client-side version vectors blow up.  Sampling
/// is O(log n) by binary search over the precomputed CDF; construction is
/// O(n).  s = 0 degenerates to the uniform distribution.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double skew);

  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t domain() const noexcept { return cdf_.size(); }
  [[nodiscard]] double skew() const noexcept { return skew_; }

 private:
  std::vector<double> cdf_;
  double skew_ = 0.0;
};

}  // namespace dvv::util
