#include "util/fmt.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dvv::util {

void TextTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void TextTable::row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::to_string() const {
  // Column widths across header + all rows.
  std::vector<std::size_t> width;
  auto absorb = [&](const std::vector<std::string>& cells) {
    if (cells.size() > width.size()) width.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  auto emit = [&](std::string& out, const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out += cells[i];
      if (i + 1 < cells.size()) out.append(width[i] - cells[i].size() + 2, ' ');
    }
    out += '\n';
  };

  std::string out;
  if (!header_.empty()) {
    emit(out, header_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(out, r);
  return out;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 3) {
    bytes /= 1024.0;
    ++u;
  }
  return fixed(bytes, u == 0 ? 0 : 2) + " " + units[u];
}

std::string json_number(double value, int decimals) {
  if (!std::isfinite(value)) return "null";
  return fixed(value, decimals);
}

}  // namespace dvv::util
