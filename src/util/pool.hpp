// dvv/util/pool.hpp
//
// Allocation recycling for the hot message path: a size-class freelist
// arena, a std-allocator adapter over it, and an object pool that
// recycles instances WITHOUT destroying them (so a recycled
// std::string / std::vector keeps its capacity and the next user's
// assign() is a memcpy, not an allocation).
//
// This extends the util/flat_map idea — keep the hot path's memory
// traffic linear and reuse what was already paid for — from container
// layout to allocation itself.  The contract net/ builds on top:
//
//   * steady state is allocation-free — once the pools are warm, an
//     acquire is a pop and a release is a push;
//   * every MISS (an acquire that had to touch the global allocator)
//     is observable: each pool takes an AllocHook function pointer and
//     calls it exactly once per miss, which is how the net.alloc.*
//     counter family measures "zero allocations per op at steady
//     state" instead of asserting it rhetorically;
//   * single-threaded by design, like the rest of the sim: pools are
//     owned thread_local by their subsystem, so there is no locking
//     and no cross-thread free problem.
//
// Nothing here is a general-purpose allocator: blocks larger than the
// largest size class fall through to the global allocator (counted as
// misses) and freed blocks of pooled classes are cached forever — the
// arena's high-water mark is the workload's, which for a simulator is
// exactly right.
//
// dvv-hot-path: dvv_lint's no-alloc-in-hot-path rule audits this file —
// every `new` here is either a counted miss or cold-path bookkeeping,
// each carrying a site-local waiver saying which.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/assert.hpp"

namespace dvv::util {

/// Observer for pool misses (acquisitions that hit the global
/// allocator).  A plain function pointer, not std::function: util/
/// cannot depend on obs/, so the owning subsystem installs a hook that
/// bumps its own counter.
using AllocHook = void (*)();

/// Size-class freelist over raw storage.  Classes are powers of two
/// from 16 bytes to 4 KiB; anything larger falls through to the global
/// allocator on every call (and counts as a miss).  Freed blocks are
/// cached on a per-class intrusive freelist and never returned to the
/// system until the arena dies.
class FreelistArena {
 public:
  FreelistArena() = default;
  FreelistArena(const FreelistArena&) = delete;
  FreelistArena& operator=(const FreelistArena&) = delete;

  ~FreelistArena() {
    for (FreeNode*& head : free_) {
      while (head != nullptr) {
        FreeNode* next = head->next;
        ::operator delete(static_cast<void*>(head));
        head = next;
      }
    }
  }

  void set_miss_hook(AllocHook hook) noexcept { miss_hook_ = hook; }

  [[nodiscard]] void* allocate(std::size_t bytes) {
    const std::size_t cls = class_of(bytes);
    if (cls < kClasses && free_[cls] != nullptr) {
      FreeNode* node = free_[cls];
      free_[cls] = node->next;
      return node;
    }
    if (miss_hook_ != nullptr) miss_hook_();
    // The counted miss: the one place this arena touches the global
    // allocator.  dvv-lint: allow(no-alloc-in-hot-path)
    return ::operator new(cls < kClasses ? class_bytes(cls) : bytes);
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = class_of(bytes);
    if (cls >= kClasses) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kMinBytes = 16;   // >= sizeof(FreeNode)
  static constexpr std::size_t kMaxBytes = 4096;
  static constexpr std::size_t kClasses = 9;     // 16, 32, ..., 4096

  [[nodiscard]] static constexpr std::size_t class_bytes(std::size_t cls) noexcept {
    return kMinBytes << cls;
  }

  /// Index of the smallest class holding `bytes`, or kClasses when the
  /// request is beyond the largest class.
  [[nodiscard]] static constexpr std::size_t class_of(std::size_t bytes) noexcept {
    std::size_t cls = 0;
    std::size_t cap = kMinBytes;
    while (cap < bytes) {
      cap <<= 1;
      ++cls;
    }
    return bytes > kMaxBytes ? kClasses : cls;
  }

  FreeNode* free_[kClasses] = {};
  AllocHook miss_hook_ = nullptr;
};

/// std-allocator adapter over a FreelistArena, for the fixed-size nodes
/// the standard library allocates behind the hot path's back:
/// shared_ptr control blocks and ordered-map nodes.  The arena must
/// outlive every container and every shared_ptr built with this.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(FreelistArena* arena) noexcept : arena_(arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    arena_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] FreelistArena* arena() const noexcept { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  FreelistArena* arena_;
};

/// Object pool that recycles instances UN-destructed: release() parks
/// the object as-is and the next acquire() hands it back, internal
/// buffers and all.  The caller overwrites every field it reads — for
/// strings/vectors via assign()/clear(), which reuse the retained
/// capacity.  That retention is the point: a warm pool turns per-op
/// message and buffer churn into pointer pushes.
template <typename T>
class RecyclePool {
 public:
  explicit RecyclePool(std::size_t max_idle = 1024) : max_idle_(max_idle) {
    idle_.reserve(max_idle_);
  }
  RecyclePool(const RecyclePool&) = delete;
  RecyclePool& operator=(const RecyclePool&) = delete;

  ~RecyclePool() {
    for (T* p : idle_) delete p;
  }

  void set_miss_hook(AllocHook hook) noexcept { miss_hook_ = hook; }

  /// Returns a recycled instance (LIFO, so homogeneous traffic gets an
  /// object that last held the same shape) or a fresh one on miss.
  [[nodiscard]] T* acquire() {
    if (!idle_.empty()) {
      T* p = idle_.back();
      idle_.pop_back();
      return p;
    }
    if (miss_hook_ != nullptr) miss_hook_();
    // The counted miss.  dvv-lint: allow(no-alloc-in-hot-path)
    return new T();
  }

  /// Parks `p` for reuse (without destroying it), or deletes it when
  /// the idle cache is already at capacity.
  void release(T* p) noexcept {
    if (idle_.size() < max_idle_) {
      idle_.push_back(p);
    } else {
      delete p;
    }
  }

  [[nodiscard]] std::size_t idle() const noexcept { return idle_.size(); }

 private:
  // Cold-path bookkeeping (reserved once at construction), not per-op
  // traffic.  dvv-lint: allow(no-alloc-in-hot-path)
  std::vector<T*> idle_;
  std::size_t max_idle_;
  AllocHook miss_hook_ = nullptr;
};

}  // namespace dvv::util
