// dvv/util/fmt.hpp
//
// String assembly helpers for clock printing and for the bench harness's
// aligned table output.  Deliberately tiny: the library itself only needs
// `join`, and the table printer exists so that every bench binary prints
// the same shape of report the paper's evaluation section does (rows of
// parameter sweeps) without each bench reinventing column alignment.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace dvv::util {

/// Joins the stringification of a range with `sep`.  `tostr(element)`
/// must yield something appendable to std::string.
template <typename Range, typename ToStr>
[[nodiscard]] std::string join(const Range& range, std::string_view sep, ToStr&& tostr) {
  std::string out;
  bool first = true;
  for (const auto& x : range) {
    if (!first) out += sep;
    first = false;
    out += tostr(x);
  }
  return out;
}

/// Aligned plain-text table: add a header, then rows; `to_string()`
/// pads every column to its widest cell.  Used by every bench binary.
class TextTable {
 public:
  void header(std::vector<std::string> cells);
  void row(std::vector<std::string> cells);
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double -> string ("%.3f" style) without iostreams.
[[nodiscard]] std::string fixed(double value, int decimals = 2);

/// Human-readable byte count ("1.21 KiB").
[[nodiscard]] std::string human_bytes(double bytes);

/// JSON-safe number rendering: NaN and infinities become "null" (bare
/// "nan" is not JSON), everything else is fixed-precision.  Benches
/// printing stats min()/max() — NaN when empty — must use this.
[[nodiscard]] std::string json_number(double value, int decimals = 3);

}  // namespace dvv::util
