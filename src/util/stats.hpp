// dvv/util/stats.hpp
//
// Small statistics toolkit used by the simulator and the bench harness:
// running mean/min/max/stddev (Welford), and a reservoir-free exact
// percentile accumulator for latency distributions.  Nothing here is
// performance critical; clarity and numerical soundness win.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dvv::util {

/// Welford one-pass accumulator: mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const noexcept { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; exact quantiles on demand.  Suitable for the
/// simulator's request-latency series (at most a few million doubles).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  [[nodiscard]] double mean() const noexcept;
  /// Exact quantile by nearest-rank; q in [0,1].  Sorts lazily.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-boundary histogram for entry-count / byte-size distributions.
class Histogram {
 public:
  /// Buckets: [0,1), [1,2), ..., [n-1, inf).
  explicit Histogram(std::size_t buckets);

  void add(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept;
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Renders "value: count" lines for nonzero buckets (debug/report aid).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace dvv::util
