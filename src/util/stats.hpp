// dvv/util/stats.hpp
//
// Small statistics toolkit used by the simulator and the bench harness:
// running mean/min/max/stddev (Welford), a reservoir-free exact
// percentile accumulator for latency distributions, and a power-of-two
// bucketed histogram cheap enough for hot-path metrics.  Only the
// bucketed histogram is performance sensitive; everywhere else clarity
// and numerical soundness win.
//
// Empty-accumulator contract: min()/max() (and the bucketed
// histogram's quantiles) return quiet NaN when no sample has been
// added — 0.0 would be indistinguishable from a real measurement of
// zero, which benches have mistaken for data.  Callers that print
// JSON must route through util::json_number (fmt.hpp), which renders
// non-finite values as null.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dvv::util {

/// Welford one-pass accumulator: mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// NaN with no samples (0.0 would masquerade as a measurement).
  [[nodiscard]] double min() const noexcept {
    return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  [[nodiscard]] double max() const noexcept {
    return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample; exact quantiles on demand.  Suitable for the
/// simulator's request-latency series (at most a few million doubles).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return xs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return xs_.empty(); }
  [[nodiscard]] double mean() const noexcept;
  /// Exact quantile by nearest-rank; q in [0,1].  Sorts lazily.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  /// NaN with no samples (0.0 would masquerade as a measurement).
  [[nodiscard]] double max() const;
  [[nodiscard]] double min() const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-boundary histogram for entry-count / byte-size distributions.
class Histogram {
 public:
  /// Buckets: [0,1), [1,2), ..., [n-1, inf).
  explicit Histogram(std::size_t buckets);

  void add(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept;
  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Renders "value: count" lines for nonzero buckets (debug/report aid).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Hot-path-safe bucketed histogram: power-of-two buckets indexed by
/// bit width, so add() is a count-leading-zeros plus three increments —
/// no allocation, no stored samples, mergeable.  Bucket 0 holds the
/// value 0; bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1], so
/// its inclusive upper bound is 2^i - 1.  Quantiles are estimated as
/// the upper bound of the bucket containing the nearest-rank sample
/// (the Prometheus histogram_quantile convention: never under-reports
/// a latency).  The metrics registry (src/obs) uses this for request
/// latencies; Samples above stays the exact-quantile tool for offline
/// analysis.
///
/// Cells are relaxed atomics so concurrent shard threads (ROADMAP item
/// 1) can record without UB.  Relaxed is enough: each cell is an
/// independent monotonic count, and readers (exporters, quantiles)
/// only ever run at quiescence, so cross-cell snapshot skew is
/// tolerable by contract.  Atomics make the type non-copyable; nothing
/// copied it before (registry maps hold it in place).
class BucketHistogram {
 public:
  /// Value 0, then one bucket per bit width 1..64.
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t value) noexcept {
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept {
    return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
  }
  /// Inclusive upper bound of bucket i: 0, 1, 3, 7, ..., 2^i - 1.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
    return i >= 64 ? ~0ULL : (1ULL << i) - 1;
  }

  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const noexcept { return total() == 0; }

  /// Nearest-rank quantile as the containing bucket's upper bound;
  /// q in [0,1].  NaN when empty.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] double p999() const noexcept { return quantile(0.999); }

  void merge(const BucketHistogram& other) noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace dvv::util
