// dvvd — the dotted-version-vector store as a real socket server.
//
//   dvvd [--port P] [--shards N] [--servers S] [--replication R]
//        [--mechanism NAME]
//
// Builds a kv::Store over a ThreadedTransport with N execution shards,
// hosts it behind the epoll server (src/server/server.hpp) and serves
// the framed GET/PUT protocol on 127.0.0.1:P until SIGINT/SIGTERM.
// With --port 0 the kernel picks the port; it is printed either way.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "kv/store.hpp"
#include "server/server.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port P] [--shards N] [--servers S] "
               "[--replication R] [--mechanism NAME]\n",
               argv0);
  std::exit(2);
}

std::uint64_t parse_u64(const char* s, const char* argv0) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') usage(argv0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::size_t shards = std::thread::hardware_concurrency();
  if (shards == 0) shards = 1;
  dvv::kv::StoreConfig config;
  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string(argv[i]);
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (arg == "--help" || arg == "-h") usage(argv[0]);
    if (value == nullptr) usage(argv[0]);
    if (arg == "--port") {
      port = static_cast<std::uint16_t>(parse_u64(value, argv[0]));
    } else if (arg == "--shards") {
      shards = static_cast<std::size_t>(parse_u64(value, argv[0]));
    } else if (arg == "--servers") {
      config.servers = static_cast<std::size_t>(parse_u64(value, argv[0]));
    } else if (arg == "--replication") {
      config.replication = static_cast<std::size_t>(parse_u64(value, argv[0]));
    } else if (arg == "--mechanism") {
      config.mechanism = value;
    } else {
      usage(argv[0]);
    }
    ++i;
  }
  if (shards == 0) shards = 1;
  if (config.replication < 1 || config.replication > config.servers) {
    std::fprintf(stderr,
                 "dvvd: --replication %zu must be in [1, --servers %zu]\n",
                 config.replication, config.servers);
    return 2;
  }

  config.transport.kind = dvv::net::TransportKind::kThreaded;
  config.transport.threaded.shards = shards;
  const std::unique_ptr<dvv::kv::Store> store = dvv::kv::make_store(config);
  if (store == nullptr) {
    std::fprintf(stderr, "dvvd: unknown mechanism \"%s\"\n",
                 config.mechanism.c_str());
    return 2;
  }

  // Block the shutdown signals BEFORE spawning the loops so every
  // server thread inherits the mask and sigwait below is the only
  // consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  dvv::server::ServerConfig server_config;
  server_config.port = port;
  dvv::server::Server server(*store, server_config);
  server.start();
  std::printf("dvvd: mechanism=%s shards=%zu servers=%zu port=%u\n",
              std::string(store->mechanism_name()).c_str(),
              server.shard_count(), store->servers(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&mask, &sig);
  std::fprintf(stderr, "dvvd: signal %d, shutting down\n", sig);
  server.stop();
  return 0;
}
