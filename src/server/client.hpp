// dvv/server/client.hpp
//
// A minimal blocking client for dvvd — what the lifecycle tests and
// bench_server drive the server with.  One TCP connection, framed
// exactly as src/server/protocol.hpp; supports one-shot calls and
// explicit pipelining (send k requests, then read k responses — the
// server guarantees FIFO response order per connection).
//
// Deliberately NOT part of the server's hot path: plain blocking
// syscalls, allocation per call.  Tests also use send_raw() to push
// hostile bytes (split frames, oversized claims, torn streams) at the
// real decode boundary.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <string_view>

#include "server/protocol.hpp"
#include "util/assert.hpp"

namespace dvv::server {

class Client {
 public:
  /// Connects to 127.0.0.1:port (blocking).
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    DVV_ASSERT_MSG(fd_ >= 0, "client: socket() failed");
    const int enable = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    DVV_ASSERT_MSG(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                             sizeof(addr)) == 0,
                   "client: connect failed");
  }

  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Half-closes the write side (the server sees EOF) while keeping
  /// the read side open — how a test observes responses to requests
  /// sent before a disconnect.
  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  /// Sends raw bytes verbatim — hostile-input tests frame (or
  /// deliberately misframe) their own payloads.
  void send_raw(std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + sent, bytes.size() - sent);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // peer closed; the test asserts on responses
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Sends one framed GET request (does not wait for the response).
  void send_get(std::uint64_t request_id, std::string_view key) {
    scratch_.clear();
    encode_get_request(scratch_, request_id, key);
    framed_.clear();
    append_frame(framed_, scratch_);
    send_raw(framed_);
  }

  /// Sends one framed PUT request (does not wait for the response).
  void send_put(std::uint64_t request_id, std::string_view key,
                std::string_view token, std::string_view value,
                std::uint64_t client_id) {
    scratch_.clear();
    encode_put_request(scratch_, request_id, key, token, value, client_id);
    framed_.clear();
    append_frame(framed_, scratch_);
    send_raw(framed_);
  }

  /// Blocking read of the next response frame's payload.  False on EOF
  /// (server closed the connection).
  [[nodiscard]] bool read_frame(std::string& payload) {
    while (true) {
      if (decoder_.next(payload)) return true;
      if (decoder_.poisoned()) return false;  // server sent garbage (bug)
      char buf[16384];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      decoder_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    }
  }

  /// Blocking read + strict parse of the next response.  `is_get` must
  /// match the opcode of the request this response answers.
  [[nodiscard]] bool read_response(bool is_get, Response& out) {
    std::string payload;
    if (!read_frame(payload)) return false;
    return parse_response(payload, is_get, out);
  }

  /// One-shot GET.
  [[nodiscard]] bool get(std::string_view key, Response& out) {
    const std::uint64_t id = next_request_id_++;
    send_get(id, key);
    if (!read_response(/*is_get=*/true, out)) return false;
    return out.request_id == id;
  }

  /// One-shot PUT.
  [[nodiscard]] bool put(std::string_view key, std::string_view token,
                         std::string_view value, std::uint64_t client_id,
                         Response& out) {
    const std::uint64_t id = next_request_id_++;
    send_put(id, key, token, value, client_id);
    if (!read_response(/*is_get=*/false, out)) return false;
    return out.request_id == id;
  }

  /// One-shot membership transition (admin plane).  On kOk the response
  /// carries the post-transition epoch — the ring has fully rebalanced
  /// by the time it arrives.
  [[nodiscard]] bool member_change(Opcode op, std::uint64_t node,
                                   Response& out) {
    const std::uint64_t id = next_request_id_++;
    scratch_.clear();
    encode_member_change_request(scratch_, op, id, node);
    framed_.clear();
    append_frame(framed_, scratch_);
    send_raw(framed_);
    std::string payload;
    if (!read_frame(payload)) return false;
    if (!parse_response(payload, op, out)) return false;
    return out.request_id == id;
  }
  [[nodiscard]] bool join(std::uint64_t node, Response& out) {
    return member_change(Opcode::kJoin, node, out);
  }
  [[nodiscard]] bool leave(std::uint64_t node, Response& out) {
    return member_change(Opcode::kLeave, node, out);
  }

  /// One-shot ring introspection: epoch + member list.
  [[nodiscard]] bool ring_info(Response& out) {
    const std::uint64_t id = next_request_id_++;
    scratch_.clear();
    encode_ring_info_request(scratch_, id);
    framed_.clear();
    append_frame(framed_, scratch_);
    send_raw(framed_);
    std::string payload;
    if (!read_frame(payload)) return false;
    if (!parse_response(payload, Opcode::kRingInfo, out)) return false;
    return out.request_id == id;
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
  std::string scratch_;
  std::string framed_;
};

}  // namespace dvv::server
