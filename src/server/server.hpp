// dvv/server/server.hpp
//
// dvvd — the socket server over kv::Store, shard-per-thread.
//
// Thread model.  The store is built over a net::ThreadedTransport with
// S shards; replica n lives in shard n % S and is only ever touched on
// that shard's thread.  The server HOSTS the transport (drive mode 2 in
// threaded_transport.hpp): it spawns one event-loop thread per shard,
// each owning
//
//   * an epoll instance,
//   * an eventfd the transport's wake hook writes on enqueue,
//   * the client connections assigned to it (round-robin at accept;
//     shard 0 additionally owns the listening socket),
//
// and calls pump_shard() whenever the eventfd fires — so inter-replica
// messages, cross-shard request forwarding and client I/O all execute
// on the same per-shard serial domains.  No locks anywhere in the
// request path; shards communicate ONLY through transport messages and
// posted closures.
//
// Request routing.  A frame read on connection shard s parses on s.
// If the key's coordinator replica lives in shard s, the operation
// (Store::put_direct_local / get_local) runs inline; otherwise a
// closure is posted to the owner shard t, runs the operation there,
// and posts the encoded response back to s.  Responses are released
// in REQUEST order per connection (a per-connection reorder buffer
// keyed by arrival sequence) so pipelined clients see FIFO semantics
// regardless of which shards served them.
//
// Flow control.  A connection whose outbuf exceeds the pause threshold
// stops being read (EPOLLIN deregistered, server.reads_paused) until
// the kernel drains it below the resume threshold — a slow reader
// stalls only itself; its shard keeps serving every other connection
// and every transport delivery.
//
// Decode boundary.  Framing and payload parsing are src/server/
// protocol.hpp (shared with the fuzz harness).  A frame-level
// malformation (oversized/zero length claim) closes the connection; a
// payload-level one earns an error response and the stream continues.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kv/store.hpp"
#include "net/threaded_transport.hpp"
#include "server/protocol.hpp"

namespace dvv::server {

struct ServerConfig {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read the bound port back)
  int backlog = 128;
  /// Outbuf size above which a connection's reads pause / resume.
  std::size_t outbuf_pause_bytes = 4u << 20;
  std::size_t outbuf_resume_bytes = 1u << 20;
};

class Server {
 public:
  /// The store MUST be backed by a ThreadedTransport (asserted) and
  /// must not have carried any traffic yet: the server installs the
  /// transport's wake hooks, which is only legal before the first
  /// send.  The store outlives the server.
  Server(kv::Store& store, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spawns the per-shard event loops.
  void start();

  /// Stops accepting, closes every connection, drains the transport to
  /// quiescence and joins the loops.  Idempotent.
  void stop();

  /// The bound port (valid after start(); with config.port == 0 this
  /// is the kernel-assigned ephemeral port).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return loops_.size();
  }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    FrameDecoder decoder;
    /// Encoded frames awaiting the kernel; [out_pos, size) is unsent.
    std::string outbuf;
    std::size_t out_pos = 0;
    /// Arrival sequence of the next request read off this connection.
    std::uint64_t next_arrival_seq = 0;
    /// Next sequence eligible to be released to the outbuf.
    std::uint64_t next_send_seq = 0;
    /// Completed-response payloads waiting on earlier sequences
    /// (ordered: release walks it from the front).
    std::map<std::uint64_t, std::string> done;
    bool want_write = false;   ///< EPOLLOUT currently registered
    bool reads_paused = false; ///< EPOLLIN currently deregistered
    bool broken = false;       ///< write error; close at next safe point
  };

  /// One shard's event loop state.  Touched only by its own thread
  /// (after start() wires it up).
  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;  ///< eventfd; the transport wake hook writes it
    std::map<std::uint64_t, Connection> conns;
    std::thread thread;
  };

  /// One membership/ring request parked for the admin thread, with the
  /// coordinates needed to route its response back to the connection.
  struct AdminJob {
    std::size_t shard = 0;
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    Request req;
  };

  void run_loop(std::size_t shard);
  void handle_accept(std::size_t shard);
  void adopt_connection(std::size_t shard, int fd);
  void handle_readable(std::size_t shard, std::uint64_t conn_id);
  void handle_frame(std::size_t shard, Connection& conn, std::string payload);
  /// Executes a parsed request on the CURRENT thread, which must be the
  /// coordinator's shard; appends the encoded response payload to `out`.
  void execute(const Request& req, std::string& out);
  /// The admin loop: drains queued join/leave/ring-info jobs on its own
  /// (non-shard) thread — a membership transition stops the world,
  /// which a shard thread cannot do to itself.  One thread, so admin
  /// operations serialize and ring-info reads never race a transition.
  void run_admin();
  void execute_admin(const Request& req, std::string& out);
  void complete(std::size_t shard, std::uint64_t conn_id, std::uint64_t seq,
                std::string payload);
  void release_ready(std::size_t shard, Connection& conn);
  void flush(std::size_t shard, Connection& conn);
  void update_interest(std::size_t shard, Connection& conn);
  void close_connection(std::size_t shard, std::uint64_t conn_id);

  kv::Store& store_;
  ServerConfig config_;
  net::ThreadedTransport* transport_ = nullptr;
  std::vector<std::unique_ptr<Loop>> loops_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::size_t> next_conn_shard_{0};
  std::atomic<bool> stopping_{false};  ///< close conns, stop accepting
  std::atomic<bool> halt_{false};      ///< exit the loops (post-quiesce)
  bool started_ = false;

  // Admin plane (guarded by admin_mu_; the thread is joined before the
  // shard loops halt, so its world-stops always find live shards).
  std::thread admin_thread_;
  std::mutex admin_mu_;
  std::condition_variable admin_cv_;
  std::deque<AdminJob> admin_jobs_;
  bool admin_halt_ = false;
};

}  // namespace dvv::server
