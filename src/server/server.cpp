// dvv/server/server.cpp
//
// See server.hpp for the thread model.  Everything in this file runs on
// a shard's event-loop thread except start()/stop(), which are
// control-plane (single caller, before/after the loops live).
#include "server/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace dvv::server {

namespace {

// epoll user-data tags for the two non-connection fds; connection ids
// start at 1 and never collide.
constexpr std::uint64_t kWakeId = ~std::uint64_t{0};
constexpr std::uint64_t kListenId = ~std::uint64_t{0} - 1;

void write_wake(int fd) {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is saturated — the loop is already awake.
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

void drain_wake(int fd) {
  std::uint64_t count = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd, &count, sizeof(count));
}

}  // namespace

Server::Server(kv::Store& store, ServerConfig config)
    : store_(store), config_(config) {}

Server::~Server() { stop(); }

void Server::start() {
  DVV_ASSERT_MSG(!started_, "server: start() is not re-entrant");
  transport_ = dynamic_cast<net::ThreadedTransport*>(&store_.transport());
  DVV_ASSERT_MSG(transport_ != nullptr,
                 "server: the store must run on a ThreadedTransport "
                 "(StoreConfig.transport.kind = kThreaded)");
  const std::size_t shards = transport_->shards();

  loops_.clear();
  for (std::size_t s = 0; s < shards; ++s) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    DVV_ASSERT_MSG(loop->epoll_fd >= 0, "server: epoll_create1 failed");
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    DVV_ASSERT_MSG(loop->wake_fd >= 0, "server: eventfd failed");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeId;
    DVV_ASSERT(::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) ==
               0);
    // The transport calls this on enqueue, possibly from another shard's
    // thread or a client thread — an eventfd write is async-safe to the
    // loop.  Must be installed before the store carries any traffic.
    transport_->set_wake_hook(s, [fd = loop->wake_fd] { write_wake(fd); });
    loops_.push_back(std::move(loop));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  DVV_ASSERT_MSG(listen_fd_ >= 0, "server: socket() failed");
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  DVV_ASSERT_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "server: bind failed");
  DVV_ASSERT(::listen(listen_fd_, config_.backlog) == 0);
  socklen_t len = sizeof(addr);
  DVV_ASSERT(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &len) == 0);
  port_ = ntohs(addr.sin_port);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  DVV_ASSERT(::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) ==
             0);

  stopping_.store(false, std::memory_order_release);
  halt_.store(false, std::memory_order_release);
  for (std::size_t s = 0; s < shards; ++s) {
    loops_[s]->thread = std::thread([this, s] { run_loop(s); });
  }
  admin_halt_ = false;
  admin_thread_ = std::thread([this] { run_admin(); });
  started_ = true;
}

void Server::stop() {
  if (!started_) return;
  // Phase 0: retire the admin thread while the shard loops are still
  // pumping — a job mid-flight may be blocked in a stop-the-world
  // section that needs the loops to run its parker closures.  Queued
  // jobs it never reached are dropped; their connections are about to
  // close anyway.
  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    admin_halt_ = true;
  }
  admin_cv_.notify_all();
  if (admin_thread_.joinable()) admin_thread_.join();
  // Phase 1: stop accepting and drop every connection (the loops do it
  // on wake), then drain the transport to quiescence — the loops keep
  // pumping their shards while we block here, so every in-flight
  // replication message and cross-shard closure completes.
  stopping_.store(true, std::memory_order_release);
  for (const auto& loop : loops_) write_wake(loop->wake_fd);
  transport_->quiesce();
  // Phase 2: nothing can be in flight any more (no connections, no
  // queued work); release the loops and join.
  halt_.store(true, std::memory_order_release);
  for (const auto& loop : loops_) write_wake(loop->wake_fd);
  for (const auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (const auto& loop : loops_) {
    ::close(loop->wake_fd);
    ::close(loop->epoll_fd);
  }
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void Server::run_loop(std::size_t shard) {
  Loop& loop = *loops_[shard];
  epoll_event events[64];
  bool closed_for_stop = false;
  while (!halt_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epoll_fd, events, 64, -1);
    if (n < 0) {
      DVV_ASSERT_MSG(errno == EINTR, "server: epoll_wait failed");
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) && !closed_for_stop) {
      closed_for_stop = true;
      if (shard == 0 && listen_fd_ >= 0) {
        (void)::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      }
      while (!loop.conns.empty()) {
        close_connection(shard, loop.conns.begin()->first);
      }
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kWakeId) {
        drain_wake(loop.wake_fd);
        (void)transport_->pump_shard(shard);
        continue;
      }
      if (id == kListenId) {
        if (!closed_for_stop) handle_accept(shard);
        continue;
      }
      auto it = loop.conns.find(id);
      if (it == loop.conns.end()) continue;  // closed earlier this batch
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(shard, id);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        Connection& conn = it->second;
        flush(shard, conn);
        if (conn.broken) {
          close_connection(shard, id);
          continue;
        }
        update_interest(shard, conn);
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(shard, id);
    }
  }
}

void Server::handle_accept(std::size_t shard) {
  obs::ServerMetrics& met = obs::server_metrics();
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: nothing to adopt
    }
    const int enable = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    met.connections_accepted.inc();
    // Round-robin shard assignment; a non-local target adopts the fd in
    // its own serial domain via a posted closure.
    const std::size_t target =
        next_conn_shard_.fetch_add(1, std::memory_order_relaxed) %
        loops_.size();
    if (target == shard) {
      adopt_connection(shard, fd);
    } else {
      transport_->post(target,
                       [this, target, fd] { adopt_connection(target, fd); });
    }
  }
}

void Server::adopt_connection(std::size_t shard, int fd) {
  if (stopping_.load(std::memory_order_acquire)) {
    ::close(fd);
    return;
  }
  Loop& loop = *loops_[shard];
  const std::uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  Connection& conn = loop.conns[id];
  conn.fd = fd;
  conn.id = id;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    loop.conns.erase(id);
    ::close(fd);
  }
}

void Server::close_connection(std::size_t shard, std::uint64_t conn_id) {
  Loop& loop = *loops_[shard];
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;
  (void)::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
  ::close(it->second.fd);
  loop.conns.erase(it);
  obs::server_metrics().connections_closed.inc();
}

void Server::handle_readable(std::size_t shard, std::uint64_t conn_id) {
  Loop& loop = *loops_[shard];
  obs::ServerMetrics& met = obs::server_metrics();
  char buf[65536];
  while (true) {
    auto it = loop.conns.find(conn_id);
    if (it == loop.conns.end()) return;
    Connection& conn = it->second;
    if (conn.reads_paused) return;  // flow control kicked in mid-batch
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n == 0) {
      close_connection(shard, conn_id);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_connection(shard, conn_id);
      return;
    }
    met.bytes_read.inc(static_cast<std::uint64_t>(n));
    conn.decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    std::string payload;
    while (conn.decoder.next(payload)) {
      handle_frame(shard, conn, std::move(payload));
      if (conn.broken) {
        close_connection(shard, conn_id);
        return;
      }
    }
    if (conn.decoder.poisoned()) {
      // Frame-level malformation: byte alignment is gone, the stream
      // cannot continue.  (An oversized length claim lands here BEFORE
      // any payload allocation — FrameDecoder never buffers the claim.)
      met.decode_reject.inc();
      met.reject_oversized_frame.inc();
      close_connection(shard, conn_id);
      return;
    }
  }
}

void Server::handle_frame(std::size_t shard, Connection& conn,
                          std::string payload) {
  obs::ServerMetrics& met = obs::server_metrics();
  const std::uint64_t seq = conn.next_arrival_seq++;
  Request req;
  const RejectReason reject = parse_request(payload, req);
  if (reject != RejectReason::kNone) {
    // Payload-level malformation: answer with an error response (echo
    // the request id when the parse got that far; 0 otherwise) and keep
    // the stream — the next frame boundary is intact.
    met.decode_reject.inc();
    switch (reject) {
      case RejectReason::kBadOpcode: met.reject_bad_opcode.inc(); break;
      case RejectReason::kTrailingBytes: met.reject_trailing_bytes.inc(); break;
      default: met.reject_bad_fields.inc(); break;
    }
    std::string resp;
    encode_error_response(resp, ResponseStatus::kBadRequest, req.request_id);
    complete(shard, conn.id, seq, std::move(resp));
    return;
  }
  if (req.opcode != Opcode::kGet && req.opcode != Opcode::kPut) {
    // Admin plane: park the job for the admin thread — a membership
    // transition stops the world, which this shard thread cannot do to
    // itself.  The reorder buffer keeps the connection's FIFO contract
    // while the job is in flight.
    {
      std::lock_guard<std::mutex> lock(admin_mu_);
      admin_jobs_.push_back(AdminJob{shard, conn.id, seq, std::move(req)});
    }
    admin_cv_.notify_one();
    return;
  }
  const std::optional<kv::ReplicaId> coord = store_.default_coordinator(req.key);
  if (!coord.has_value()) {
    std::string resp;
    encode_error_response(resp, ResponseStatus::kUnavailable, req.request_id);
    complete(shard, conn.id, seq, std::move(resp));
    return;
  }
  const std::size_t owner = store_.shard_of(*coord);
  if (owner == shard) {
    std::string resp;
    execute(req, resp);
    complete(shard, conn.id, seq, std::move(resp));
    return;
  }
  // Cross-shard: run the operation in the coordinator's serial domain,
  // then post the encoded response back to this connection's shard.
  // Both hops are non-blocking posts — a shard thread never waits on
  // another shard.  The connection travels as its id, not a pointer:
  // it may be gone by the time the response returns (complete drops).
  const std::uint64_t conn_id = conn.id;
  transport_->post(owner, [this, shard, conn_id, seq, req = std::move(req)] {
    std::string resp;
    execute(req, resp);
    transport_->post(shard,
                     [this, shard, conn_id, seq, resp = std::move(resp)] {
                       complete(shard, conn_id, seq, std::move(resp));
                       Loop& loop = *loops_[shard];
                       auto it = loop.conns.find(conn_id);
                       if (it != loop.conns.end() && it->second.broken) {
                         close_connection(shard, conn_id);
                       }
                     });
  });
}

void Server::execute(const Request& req, std::string& out) {
  obs::ServerMetrics& met = obs::server_metrics();
  if (req.opcode == Opcode::kGet) {
    met.requests_get.inc();
    const kv::StoreGetResult r = store_.get_local(req.key);
    if (r.status == kv::StoreStatus::kOk) {
      encode_get_response(out, req.request_id, r.found, r.values, r.token);
    } else {
      encode_error_response(out, ResponseStatus::kUnavailable, req.request_id);
    }
    return;
  }
  met.requests_put.inc();
  const kv::CausalToken token = kv::CausalToken::from_bytes(req.token_bytes);
  const kv::StorePutResult r = store_.put_direct_local(
      req.key, kv::client_actor(req.client_id), token, req.value);
  switch (r.status) {
    case kv::StoreStatus::kOk:
      encode_put_response(out, req.request_id, r.receipt.replicated_to);
      break;
    case kv::StoreStatus::kBadToken:
      met.decode_reject.inc();
      met.reject_bad_token.inc();
      encode_error_response(out, ResponseStatus::kBadToken, req.request_id);
      break;
    case kv::StoreStatus::kUnavailable:
      encode_error_response(out, ResponseStatus::kUnavailable, req.request_id);
      break;
  }
}

void Server::run_admin() {
  while (true) {
    AdminJob job;
    {
      std::unique_lock<std::mutex> lock(admin_mu_);
      admin_cv_.wait(lock, [this] { return admin_halt_ || !admin_jobs_.empty(); });
      if (admin_halt_) return;
      job = std::move(admin_jobs_.front());
      admin_jobs_.pop_front();
    }
    std::string resp;
    execute_admin(job.req, resp);
    const std::size_t shard = job.shard;
    const std::uint64_t conn_id = job.conn_id;
    const std::uint64_t seq = job.seq;
    transport_->post(shard, [this, shard, conn_id, seq,
                             resp = std::move(resp)]() mutable {
      complete(shard, conn_id, seq, std::move(resp));
      Loop& loop = *loops_[shard];
      auto it = loop.conns.find(conn_id);
      if (it != loop.conns.end() && it->second.broken) {
        close_connection(shard, conn_id);
      }
    });
  }
}

void Server::execute_admin(const Request& req, std::string& out) {
  obs::server_metrics().requests_admin.inc();
  switch (req.opcode) {
    case Opcode::kJoin:
    case Opcode::kLeave: {
      const auto node = static_cast<kv::ReplicaId>(req.node);
      const bool ok = req.opcode == Opcode::kJoin ? store_.join_node(node)
                                                  : store_.leave_node(node);
      if (!ok) {
        encode_error_response(out, ResponseStatus::kBadRequest, req.request_id);
        return;
      }
      // Drive the transfers to completion before answering: the epoch
      // in the response is fully owned, not merely announced.  The
      // drain runs at one stop-the-world point (Store::
      // complete_rebalance) — client traffic resumes once the ring has
      // fully flipped.
      (void)store_.complete_rebalance();
      encode_member_change_response(out, req.request_id, store_.ring_epoch());
      return;
    }
    case Opcode::kRingInfo:
      encode_ring_info_response(out, req.request_id, store_.ring_epoch(),
                                store_.members());
      return;
    default:
      encode_error_response(out, ResponseStatus::kBadRequest, req.request_id);
      return;
  }
}

void Server::complete(std::size_t shard, std::uint64_t conn_id,
                      std::uint64_t seq, std::string payload) {
  Loop& loop = *loops_[shard];
  auto it = loop.conns.find(conn_id);
  if (it == loop.conns.end()) return;  // client went away mid-request
  Connection& conn = it->second;
  conn.done.emplace(seq, std::move(payload));
  release_ready(shard, conn);
}

void Server::release_ready(std::size_t shard, Connection& conn) {
  obs::ServerMetrics& met = obs::server_metrics();
  // Release responses in request order: the reorder buffer absorbs
  // cross-shard completion skew so pipelined clients see FIFO.
  bool released = false;
  while (!conn.done.empty() && conn.done.begin()->first == conn.next_send_seq) {
    append_frame(conn.outbuf, conn.done.begin()->second);
    conn.done.erase(conn.done.begin());
    ++conn.next_send_seq;
    met.responses_sent.inc();
    released = true;
  }
  if (!released) return;
  flush(shard, conn);
  if (!conn.broken) update_interest(shard, conn);
}

void Server::flush(std::size_t shard, Connection& conn) {
  obs::ServerMetrics& met = obs::server_metrics();
  while (conn.out_pos < conn.outbuf.size()) {
    const ssize_t n = ::write(conn.fd, conn.outbuf.data() + conn.out_pos,
                              conn.outbuf.size() - conn.out_pos);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.broken = true;  // the caller closes at a safe point
      return;
    }
    met.bytes_written.inc(static_cast<std::uint64_t>(n));
    conn.out_pos += static_cast<std::size_t>(n);
  }
  if (conn.out_pos == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos >= conn.outbuf.size() / 2) {
    conn.outbuf.erase(0, conn.out_pos);
    conn.out_pos = 0;
  }
  const std::size_t pending = conn.outbuf.size() - conn.out_pos;
  conn.want_write = pending > 0;
  if (!conn.reads_paused && pending > config_.outbuf_pause_bytes) {
    // Slow reader: stop reading THIS connection until the kernel drains
    // its outbuf.  Everything else on the shard keeps being served.
    conn.reads_paused = true;
    met.reads_paused.inc();
  } else if (conn.reads_paused && pending < config_.outbuf_resume_bytes) {
    conn.reads_paused = false;
  }
  (void)shard;
}

void Server::update_interest(std::size_t shard, Connection& conn) {
  Loop& loop = *loops_[shard];
  epoll_event ev{};
  ev.events = (conn.reads_paused ? 0U : static_cast<unsigned>(EPOLLIN)) |
              (conn.want_write ? static_cast<unsigned>(EPOLLOUT) : 0U);
  ev.data.u64 = conn.id;
  (void)::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

}  // namespace dvv::server
