// dvv/server/protocol.hpp
//
// The dvvd client wire protocol: length-prefixed binary frames carrying
// GET/PUT requests whose causal context travels as the opaque
// CausalToken — the paper's client contract (get returns values + an
// opaque context, put returns the context) over a real socket.
//
// Frame layout (client -> server and server -> client are symmetric):
//
//     offset 0   u32 little-endian payload length N
//     offset 4   N bytes of payload
//
// N is validated against kMaxFrameBytes BEFORE any buffering beyond
// the 4-byte header — a forged huge length claim cannot make the
// server allocate.  N == 0 is malformed (every payload starts with an
// opcode).  A frame-level malformation (oversized claim) poisons the
// stream: the connection is closed, because after it byte alignment is
// gone.  Everything INSIDE an accepted frame is payload-level: a
// malformed payload earns an error response and the stream continues
// at the next frame boundary.
//
// Request payload (codec::StrictReader; canonical varints, strict
// length claims, no trailing bytes):
//
//     varint opcode          1 = GET, 2 = PUT, 3 = JOIN, 4 = LEAVE,
//                            5 = RING_INFO
//     varint request id      client-chosen, echoed verbatim in the
//                            response (pipelining: responses return in
//                            request order per connection, the id lets
//                            the client assert it)
//     GET:  bytes key
//     PUT:  bytes key, bytes token, bytes value, varint client id
//     JOIN/LEAVE:  varint node
//     RING_INFO:   nothing further
//
// Response payload:
//
//     varint status          ResponseStatus below
//     varint request id      echo
//     GET/kOk:  varint found, varint value count, bytes value ...,
//               bytes token
//     PUT/kOk:  varint replicated_to
//     JOIN/LEAVE/kOk:  varint epoch (post-transition)
//     RING_INFO/kOk:   varint epoch, varint member count,
//                      varint member ... (strictly ascending)
//     any error status: nothing further
//
// The decode boundary is shared with the fuzz harness
// (tests/fuzz/fuzz_server_frame.cpp): FrameDecoder + parse_request
// below are exactly what the server's connection state machine runs on
// received bytes, so the fuzzer exercises the real parser.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "codec/wire.hpp"
#include "kv/token.hpp"
#include "kv/types.hpp"

namespace dvv::server {

/// Hard cap on one frame's payload.  Chosen comfortably above any
/// legitimate request (keys and values are small; tokens are bounded
/// by mechanism metadata) and small enough that a malicious pipeline
/// cannot balloon a connection's buffers.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;  // 1 MiB

/// Frame header size: the u32 length prefix.
inline constexpr std::size_t kFrameHeaderBytes = 4;

enum class Opcode : std::uint8_t {
  kGet = 1,
  kPut = 2,
  // Admin plane (src/membership): membership transitions and ring
  // introspection.  Served off the shard threads by dvvd's admin loop —
  // a join/leave stops the world, which a shard thread cannot do to
  // itself.
  kJoin = 3,      ///< varint node; ok response carries the new epoch
  kLeave = 4,     ///< varint node; ok response carries the new epoch
  kRingInfo = 5,  ///< no body; ok response carries epoch + member list
};

enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kUnavailable = 1,  ///< no alive replica could coordinate
  kBadToken = 2,     ///< token failed strict decode; state untouched
  kBadRequest = 3,   ///< payload malformed (opcode/fields/trailing)
};

/// Why a payload (or frame) was rejected — the server.decode_reject.*
/// taxonomy.  kNone means the parse succeeded.
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kOversizedFrame,  ///< length claim beyond kMaxFrameBytes (stream poison)
  kBadOpcode,       ///< opcode varint malformed or unknown value
  kBadFields,       ///< a field failed its strict decode
  kTrailingBytes,   ///< payload parsed but bytes remain after the last field
};

/// A parsed request.  `token_bytes` stays raw here — token *validation*
/// happens in kv::Store (StoreStatus::kBadToken), because only the
/// store knows its mechanism; the protocol layer validates structure.
struct Request {
  Opcode opcode = Opcode::kGet;
  std::uint64_t request_id = 0;
  kv::Key key;
  std::string token_bytes;      // PUT only
  kv::Value value;              // PUT only
  std::uint64_t client_id = 0;  // PUT only
  std::uint64_t node = 0;       // JOIN/LEAVE only
};

/// Strict request parse over one frame's payload.  On failure `out` is
/// unspecified and the reason names the reject counter to bump.
[[nodiscard]] inline RejectReason parse_request(std::string_view payload,
                                                Request& out) {
  codec::StrictReader r(payload.data(), payload.size());
  std::uint64_t opcode = 0;
  if (!r.varint(opcode)) return RejectReason::kBadOpcode;
  if (opcode < static_cast<std::uint64_t>(Opcode::kGet) ||
      opcode > static_cast<std::uint64_t>(Opcode::kRingInfo)) {
    return RejectReason::kBadOpcode;
  }
  out.opcode = static_cast<Opcode>(opcode);
  if (!r.varint(out.request_id)) return RejectReason::kBadFields;
  switch (out.opcode) {
    case Opcode::kGet:
      if (!r.bytes(out.key)) return RejectReason::kBadFields;
      break;
    case Opcode::kPut:
      if (!r.bytes(out.key)) return RejectReason::kBadFields;
      if (!r.bytes(out.token_bytes)) return RejectReason::kBadFields;
      if (!r.bytes(out.value)) return RejectReason::kBadFields;
      if (!r.varint(out.client_id)) return RejectReason::kBadFields;
      break;
    case Opcode::kJoin:
    case Opcode::kLeave:
      if (!r.varint(out.node)) return RejectReason::kBadFields;
      break;
    case Opcode::kRingInfo:
      break;
  }
  if (!r.done()) return RejectReason::kTrailingBytes;
  return RejectReason::kNone;
}

// ---- encoding --------------------------------------------------------------

inline void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

inline void append_bytes(std::string& out, std::string_view data) {
  append_varint(out, data.size());
  out.append(data.data(), data.size());
}

/// Wraps `payload` in a frame (u32-LE length prefix) appended to `out`.
inline void append_frame(std::string& out, std::string_view payload) {
  DVV_ASSERT_MSG(payload.size() <= kMaxFrameBytes,
                 "server: encoder produced an oversized frame");
  const auto n = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>(n & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.append(payload.data(), payload.size());
}

inline void encode_get_request(std::string& payload, std::uint64_t request_id,
                               std::string_view key) {
  append_varint(payload, static_cast<std::uint64_t>(Opcode::kGet));
  append_varint(payload, request_id);
  append_bytes(payload, key);
}

inline void encode_put_request(std::string& payload, std::uint64_t request_id,
                               std::string_view key, std::string_view token,
                               std::string_view value,
                               std::uint64_t client_id) {
  append_varint(payload, static_cast<std::uint64_t>(Opcode::kPut));
  append_varint(payload, request_id);
  append_bytes(payload, key);
  append_bytes(payload, token);
  append_bytes(payload, value);
  append_varint(payload, client_id);
}

inline void encode_error_response(std::string& payload, ResponseStatus status,
                                  std::uint64_t request_id) {
  DVV_ASSERT(status != ResponseStatus::kOk);
  append_varint(payload, static_cast<std::uint64_t>(status));
  append_varint(payload, request_id);
}

inline void encode_get_response(std::string& payload, std::uint64_t request_id,
                                bool found,
                                const std::vector<kv::Value>& values,
                                const kv::CausalToken& token) {
  append_varint(payload, static_cast<std::uint64_t>(ResponseStatus::kOk));
  append_varint(payload, request_id);
  append_varint(payload, found ? 1 : 0);
  append_varint(payload, values.size());
  for (const kv::Value& v : values) append_bytes(payload, v);
  append_bytes(payload, token.bytes());
}

inline void encode_put_response(std::string& payload, std::uint64_t request_id,
                                std::uint64_t replicated_to) {
  append_varint(payload, static_cast<std::uint64_t>(ResponseStatus::kOk));
  append_varint(payload, request_id);
  append_varint(payload, replicated_to);
}

inline void encode_member_change_request(std::string& payload, Opcode op,
                                         std::uint64_t request_id,
                                         std::uint64_t node) {
  DVV_ASSERT(op == Opcode::kJoin || op == Opcode::kLeave);
  append_varint(payload, static_cast<std::uint64_t>(op));
  append_varint(payload, request_id);
  append_varint(payload, node);
}

inline void encode_ring_info_request(std::string& payload,
                                     std::uint64_t request_id) {
  append_varint(payload, static_cast<std::uint64_t>(Opcode::kRingInfo));
  append_varint(payload, request_id);
}

inline void encode_member_change_response(std::string& payload,
                                          std::uint64_t request_id,
                                          std::uint64_t epoch) {
  append_varint(payload, static_cast<std::uint64_t>(ResponseStatus::kOk));
  append_varint(payload, request_id);
  append_varint(payload, epoch);
}

inline void encode_ring_info_response(std::string& payload,
                                      std::uint64_t request_id,
                                      std::uint64_t epoch,
                                      const std::vector<kv::ReplicaId>& members) {
  append_varint(payload, static_cast<std::uint64_t>(ResponseStatus::kOk));
  append_varint(payload, request_id);
  append_varint(payload, epoch);
  append_varint(payload, members.size());
  for (const kv::ReplicaId m : members) append_varint(payload, m);
}

// ---- client-side response parse -------------------------------------------

/// A parsed response (the client half of the protocol; the bench and
/// the tests' client both read through this).
struct Response {
  ResponseStatus status = ResponseStatus::kOk;
  std::uint64_t request_id = 0;
  bool found = false;
  std::vector<kv::Value> values;
  std::string token_bytes;
  std::uint64_t replicated_to = 0;
  std::uint64_t epoch = 0;                 // JOIN/LEAVE/RING_INFO only
  std::vector<std::uint64_t> members;      // RING_INFO only
};

/// Strict response parse.  `sent` disambiguates the kOk body (the
/// client knows which opcode it sent for this request id).
[[nodiscard]] inline bool parse_response(std::string_view payload, Opcode sent,
                                         Response& out) {
  codec::StrictReader r(payload.data(), payload.size());
  std::uint64_t status = 0;
  if (!r.varint(status)) return false;
  if (status > static_cast<std::uint64_t>(ResponseStatus::kBadRequest)) {
    return false;
  }
  out.status = static_cast<ResponseStatus>(status);
  if (!r.varint(out.request_id)) return false;
  if (out.status != ResponseStatus::kOk) return r.done();
  switch (sent) {
    case Opcode::kGet: {
      std::uint64_t found = 0;
      std::uint64_t count = 0;
      if (!r.varint(found) || found > 1) return false;
      out.found = found == 1;
      if (!r.varint(count)) return false;
      if (count > r.remaining()) return false;  // claim cap before reserve
      out.values.clear();
      out.values.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        std::string v;
        if (!r.bytes(v)) return false;
        out.values.push_back(std::move(v));
      }
      if (!r.bytes(out.token_bytes)) return false;
      break;
    }
    case Opcode::kPut:
      if (!r.varint(out.replicated_to)) return false;
      break;
    case Opcode::kJoin:
    case Opcode::kLeave:
      if (!r.varint(out.epoch)) return false;
      break;
    case Opcode::kRingInfo: {
      std::uint64_t count = 0;
      if (!r.varint(out.epoch)) return false;
      if (!r.varint(count)) return false;
      if (count == 0 || count > r.remaining()) return false;
      out.members.clear();
      out.members.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t m = 0;
        if (!r.varint(m)) return false;
        // Strictly ascending, mirroring the EpochAnnounce wire rule.
        if (!out.members.empty() && m <= out.members.back()) return false;
        out.members.push_back(m);
      }
      break;
    }
  }
  return r.done();
}

/// Legacy spelling predating the admin opcodes.
[[nodiscard]] inline bool parse_response(std::string_view payload, bool is_get,
                                         Response& out) {
  return parse_response(payload, is_get ? Opcode::kGet : Opcode::kPut, out);
}

// ---- incremental frame extraction -----------------------------------------

/// Accumulates received bytes and yields complete frame payloads — the
/// connection state machine's read half, shared verbatim with the fuzz
/// harness.  Handles frames split across arbitrarily many reads and
/// multiple frames arriving in one read.  An oversized length claim
/// moves the decoder into a poisoned terminal state WITHOUT buffering
/// the claimed bytes; the owner must close the stream.
class FrameDecoder {
 public:
  /// Appends newly received bytes to the internal buffer.
  void feed(std::string_view data) {
    DVV_ASSERT_MSG(!poisoned_, "server: fed a poisoned frame decoder");
    buffer_.append(data.data(), data.size());
  }

  /// Extracts the next complete frame's payload into `payload`.
  /// Returns true when a frame was produced; false when more bytes are
  /// needed OR the stream is poisoned (check poisoned()).
  [[nodiscard]] bool next(std::string& payload) {
    if (poisoned_) return false;
    if (buffer_.size() - pos_ < kFrameHeaderBytes) {
      compact();
      return false;
    }
    const auto* p = reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
    const std::uint32_t n = static_cast<std::uint32_t>(p[0]) |
                            (static_cast<std::uint32_t>(p[1]) << 8) |
                            (static_cast<std::uint32_t>(p[2]) << 16) |
                            (static_cast<std::uint32_t>(p[3]) << 24);
    if (n == 0 || n > kMaxFrameBytes) {
      poisoned_ = true;  // byte alignment is unrecoverable past this
      return false;
    }
    if (buffer_.size() - pos_ < kFrameHeaderBytes + n) {
      compact();
      return false;
    }
    payload.assign(buffer_, pos_ + kFrameHeaderBytes, n);
    pos_ += kFrameHeaderBytes + n;
    return true;
  }

  /// True after a frame-level malformation; the stream must be closed.
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

  /// Bytes buffered but not yet consumed (tests + flow-control probes).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - pos_;
  }

 private:
  /// Drops consumed bytes once they dominate the buffer, so a
  /// long-lived pipelined connection doesn't grow without bound.
  void compact() {
    if (pos_ > 0 && pos_ >= buffer_.size() / 2) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
  }

  std::string buffer_;
  std::size_t pos_ = 0;
  bool poisoned_ = false;
};

}  // namespace dvv::server
