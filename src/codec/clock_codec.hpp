// dvv/codec/clock_codec.hpp
//
// Wire encodings for every clock type plus the sibling-set kernels, and
// size-only helpers for the metadata benches (E5/E6/E10).  Round-trip
// fidelity is covered by tests/codec_test.cpp for each mechanism.
//
// Formats (all integers varint):
//   VersionVector       := count, (actor, counter)*
//   Dot                 := actor, counter
//   CausalHistory       := count, Dot*
//   DottedVersionVector := Dot, VersionVector
//   DvvSiblings<string>       := count, (DottedVersionVector, value)*
//   ServerVv/ClientVvSiblings := count, (VersionVector, value)*
//   HistorySiblings<string>   := count, (CausalHistory, Dot, value)*
//   DvvSet<string>      := count, (actor, n, valueCount, value*)*
#pragma once

#include <string>

#include "codec/wire.hpp"
#include "core/causal_history.hpp"
#include "core/dot.hpp"
#include "core/dotted_version_vector.hpp"
#include "core/dvv_kernel.hpp"
#include "core/dvv_set.hpp"
#include "core/history_kernel.hpp"
#include "core/version_vector.hpp"
#include "core/vv_kernels.hpp"
#include "core/vve.hpp"

namespace dvv::codec {

// --- scalar clocks ---------------------------------------------------------

void encode(Writer& w, const core::VersionVector& vv);
[[nodiscard]] core::VersionVector decode_version_vector(Reader& r);

void encode(Writer& w, const core::Dot& d);
[[nodiscard]] core::Dot decode_dot(Reader& r);

void encode(Writer& w, const core::CausalHistory& h);
[[nodiscard]] core::CausalHistory decode_causal_history(Reader& r);

void encode(Writer& w, const core::DottedVersionVector& dvv);
[[nodiscard]] core::DottedVersionVector decode_dvv(Reader& r);

/// VVE := count, (actor, base, exceptionCount, exception*)*
void encode(Writer& w, const core::VersionVectorWithExceptions& vve);
[[nodiscard]] core::VersionVectorWithExceptions decode_vve(Reader& r);

/// Serialized size without materializing a buffer.
[[nodiscard]] std::size_t encoded_size(const core::VersionVector& vv);
[[nodiscard]] std::size_t encoded_size(const core::Dot& d);
[[nodiscard]] std::size_t encoded_size(const core::CausalHistory& h);
[[nodiscard]] std::size_t encoded_size(const core::DottedVersionVector& dvv);
[[nodiscard]] std::size_t encoded_size(const core::VersionVectorWithExceptions& vve);

// --- sibling-set kernels (Value = std::string) ------------------------------

void encode(Writer& w, const core::DvvSiblings<std::string>& s);
[[nodiscard]] core::DvvSiblings<std::string> decode_dvv_siblings(Reader& r);

void encode(Writer& w, const core::ServerVvSiblings<std::string>& s);
[[nodiscard]] core::ServerVvSiblings<std::string> decode_server_vv_siblings(Reader& r);

void encode(Writer& w, const core::ClientVvSiblings<std::string>& s);
[[nodiscard]] core::ClientVvSiblings<std::string> decode_client_vv_siblings(Reader& r);

void encode(Writer& w, const core::HistorySiblings<std::string>& s);
[[nodiscard]] core::HistorySiblings<std::string> decode_history_siblings(Reader& r);

void encode(Writer& w, const core::DvvSet<std::string>& s);
[[nodiscard]] core::DvvSet<std::string> decode_dvv_set(Reader& r);

void encode(Writer& w, const core::VveSiblings<std::string>& s);
[[nodiscard]] core::VveSiblings<std::string> decode_vve_siblings(Reader& r);

// --- generic decode --------------------------------------------------------
//
// Overload set mirroring encode(): lets templated code (Replica<M>'s
// storage replay, src/store) decode any mechanism's Stored type without
// naming its decoder.

inline void decode(Reader& r, core::DvvSiblings<std::string>& out) {
  out = decode_dvv_siblings(r);
}
inline void decode(Reader& r, core::ServerVvSiblings<std::string>& out) {
  out = decode_server_vv_siblings(r);
}
inline void decode(Reader& r, core::ClientVvSiblings<std::string>& out) {
  out = decode_client_vv_siblings(r);
}
inline void decode(Reader& r, core::HistorySiblings<std::string>& out) {
  out = decode_history_siblings(r);
}
inline void decode(Reader& r, core::DvvSet<std::string>& out) {
  out = decode_dvv_set(r);
}
inline void decode(Reader& r, core::VveSiblings<std::string>& out) {
  out = decode_vve_siblings(r);
}

/// Metadata-only wire size of a sibling set: full encoding minus the
/// payload bytes.  This is the paper's "size of metadata" metric — what
/// the causality mechanism itself costs on every reply, independent of
/// how big the user's values are.
[[nodiscard]] std::size_t metadata_size(const core::DvvSiblings<std::string>& s);
[[nodiscard]] std::size_t metadata_size(const core::ServerVvSiblings<std::string>& s);
[[nodiscard]] std::size_t metadata_size(const core::ClientVvSiblings<std::string>& s);
[[nodiscard]] std::size_t metadata_size(const core::HistorySiblings<std::string>& s);
[[nodiscard]] std::size_t metadata_size(const core::DvvSet<std::string>& s);
[[nodiscard]] std::size_t metadata_size(const core::VveSiblings<std::string>& s);

}  // namespace dvv::codec
