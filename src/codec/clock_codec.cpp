#include "codec/clock_codec.hpp"

namespace dvv::codec {

using core::CausalHistory;
using core::ClientVvSiblings;
using core::Dot;
using core::DottedVersionVector;
using core::DvvSet;
using core::DvvSiblings;
using core::HistorySiblings;
using core::ServerVvSiblings;
using core::VersionVector;

// --- scalar clocks ---------------------------------------------------------

void encode(Writer& w, const VersionVector& vv) {
  w.varint(vv.size());
  for (const auto& [actor, counter] : vv.entries()) {
    w.varint(actor);
    w.varint(counter);
  }
}

VersionVector decode_version_vector(Reader& r) {
  VersionVector vv;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto actor = r.varint();
    const auto counter = r.varint();
    vv.set(actor, counter);
  }
  return vv;
}

void encode(Writer& w, const Dot& d) {
  w.varint(d.node);
  w.varint(d.counter);
}

Dot decode_dot(Reader& r) {
  Dot d;
  d.node = r.varint();
  d.counter = r.varint();
  return d;
}

void encode(Writer& w, const CausalHistory& h) {
  w.varint(h.size());
  for (const Dot& d : h.dots()) encode(w, d);
}

CausalHistory decode_causal_history(Reader& r) {
  CausalHistory h;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) h.insert(decode_dot(r));
  return h;
}

void encode(Writer& w, const DottedVersionVector& dvv) {
  encode(w, dvv.dot());
  encode(w, dvv.past());
}

DottedVersionVector decode_dvv(Reader& r) {
  const Dot dot = decode_dot(r);
  VersionVector past = decode_version_vector(r);
  return DottedVersionVector(dot, std::move(past));
}

void encode(Writer& w, const core::VersionVectorWithExceptions& vve) {
  w.varint(vve.entries().size());
  for (const auto& [actor, entry] : vve.entries()) {
    w.varint(actor);
    w.varint(entry.base);
    w.varint(entry.exceptions.size());
    for (const core::Counter c : entry.exceptions) w.varint(c);
  }
}

core::VersionVectorWithExceptions decode_vve(Reader& r) {
  core::VersionVectorWithExceptions vve;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const core::ActorId actor = r.varint();
    const core::Counter base = r.varint();
    const std::uint64_t ex_count = r.varint();
    std::vector<core::Counter> exceptions;
    exceptions.reserve(static_cast<std::size_t>(ex_count));
    for (std::uint64_t j = 0; j < ex_count; ++j) exceptions.push_back(r.varint());
    // Encodings are canonical (the encoder walks normalized entries),
    // so the entry installs wholesale — rebuilding event-by-event
    // through add() would cost O(base) per entry.
    if (base == 0) continue;
    vve.install_entry(actor, base, std::move(exceptions));
  }
  return vve;
}

std::size_t encoded_size(const core::VersionVectorWithExceptions& vve) {
  std::size_t n = varint_size(vve.entries().size());
  for (const auto& [actor, entry] : vve.entries()) {
    n += varint_size(actor) + varint_size(entry.base) +
         varint_size(entry.exceptions.size());
    for (const core::Counter c : entry.exceptions) n += varint_size(c);
  }
  return n;
}

std::size_t encoded_size(const VersionVector& vv) {
  std::size_t n = varint_size(vv.size());
  for (const auto& [actor, counter] : vv.entries()) {
    n += varint_size(actor) + varint_size(counter);
  }
  return n;
}

std::size_t encoded_size(const Dot& d) {
  return varint_size(d.node) + varint_size(d.counter);
}

std::size_t encoded_size(const CausalHistory& h) {
  std::size_t n = varint_size(h.size());
  for (const Dot& d : h.dots()) n += encoded_size(d);
  return n;
}

std::size_t encoded_size(const DottedVersionVector& dvv) {
  return encoded_size(dvv.dot()) + encoded_size(dvv.past());
}

// --- sibling-set kernels ----------------------------------------------------

void encode(Writer& w, const DvvSiblings<std::string>& s) {
  w.varint(s.sibling_count());
  for (const auto& v : s.versions()) {
    encode(w, v.clock);
    w.bytes(v.value);
  }
}

DvvSiblings<std::string> decode_dvv_siblings(Reader& r) {
  DvvSiblings<std::string> s;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    DottedVersionVector clock = decode_dvv(r);
    s.inject(std::move(clock), r.bytes());
  }
  return s;
}

namespace {

/// Shared shape for the two VV kernels.
template <typename Kernel>
void encode_vv_siblings(Writer& w, const Kernel& s) {
  w.varint(s.sibling_count());
  for (const auto& v : s.versions()) {
    encode(w, v.clock);
    w.bytes(v.value);
  }
}

template <typename Kernel>
Kernel decode_vv_siblings(Reader& r) {
  Kernel s;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    VersionVector clock = decode_version_vector(r);
    s.inject(std::move(clock), r.bytes());
  }
  return s;
}

/// Metadata size = full size minus payload bytes (value data + its
/// length prefixes), leaving count + clocks: the causality overhead.
template <typename Kernel>
std::size_t vv_like_metadata_size(const Kernel& s) {
  std::size_t n = varint_size(s.sibling_count());
  for (const auto& v : s.versions()) n += encoded_size(v.clock);
  return n;
}

}  // namespace

void encode(Writer& w, const ServerVvSiblings<std::string>& s) {
  encode_vv_siblings(w, s);
}

ServerVvSiblings<std::string> decode_server_vv_siblings(Reader& r) {
  return decode_vv_siblings<ServerVvSiblings<std::string>>(r);
}

void encode(Writer& w, const ClientVvSiblings<std::string>& s) {
  encode_vv_siblings(w, s);
}

ClientVvSiblings<std::string> decode_client_vv_siblings(Reader& r) {
  return decode_vv_siblings<ClientVvSiblings<std::string>>(r);
}

void encode(Writer& w, const HistorySiblings<std::string>& s) {
  w.varint(s.sibling_count());
  for (const auto& v : s.versions()) {
    encode(w, v.history);
    encode(w, v.id);
    w.bytes(v.value);
  }
}

HistorySiblings<std::string> decode_history_siblings(Reader& r) {
  HistorySiblings<std::string> s;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    CausalHistory h = decode_causal_history(r);
    const Dot id = decode_dot(r);
    s.inject(std::move(h), id, r.bytes());
  }
  return s;
}

void encode(Writer& w, const DvvSet<std::string>& s) {
  w.varint(s.entries().size());
  for (const auto& e : s.entries()) {
    w.varint(e.actor);
    w.varint(e.n);
    w.varint(e.values.size());
    for (const auto& v : e.values) w.bytes(v);
  }
}

DvvSet<std::string> decode_dvv_set(Reader& r) {
  DvvSet<std::string> s;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    typename DvvSet<std::string>::Entry e;
    e.actor = r.varint();
    e.n = r.varint();
    const std::uint64_t k = r.varint();
    e.values.reserve(static_cast<std::size_t>(k));
    for (std::uint64_t j = 0; j < k; ++j) e.values.push_back(r.bytes());
    s.inject(std::move(e));
  }
  return s;
}

void encode(Writer& w, const core::VveSiblings<std::string>& s) {
  w.varint(s.sibling_count());
  for (const auto& v : s.versions()) {
    encode(w, v.clock);
    w.bytes(v.value);
  }
}

core::VveSiblings<std::string> decode_vve_siblings(Reader& r) {
  core::VveSiblings<std::string> s;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    core::VersionVectorWithExceptions clock = decode_vve(r);
    s.inject(std::move(clock), r.bytes());
  }
  return s;
}

std::size_t metadata_size(const core::VveSiblings<std::string>& s) {
  std::size_t n = varint_size(s.sibling_count());
  for (const auto& v : s.versions()) n += encoded_size(v.clock);
  return n;
}

std::size_t metadata_size(const DvvSiblings<std::string>& s) {
  std::size_t n = varint_size(s.sibling_count());
  for (const auto& v : s.versions()) n += encoded_size(v.clock);
  return n;
}

std::size_t metadata_size(const ServerVvSiblings<std::string>& s) {
  return vv_like_metadata_size(s);
}

std::size_t metadata_size(const ClientVvSiblings<std::string>& s) {
  return vv_like_metadata_size(s);
}

std::size_t metadata_size(const HistorySiblings<std::string>& s) {
  std::size_t n = varint_size(s.sibling_count());
  for (const auto& v : s.versions()) {
    n += encoded_size(v.history) + encoded_size(v.id);
  }
  return n;
}

std::size_t metadata_size(const DvvSet<std::string>& s) {
  std::size_t n = varint_size(s.entries().size());
  for (const auto& e : s.entries()) {
    n += varint_size(e.actor) + varint_size(e.n) + varint_size(e.values.size());
  }
  return n;
}

}  // namespace dvv::codec
