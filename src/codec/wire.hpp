// dvv/codec/wire.hpp
//
// Minimal binary wire format: LEB128 varints plus length-prefixed bytes.
//
// The paper's Riak evaluation reports "a significant reduction in the
// size of metadata"; reproducing that claim honestly means measuring
// *serialized* clocks, not sizeof(struct).  Varint encoding is what
// production stores use for counters (protobuf-style), so entry count
// and counter magnitude both show up in the byte sizes the benches
// report — exactly the two quantities the mechanisms differ on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace dvv::codec {

/// Append-only byte sink.
class Writer {
 public:
  /// LEB128 unsigned varint: 7 bits per byte, high bit = continuation.
  void varint(std::uint64_t value) {
    while (value >= 0x80) {
      bytes_.push_back(static_cast<std::byte>((value & 0x7f) | 0x80));
      value >>= 7;
    }
    bytes_.push_back(static_cast<std::byte>(value));
  }

  /// Length-prefixed byte string.
  void bytes(std::string_view data) {
    varint(data.size());
    const auto* p = reinterpret_cast<const std::byte*>(data.data());
    bytes_.insert(bytes_.end(), p, p + data.size());
  }

  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::byte>& buffer() const noexcept { return bytes_; }

  void clear() noexcept { bytes_.clear(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Sequential reader over an encoded buffer.  Decoding failures assert:
/// this class is ONLY for buffers the process itself produced, where a
/// malformed buffer is a bug, not an input error.  Anything that reads
/// bytes of foreign provenance (client tokens, peer frames, replayed
/// WAL segments) must use StrictReader below, whose failure mode is a
/// status return the caller can reject.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint64_t varint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      DVV_ASSERT_MSG(pos_ < data_.size(), "codec: truncated varint");
      const auto b = static_cast<std::uint8_t>(data_[pos_++]);
      DVV_ASSERT_MSG(shift < 64, "codec: varint overflow");
      value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return value;
      shift += 7;
    }
  }

  [[nodiscard]] std::string bytes() {
    const std::uint64_t len = varint();
    DVV_ASSERT_MSG(pos_ + len <= data_.size(), "codec: truncated bytes");
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_),
                    static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return out;
  }

  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Sequential STRICT reader for bytes the process did NOT produce —
/// client tokens, peer wire frames, replayed (possibly tampered) WAL
/// segments.  Where Reader asserts, every StrictReader step returns
/// false on malformation and the caller rejects the input; nothing an
/// adversary puts on the wire can reach a DVV_ASSERT through this
/// class.  The contract (the token.hpp idiom, hoisted to the codec
/// layer so every untrusted boundary shares one implementation):
///
///   * bounds-checked: no read past the received bytes;
///   * linear: work is bounded by the bytes the caller already holds —
///     a length claim is validated against the remaining input BEFORE
///     any allocation, so a forged huge claim cannot amplify;
///   * canonical varints only: redundant trailing zero-groups
///     (0x80 0x00 also encodes 0) and 64-bit overflow are rejected, so
///     a value has exactly one accepted encoding and decode→encode
///     byte-identity checks cannot be dodged at the varint level.
class StrictReader {
 public:
  explicit StrictReader(std::span<const std::byte> data) noexcept : data_(data) {}
  StrictReader(const void* data, std::size_t size) noexcept
      : data_(static_cast<const std::byte*>(data), size) {}

  [[nodiscard]] bool varint(std::uint64_t& out) noexcept {
    std::uint64_t value = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size() || shift >= 64) return false;
      const auto b = static_cast<std::uint8_t>(data_[pos_++]);
      if (shift == 63 && (b & 0x7e) != 0) return false;  // overflow
      value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        if (b == 0 && shift != 0) return false;  // non-canonical padding
        out = value;
        return true;
      }
      shift += 7;
    }
  }

  /// Length-prefixed byte string.  The length claim is capped by the
  /// remaining input before `out` is touched.
  [[nodiscard]] bool bytes(std::string& out) {
    std::uint64_t len = 0;
    if (!varint(len)) return false;
    if (len > data_.size() - pos_) return false;
    out.assign(reinterpret_cast<const char*>(data_.data() + pos_),
               static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

  /// Zero-copy variant of bytes(): `out` becomes a view into the input
  /// buffer (same claim cap, no allocation).  The view is only valid
  /// while the underlying buffer lives — callers on the delivery hot
  /// path use this to decode without materializing, and copy only on
  /// adoption.
  [[nodiscard]] bool bytes_view(std::string_view& out) noexcept {
    std::uint64_t len = 0;
    if (!varint(len)) return false;
    if (len > data_.size() - pos_) return false;
    out = std::string_view(reinterpret_cast<const char*>(data_.data() + pos_),
                           static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return true;
  }

  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  /// The region [begin, current position) as a view — how a composite
  /// frame (net::BatchMsg) captures the raw bytes of an inner span it
  /// just validated, without copying them.
  [[nodiscard]] std::string_view viewed_since(std::size_t begin) const noexcept {
    DVV_ASSERT(begin <= pos_);
    return std::string_view(
        reinterpret_cast<const char*>(data_.data() + begin), pos_ - begin);
  }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Size of `value` as a varint, without encoding it (for size-only
/// accounting paths that want to skip buffer churn).
[[nodiscard]] constexpr std::size_t varint_size(std::uint64_t value) noexcept {
  std::size_t n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace dvv::codec
