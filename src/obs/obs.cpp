// dvv/obs/obs.cpp
//
// Registry/exporter/flight-recorder implementation, the process-wide
// singletons, the env-knob parsers, and the DVV_ASSERT last-words hook
// (this translation unit defines util::detail::assert_fail_hook, which
// is what links it into every binary that can assert).
#include "obs/obs.hpp"

#include <chrono>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/fmt.hpp"

namespace dvv::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; our dotted catalog
/// names sanitize by mapping '.' and '-' to '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

/// Catalog names are identifier-shaped, but escape minimally anyway so
/// a hostile name cannot break the snapshot's framing.
[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

[[nodiscard]] std::string u64(std::uint64_t v) { return std::to_string(v); }

void append_histogram_json(std::string& out, const util::BucketHistogram& h) {
  out += "{\"count\":" + u64(h.total()) + ",\"sum\":" + u64(h.sum());
  out += ",\"p50\":" + util::json_number(h.p50(), 1);
  out += ",\"p99\":" + util::json_number(h.p99(), 1);
  out += ",\"p999\":" + util::json_number(h.p999(), 1);
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < util::BucketHistogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '[' + u64(util::BucketHistogram::bucket_upper(i)) + ',' +
           u64(h.bucket(i)) + ']';
  }
  out += "]}";
}

[[nodiscard]] std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          // dvv-lint: allow(wall-clock) — metrics-only monotonic stamp;
          // never read by sim-reachable control flow
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---- Registry --------------------------------------------------------------

std::uint64_t Registry::counter_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.load(std::memory_order_relaxed);
}

double Registry::gauge_value(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0
                             : it->second.load(std::memory_order_relaxed);
}

const util::BucketHistogram* Registry::find_histogram(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, cell] : counters_) {
    cell.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : gauges_) {
    cell.store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : histograms_) cell.reset();
}

std::string Registry::prometheus_text() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, cell] : counters_) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + u64(cell.load(std::memory_order_relaxed)) + "\n";
  }
  for (const auto& [name, cell] : gauges_) {
    const std::string pname = prometheus_name(name);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%g", cell.load(std::memory_order_relaxed));
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + buf + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    const std::string pname = prometheus_name(name);
    out += "# TYPE " + pname + " histogram\n";
    // Cumulative buckets up to the last occupied one, then +Inf.
    std::size_t last = 0;
    for (std::size_t i = 0; i < util::BucketHistogram::kBuckets; ++i) {
      if (hist.bucket(i) != 0) last = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= last && !hist.empty(); ++i) {
      cumulative += hist.bucket(i);
      out += pname + "_bucket{le=\"" +
             u64(util::BucketHistogram::bucket_upper(i)) + "\"} " +
             u64(cumulative) + "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " + u64(hist.total()) + "\n";
    out += pname + "_sum " + u64(hist.sum()) + "\n";
    out += pname + "_count " + u64(hist.total()) + "\n";
  }
  return out;
}

std::string Registry::json_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"enabled\":";
  out += enabled_.load(std::memory_order_relaxed) ? "true" : "false";
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, cell] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) +
           "\":" + u64(cell.load(std::memory_order_relaxed));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, cell] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) +
           "\":" + util::json_number(cell.load(std::memory_order_relaxed));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":";
    append_histogram_json(out, hist);
  }
  out += "}}";
  return out;
}

// ---- FlightRecorder --------------------------------------------------------

void FlightRecorder::configure(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_.store(capacity, std::memory_order_relaxed);
  ring_.assign(capacity, FlightEvent{});
  next_seq_ = 0;
  if (start_us_ == 0) start_us_ = steady_now_us();
}

std::size_t FlightRecorder::size() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  return next_seq_ < cap ? static_cast<std::size_t>(next_seq_) : cap;
}

void FlightRecorder::record(const char* category, const char* name,
                            std::uint64_t trace_id, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c) noexcept {
  if (capacity_.load(std::memory_order_relaxed) == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return;  // disarmed between the fast check and the lock
  FlightEvent& slot = ring_[next_seq_ % cap];
  slot.seq = next_seq_++;
  slot.t_us = steady_now_us() - start_us_;
  slot.trace_id = trace_id;
  slot.category = category;
  slot.name = name;
  slot.a = a;
  slot.b = b;
  slot.c = c;
}

void FlightRecorder::clear() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  next_seq_ = 0;
  for (FlightEvent& e : ring_) e = FlightEvent{};
}

std::string FlightRecorder::dump_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t cap = capacity_.load(std::memory_order_relaxed);
  const std::size_t n =
      next_seq_ < cap ? static_cast<std::size_t>(next_seq_) : cap;
  std::string out = "{\"recorded\":" + u64(next_seq_) +
                    ",\"dropped\":" + u64(next_seq_ - n) + ",\"events\":[";
  const std::uint64_t first_seq = next_seq_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    const FlightEvent& e = ring_[(first_seq + i) % cap];
    if (i != 0) out += ',';
    out += "{\"seq\":" + u64(e.seq) + ",\"t_us\":" + u64(e.t_us) +
           ",\"trace\":" + u64(e.trace_id) + ",\"cat\":\"" + e.category +
           "\",\"name\":\"" + e.name + "\",\"a\":" + u64(e.a) +
           ",\"b\":" + u64(e.b) + ",\"c\":" + u64(e.c) + "}";
  }
  out += "]}";
  return out;
}

bool FlightRecorder::dump_to_file(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const std::string json = dump_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

// ---- env knobs -------------------------------------------------------------

namespace detail {

bool parse_metrics_env(const char* value) {
  if (value == nullptr || value[0] == '\0') return false;
  const std::string_view v(value);
  if (v == "on" || v == "1") return true;
  if (v == "off" || v == "0") return false;
  // A typo (e.g. DVV_METRICS=On in a CI leg) must not silently measure
  // nothing and pass — same contract as DVV_MECHANISM.
  std::fprintf(stderr,
               "DVV_METRICS=\"%s\" is not recognized; expected \"on\" or "
               "\"off\"\n",
               value);
  std::abort();
}

std::size_t parse_flight_env(const char* value) {
  if (value == nullptr || value[0] == '\0') return 0;
  const std::string_view v(value);
  if (v == "off" || v == "0") return 0;
  if (v == "on") return 4096;
  bool numeric = true;
  for (const char c : v) {
    numeric = numeric && std::isdigit(static_cast<unsigned char>(c)) != 0;
  }
  if (numeric) return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
  std::fprintf(stderr,
               "DVV_FLIGHT_RECORDER=\"%s\" is not recognized; expected "
               "\"on\", \"off\", or a capacity\n",
               value);
  std::abort();
}

/// Assert-time last words: dump the armed flight recorder to
/// DVV_FLIGHT_DUMP (default ./flight_recorder.json).
void dump_flight_on_assert() noexcept {
  const FlightRecorder& rec = flight();
  if (!rec.enabled()) return;
  const char* path = std::getenv("DVV_FLIGHT_DUMP");
  if (path == nullptr || path[0] == '\0') path = "flight_recorder.json";
  if (rec.dump_to_file(path)) {
    std::fprintf(stderr, "dvv: flight recorder dumped %zu events to %s\n",
                 rec.size(), path);
  } else {
    std::fprintf(stderr, "dvv: flight recorder dump to %s failed\n", path);
  }
}

}  // namespace detail

// ---- process-wide singletons ----------------------------------------------

Registry& registry() {
  static Registry global(detail::parse_metrics_env(std::getenv("DVV_METRICS")));
  return global;
}

void set_metrics_enabled(bool on) noexcept { registry().set_enabled(on); }

FlightRecorder& flight() {
  static FlightRecorder* global = [] {
    auto* rec = new FlightRecorder();  // leaked: must outlive static dtors
    rec->configure(detail::parse_flight_env(std::getenv("DVV_FLIGHT_RECORDER")));
    return rec;
  }();
  return *global;
}

// ---- layer catalogs --------------------------------------------------------

NetMetrics& net_metrics() {
  static NetMetrics m = [] {
    NetMetrics out;
#if !defined(DVV_OBS_DISABLED)
    Registry& r = registry();
    out.msgs_sent = r.counter("net.msgs_sent");
    out.msgs_delivered = r.counter("net.msgs_delivered");
    out.msgs_dropped = r.counter("net.msgs_dropped");
    out.msgs_duplicated = r.counter("net.msgs_duplicated");
    out.msgs_reordered = r.counter("net.msgs_reordered");
    out.partition_dropped = r.counter("net.partition_dropped");
    out.wire_bytes_sent = r.counter("net.wire_bytes_sent");
    out.wire_bytes_delivered = r.counter("net.wire_bytes_delivered");
    out.decode_reject = r.counter("net.decode_reject");
    out.decode_reject_unknown = r.counter("net.decode_reject.unknown");
    out.alloc_messages = r.counter("net.alloc.messages");
    out.alloc_envelopes = r.counter("net.alloc.envelopes");
    out.alloc_encode_buffers = r.counter("net.alloc.encode_buffers");
    for (std::size_t i = 0; i < kMessageTypes; ++i) {
      out.sent_by_type[i] =
          r.counter(std::string("net.sent.") + kMessageTypeNames[i]);
      out.delivered_by_type[i] =
          r.counter(std::string("net.delivered.") + kMessageTypeNames[i]);
      out.decode_reject_by_type[i] =
          r.counter(std::string("net.decode_reject.") + kMessageTypeNames[i]);
    }
#endif
    return out;
  }();
  return m;
}

CoordMetrics& coord_metrics() {
  static CoordMetrics m = [] {
    CoordMetrics out;
#if !defined(DVV_OBS_DISABLED)
    Registry& r = registry();
    out.reads_started = r.counter("coord.reads_started");
    out.writes_started = r.counter("coord.writes_started");
    out.requests_quorum = r.counter("coord.requests_quorum");
    out.requests_timeout = r.counter("coord.requests_timeout");
    out.requests_unavailable = r.counter("coord.requests_unavailable");
    out.replies_duplicate_dropped = r.counter("coord.replies_duplicate_dropped");
    out.replies_late_dropped = r.counter("coord.replies_late_dropped");
    out.replies_stale_dropped = r.counter("coord.replies_stale_dropped");
    out.latency_ticks = r.histogram("coord.latency_ticks");
#endif
    return out;
  }();
  return m;
}

AaeMetrics& aae_metrics() {
  static AaeMetrics m = [] {
    AaeMetrics out;
#if !defined(DVV_OBS_DISABLED)
    Registry& r = registry();
    out.sessions = r.counter("aae.sessions");
    out.rounds = r.counter("aae.rounds");
    out.nodes_exchanged = r.counter("aae.nodes_exchanged");
    out.keys_compared = r.counter("aae.keys_compared");
    out.keys_shipped = r.counter("aae.keys_shipped");
    out.wire_bytes = r.counter("aae.wire_bytes");
#endif
    return out;
  }();
  return m;
}

WalMetrics& wal_metrics() {
  static WalMetrics m = [] {
    WalMetrics out;
#if !defined(DVV_OBS_DISABLED)
    Registry& r = registry();
    out.appends = r.counter("wal.appends");
    out.fsyncs = r.counter("wal.fsyncs");
    out.segments_sealed = r.counter("wal.segments_sealed");
    out.compactions = r.counter("wal.compactions");
    out.compaction_records_dropped = r.counter("wal.compaction_records_dropped");
    out.recoveries = r.counter("wal.recoveries");
    out.records_replayed = r.counter("wal.records_replayed");
    out.torn_records_dropped = r.counter("wal.torn_records_dropped");
    out.replay_us = r.histogram("wal.replay_us");
#endif
    return out;
  }();
  return m;
}

ServerMetrics& server_metrics() {
  static ServerMetrics m = [] {
    ServerMetrics out;
#if !defined(DVV_OBS_DISABLED)
    Registry& r = registry();
    out.connections_accepted = r.counter("server.connections_accepted");
    out.connections_closed = r.counter("server.connections_closed");
    out.requests_get = r.counter("server.requests.get");
    out.requests_put = r.counter("server.requests.put");
    out.requests_admin = r.counter("server.requests.admin");
    out.responses_sent = r.counter("server.responses_sent");
    out.bytes_read = r.counter("server.bytes_read");
    out.bytes_written = r.counter("server.bytes_written");
    out.reads_paused = r.counter("server.reads_paused");
    out.decode_reject = r.counter("server.decode_reject");
    out.reject_oversized_frame =
        r.counter("server.decode_reject.oversized_frame");
    out.reject_bad_opcode = r.counter("server.decode_reject.bad_opcode");
    out.reject_bad_fields = r.counter("server.decode_reject.bad_fields");
    out.reject_trailing_bytes =
        r.counter("server.decode_reject.trailing_bytes");
    out.reject_bad_token = r.counter("server.decode_reject.bad_token");
#endif
    return out;
  }();
  return m;
}

StoreMetrics& store_metrics() {
  static StoreMetrics m = [] {
    StoreMetrics out;
#if !defined(DVV_OBS_DISABLED)
    Registry& r = registry();
    out.gets = r.counter("store.gets");
    out.puts = r.counter("store.puts");
    out.begin_reads = r.counter("store.begin_reads");
    out.begin_writes = r.counter("store.begin_writes");
    out.status_ok = r.counter("store.status_ok");
    out.status_unavailable = r.counter("store.status_unavailable");
    out.status_bad_token = r.counter("store.status_bad_token");
    out.anti_entropy_runs = r.counter("store.anti_entropy_runs");
#endif
    return out;
  }();
  return m;
}

MembershipMetrics& membership_metrics() {
  static MembershipMetrics m = [] {
    MembershipMetrics out;
#if !defined(DVV_OBS_DISABLED)
    Registry& r = registry();
    out.joins = r.counter("membership.joins");
    out.leaves = r.counter("membership.leaves");
    out.removals = r.counter("membership.removals");
    out.epochs_minted = r.counter("membership.epochs_minted");
    out.epochs_announced = r.counter("membership.epochs_announced");
    out.transfers_started = r.counter("membership.transfers_started");
    out.transfers_completed = r.counter("membership.transfers_completed");
    out.partitions_flipped = r.counter("membership.partitions_flipped");
    out.transfer_keys_shipped = r.counter("membership.transfer_keys_shipped");
    out.transfer_wire_bytes = r.counter("membership.transfer_wire_bytes");
    out.hints_retargeted = r.counter("membership.hints_retargeted");
    out.stale_epoch_forwarded = r.counter("membership.stale_epoch_forwarded");
    out.rejoin_incarnations = r.counter("membership.rejoin_incarnations");
#endif
    return out;
  }();
  return m;
}

}  // namespace dvv::obs

namespace dvv::util::detail {

// Constant-initialized to the obs dump: installed before any code runs,
// and the reference from assert.hpp's inline assert_fail is what pulls
// this object file out of libdvv into every linking binary.
void (*assert_fail_hook)() noexcept = &dvv::obs::detail::dump_flight_on_assert;

}  // namespace dvv::util::detail
