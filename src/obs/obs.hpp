// dvv/obs/obs.hpp
//
// Observability core: a metrics Registry (counters, gauges, bucketed
// histograms), a bounded ring-buffer flight recorder of structured
// events, and two exporters (Prometheus-style text exposition and a
// JSON snapshot).  This layer sits directly above util/ and depends on
// nothing else; every subsystem above it records through the catalogs
// in obs/metrics.hpp.
//
// The cardinal rule is BEHAVIOR INVARIANCE: instrumentation may never
// draw from an Rng, branch differently on system state, or otherwise
// perturb the instrumented code.  A metrics-on run must be
// byte-identical — every replica's every key, digests, receipts — to a
// metrics-off twin (tests/obs_twin_test.cpp proves this for all six
// mechanisms under chaos transport).  Handles therefore only ever do
// `if (enabled) bump a cell`; nothing here feeds back into the system.
//
// Cost model: a handle is two pointers.  When the owning registry is
// disabled, inc()/add() is one well-predicted not-taken branch on a
// cached bool — bench_transport demonstrates that is within run noise
// on the inline-transport hot path.  For a hard guarantee, configure
// with -DDVV_OBS_OFF=ON: the layer catalogs (obs/metrics.hpp) become
// compile-time no-ops and instrumented call sites compile to nothing.
//
// Knobs (process-wide, read once):
//   DVV_METRICS={off,on}        global registry enabled? (default off;
//                               anything else aborts loudly, like
//                               DVV_MECHANISM)
//   DVV_FLIGHT_RECORDER={off,on,<capacity>}
//                               arm the flight recorder (on = 4096
//                               events); dumps JSON on DVV_ASSERT
//                               failure or on demand
//   DVV_FLIGHT_DUMP=<path>      where the assert-time dump lands
//                               (default ./flight_recorder.json)
//
// Registries are instantiable: the global one (obs::registry()) serves
// the layer catalogs, while harnesses that need always-on private
// accounting (sim_store's result counters) own a local Registry that
// ignores DVV_METRICS.  Handles alias registry-owned cells, so a
// registry must outlive its handles and not move.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/stats.hpp"

namespace dvv::obs {

class Registry;

/// Monotonic event count.  Two pointers; see the cost model above.
/// Cells are relaxed atomics: independent monotonic counts bumped from
/// concurrent shard threads, read only at quiescence (exporters), so
/// no ordering beyond the increment's own atomicity is needed.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const noexcept {
    if (cell_ != nullptr && enabled_->load(std::memory_order_relaxed)) {
      cell_->fetch_add(n, std::memory_order_relaxed);
    }
  }
  /// True when inc() would record: lets a call site with several
  /// same-registry handles collapse their per-handle checks into one
  /// branch (the message hot path meters 3+ counters per send).
  [[nodiscard]] bool armed() const noexcept {
    return cell_ != nullptr && enabled_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Counter(const std::atomic<bool>* enabled, std::atomic<std::uint64_t>* cell)
      : enabled_(enabled), cell_(cell) {}
  const std::atomic<bool>* enabled_ = nullptr;
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Point-in-time level (watermarks, queue depths).
class Gauge {
 public:
  Gauge() = default;

  void set(double v) const noexcept {
    if (cell_ != nullptr && enabled_->load(std::memory_order_relaxed)) {
      cell_->store(v, std::memory_order_relaxed);
    }
  }
  void add(double v) const noexcept {
    if (cell_ == nullptr || !enabled_->load(std::memory_order_relaxed)) return;
    // fetch_add(double) needs a CAS loop pre-C++23 on some libstdc++;
    // spell it out so the ordering stays relaxed and portable.
    double cur = cell_->load(std::memory_order_relaxed);
    while (!cell_->compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `v` if higher — the high-watermark idiom.
  void set_max(double v) const noexcept {
    if (cell_ == nullptr || !enabled_->load(std::memory_order_relaxed)) return;
    double cur = cell_->load(std::memory_order_relaxed);
    while (v > cur && !cell_->compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return cell_ == nullptr ? 0.0 : cell_->load(std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  Gauge(const std::atomic<bool>* enabled, std::atomic<double>* cell)
      : enabled_(enabled), cell_(cell) {}
  const std::atomic<bool>* enabled_ = nullptr;
  std::atomic<double>* cell_ = nullptr;
};

/// Distribution with p50/p99/p999 (util::BucketHistogram underneath).
class HistogramHandle {
 public:
  HistogramHandle() = default;

  void record(std::uint64_t value) const noexcept {
    if (cell_ != nullptr && enabled_->load(std::memory_order_relaxed)) {
      cell_->add(value);
    }
  }
  /// Null for a default-constructed handle.
  [[nodiscard]] const util::BucketHistogram* histogram() const noexcept {
    return cell_;
  }

 private:
  friend class Registry;
  HistogramHandle(const std::atomic<bool>* enabled, util::BucketHistogram* cell)
      : enabled_(enabled), cell_(cell) {}
  const std::atomic<bool>* enabled_ = nullptr;
  util::BucketHistogram* cell_ = nullptr;
};

/// Named metric store.  Registration is idempotent — asking twice for
/// one name yields handles over the same cell.  Thread-safe since
/// ROADMAP item 1 put real shard threads behind the catalogs:
/// registration and lookup are mutex-guarded, cells are relaxed
/// atomics bumped lock-free through the handles (std::map node
/// stability keeps handle pointers valid forever).  Exporters and
/// reset() read/write cells relaxed — call them at quiescence for a
/// coherent cross-cell snapshot.
class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}

  Registry(const Registry&) = delete;  // handles alias our cells
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return {&enabled_, &counters_[name]};
  }
  [[nodiscard]] Gauge gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return {&enabled_, &gauges_[name]};
  }
  [[nodiscard]] HistogramHandle histogram(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    return {&enabled_, &histograms_[name]};
  }

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// 0 / 0.0 / null for names never registered.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;
  [[nodiscard]] const util::BucketHistogram* find_histogram(
      const std::string& name) const;

  /// Zeroes every cell; registrations (and handles) stay valid.
  void reset() noexcept;

  /// Prometheus text exposition: names sanitized ('.' and '-' to '_'),
  /// counters/gauges as single samples, histograms as cumulative
  /// `_bucket{le=...}` series plus `_sum`/`_count`.
  [[nodiscard]] std::string prometheus_text() const;
  /// One-line JSON object: {"enabled":..., "counters":{...},
  /// "gauges":{...}, "histograms":{...}} — the shape benches embed.
  [[nodiscard]] std::string json_snapshot() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;  ///< guards the maps, not the cells
  // std::map: node stability keeps handle pointers valid forever.
  std::map<std::string, std::atomic<std::uint64_t>> counters_;
  std::map<std::string, std::atomic<double>> gauges_;
  std::map<std::string, util::BucketHistogram> histograms_;
};

/// One structured flight-recorder event.  `category`/`name` must be
/// string LITERALS (stored as pointers, never copied or freed).
struct FlightEvent {
  std::uint64_t seq = 0;       ///< global record index (monotonic)
  std::uint64_t t_us = 0;      ///< microseconds since recorder start
  std::uint64_t trace_id = 0;  ///< request id (slot|generation) or 0
  const char* category = "";   ///< subsystem ("coord", "net", "aae", ...)
  const char* name = "";       ///< event kind within the category
  std::uint64_t a = 0;         ///< event-specific operands
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

/// Bounded ring of the last `capacity` events; the crash black box.
/// Disabled (capacity 0) it records nothing at one relaxed load per
/// call; enabled, record() serializes on a mutex (the recorder is a
/// debugging aid, not a hot-path metric — correctness under shard
/// threads beats contention here).
class FlightRecorder {
 public:
  /// Sizes (or resizes, clearing) the ring; 0 disarms the recorder.
  void configure(std::size_t capacity);

  [[nodiscard]] bool enabled() const noexcept {
    return capacity_.load(std::memory_order_relaxed) != 0;
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }
  /// Events currently held (≤ capacity).
  [[nodiscard]] std::size_t size() const noexcept;
  /// Events ever recorded (overwritten ones included).
  [[nodiscard]] std::uint64_t recorded() const noexcept { return next_seq_; }

  void record(const char* category, const char* name, std::uint64_t trace_id = 0,
              std::uint64_t a = 0, std::uint64_t b = 0,
              std::uint64_t c = 0) noexcept;

  void clear() noexcept;

  /// {"recorded":N, "dropped":M, "events":[...]} — oldest surviving
  /// event first.
  [[nodiscard]] std::string dump_json() const;
  /// Writes dump_json() to `path`; false on I/O failure.
  bool dump_to_file(const char* path) const;

 private:
  mutable std::mutex mutex_;  ///< guards ring_ and next_seq_
  std::vector<FlightEvent> ring_;
  std::atomic<std::size_t> capacity_{0};  ///< relaxed disabled-check fast path
  std::uint64_t next_seq_ = 0;
  std::uint64_t start_us_ = 0;  ///< steady-clock anchor of the first configure
};

/// The process-wide registry the layer catalogs (obs/metrics.hpp) live
/// in.  Enabled iff DVV_METRICS=on at first use (or set_metrics_enabled).
[[nodiscard]] Registry& registry();

/// Flips the global registry at runtime (tests, benches).
void set_metrics_enabled(bool on) noexcept;

/// The process-wide flight recorder, armed per DVV_FLIGHT_RECORDER at
/// first use.  DVV_ASSERT failures dump it to DVV_FLIGHT_DUMP
/// (default ./flight_recorder.json) before aborting.
[[nodiscard]] FlightRecorder& flight();

namespace detail {

/// DVV_METRICS parser: "on"/"1" true, "off"/"0"/null false, anything
/// else aborts loudly (a typo in a CI leg must not silently measure
/// nothing and pass).
[[nodiscard]] bool parse_metrics_env(const char* value);

/// DVV_FLIGHT_RECORDER parser: "on" = 4096, "off"/"0"/null = 0, a
/// positive integer = that capacity; anything else aborts loudly.
[[nodiscard]] std::size_t parse_flight_env(const char* value);

}  // namespace detail

}  // namespace dvv::obs
