// dvv/obs/metrics.hpp
//
// The layer metric catalogs: one struct of handles per subsystem, all
// registered against the global obs::registry() under layer-prefixed
// names ("net.msgs_dropped", "coord.requests_timeout",
// "aae.keys_shipped", ...).  Instrumented call sites grab the catalog
// singleton once and bump handles — never the registry map — so the
// hot-path cost is the handle's single enabled-check.
//
// This header deliberately knows nothing about net/kv/sync/store types
// (obs sits directly above util/).  The per-message-type counter
// arrays are sized and named here; net/transport.hpp static_asserts
// that kMessageTypes matches the Message variant, so adding a message
// type without extending the catalog is a compile error.
//
// Compile-time kill switch: with DVV_OBS_DISABLED (CMake -DDVV_OBS_OFF)
// every catalog handle is a no-op stub and instrumented sites compile
// to nothing.  Only the GLOBAL catalogs are affected — local
// registries (sim_store's result accounting) keep working, because
// they use obs::Counter directly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/obs.hpp"

namespace dvv::obs {

/// Message-type axis of the net.* counters, in net::Message variant
/// order (checked by a static_assert in net/transport.hpp).
inline constexpr std::size_t kMessageTypes = 14;
inline constexpr const char* kMessageTypeNames[kMessageTypes] = {
    "replicate", "hint",     "hint_deliver", "hint_ack",   "sync_req",
    "sync_resp", "read_req", "read_resp",    "write_req",  "write_resp",
    "join_req",  "epoch_announce", "transfer_done", "batch"};

#if defined(DVV_OBS_DISABLED)
struct NoopCounter {
  void inc(std::uint64_t = 1) const noexcept {}
  [[nodiscard]] bool armed() const noexcept { return false; }
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};
struct NoopGauge {
  void set(double) const noexcept {}
  void add(double) const noexcept {}
  void set_max(double) const noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
};
struct NoopHistogram {
  void record(std::uint64_t) const noexcept {}
};
using MetricCounter = NoopCounter;
using MetricGauge = NoopGauge;
using MetricHistogram = NoopHistogram;
#else
using MetricCounter = Counter;
using MetricGauge = Gauge;
using MetricHistogram = HistogramHandle;
#endif

/// net.* — transport accounting: per-message-type send/deliver counts,
/// fault taxonomy, wire bytes.  Bumped by net/transport.hpp (inline)
/// and net/sim_transport.cpp (faulty).
struct NetMetrics {
  MetricCounter msgs_sent;           ///< net.msgs_sent
  MetricCounter msgs_delivered;      ///< net.msgs_delivered
  MetricCounter msgs_dropped;        ///< net.msgs_dropped (seeded loss)
  MetricCounter msgs_duplicated;     ///< net.msgs_duplicated
  MetricCounter msgs_reordered;      ///< net.msgs_reordered (extra delay > 0)
  MetricCounter partition_dropped;   ///< net.partition_dropped
  MetricCounter wire_bytes_sent;     ///< net.wire_bytes_sent
  MetricCounter wire_bytes_delivered;  ///< net.wire_bytes_delivered
  MetricCounter sent_by_type[kMessageTypes];       ///< net.sent.<type>
  MetricCounter delivered_by_type[kMessageTypes];  ///< net.delivered.<type>
  /// Strict-decode rejections of inbound frames (net::decode_or_reject):
  /// hostile or corrupted bytes that did not parse as any message.  The
  /// future socket front-end alerts on this; inside the repo only
  /// injected-malformed tests and fuzz harnesses ever bump it.
  MetricCounter decode_reject;                        ///< net.decode_reject
  MetricCounter decode_reject_by_type[kMessageTypes]; ///< net.decode_reject.<type>
  /// Frames rejected before a plausible type tag could be read (empty,
  /// truncated-varint, or out-of-range tag) — no per-type attribution.
  MetricCounter decode_reject_unknown;  ///< net.decode_reject.unknown
  /// net.alloc.* — pool MISSES on the message hot path (net/message.hpp
  /// installs these as the net pools' miss hooks).  Each counts the
  /// acquisitions that had to touch the global allocator; at steady
  /// state all three must sit at ~0 — the "zero allocations per op"
  /// claim bench_transport asserts instead of assuming.
  MetricCounter alloc_messages;        ///< net.alloc.messages
  MetricCounter alloc_envelopes;       ///< net.alloc.envelopes (arena blocks)
  MetricCounter alloc_encode_buffers;  ///< net.alloc.encode_buffers
};
[[nodiscard]] NetMetrics& net_metrics();

/// coord.* — quorum coordination: request taxonomy, reply hygiene,
/// request latency in coordination ticks.  Bumped by kv/coordinator.hpp.
struct CoordMetrics {
  MetricCounter reads_started;        ///< coord.reads_started
  MetricCounter writes_started;       ///< coord.writes_started
  MetricCounter requests_quorum;      ///< coord.requests_quorum
  MetricCounter requests_timeout;     ///< coord.requests_timeout
  MetricCounter requests_unavailable; ///< coord.requests_unavailable
  MetricCounter replies_duplicate_dropped;  ///< coord.replies_duplicate_dropped
  MetricCounter replies_late_dropped;       ///< coord.replies_late_dropped
  MetricCounter replies_stale_dropped;      ///< coord.replies_stale_dropped
  MetricHistogram latency_ticks;      ///< coord.latency_ticks (start->terminal)
};
[[nodiscard]] CoordMetrics& coord_metrics();

/// aae.* — digest anti-entropy effort, summed over sessions.  Bumped
/// at the end of every sync/SyncSession::run; SyncStats stays the
/// per-session view of the same numbers.
struct AaeMetrics {
  MetricCounter sessions;         ///< aae.sessions
  MetricCounter rounds;           ///< aae.rounds
  MetricCounter nodes_exchanged;  ///< aae.nodes_exchanged
  MetricCounter keys_compared;    ///< aae.keys_compared
  MetricCounter keys_shipped;     ///< aae.keys_shipped
  MetricCounter wire_bytes;       ///< aae.wire_bytes
};
[[nodiscard]] AaeMetrics& aae_metrics();

/// wal.* — write-ahead-log backend activity.  Bumped by
/// store/wal_backend.cpp.
struct WalMetrics {
  MetricCounter appends;         ///< wal.appends
  MetricCounter fsyncs;          ///< wal.fsyncs (modeled group commits)
  MetricCounter segments_sealed; ///< wal.segments_sealed
  MetricCounter compactions;     ///< wal.compactions
  MetricCounter compaction_records_dropped;  ///< wal.compaction_records_dropped
  MetricCounter recoveries;      ///< wal.recoveries
  MetricCounter records_replayed;      ///< wal.records_replayed
  MetricCounter torn_records_dropped;  ///< wal.torn_records_dropped
  MetricHistogram replay_us;     ///< wal.replay_us (wall-clock, per recover)
};
[[nodiscard]] WalMetrics& wal_metrics();

/// store.* — the kv::Store facade: op counts and the StoreStatus
/// taxonomy (kBadToken included).  Bumped by kv/store.cpp.
struct StoreMetrics {
  MetricCounter gets;          ///< store.gets (get + get_quorum)
  MetricCounter puts;          ///< store.puts (put/put_at/put_with_handoff)
  MetricCounter begin_reads;   ///< store.begin_reads
  MetricCounter begin_writes;  ///< store.begin_writes
  MetricCounter status_ok;           ///< store.status_ok
  MetricCounter status_unavailable;  ///< store.status_unavailable
  MetricCounter status_bad_token;    ///< store.status_bad_token
  MetricCounter anti_entropy_runs;   ///< store.anti_entropy_runs (both passes)
};
[[nodiscard]] StoreMetrics& store_metrics();

/// server.* — the dvvd socket front-end: connection lifecycle, request
/// traffic, and the strict-decode rejection taxonomy for client frames
/// (the first bytes a hostile peer controls).  Bumped by src/server.
struct ServerMetrics {
  MetricCounter connections_accepted;  ///< server.connections_accepted
  MetricCounter connections_closed;    ///< server.connections_closed
  MetricCounter requests_get;          ///< server.requests.get
  MetricCounter requests_put;          ///< server.requests.put
  MetricCounter requests_admin;        ///< server.requests.admin (join/leave/
                                       ///  ring-info via the admin loop)
  MetricCounter responses_sent;        ///< server.responses_sent
  MetricCounter bytes_read;            ///< server.bytes_read
  MetricCounter bytes_written;         ///< server.bytes_written
  MetricCounter reads_paused;          ///< server.reads_paused (flow control)
  /// server.decode_reject — total client frames rejected at the strict
  /// boundary, plus the per-cause taxonomy below.  A frame-level reject
  /// (oversized/short) poisons the stream and closes the connection; a
  /// payload-level reject (bad opcode/fields/token) is answered with an
  /// error response and the stream continues.
  MetricCounter decode_reject;            ///< server.decode_reject
  MetricCounter reject_oversized_frame;   ///< server.decode_reject.oversized_frame
  MetricCounter reject_bad_opcode;        ///< server.decode_reject.bad_opcode
  MetricCounter reject_bad_fields;        ///< server.decode_reject.bad_fields
  MetricCounter reject_trailing_bytes;    ///< server.decode_reject.trailing_bytes
  MetricCounter reject_bad_token;         ///< server.decode_reject.bad_token
};
[[nodiscard]] ServerMetrics& server_metrics();

/// membership.* — elastic ring membership (src/membership + the cluster
/// glue): epoch lifecycle, transfer effort (metered SEPARATELY from the
/// steady-state aae.* series — rebalance traffic must not masquerade as
/// anti-entropy), and the ownership-change hygiene counters the
/// regression tests pin.  Bumped by kv/cluster.hpp.
struct MembershipMetrics {
  MetricCounter joins;             ///< membership.joins
  MetricCounter leaves;            ///< membership.leaves (graceful)
  MetricCounter removals;          ///< membership.removals (crash-removal)
  MetricCounter epochs_minted;     ///< membership.epochs_minted
  MetricCounter epochs_announced;  ///< membership.epochs_announced (frames sent)
  MetricCounter transfers_started;    ///< membership.transfers_started
  MetricCounter transfers_completed;  ///< membership.transfers_completed
  MetricCounter partitions_flipped;   ///< membership.partitions_flipped
  MetricCounter transfer_keys_shipped;  ///< membership.transfer_keys_shipped
  MetricCounter transfer_wire_bytes;    ///< membership.transfer_wire_bytes
  /// Hints whose parked owner lost the partition and were redirected to
  /// a current owner instead of misdelivered (satellite regression).
  MetricCounter hints_retargeted;  ///< membership.hints_retargeted
  /// Requests routed at a replica whose known epoch lagged the current
  /// one and were forwarded to a current-ring coordinator.
  MetricCounter stale_epoch_forwarded;  ///< membership.stale_epoch_forwarded
  /// Rejoining ids pushed through the clock-incarnation bump so
  /// pre-departure dots are never reused.
  MetricCounter rejoin_incarnations;  ///< membership.rejoin_incarnations
};
[[nodiscard]] MembershipMetrics& membership_metrics();

}  // namespace dvv::obs
