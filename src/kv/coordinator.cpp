#include "kv/coordinator.hpp"

namespace dvv::kv {

std::uint64_t RequestTable::acquire() {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    DVV_ASSERT_MSG(slots_.size() < (kSlotMask + 1),
                   "coord: request slot space exhausted");
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  DVV_ASSERT(!s.open);
  s.open = true;
  ++open_;
  return (s.generation << kSlotBits) | slot;
}

bool RequestTable::is_current(std::uint64_t id) const noexcept {
  const std::size_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  return s.open && s.generation == generation_of(id);
}

bool RequestTable::is_stale(std::uint64_t id) const noexcept {
  const std::size_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  return slots_[slot].generation > generation_of(id);
}

void RequestTable::retire(std::uint64_t id) {
  DVV_ASSERT_MSG(is_current(id), "coord: retiring a dead request id");
  Slot& s = slots_[slot_of(id)];
  s.open = false;
  ++s.generation;  // the slot's next tenant gets a fresh id space
  --open_;
  free_.push_back(static_cast<std::uint32_t>(slot_of(id)));
}

}  // namespace dvv::kv
