// dvv/kv/cluster.hpp
//
// The Riak-shaped replicated store: a consistent-hash ring of replicas,
// coordinator-routed GET/PUT, probabilistic write replication (to create
// the divergence anti-entropy then repairs), and the anti-entropy pass
// itself.  Templated on the causality mechanism — the whole point of the
// paper is that this file does not change between Fig. 1b and Fig. 1c.
//
// Determinism contract: the cluster itself makes NO random choices.
// Which replica coordinates, which replica serves a read, and which
// messages a faulty transport drops, duplicates or delays are all
// chosen by the caller (workload driver / test), which gets its
// randomness from a seeded Rng — the transport's fault Rng is seeded
// through its config.  That is what lets the oracle (src/oracle)
// replay the exact same decision sequence against the causal-history
// mechanism and audit the outcome.
//
// Fault model: set_alive(false) pauses a replica with memory intact;
// crash() is the real thing — volatile state is gone and recover()
// rebuilds from the replica's storage backend (src/store), after which
// anti-entropy repairs whatever the durability model lost.  Network
// faults are the transport's (src/net): everything that crosses
// between replicas — put fan-out, hint stash/delivery, anti-entropy
// session initiation — is a typed message serialized through the codec
// and handed to a pluggable net::Transport, so partitions, reordering,
// duplication and in-flight loss are expressible.  The default
// InlineTransport delivers synchronously in send order — byte-identical
// to direct calls (tests/transport_equivalence_test.cpp).
//
// Client path: GET/PUT coordination is a per-request state machine
// (src/kv/coordinator.hpp) driven through the same transport — quorum
// reads scatter CoordReadReqMsg and merge the first R distinct replies,
// writes fan out CoordWriteReqMsg and count distinct acks toward W,
// with tick deadlines and late/duplicate/stale reply hygiene.  The
// synchronous get_quorum/put/put_with_handoff calls are thin shims:
// start a request, settle the transport, force-complete whatever has
// not answered, harvest the receipt.  begin_read/begin_write expose the
// asynchronous form, so many client operations can be IN FLIGHT at once
// across partitions, reorderings and crashes (sim/sim_store.hpp,
// workload/replay.hpp).  Cluster::get stays the raw single-replica
// read: tests and the repair paths use it to inspect any replica's
// memory directly — dead ones included — which a coordinated request
// by design cannot do.
//
// Shard-per-thread execution (ROADMAP item 1): when the transport is a
// net::ThreadedTransport with S shards, replica n is OWNED by shard
// n % S and every mutation of its state — message deliveries, local
// applies, coordination engine updates — happens on that shard's
// thread.  The cluster keeps one ShardState (coordination engine, send
// slots, drop counters, completed-sync records) per shard; nothing in
// a ShardState is ever touched by two threads at once because every
// envelope routes to shard_of(envelope.to) and client operations enter
// a replica's serial domain through run_at().  Control-plane calls
// (partition/heal, anti-entropy, crash/recover, stats readers, the
// legacy sync shims) remain single-threaded-only: they are legal at
// quiescence (transport idle), where the transport's acquire/release
// in-flight accounting makes every shard's writes visible.  With any
// other transport there is exactly one shard and the behavior — and
// the bytes — are identical to the pre-sharding cluster.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <latch>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "kv/coordinator.hpp"
#include "kv/mechanism.hpp"
#include "kv/replica.hpp"
#include "kv/results.hpp"
#include "kv/ring.hpp"
#include "kv/types.hpp"
#include "membership/membership.hpp"
#include "net/message.hpp"
#include "net/threaded_transport.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "store/backend.hpp"
#include "sync/anti_entropy.hpp"
#include "sync/key_digest.hpp"
#include "sync/merkle.hpp"
#include "util/assert.hpp"

namespace dvv::kv {

struct ClusterConfig {
  std::size_t servers = 3;
  std::size_t replication = 3;
  std::size_t vnodes = 64;
  sync::MerkleConfig aae{};          ///< geometry of the per-replica hash trees
  store::BackendConfig storage{};    ///< per-replica durability model
  net::TransportConfig transport{};  ///< inter-replica message layer (src/net)
  /// Elastic membership (src/membership): `capacity` replicas are
  /// PROVISIONED (processes exist, ids 0..capacity-1) but only
  /// `initial_members` are ring members at epoch 0 — the rest join
  /// later through join_node().  Defaults keep the pre-membership
  /// shape: capacity = servers, members = {0..servers-1}, and with
  /// those defaults every routing decision is byte-identical to a
  /// cluster without the subsystem.
  std::size_t capacity = 0;                  ///< 0 = servers
  std::vector<ReplicaId> initial_members{};  ///< empty = {0..servers-1}
};

template <CausalityMechanism M>
class Cluster {
 public:
  using Context = typename M::Context;
  using Stored = typename M::Stored;
  using GetResult = typename Replica<M>::GetResult;
  // The coordinated-PUT receipt now lives with the request engine
  // (kv/coordinator.hpp); the alias keeps Cluster<M>::PutReceipt naming
  // working for every existing caller.
  using PutReceipt = ::dvv::kv::PutReceipt;
  using ReadReceipt = typename QuorumCoordinator<M>::ReadReceipt;

  Cluster(ClusterConfig config, M mechanism)
      : config_(normalized(std::move(config))),
        mechanism_(std::move(mechanism)),
        membership_(config_.initial_members, config_.replication,
                    config_.vnodes),
        ring_(membership_.current().ring),
        known_epoch_(config_.capacity, 0),
        digest_index_(config_.capacity, config_.aae),
        transport_(net::make_transport(config_.transport)) {
    replicas_.reserve(config_.capacity);
    for (std::size_t s = 0; s < config_.capacity; ++s) {
      replicas_.emplace_back(static_cast<ReplicaId>(s),
                             store::make_backend(config_.storage));
      replicas_.back().set_observer(&digest_index_);
    }
    wire_partitioner();
    wire_transport();
    const std::size_t shard_count =
        threaded_ == nullptr ? 1 : threaded_->shards();
    shards_.reserve(shard_count);
    for (std::size_t s = 0; s < shard_count; ++s) {
      shards_.push_back(std::make_unique<ShardState>());
    }
  }

  // Replicas hold a pointer to this cluster's digest index and the
  // transport sink captures `this`, so moves must re-wire both and
  // copies are disallowed.  Moves are control-plane: legal only at
  // quiescence (no shard thread can be touching the moved-from state).
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;
  Cluster(Cluster&& other) noexcept
      : config_(std::move(other.config_)),
        mechanism_(std::move(other.mechanism_)),
        membership_(std::move(other.membership_)),
        ring_(std::move(other.ring_)),
        target_ring_(std::move(other.target_ring_)),
        flipped_partitions_(std::move(other.flipped_partitions_)),
        rebalance_(std::move(other.rebalance_)),
        known_epoch_(std::move(other.known_epoch_)),
        digest_index_(std::move(other.digest_index_)),
        transport_(std::move(other.transport_)),
        replicas_(std::move(other.replicas_)),
        shards_(std::move(other.shards_)),
        next_sync_nonce_(
            other.next_sync_nonce_.load(std::memory_order_relaxed)),
        repairs_shipped_total_(
            other.repairs_shipped_total_.load(std::memory_order_relaxed)) {
    for (auto& rep : replicas_) rep.set_observer(&digest_index_);
    wire_partitioner();
    wire_transport();
  }
  Cluster& operator=(Cluster&& other) noexcept {
    config_ = std::move(other.config_);
    mechanism_ = std::move(other.mechanism_);
    membership_ = std::move(other.membership_);
    ring_ = std::move(other.ring_);
    target_ring_ = std::move(other.target_ring_);
    flipped_partitions_ = std::move(other.flipped_partitions_);
    rebalance_ = std::move(other.rebalance_);
    known_epoch_ = std::move(other.known_epoch_);
    digest_index_ = std::move(other.digest_index_);
    transport_ = std::move(other.transport_);
    replicas_ = std::move(other.replicas_);
    shards_ = std::move(other.shards_);
    next_sync_nonce_.store(
        other.next_sync_nonce_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    repairs_shipped_total_.store(
        other.repairs_shipped_total_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    for (auto& rep : replicas_) rep.set_observer(&digest_index_);
    wire_partitioner();
    wire_transport();
    return *this;
  }

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Ring& ring() const noexcept { return ring_; }
  [[nodiscard]] const M& mechanism() const noexcept { return mechanism_; }
  [[nodiscard]] Replica<M>& replica(ReplicaId id) { return replicas_.at(id); }
  [[nodiscard]] const Replica<M>& replica(ReplicaId id) const { return replicas_.at(id); }
  [[nodiscard]] std::size_t servers() const noexcept { return replicas_.size(); }

  // ---- shard topology ----------------------------------------------------

  /// Execution shards: the threaded transport's shard count, else 1.
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Owner shard of replica `r` (always 0 without a threaded transport).
  [[nodiscard]] std::size_t shard_of(ReplicaId r) const noexcept {
    return threaded_ == nullptr ? 0 : threaded_->shard_of(r);
  }

  /// The threaded transport when this cluster runs on one, else null —
  /// hosts (the dvvd server) wire their event loops through it.
  [[nodiscard]] net::ThreadedTransport* threaded_transport() noexcept {
    return threaded_;
  }

  /// Runs `fn` inside replica `r`'s serial execution domain: on the
  /// owner shard's thread (blocking the caller) when the transport is
  /// threaded, inline otherwise.  The door for client operations —
  /// put_direct / raw get against a live sharded cluster must go
  /// through here (or already be running on the owner shard).
  template <typename Fn>
  void run_at(ReplicaId r, Fn&& fn) {
    if (threaded_ != nullptr) {
      threaded_->run_on(threaded_->shard_of(r), std::function<void()>(fn));
    } else {
      fn();
    }
  }

  // ---- message layer (src/net) -------------------------------------------

  [[nodiscard]] net::Transport& transport() noexcept { return *transport_; }
  [[nodiscard]] const net::Transport& transport() const noexcept {
    return *transport_;
  }

  /// One transport tick: delivers due queued messages into the
  /// replicas AND advances one coordination tick, expiring client
  /// requests whose deadline passed.  No-op (returns 0 deliveries) on
  /// the inline transport.
  std::size_t pump() {
    // With a threaded transport this quiesces first (Transport::pump
    // contract there), so ticking every shard's engine from this thread
    // is safe: the only traffic the repairs below put in flight is
    // ReplicateMsg, whose delivery touches replicas, never engines.
    const std::size_t delivered = transport_->pump();
    for (auto& shard : shards_) {
      for (const std::uint64_t id : shard->engine.tick()) {
        maybe_read_repair(shard->engine, id);
      }
    }
    return delivered;
  }

  /// Pumps until nothing is in flight.
  std::size_t pump_all() {
    std::size_t delivered = 0;
    while (!transport_->idle()) delivered += pump();
    return delivered;
  }

  /// Cuts the replica set into isolated groups (net::Transport::
  /// partition); replication, handoff and sync messages crossing the
  /// cut are lost.  heal() restores every link.
  void partition(const std::vector<std::vector<ReplicaId>>& groups,
                 std::string label = {}) {
    transport_->partition(groups, std::move(label));
  }
  void heal() { transport_->heal(); }

  /// Messages the cluster discarded because their destination replica
  /// was not alive at delivery time — now a namespace-scope type
  /// (kv/results.hpp) shared with the kv::Store facade; the historical
  /// nested name keeps existing callers compiling.
  using DeliveryDrops = ::dvv::kv::DeliveryDrops;
  /// Merged over every shard's counters; exact at quiescence.
  [[nodiscard]] const DeliveryDrops& delivery_drops() const noexcept {
    drops_scratch_ = DeliveryDrops{};
    for (const auto& shard : shards_) {
      const DeliveryDrops& d = shard->drops;
      drops_scratch_.replicate += d.replicate;
      drops_scratch_.hint_stash += d.hint_stash;
      drops_scratch_.hint_deliver += d.hint_deliver;
      drops_scratch_.hint_ack += d.hint_ack;
      drops_scratch_.sync += d.sync;
      drops_scratch_.coord += d.coord;
      drops_scratch_.membership += d.membership;
    }
    return drops_scratch_;
  }

  /// Crashes server `r`: volatile state dropped, durable log kept (see
  /// Replica::crash).  `torn_tail_bytes` injects a torn trailing write.
  void crash(ReplicaId r, std::size_t torn_tail_bytes = 0) {
    replicas_.at(r).crash(torn_tail_bytes);
  }

  /// Recovers server `r` by storage replay; the Merkle trees rebuild
  /// lazily through the KeyObserver hook.  Pair with deliver_hints()
  /// and an anti-entropy round to repair what the log lost.
  store::RecoveryStats recover(ReplicaId r) { return replicas_.at(r).recover(); }

  /// The ring snapshot `key` routes by: the ACTIVE ring, unless a
  /// rebalance is in progress AND the key's partition already flipped
  /// (every new owner walked every source), in which case the target
  /// epoch's ring.  Identical to ring() when no transfer is running.
  [[nodiscard]] const Ring& routing_ring(const Key& key) const {
    if (!target_ring_.has_value()) return ring_;
    // partition_of registers unseen partitions lazily and is therefore
    // non-const; safe here because target_ring_ is only mutated inside
    // a stopped world / at quiescence (see join_node), so no shard
    // thread can race this registration.
    auto& index = const_cast<sync::DigestIndex&>(digest_index_);
    if (flipped_partitions_.contains(index.partition_of(key))) {
      return *target_ring_;
    }
    return ring_;
  }

  /// Preference list for a key (coordinator candidates, in ring order),
  /// answered against the key's routing ring (epoch-aware mid-rebalance).
  [[nodiscard]] std::vector<ReplicaId> preference_list(const Key& key) const {
    return routing_ring(key).preference_list(key);
  }

  /// Write fan-out for a key: the preference list, plus — during a
  /// rebalance — the target ring's owners (DUAL-APPLY: a write accepted
  /// inside the transfer window must land on the new owners too, or the
  /// flip could lose an acknowledged write the walk already missed).
  /// Identical to preference_list when no transfer is in progress.
  [[nodiscard]] std::vector<ReplicaId> replication_targets(const Key& key) const {
    std::vector<ReplicaId> out = preference_list(key);
    if (target_ring_.has_value()) {
      for (const ReplicaId r : target_ring_->preference_list(key)) {
        if (std::find(out.begin(), out.end(), r) == out.end()) out.push_back(r);
      }
    }
    return out;
  }

  /// First alive server of the preference list — the default
  /// coordinator — or nullopt when the whole preference list is down
  /// (the caller surfaces unavailability; the cluster never aborts).
  [[nodiscard]] std::optional<ReplicaId> default_coordinator(const Key& key) const {
    for (ReplicaId r : preference_list(key)) {
      if (replicas_[r].alive()) return r;
    }
    return std::nullopt;
  }

  /// GET served by one replica (`from` must be in the key's preference
  /// list for realistic routing; not enforced, tests route freely).
  /// This is the RAW local read — it inspects `from`'s memory directly,
  /// dead replicas included, which tests and repair assertions rely on.
  /// The coordinated read path (quorums, deadlines, receipts) is
  /// get_quorum / begin_read.
  [[nodiscard]] GetResult get(const Key& key, ReplicaId from) const {
    return replicas_.at(from).get(mechanism_, key);
  }

  /// GET with read-coalescing across `quorum` preference-list replicas,
  /// as a Dynamo-style R-quorum read: a coordinated read request
  /// (begin_read) scatters CoordReadReqMsg through the transport and
  /// merges (mechanism sync) the first `quorum` distinct replies — this
  /// synchronous shim settles the transport and harvests the receipt
  /// before returning.  Does not write back by default; pair with
  /// anti_entropy for repair (or opt into ReadOptions::read_repair via
  /// begin_read).  When fewer than `quorum` replicas could answer —
  /// dead, partitioned away, or their replies lost in flight — the
  /// reply still carries whatever was readable but is marked `degraded`
  /// with the actual `replies` count — an R-quorum read that could not
  /// reach R must say so, not masquerade as a full quorum
  /// (tests/cluster_test.cpp: QuorumReadBelowQuorumReportsDegraded).
  [[nodiscard]] GetResult get_quorum(const Key& key, std::size_t quorum) {
    DVV_ASSERT(quorum >= 1);
    const Begun b = begin_read_impl(key, quorum, {});
    return harvest_read(*b.engine, b.id);
  }

  /// PUT coordinated by `coordinator` on behalf of `client`, carrying the
  /// client's causal context: the synchronous shim over begin_write.
  /// The coordinator applies locally, the CoordWriteReqMsg fan-out is
  /// SENT to every alive replica in `replicate_to` (the caller decides
  /// the fan-out, possibly dropping some to model replication lag), the
  /// transport settles, and whatever has not acked by then is finalized
  /// out of the receipt.  With the inline transport the merges AND acks
  /// happen before this returns, in send order — the direct-call
  /// semantics, byte for byte; with a queued transport the messages are
  /// in flight until pump(), and the receipt counts sends, not
  /// deliveries (acks land as late replies and are dropped by the
  /// engine's hygiene).
  PutReceipt put(const Key& key, ReplicaId coordinator, ClientId client,
                 const Context& ctx, Value value,
                 const std::vector<ReplicaId>& replicate_to) {
    return harvest_write(
        engine_for(coordinator),
        begin_write(key, coordinator, client, ctx, std::move(value), replicate_to));
  }

  /// Convenience PUT: default coordinator, full immediate replication.
  /// When the whole preference list is down the receipt comes back
  /// `unavailable` — an error result, not a crashed process.
  PutReceipt put(const Key& key, ClientId client, const Context& ctx, Value value) {
    const std::optional<ReplicaId> coord = default_coordinator(key);
    if (!coord.has_value()) {
      PutReceipt receipt;
      receipt.unavailable = true;
      receipt.outcome = CoordOutcome::kUnavailable;
      return receipt;
    }
    return put(key, *coord, client, ctx, std::move(value),
               replication_targets(key));
  }

  /// Single-round PUT at an explicit coordinator with W = 1: the
  /// coordinator's local apply completes the request synchronously, the
  /// replication fan-out to the rest of the preference list is
  /// fire-and-forget (late CoordWriteRespMsg acks are absorbed by the
  /// engine's stale-reply hygiene), and the receipt is harvested before
  /// returning — no transport settle, no coordination ticks.  THE
  /// server write path (src/server): on a threaded transport this must
  /// execute inside the coordinator's serial domain (already on its
  /// shard thread, or through run_at), where the synchronous completion
  /// makes the whole call shard-local.
  PutReceipt put_direct(const Key& key, ReplicaId coordinator, ClientId client,
                        const Context& ctx, Value value) {
    WriteOptions opts;
    opts.write_quorum = 1;
    const std::uint64_t id =
        begin_write(key, coordinator, client, ctx, std::move(value),
                    replication_targets(key), opts);
    QuorumCoordinator<M>& eng = engine_for(coordinator);
    DVV_ASSERT_MSG(eng.is_terminal(id),
                   "kv: a W=1 write must complete on its local apply");
    return take_write_from(eng, id);
  }

  /// PUT with hinted handoff (Dynamo's sloppy quorum): like put(), but
  /// for each DEAD preference-list member a HintMsg parks the write on
  /// the next alive NON-preference server in ring order, tagged with
  /// the intended owner.  Call deliver_hints() after recoveries to push
  /// the parked writes home.  The receipt separates durability levels:
  /// `replicated_to` counts real preference-list copies, `hinted`
  /// counts parked fallback copies, and `unparked` counts dead members
  /// NO alive fallback could cover — a write with unparked > 0 is below
  /// its sloppy-quorum durability and the caller deserves to know
  /// (tests/hinted_handoff_test.cpp: NowhereToParkIsReportedNotSilent).
  PutReceipt put_with_handoff(const Key& key, ReplicaId coordinator, ClientId client,
                              const Context& ctx, Value value) {
    const auto pref = replication_targets(key);
    std::vector<ReplicaId> alive_targets;
    std::vector<ReplicaId> dead_owners;
    for (const ReplicaId r : pref) {
      (replicas_.at(r).alive() ? alive_targets : dead_owners).push_back(r);
    }
    QuorumCoordinator<M>& eng = engine_for(coordinator);
    const std::uint64_t id =
        begin_write(key, coordinator, client, ctx, std::move(value), alive_targets);
    {
      // A handoff put intends to cover the WHOLE preference list: dead
      // members count as targets (a hint stands in for each), so the
      // receipt's degraded verdict reflects sloppy-quorum durability.
      PutReceipt& receipt = eng.write_receipt(id);
      receipt.targets = 0;
      for (const ReplicaId r : pref) {
        if (r != coordinator) ++receipt.targets;
      }
    }
    if (dead_owners.empty()) return harvest_write(eng, id);

    const Stored* fresh = replicas_.at(coordinator).find(key);
    DVV_ASSERT(fresh != nullptr);
    const std::string encoded = Replica<M>::encode_state(*fresh);
    // Non-owning alias, as in begin_write(): synchronous delivery only.
    const std::shared_ptr<const void> decoded(std::shared_ptr<const void>{},
                                              fresh);
    const Ring& route = routing_ring(key);
    const auto order = route.ring_order(key);
    std::size_t next_fallback = route.replication();  // first non-pref slot
    for (const ReplicaId owner : dead_owners) {
      // Find the next alive fallback server the coordinator can REACH
      // (distinct per owner so one fallback's crash cannot lose several
      // owners' hints at once; a fallback across an active partition
      // cannot accept the park and counts as unavailable).
      while (next_fallback < order.size() &&
             (!replicas_[order[next_fallback]].alive() ||
              !transport_->link_up(coordinator, order[next_fallback]))) {
        ++next_fallback;
      }
      PutReceipt& receipt = eng.write_receipt(id);
      if (next_fallback >= order.size()) {
        ++receipt.unparked;  // nowhere to park: report, don't hide
        continue;
      }
      const net::Message& msg = net::fill_message<net::HintMsg>(
          slots_for(coordinator).hint, [&](auto& out) {
            out.owner = owner;
            out.key = key;
            out.state = encoded;
          });
      const std::size_t msg_bytes =
          net::wire_size_of(std::get<net::HintMsg>(msg));
      receipt.replication_bytes += msg_bytes;
      ++receipt.hinted;
      transport_->send(coordinator, order[next_fallback],
                       net::borrow_message(msg), decoded, msg_bytes);
      ++next_fallback;
    }
    return harvest_write(eng, id);
  }

  // ---- asynchronous quorum coordination (src/kv/coordinator.hpp) ---------
  //
  // The engine underneath get_quorum/put/put_with_handoff, exposed so
  // callers can keep MANY client operations in flight at once: start
  // requests, pump() the transport (each pump is one coordination tick,
  // expiring deadlines), poll take_completed_requests(), harvest.

  /// Starts a coordinated read at the key's first alive preference
  /// member.  When the whole preference list is down the request
  /// completes immediately as kUnavailable (harvest still works).
  [[nodiscard]] std::uint64_t begin_read(const Key& key, std::size_t quorum,
                                         const ReadOptions& opts = {}) {
    return begin_read_impl(key, quorum, opts).id;
  }

  /// Starts a coordinated read with an explicit (alive) coordinator:
  /// the coordinator's own local read is the first reply, then
  /// CoordReadReqMsg scatters to further alive, reachable preference
  /// members until quorum + extra_scatter replicas have been asked —
  /// stopping early if inline replies already completed the request,
  /// which is exactly what keeps the shim byte-identical to the
  /// pre-engine loop (tests/transport_equivalence_test.cpp).
  [[nodiscard]] std::uint64_t begin_read_at(const Key& key, ReplicaId coordinator,
                                            std::size_t quorum,
                                            const ReadOptions& opts = {}) {
    DVV_ASSERT(replicas_.at(coordinator).alive());
    QuorumCoordinator<M>& eng = engine_for(coordinator);
    const std::uint64_t id = eng.start_read(key, coordinator, quorum, opts);
    eng.note_read_asked(id);
    if (eng.on_read_reply(id, coordinator, replicas_.at(coordinator).find(key),
                          mechanism_)) {
      maybe_read_repair(eng, id);
      return id;
    }
    const std::size_t ask_limit = quorum + opts.extra_scatter;
    std::size_t asked = 1;
    // One fill serves every target — the request bytes do not depend
    // on which replica receives them.
    const net::Message* req_msg = nullptr;
    std::size_t req_bytes = 0;
    for (const ReplicaId r : preference_list(key)) {
      if (asked >= ask_limit || eng.is_terminal(id)) break;
      if (r == coordinator || !replicas_[r].alive()) continue;
      if (!transport_->link_up(coordinator, r)) continue;
      ++asked;
      eng.note_read_asked(id);
      if (req_msg == nullptr) {
        req_msg = &net::fill_message<net::CoordReadReqMsg>(
            slots_for(coordinator).read_req, [&](auto& out) {
              out.req = id;
              out.key = key;
            });
        req_bytes = net::wire_size_of(std::get<net::CoordReadReqMsg>(*req_msg));
      }
      transport_->send(coordinator, r, net::borrow_message(*req_msg), nullptr,
                       req_bytes);
    }
    return id;
  }

  /// Starts a coordinated write: the coordinator applies locally (the
  /// first ack), then one shared CoordWriteReqMsg fans out to every
  /// alive, reachable non-coordinator target.  Completion bar: W =
  /// opts.write_quorum distinct acks (0 = all of coordinator + sends).
  [[nodiscard]] std::uint64_t begin_write(const Key& key, ReplicaId coordinator,
                                          ClientId client, const Context& ctx,
                                          Value value,
                                          const std::vector<ReplicaId>& replicate_to,
                                          const WriteOptions& opts = {}) {
    DVV_ASSERT(replicas_.at(coordinator).alive());
    QuorumCoordinator<M>& eng = engine_for(coordinator);
    Replica<M>& coord = replicas_.at(coordinator);
    coord.put(mechanism_, key, coordinator, client, ctx, std::move(value));

    PutReceipt base;
    base.coordinator = coordinator;
    for (const ReplicaId r : replicate_to) {
      if (r != coordinator) ++base.targets;
    }
    const std::uint64_t id = eng.start_write(std::move(base), opts);
    // The local apply is the first ack (it cannot complete the request:
    // the quorum bar is sealed only after the scatter width is known).
    (void)eng.on_write_ack(id, coordinator);

    const Stored* fresh = coord.find(key);
    DVV_ASSERT(fresh != nullptr);
    // One message shared by the whole fan-out (the payload is identical
    // per target).  The decoded fast path aliases the coordinator's
    // live state WITHOUT owning it: valid for synchronous delivery
    // only, which is exactly the envelope contract — a queuing
    // transport serializes at send and drops the alias.
    const net::Message* msg = nullptr;
    std::shared_ptr<const void> decoded(std::shared_ptr<const void>{}, fresh);
    std::size_t msg_bytes = 0;
    for (const ReplicaId r : replicate_to) {
      if (r == coordinator || !replicas_.at(r).alive()) continue;
      // A target across an active partition is unreachable NOW and the
      // coordinator knows it (the connection is refused): no message,
      // and — receipt honesty — no replicated_to count.
      if (!transport_->link_up(coordinator, r)) continue;
      if (msg == nullptr) {
        msg = &net::fill_message<net::CoordWriteReqMsg>(
            slots_for(coordinator).write_req, [&](auto& out) {
              out.req = id;
              out.key = key;
              Replica<M>::encode_state_into(*fresh, out.state);
            });
        msg_bytes = net::wire_size_of(std::get<net::CoordWriteReqMsg>(*msg));
      }
      PutReceipt& receipt = eng.write_receipt(id);
      receipt.replication_bytes += msg_bytes;
      ++receipt.replicated_to;
      transport_->send(coordinator, r, net::borrow_message(*msg), decoded,
                       msg_bytes);
    }
    (void)eng.seal_write_quorum(id);
    return id;
  }

  // The id-keyed request surface below routes through sole_engine():
  // request ids are engine-local (each shard's engine mints its own
  // slot|generation space), so a bare id is unambiguous only with one
  // shard.  Sharded callers use the paths that know their coordinator —
  // put_direct, the sync shims, or code already on the owner shard.

  /// True while `id` names a live request (pending or terminal but not
  /// yet harvested).
  [[nodiscard]] bool request_open(std::uint64_t id) const {
    return sole_engine().is_open(id);
  }

  /// True once `id` reached a terminal outcome (harvest will not block).
  [[nodiscard]] bool request_terminal(std::uint64_t id) const {
    return sole_engine().is_terminal(id);
  }

  /// Requests that reached a terminal outcome since the last call, in
  /// completion order (quorum met, deadline expired, or finalized).
  [[nodiscard]] std::vector<std::uint64_t> take_completed_requests() {
    return sole_engine().take_completed();
  }

  /// Force-completes a still-pending request now (kTimeout with partial
  /// replies, kUnavailable with none).  Returns whether it acted.
  bool finalize_request(std::uint64_t id) {
    QuorumCoordinator<M>& eng = sole_engine();
    if (!eng.finalize(id)) return false;
    maybe_read_repair(eng, id);
    return true;
  }

  /// Everything a harvested read reports: the client-visible GetResult
  /// plus the coordination trace (who answered, what it cost) — the
  /// simulator and the replayer meter reply sizes from here.
  struct ReadHarvest {
    GetResult result;
    Key key;
    ReplicaId coordinator = 0;
    CoordOutcome outcome = CoordOutcome::kPending;
    std::size_t quorum = 0;
    std::size_t asked = 0;                ///< replicas asked (local included)
    std::vector<ReplicaId> responders;    ///< exactly who answered, in order
    std::size_t state_bytes = 0;          ///< total_bytes of the merged reply
    std::size_t metadata_bytes = 0;
    std::size_t siblings = 0;
    std::size_t clock_entries = 0;
  };

  /// Harvests a terminal read request and retires its id.
  [[nodiscard]] ReadHarvest take_read_result(std::uint64_t id) {
    return take_read_from(sole_engine(), id);
  }

  /// Live write receipt (send-time fields) without harvesting: lets a
  /// caller meter the fan-out it just enqueued while acks are still in
  /// flight.
  [[nodiscard]] const PutReceipt& peek_write_receipt(std::uint64_t id) const {
    return sole_engine().peek_write(id);
  }

  /// Harvests a terminal write request and retires its id.  The
  /// degraded verdict is computed here so every harvest path agrees:
  /// the fan-out is partial when neither a direct copy nor a parked
  /// hint covered some intended target.
  [[nodiscard]] PutReceipt take_write_receipt(std::uint64_t id) {
    return take_write_from(sole_engine(), id);
  }

  /// Engine accounting, merged over every shard's engine (exact at
  /// quiescence): requests started/completed and the reply hygiene
  /// counters (late/duplicate/stale drops).
  [[nodiscard]] const CoordStats& coord_stats() const noexcept {
    coord_scratch_ = CoordStats{};
    for (const auto& shard : shards_) {
      const CoordStats& s = shard->engine.stats();
      coord_scratch_.reads_started += s.reads_started;
      coord_scratch_.writes_started += s.writes_started;
      coord_scratch_.quorum_completions += s.quorum_completions;
      coord_scratch_.timeouts += s.timeouts;
      coord_scratch_.unavailable += s.unavailable;
      coord_scratch_.duplicate_replies_dropped += s.duplicate_replies_dropped;
      coord_scratch_.late_replies_dropped += s.late_replies_dropped;
      coord_scratch_.stale_replies_dropped += s.stale_replies_dropped;
    }
    return coord_scratch_;
  }

  /// Client requests currently open (pending or unharvested).
  [[nodiscard]] std::size_t requests_in_flight() const noexcept {
    std::size_t n = 0;
    for (const auto& shard : shards_) n += shard->engine.open_requests();
    return n;
  }

 private:
  [[nodiscard]] ReadHarvest take_read_from(QuorumCoordinator<M>& eng,
                                           std::uint64_t id) {
    ReadReceipt receipt = eng.take_read(id);
    ReadHarvest h;
    h.key = std::move(receipt.key);
    h.coordinator = receipt.coordinator;
    h.outcome = receipt.outcome;
    h.quorum = receipt.quorum;
    h.asked = receipt.asked;
    h.result.replies = receipt.responders.size();
    h.result.unavailable = receipt.responders.empty();
    h.result.degraded = receipt.responders.size() < receipt.quorum;
    h.result.found = receipt.found;
    if (receipt.found) {
      h.result.values = mechanism_.values_of(receipt.merged);
      h.result.context = mechanism_.context_of(receipt.merged);
      h.state_bytes = mechanism_.total_bytes(receipt.merged);
      h.metadata_bytes = mechanism_.metadata_bytes(receipt.merged);
      h.siblings = mechanism_.sibling_count(receipt.merged);
      h.clock_entries = mechanism_.clock_entries(receipt.merged);
    }
    h.responders = std::move(receipt.responders);
    return h;
  }

  [[nodiscard]] PutReceipt take_write_from(QuorumCoordinator<M>& eng,
                                           std::uint64_t id) {
    PutReceipt receipt = eng.take_write(id);
    if (receipt.replicated_to + receipt.hinted < receipt.targets) {
      receipt.degraded = true;
    }
    return receipt;
  }

 public:
  /// Delivers parked hints cluster-wide to every recovered owner: each
  /// alive holder sends a HintDeliverMsg home for every hint whose
  /// owner is alive, and drops the parked copy only when the owner's
  /// ack comes back — a delivery lost in flight stays parked and is
  /// retried by the next call.  Dead holders are skipped: a crashed or
  /// paused server cannot push its parked writes — they wait (and
  /// survive in its log) until it is back.  Returns the number of hints
  /// acked away during this call (with a queued transport, deliveries
  /// complete under pump() and later calls observe the acks).
  std::size_t deliver_hints() {
    const std::size_t before = hinted_count();
    struct Pending {
      ReplicaId holder;
      ReplicaId dest;   ///< where the delivery goes (owner, or re-target)
      ReplicaId owner;  ///< the parked tag — the ack retires the hint by it
      Key key;
      std::string state;
      std::shared_ptr<const Stored> decoded;
    };
    std::vector<Pending> pending;
    for (auto& rep : replicas_) {
      if (!rep.alive()) continue;
      rep.for_each_hint([&](ReplicaId owner, const Key& key, const Stored& state) {
        // Ownership may have MOVED since the hint was parked: a hint
        // whose intended owner is no longer in the key's preference
        // list must be REDIRECTED to a current owner, not misdelivered
        // to a replica steady-state AAE no longer repairs
        // (tests/membership_test.cpp:
        // StaleOwnerHintIsRedirectedNotMisdelivered).  The wire frame
        // keeps the parked owner tag so the ack retires exactly this
        // hint.
        const std::vector<ReplicaId> pref = preference_list(key);
        ReplicaId dest = owner;
        if (std::find(pref.begin(), pref.end(), owner) == pref.end()) {
          const auto current = std::find_if(
              pref.begin(), pref.end(),
              [&](ReplicaId r) { return replicas_.at(r).alive(); });
          if (current == pref.end()) return;  // waits for some owner
          dest = *current;
          obs::membership_metrics().hints_retargeted.inc();
        } else if (!replicas_.at(owner).alive()) {
          return;  // waits for the owner
        }
        pending.push_back({rep.id(), dest, owner, key,
                           Replica<M>::encode_state(state),
                           std::make_shared<const Stored>(state)});
      });
    }
    for (Pending& p : pending) {
      const net::Message& msg = net::fill_message<net::HintDeliverMsg>(
          slots_for(p.holder).hint_deliver, [&](auto& out) {
            out.owner = p.owner;
            out.key = std::move(p.key);
            out.state = std::move(p.state);
          });
      transport_->send(p.holder, p.dest, net::borrow_message(msg),
                       std::move(p.decoded),
                       net::wire_size_of(std::get<net::HintDeliverMsg>(msg)));
    }
    transport_->settle();
    return before - hinted_count();
  }

  /// Total hints parked anywhere (observability for tests/benches).
  [[nodiscard]] std::size_t hinted_count() const {
    std::size_t n = 0;
    for (const auto& rep : replicas_) n += rep.hinted_count();
    return n;
  }

  /// One anti-entropy round: for every key anywhere in the cluster —
  /// including keys that exist only as parked hints — the replicas in
  /// its preference list gather-merge-scatter so they end up identical.
  /// Parked hints on ALIVE holders are folded into the merge as extra
  /// gather sources (a hint for a long-dead owner must not hide its
  /// write from the cluster) and are then rewritten to the merged bytes
  /// so later rounds recognize them as reconciled by digest; the hints
  /// stay parked until their owner returns.  Keys whose alive
  /// preference-list states already encode identically are skipped
  /// (digest pre-check), so `touched` counts genuinely divergent
  /// (key, replica) states — a divergence metric — and converged state
  /// is never rewritten.
  std::size_t anti_entropy() {
    std::set<Key> all_keys;
    for (const auto& rep : replicas_) {
      for (auto& k : rep.keys()) all_keys.insert(k);
    }
    const HintIndex hints = collect_hints();
    for (const auto& [key, sources] : hints) all_keys.insert(key);

    std::size_t touched = 0;
    for (const Key& key : all_keys) {
      const auto pref = preference_list(key);
      // Digest pre-check: all alive preference replicas hold the same
      // bytes (kMissing marking absence) and no alive holder parks a
      // differing hint -> nothing to repair.
      std::vector<std::pair<ReplicaId, sync::Digest>> owner_digests;
      bool divergent = false;
      for (ReplicaId r : pref) {
        if (!replicas_[r].alive()) continue;
        const Stored* s = replicas_[r].find(key);
        const sync::Digest d = s ? sync::state_digest(*s) : sync::kMissing;
        if (!owner_digests.empty() && d != owner_digests.front().second) {
          divergent = true;
        }
        owner_digests.emplace_back(r, d);
      }
      if (owner_digests.empty()) continue;  // whole preference list down

      const auto hint_it = hints.find(key);
      const bool has_hints = hint_it != hints.end();
      if (has_hints && !divergent) {
        for (const HintSource& h : hint_it->second) {
          if (sync::state_digest(*h.state) != owner_digests.front().second) {
            divergent = true;
            break;
          }
        }
      }
      if (!divergent) continue;

      // Canonical fold: alive owners in preference order, then hints in
      // (holder, owner) order — the digest pass repairs with the same
      // fold, which is what keeps the two fixed points byte-identical.
      Stored merged;
      for (const auto& [r, d] : owner_digests) {
        if (const Stored* s = replicas_[r].find(key)) mechanism_.sync(merged, *s);
      }
      if (has_hints) {
        for (const HintSource& h : hint_it->second) mechanism_.sync(merged, *h.state);
      }
      // Scatter only to replicas not already holding the merged bytes,
      // so converged copies are never rewritten and `touched` counts
      // exactly the repaired (key, replica) states.
      const sync::Digest merged_digest = sync::state_digest(merged);
      for (const auto& [r, d] : owner_digests) {
        if (d == merged_digest) continue;
        replicas_[r].adopt(key, merged);
        ++touched;
      }
      if (has_hints) {
        for (const HintSource& h : hint_it->second) {
          replicas_[h.holder].replace_hint(h.owner, key, merged);
        }
      }
    }
    return touched;
  }

  // ---- digest-based anti-entropy (src/sync) ------------------------------
  //
  // The production-shaped repair path: instead of shipping every key's
  // state, replicas exchange Merkle tree hashes, descend into differing
  // subtrees, and ship Stored state only for keys whose digests differ.
  // The repair fold is canonical (preference-list order, then hints), so
  // the fixed point is byte-identical to the legacy full pass — see
  // tests/anti_entropy_convergence_test.cpp.

  // Lifted to kv/results.hpp for the mechanism-agnostic facade.
  using DigestRepairReport = ::dvv::kv::DigestRepairReport;

  /// One pairwise digest session between alive replicas `a` and `b`,
  /// initiated by a SyncReqMsg from `a` routed through the transport —
  /// a request lost to a partition or a drop means no session ran and
  /// empty stats come back.  This call drains the transport (a session
  /// is a blocking exchange, like a TCP conversation): on delivery the
  /// responder refreshes both trees, walks them, repairs divergent keys
  /// across their whole alive preference list, and answers with a
  /// SyncRespMsg whose stats this call harvests.  Dead endpoints make
  /// it a no-op.  Parked hints are handled by the full
  /// anti_entropy_digest() sweep — they live outside the Merkle trees.
  /// For a fire-and-forget request on a queued transport (the simulator
  /// wants sessions racing foreground traffic), use request_sync() and
  /// collect take_completed_syncs() after pumping.
  sync::SyncStats anti_entropy_digest_pair(ReplicaId a, ReplicaId b) {
    if (!replicas_.at(a).alive() || !replicas_.at(b).alive() || a == b) return {};
    const std::uint64_t nonce = request_sync(a, b);
    transport_->drain();
    sync::SyncStats out;
    // A duplicated request runs the session twice and answers twice;
    // both runs' costs are real, so matching records merge.  The drain
    // above is the quiescent point that makes the per-shard record
    // lists safe to touch from here.
    for (auto& shard : shards_) {
      std::erase_if(shard->completed_syncs, [&](const CompletedSync& cs) {
        if (cs.nonce != nonce) return false;
        out.merge(cs.stats);
        return true;
      });
    }
    return out;
  }

  /// Enqueues a SyncReqMsg from `a` to `b` and returns its nonce; the
  /// session runs when the request is delivered (pump on a queued
  /// transport), and its stats appear in take_completed_syncs() once
  /// the SyncRespMsg makes it back to the initiator.
  std::uint64_t request_sync(ReplicaId a, ReplicaId b) {
    const std::uint64_t nonce =
        next_sync_nonce_.fetch_add(1, std::memory_order_relaxed);
    send_message(a, b, net::SyncReqMsg{nonce});
    return nonce;
  }

  /// One finished digest session as observed by its initiator (lifted
  /// to kv/results.hpp for the mechanism-agnostic facade).
  using CompletedSync = ::dvv::kv::CompletedSync;

  /// Drains the completed-session records (sessions whose SyncRespMsg
  /// reached the initiator since the last call), in shard order.  Exact
  /// at quiescence.
  [[nodiscard]] std::vector<CompletedSync> take_completed_syncs() {
    std::vector<CompletedSync> out;
    for (auto& shard : shards_) {
      for (CompletedSync& cs : shard->completed_syncs) {
        out.push_back(std::move(cs));
      }
      shard->completed_syncs.clear();
    }
    return out;
  }

  /// Full digest-based repair: sweeps every alive replica pair until a
  /// sweep ships nothing.  Each sweep ends with a hint round — keys that
  /// exist only under parked hints (or whose hints differ from the
  /// owners' agreed state) are invisible to the Merkle walk, so the
  /// alive holders' hints are probed by digest and folded in explicitly.
  /// Converges to the legacy pass's fixed point while shipping state
  /// only for divergent keys.
  DigestRepairReport anti_entropy_digest() {
    // A rebalance in progress advances first: transfer walks are what
    // makes routing flips safe, and a sweep after a heal/recover is
    // exactly when previously blocked walks become possible.  Their
    // effort is metered in membership.* / rebalance_stats(), never in
    // this report's steady-state aae numbers.
    (void)rebalance_step();
    DigestRepairReport report;
    bool progress = true;
    while (progress) {
      progress = false;
      ++report.sweeps;
      // Progress detection must not depend on SyncRespMsg survival: a
      // faulty transport can deliver the request (repairs run) and lose
      // the response (stats gone).  The repair counter sees every
      // shipped state regardless of what made it back to an initiator.
      const std::uint64_t repairs_mark =
          repairs_shipped_total_.load(std::memory_order_relaxed);
      for (ReplicaId a = 0; a < replicas_.size(); ++a) {
        for (ReplicaId b = a + 1; b < replicas_.size(); ++b) {
          const sync::SyncStats stats = anti_entropy_digest_pair(a, b);
          ++report.sessions;
          if (stats.keys_shipped > 0) progress = true;
          report.stats.merge(stats);
        }
      }
      if (repairs_shipped_total_.load(std::memory_order_relaxed) !=
          repairs_mark) {
        progress = true;
      }
      // Hint round: repair every key some alive holder parks a hint
      // for.  The converged pre-check matters beyond wire cost: a key
      // must be folded at most once from its pre-repair states (the
      // unsound mechanisms lose siblings when an already-merged state
      // is folded again), so a key the pair walk just repaired — whose
      // owners and hints all sit at the merged digest — is only probed.
      const HintIndex hints = collect_hints();
      for (const auto& [key, sources] : hints) {
        std::optional<ReplicaId> initiator;
        sync::Digest common = sync::kMissing;
        bool divergent = false;
        bool first = true;
        // The first alive owner initiates; it can only compare against
        // owners and holders on its side of any active partition —
        // repair_key applies the same reachability filter.
        for (const ReplicaId r : preference_list(key)) {
          if (!replicas_[r].alive()) continue;
          if (!initiator.has_value()) initiator = r;
          if (!transport_->link_up(*initiator, r)) continue;
          const Stored* s = replicas_[r].find(key);
          const sync::Digest d = s ? sync::state_digest(*s) : sync::kMissing;
          if (first) {
            common = d;
            first = false;
          } else if (d != common) {
            divergent = true;
          }
        }
        if (!initiator.has_value()) continue;  // whole preference list down
        ++report.stats.keys_compared;
        for (const HintSource& h : sources) {
          if (!transport_->link_up(*initiator, h.holder)) continue;
          if (!divergent && sync::state_digest(*h.state) != common) divergent = true;
        }
        if (!divergent) {
          // Converged: the probe (key out, digest back, per hint holder)
          // is the whole cost.  The divergent path meters its probes
          // inside repair_key — charging them here too would double-bill.
          for (const HintSource& h : sources) {
            if (h.holder != *initiator && transport_->link_up(*initiator, h.holder)) {
              report.stats.wire_bytes += key_wire_bytes(key) + sizeof(sync::Digest);
            }
          }
          continue;
        }
        const sync::RepairResult repaired = repair_key(key, *initiator, *initiator);
        report.stats.wire_bytes += repaired.wire_bytes;
        if (repaired.states_shipped > 0) {
          ++report.stats.keys_shipped;
          progress = true;
        }
      }
      // Keys owned by dead replicas can stay divergent across sweeps;
      // shipping stops once every alive pair agrees, so this bound only
      // guards against a repair rule that fails to converge.
      DVV_ASSERT_MSG(report.sweeps <= replicas_.size() + 2,
                     "anti_entropy_digest: no fixed point");
    }
    return report;
  }

  /// Refreshed Merkle tree view of `key`'s partition at one replica
  /// (tests/benches).
  [[nodiscard]] const sync::MerkleTree& merkle_tree_for(ReplicaId r, const Key& key) {
    refresh_tree(r);
    return digest_index_.tree(r, digest_index_.partition_of(key));
  }

  /// Keys marked dirty (pending Merkle refresh) at replica `r` — lets
  /// tests pin that converged write-backs do not dirty the trees.
  [[nodiscard]] std::size_t aae_dirty_count(ReplicaId r) const {
    return digest_index_.dirty_count(r);
  }

  /// Cluster-wide metadata footprint (sums replica footprints).
  [[nodiscard]] typename Replica<M>::Footprint footprint() const {
    typename Replica<M>::Footprint f;
    for (const auto& rep : replicas_) f.merge(rep.footprint(mechanism_));
    return f;
  }

  // ---- elastic membership (src/membership) -------------------------------
  //
  // Join, graceful leave and crash-removal as real cluster transitions:
  // each mints a RingEpoch (the vnode→owner map), announces it on the
  // wire (EpochAnnounceMsg — droppable like any message), and drives a
  // rebalance.  Per claimed (partition, new owner), the owner syncs
  // from every source via the same Merkle walks steady-state AAE uses
  // — bytes proportional to divergence, digests only when converged —
  // and the partition's ROUTING flips only once every owner walked
  // every source (kTransferring → kOwned).  Until the flip, writes
  // dual-apply to old and new owners (replication_targets).  All
  // methods here are control-plane: legal at quiescence; on a threaded
  // transport the membership transition itself runs stop-the-world.

  [[nodiscard]] const membership::MembershipTable& membership() const noexcept {
    return membership_;
  }
  [[nodiscard]] std::uint64_t ring_epoch() const noexcept {
    return membership_.epoch();
  }
  [[nodiscard]] const std::vector<ReplicaId>& members() const noexcept {
    return membership_.members();
  }
  [[nodiscard]] bool rebalancing() const noexcept { return rebalance_.active(); }
  [[nodiscard]] const membership::RebalanceStats& rebalance_stats() const noexcept {
    return rebalance_.stats();
  }
  /// Highest epoch replica `r` has heard announced (0 until one lands).
  [[nodiscard]] std::uint64_t known_epoch(ReplicaId r) const {
    return known_epoch_.at(r);
  }

  /// Adds provisioned replica `node` to the ring: mints the join epoch,
  /// plans the transfers its claimed partitions need, and announces.
  /// Routing does NOT move to `node` until its transfers complete — see
  /// rebalance_step / complete_rebalance.  A REJOINING id (member of
  /// some past epoch) passes through the clock-incarnation bump first,
  /// so dots it minted before departing are never reused.
  void join_node(ReplicaId node) {
    DVV_ASSERT_MSG(node < replicas_.size(), "join: node beyond capacity");
    DVV_ASSERT_MSG(replicas_.at(node).alive(), "join: node not alive");
    with_world_stopped([&] {
      obs::membership_metrics().joins.inc();
      if (membership_.was_member(node)) {
        replicas_[node].bump_incarnation();
        obs::membership_metrics().rejoin_incarnations.inc();
      }
      apply_new_epoch(membership_.join(node), std::nullopt);
    });
  }

  /// Graceful leave: `node` departs the ring but stays alive as a
  /// transfer SOURCE — its data drains to the remaining owners before
  /// any partition flips away from it.
  void leave_node(ReplicaId node) {
    with_world_stopped([&] {
      obs::membership_metrics().leaves.inc();
      apply_new_epoch(membership_.leave(node), std::nullopt);
    });
  }

  /// Crash-removal: `node` is gone and cannot be walked — it is
  /// excluded from the transfer sources, and the remaining owners
  /// rebuild the partitions' replication from each other (whatever only
  /// `node` held is lost unless it later recovers and rejoins).
  void remove_node(ReplicaId node) {
    with_world_stopped([&] {
      obs::membership_metrics().removals.inc();
      apply_new_epoch(membership_.leave(node), node);
    });
  }

  /// Attempts every owed transfer walk whose endpoints are alive and
  /// reachable, flips partitions whose every owner finished, and
  /// promotes the target ring when the whole plan is done.  Returns the
  /// number of walks performed.  Sources that are dead or across a
  /// partition are skipped and retried by later calls — a partition can
  /// never flip until its new owners walked EVERY source, so nothing is
  /// stranded on a replica steady-state AAE no longer repairs.
  std::size_t rebalance_step() {
    if (!rebalance_.active()) return 0;
    std::size_t walked = 0;
    for (const membership::RebalanceEngine::Work& w : rebalance_.pending_work()) {
      if (!replicas_[w.owner].alive() || !replicas_[w.source].alive()) continue;
      if (!transport_->link_up(w.source, w.owner)) continue;
      const membership::TransferStats cost =
          transfer_walk(w.partition, w.owner, w.source);
      if (rebalance_.note_walked(w.partition, w.owner, w.source, cost)) {
        obs::membership_metrics().transfers_completed.inc();
        announce_transfer_done(w.partition, w.owner);
      }
      ++walked;
    }
    for (const std::uint64_t p : rebalance_.take_flippable()) {
      flipped_partitions_.insert(p);
      obs::membership_metrics().partitions_flipped.inc();
    }
    if (rebalance_.active() && rebalance_.complete()) promote_target();
    return walked;
  }

  /// Drives the rebalance to completion.  Every owed walk must be able
  /// to run, so heal partitions and recover (or remove) dead sources
  /// first; asserts rather than spinning when no progress is possible.
  membership::RebalanceStats complete_rebalance() {
    while (rebalance_.active()) {
      const std::size_t walked = rebalance_step();
      if (!rebalance_.active()) break;
      DVV_ASSERT_MSG(walked > 0,
                     "rebalance: no progress — a source is dead or "
                     "partitioned (heal/recover or remove it first)");
    }
    return rebalance_.stats();
  }

  /// Stop-the-world spellings for non-shard control threads (the dvvd
  /// admin loop): transfer walks touch replicas the shard threads own,
  /// so over a threaded transport they are only legal with the world
  /// parked.  Over an inline transport they run the plain spellings
  /// directly.
  std::size_t rebalance_step_stopped() {
    std::size_t walked = 0;
    with_world_stopped([&] { walked = rebalance_step(); });
    return walked;
  }
  membership::RebalanceStats complete_rebalance_stopped() {
    membership::RebalanceStats out;
    with_world_stopped([&] { out = complete_rebalance(); });
    return out;
  }

  /// Routes a client request that arrived at `at` under whatever ring
  /// the client believed: `at` coordinates when it is an alive current
  /// owner of `key`; otherwise the request forwards to the first alive,
  /// reachable current owner — counted as a stale-epoch forward when
  /// `at`'s announced-epoch knowledge lags the membership epoch (it
  /// routed by an old ring).  nullopt when no current owner is
  /// reachable from `at`.
  [[nodiscard]] std::optional<ReplicaId> route_request(const Key& key,
                                                       ReplicaId at) {
    const std::vector<ReplicaId> pref = preference_list(key);
    if (std::find(pref.begin(), pref.end(), at) != pref.end() &&
        replicas_.at(at).alive()) {
      return at;
    }
    for (const ReplicaId r : pref) {
      if (!replicas_[r].alive() || !transport_->link_up(at, r)) continue;
      if (known_epoch_.at(at) < membership_.epoch()) {
        obs::membership_metrics().stale_epoch_forwarded.inc();
      }
      return r;
    }
    return std::nullopt;
  }

 private:
  /// Fills in the config defaults that depend on other fields (the
  /// mem-initializers below read the normalized form).
  [[nodiscard]] static ClusterConfig normalized(ClusterConfig c) {
    if (c.capacity == 0) c.capacity = c.servers;
    DVV_ASSERT_MSG(c.capacity >= c.servers,
                   "kv: capacity below the seed server count");
    if (c.initial_members.empty()) {
      c.initial_members.reserve(c.servers);
      for (std::size_t s = 0; s < c.servers; ++s) {
        c.initial_members.push_back(static_cast<ReplicaId>(s));
      }
    }
    return c;
  }

  /// Runs `fn` with every shard thread parked (threaded transport) or
  /// inline (single-domain).  Membership transitions mutate routing
  /// state that shard threads read on every delivery; parking the world
  /// makes the transition a quiescent point no thread can observe
  /// half-applied.  The latches outlive every parked closure because
  /// quiesce() returns only after each closure's in-flight accounting
  /// released — i.e. after the closure returned.
  template <typename Fn>
  void with_world_stopped(Fn&& fn) {
    if (threaded_ == nullptr) {
      fn();
      return;
    }
    const std::size_t n = threaded_->shards();
    std::latch parked(static_cast<std::ptrdiff_t>(n));
    std::latch release(1);
    for (std::size_t s = 0; s < n; ++s) {
      threaded_->post(s, [&parked, &release] {
        parked.count_down();
        release.wait();
      });
    }
    parked.wait();
    fn();
    release.count_down();
    threaded_->quiesce();
  }

  /// Installs freshly minted epoch `e`: target ring up, digest index
  /// rebuilt in the target's partition space (every key re-dirtied —
  /// the old space's partition ids are meaningless), transfer tasks
  /// planned per (partition, new owner), epoch announced.  A change
  /// arriving MID-rebalance supersedes the old plan: flip progress is
  /// discarded and routing falls back to the active ring — nothing was
  /// deleted, so no data is lost, only the flips are deferred.
  void apply_new_epoch(const membership::RingEpoch& e,
                       std::optional<ReplicaId> excluded_source) {
    obs::membership_metrics().epochs_minted.inc();
    // Source candidates: every member of the union of the outgoing and
    // incoming rings — prior epochs may have parked data on any of
    // them — minus a crash-removed node (it cannot be walked).
    std::set<ReplicaId> sources(ring_.members().begin(), ring_.members().end());
    sources.insert(e.ring.members().begin(), e.ring.members().end());
    if (excluded_source.has_value()) sources.erase(*excluded_source);

    target_ring_.emplace(e.ring);
    flipped_partitions_.clear();

    digest_index_ = sync::DigestIndex(replicas_.size(), config_.aae);
    wire_partitioner();
    // Per partition, the candidates that actually HOLD a key of it:
    // data can only move from where it lives, and walking a holderless
    // source would cost a pointless leaf round against the owner's
    // whole bucket — this pruning is what keeps the zero-divergence
    // rebalance digest-only (bench_rebalance's floor rows).
    std::set<std::uint64_t> partitions;
    std::map<std::uint64_t, std::set<ReplicaId>> holders;
    for (auto& rep : replicas_) {
      for (const Key& key : rep.keys()) {
        digest_index_.on_key_touched(rep.id(), key);
        const std::uint64_t p = digest_index_.partition_of(key);
        partitions.insert(p);
        if (sources.contains(rep.id())) holders[p].insert(rep.id());
      }
    }

    std::vector<membership::PartitionTransfer> tasks;
    for (const std::uint64_t p : partitions) {
      const std::set<ReplicaId>& holding = holders[p];
      for (const ReplicaId owner : digest_index_.owners(p)) {
        membership::PartitionTransfer t;
        t.partition = p;
        t.owner = owner;
        for (const ReplicaId src : holding) {
          if (src != owner) t.pending_sources.insert(src);
        }
        tasks.push_back(std::move(t));
      }
    }
    obs::membership_metrics().transfers_started.inc(tasks.size());
    rebalance_.plan(e.epoch, std::move(tasks));
    announce_epoch(e);
    if (rebalance_.complete()) promote_target();  // no data to move
  }

  /// Broadcasts EpochAnnounceMsg from the first alive member to every
  /// other provisioned replica.  Droppable like any message: a peer
  /// that misses it keeps routing by its stale view until stale-epoch
  /// forwarding (route_request) or a later announce catches it up.
  void announce_epoch(const membership::RingEpoch& e) {
    std::optional<ReplicaId> announcer;
    for (const ReplicaId r : e.ring.members()) {
      if (replicas_[r].alive()) {
        announcer = r;
        break;
      }
    }
    if (!announcer.has_value()) return;
    known_epoch_[*announcer] = std::max(known_epoch_[*announcer], e.epoch);
    net::EpochAnnounceMsg msg;
    msg.epoch = e.epoch;
    msg.members = e.ring.members();
    for (ReplicaId r = 0; r < replicas_.size(); ++r) {
      if (r == *announcer) continue;
      obs::membership_metrics().epochs_announced.inc();
      send_message(*announcer, r, msg);
    }
  }

  /// One transfer walk: the claiming owner's Merkle tree for
  /// `partition` against `source`'s — digests first, state only for
  /// keys whose digests differ (the "bytes ∝ divergence" property
  /// bench_rebalance measures; a converged or empty source costs a
  /// digest exchange and nothing else).  The ship is ONE-directional
  /// (source → owner) and a MERGE, never an adopt: a dual-applied write
  /// already on the new owner must survive the transfer.  Effort is
  /// metered into membership.* — never into the steady-state aae.*.
  [[nodiscard]] membership::TransferStats transfer_walk(std::uint64_t partition,
                                                        ReplicaId owner,
                                                        ReplicaId source) {
    refresh_tree(owner);
    refresh_tree(source);
    const sync::MerkleTree& mine = digest_index_.tree(owner, partition);
    const sync::MerkleTree& theirs = digest_index_.tree(source, partition);
    sync::SyncStats walk;
    const std::vector<std::size_t> leaves =
        sync::diff_leaves(mine, theirs, walk);
    membership::TransferStats cost;
    cost.rounds = walk.rounds;
    cost.nodes_exchanged = walk.nodes_exchanged;
    cost.wire_bytes = walk.wire_bytes;
    for (const std::size_t leaf : leaves) {
      const auto& have = mine.bucket(leaf);
      const auto& offered = theirs.bucket(leaf);
      // Leaf round: both sides' (key, digest) lists cross, then the
      // differing states ship — the same metering as sync::SyncSession.
      for (const auto& [key, digest] : have) {
        (void)digest;
        cost.wire_bytes += key_wire_bytes(key) + sizeof(sync::Digest);
      }
      for (const auto& [key, digest] : offered) {
        (void)digest;
        cost.wire_bytes += key_wire_bytes(key) + sizeof(sync::Digest);
      }
      for (const auto& [key, digest] : offered) {
        const auto mine_it = have.find(key);
        if (mine_it != have.end() && mine_it->second == digest) continue;
        const Stored* state = replicas_[source].find(key);
        DVV_ASSERT_MSG(state != nullptr,
                       "transfer: tree names a key the source lacks");
        replicas_[owner].merge_key(mechanism_, key, *state);
        cost.wire_bytes += key_wire_bytes(key) + mechanism_.total_bytes(*state);
        ++cost.keys_shipped;
      }
    }
    obs::membership_metrics().transfer_keys_shipped.inc(cost.keys_shipped);
    obs::membership_metrics().transfer_wire_bytes.inc(cost.wire_bytes);
    return cost;
  }

  /// A (partition, owner) task finished every walk: tell the members.
  void announce_transfer_done(std::uint64_t partition, ReplicaId owner) {
    const auto& transfers = rebalance_.transfers();
    const auto it = std::find_if(
        transfers.begin(), transfers.end(),
        [&](const membership::PartitionTransfer& t) {
          return t.partition == partition && t.owner == owner;
        });
    DVV_ASSERT(it != transfers.end());
    net::TransferDoneMsg msg;
    msg.epoch = rebalance_.target_epoch();
    msg.partition = partition;
    msg.owner = owner;
    msg.keys_shipped = it->stats.keys_shipped;
    msg.wire_bytes = it->stats.wire_bytes;
    for (const ReplicaId r : membership_.members()) {
      if (r == owner) continue;
      send_message(owner, r, msg);
    }
  }

  /// The whole plan reached kOwned: the target ring becomes the ACTIVE
  /// ring, per-partition flips are retired (the rings now agree), and
  /// the digest index — already partitioned by the target — stays.
  void promote_target() {
    DVV_ASSERT(target_ring_.has_value());
    ring_ = *target_ring_;
    target_ring_.reset();
    flipped_partitions_.clear();
    rebalance_.finish();
  }

 private:
  /// One parked hint visible to anti-entropy: `state` lives on alive
  /// holder `holder`, intended for (possibly long-dead) `owner`.
  struct HintSource {
    ReplicaId holder;
    ReplicaId owner;
    const Stored* state;
  };
  /// key -> hint sources in canonical (holder, owner) order.
  using HintIndex = std::map<Key, std::vector<HintSource>>;

  /// Gathers every parked hint on every ALIVE holder (dead servers
  /// cannot serve their parked state).  Holder ids ascend and each
  /// holder's hints iterate in (owner, key) order, so per-key source
  /// lists come out in canonical (holder, owner) order.
  [[nodiscard]] HintIndex collect_hints() const {
    HintIndex index;
    for (const auto& rep : replicas_) {
      if (!rep.alive()) continue;
      rep.for_each_hint([&](ReplicaId owner, const Key& key, const Stored& state) {
        index[key].push_back({rep.id(), owner, &state});
      });
    }
    return index;
  }

  /// Hint sources for one key (same canonical order as collect_hints).
  [[nodiscard]] std::vector<HintSource> collect_hints_for(const Key& key) const {
    std::vector<HintSource> out;
    for (const auto& rep : replicas_) {
      if (!rep.alive()) continue;
      rep.for_each_hint([&](ReplicaId owner, const Key& hkey, const Stored& state) {
        if (hkey == key) out.push_back({rep.id(), owner, &state});
      });
    }
    return out;
  }

  void wire_partitioner() {
    digest_index_.set_partitioner([this](const Key& key) {
      // Mid-rebalance the index is partitioned by the TARGET ring: the
      // trees the transfer walks — and the flip decisions — live in the
      // new owner space.  Identical to the active ring otherwise.
      const Ring& r = target_ring_.has_value() ? *target_ring_ : ring_;
      return r.preference_list(key);
    });
  }

  void wire_transport() {
    threaded_ = dynamic_cast<net::ThreadedTransport*>(transport_.get());
    transport_->set_sink(
        [this](const net::Envelope& envelope) { on_message(envelope); });
  }

  void send_message(ReplicaId from, ReplicaId to, net::Message msg) {
    transport_->send(from, to, std::move(msg));
  }

  // ---- shard routing ------------------------------------------------------

  /// Reusable send slots, one per message purpose, per shard.  Sends
  /// ride net::borrow_message handles over these — no allocation and no
  /// shared_ptr control-block traffic per message.  The borrow contract
  /// holds because (a) the kv delivery sink never retains an envelope
  /// beyond the sink call, and (b) no delivery chain ever refills the
  /// slot of a message still on the stack: a write_req delivery fills
  /// only write_resp; a read_req delivery only read_resp; a read_resp
  /// delivery at most replicate (read repair); a hint_deliver delivery
  /// only hint_ack; replicate / hint / hint_ack / write_resp deliveries
  /// send nothing.  Across threads: a slot is filled either by its
  /// shard's own thread (delivery handlers, shard-local client ops) or
  /// by the control plane at quiescence — and the two never fill the
  /// same member concurrently, because delivery chains only fill
  /// {read_resp, write_resp, hint_ack, replicate} while control-plane
  /// scatter fills {read_req, write_req, hint, hint_deliver}.
  struct SendSlots {
    net::Message replicate;
    net::Message hint;
    net::Message hint_deliver;
    net::Message hint_ack;
    net::Message read_req;
    net::Message read_resp;
    net::Message write_req;
    net::Message write_resp;
  };

  /// Everything one shard thread mutates while applying deliveries for
  /// the replicas it owns.  Aligned out of false sharing with its
  /// neighbors; heap-allocated so addresses survive cluster moves.
  struct alignas(64) ShardState {
    QuorumCoordinator<M> engine;  ///< requests coordinated by owned replicas
    DeliveryDrops drops;
    std::vector<CompletedSync> completed_syncs;
    SendSlots slots;
  };

  [[nodiscard]] ShardState& shard_for(ReplicaId r) const noexcept {
    return *shards_[shard_of(r)];
  }
  [[nodiscard]] QuorumCoordinator<M>& engine_for(ReplicaId r) const noexcept {
    return shard_for(r).engine;
  }
  [[nodiscard]] SendSlots& slots_for(ReplicaId r) const noexcept {
    return shard_for(r).slots;
  }
  /// The one engine of an unsharded cluster — the id-keyed public
  /// request surface cannot resolve a bare id across several engines.
  [[nodiscard]] QuorumCoordinator<M>& sole_engine() const {
    DVV_ASSERT_MSG(shards_.size() == 1,
                   "kv: id-keyed request API needs an unsharded cluster "
                   "(resolve through the coordinator instead)");
    return shards_[0]->engine;
  }

  /// Synchronous-shim boundary for reads: settle the transport (drains
  /// an auto-settling queue; no-op inline, quiesces threaded), force-
  /// complete whatever has not answered, harvest.
  GetResult harvest_read(QuorumCoordinator<M>& eng, std::uint64_t id) {
    transport_->settle();
    if (eng.finalize(id)) maybe_read_repair(eng, id);
    return take_read_from(eng, id).result;
  }

  /// Synchronous-shim boundary for writes (see harvest_read).
  PutReceipt harvest_write(QuorumCoordinator<M>& eng, std::uint64_t id) {
    transport_->settle();
    if (eng.finalize(id)) maybe_read_repair(eng, id);
    return take_write_from(eng, id);
  }

  /// begin_read with the chosen engine handed back (get_quorum must
  /// harvest from the engine that minted the id).
  struct Begun {
    QuorumCoordinator<M>* engine;
    std::uint64_t id;
  };
  [[nodiscard]] Begun begin_read_impl(const Key& key, std::size_t quorum,
                                      const ReadOptions& opts) {
    for (const ReplicaId r : preference_list(key)) {
      if (replicas_[r].alive()) {
        return {&engine_for(r), begin_read_at(key, r, quorum, opts)};
      }
    }
    QuorumCoordinator<M>& eng = engine_for(0);
    const std::uint64_t id = eng.start_read(key, 0, quorum, opts);
    (void)eng.finalize(id);  // nobody to ask: kUnavailable now
    return {&eng, id};
  }

  /// After a read request reaches a terminal state: if it asked for
  /// read repair and found anything, scatter the merged state back to
  /// every responder whose reply digest differs — the coordinator
  /// adopts locally, remote responders get a ReplicateMsg through the
  /// transport (so a partition or drop can lose the repair like any
  /// other message).  The default shims never request this; it is the
  /// Dynamo-style opt-in for the async path.
  void maybe_read_repair(QuorumCoordinator<M>& eng, std::uint64_t id) {
    if (!eng.is_terminal(id) || !eng.read_repair_requested(id)) {
      return;
    }
    const ReadReceipt& receipt = eng.peek_read(id);
    if (!receipt.found) return;
    // A coordinator that died between collecting replies and completion
    // cannot repair anybody — not even itself: a dead process neither
    // writes its own store nor sends (the delivery sink enforces the
    // same rule for inbound traffic).
    if (!replicas_.at(receipt.coordinator).alive()) return;
    const sync::Digest merged_digest = sync::state_digest(receipt.merged);
    const net::Message* msg = nullptr;
    std::size_t msg_bytes = 0;
    for (const auto& [r, digest] : eng.reply_digests(id)) {
      if (digest == merged_digest) continue;
      if (r == receipt.coordinator) {
        replicas_.at(r).adopt(receipt.key, receipt.merged);
        continue;
      }
      if (!replicas_.at(r).alive() ||
          !transport_->link_up(receipt.coordinator, r)) {
        continue;
      }
      if (msg == nullptr) {
        msg = &net::fill_message<net::ReplicateMsg>(
            slots_for(receipt.coordinator).replicate, [&](auto& out) {
              out.key = receipt.key;
              Replica<M>::encode_state_into(receipt.merged, out.state);
            });
        msg_bytes = net::wire_size_of(std::get<net::ReplicateMsg>(*msg));
      }
      transport_->send(receipt.coordinator, r, net::borrow_message(*msg),
                       nullptr, msg_bytes);
    }
  }

  /// Delivery sink: routes each of the envelope's three forms into the
  /// one alternative-typed applier.  A batch envelope applies its
  /// sub-views in order — exactly the deliveries an unbatched pump
  /// would have made; an owned message (inline transport) dispatches
  /// directly on its own alternative — no intermediate MessageView is
  /// built; the owned and viewed forms share one applier body because
  /// their alternatives carry identical field names.
  void on_message(const net::Envelope& envelope) {
    // Every per-delivery mutation below lands in the DESTINATION
    // replica's shard state — with a threaded transport this sink runs
    // on that shard's thread, so nothing here needs a lock.
    ShardState& shard = shard_for(envelope.to);
    if (!envelope.batch.empty()) {
      for (const net::MessageView& sub : envelope.batch) {
        apply_view(shard, envelope.from, envelope.to, sub, nullptr);
      }
      return;
    }
    if (envelope.view != nullptr) {
      apply_view(shard, envelope.from, envelope.to, *envelope.view,
                 static_cast<const Stored*>(envelope.decoded.get()));
      return;
    }
    const net::Message& msg = *envelope.msg;
    if (const auto* batch = std::get_if<net::BatchMsg>(&msg)) {
      // An owned composite (a caller handed BatchMsg to the inline
      // transport): expand it exactly as the sim expands a queued one.
      for (const std::string& frame : batch->frames) {
        std::optional<net::MessageView> sub = net::decode_frame_view(frame);
        DVV_ASSERT_MSG(sub.has_value(), "kv: malformed sub-frame in owned batch");
        apply_view(shard, envelope.from, envelope.to, *sub, nullptr);
      }
      return;
    }
    const Stored* fast = static_cast<const Stored*>(envelope.decoded.get());
    std::visit(
        [&](const auto& m) {
          apply_one(shard, envelope.from, envelope.to, m, fast);
        },
        msg);
  }

  /// The viewed-form entry into the applier (SimTransport deliveries).
  void apply_view(ShardState& shard, net::NodeId from, net::NodeId to,
                  const net::MessageView& view, const Stored* fast) {
    std::visit([&](const auto& m) { apply_one(shard, from, to, m, fast); },
               view);
  }

  /// True when alternative T — owned message or non-owning view, the
  /// two spellings of one wire type with identical field names — is
  /// the given kind.
  template <typename T, typename Msg, typename View>
  static constexpr bool is_kind_v =
      std::is_same_v<T, Msg> || std::is_same_v<T, View>;

  /// Applies one delivered message alternative at its destination
  /// replica.  `m` is either the owned alternative (inline transport —
  /// std::string fields) or its non-owning view twin (SimTransport —
  /// std::string_view fields over the received buffer); the body is
  /// shared, so the two delivery forms cannot drift.  A destination
  /// that is not alive receives nothing — the message is counted in
  /// the destination shard's drops and gone (for hint deliveries that
  /// is precisely why the holder keeps the hint until the ack).  State
  /// payloads use the decoded fast path when the transport preserved it
  /// (inline loopback) and decode the wire bytes when it did not —
  /// bytes are copied out of a view only on adoption.
  template <typename T>
  void apply_one(ShardState& shard, net::NodeId from, net::NodeId to,
                 const T& m, const Stored* fast) {
    Replica<M>& dst = replicas_.at(to);
    if (!dst.alive()) {
      if constexpr (is_kind_v<T, net::ReplicateMsg, net::ReplicateView> ||
                    is_kind_v<T, net::CoordWriteReqMsg,
                              net::CoordWriteReqView>) {
        ++shard.drops.replicate;  // a replica copy died with it
      } else if constexpr (is_kind_v<T, net::HintMsg, net::HintView>) {
        ++shard.drops.hint_stash;
      } else if constexpr (is_kind_v<T, net::HintDeliverMsg,
                                     net::HintDeliverView>) {
        ++shard.drops.hint_deliver;
      } else if constexpr (is_kind_v<T, net::HintAckMsg, net::HintAckView>) {
        ++shard.drops.hint_ack;
      } else if constexpr (is_kind_v<T, net::CoordReadReqMsg,
                                     net::CoordReadReqView> ||
                           is_kind_v<T, net::CoordReadRespMsg,
                                     net::CoordReadRespView> ||
                           is_kind_v<T, net::CoordWriteRespMsg,
                                     net::CoordWriteRespView>) {
        ++shard.drops.coord;  // the request machine rides it out
      } else if constexpr (is_kind_v<T, net::JoinReqMsg, net::JoinReqView> ||
                           is_kind_v<T, net::EpochAnnounceMsg,
                                     net::EpochAnnounceView> ||
                           is_kind_v<T, net::TransferDoneMsg,
                                     net::TransferDoneView>) {
        ++shard.drops.membership;  // re-announced / retried by the next epoch
      } else {
        ++shard.drops.sync;
      }
      return;
    }
    {
      if constexpr (is_kind_v<T, net::ReplicateMsg, net::ReplicateView>) {
            if (fast != nullptr) {
              dst.merge_key_view(mechanism_, m.key, *fast);
            } else {
              dst.merge_encoded(mechanism_, m.key, m.state);
            }
          } else if constexpr (is_kind_v<T, net::HintMsg, net::HintView>) {
            if (fast != nullptr) {
              dst.stash_hint(mechanism_, m.owner, Key(m.key), *fast);
            } else {
              dst.stash_hint_encoded(mechanism_, m.owner, m.key, m.state);
            }
          } else if constexpr (is_kind_v<T, net::HintDeliverMsg, net::HintDeliverView>) {
            // The owner merges the parked write home and acks with the
            // payload's digest so the holder can retire exactly this
            // hint (and not a newer re-stash).
            if (fast != nullptr) {
              dst.merge_key_view(mechanism_, m.key, *fast);
            } else {
              dst.merge_encoded(mechanism_, m.key, m.state);
            }
            const std::uint64_t digest = sync::encoded_state_digest(m.state);
            const net::Message& ack = net::fill_message<net::HintAckMsg>(
                shard.slots.hint_ack, [&](auto& out) {
                  out.owner = m.owner;
                  out.key = m.key;
                  out.digest = digest;
                });
            transport_->send(
                to, from, net::borrow_message(ack), nullptr,
                net::wire_size_of(std::get<net::HintAckMsg>(ack)));
          } else if constexpr (is_kind_v<T, net::HintAckMsg, net::HintAckView>) {
            (void)dst.drop_hint_if(m.owner, Key(m.key), m.digest);
          } else if constexpr (is_kind_v<T, net::CoordReadReqMsg, net::CoordReadReqView>) {
            // Serve the quorum read: answer with the local encoding of
            // the key (found=false when this replica holds nothing).
            // The decoded alias rides along for zero-copy loopback —
            // valid only for synchronous delivery, exactly the
            // envelope contract.
            const Stored* local = dst.find(m.key);
            const net::Message& resp =
                net::fill_message<net::CoordReadRespMsg>(
                    shard.slots.read_resp, [&](auto& out) {
                      out.req = m.req;
                      out.found = local != nullptr;
                      if (local != nullptr) {
                        Replica<M>::encode_state_into(*local, out.state);
                      } else {
                        out.state.clear();
                      }
                    });
            transport_->send(
                to, from, net::borrow_message(resp),
                std::shared_ptr<const void>(std::shared_ptr<const void>{},
                                            local),
                net::wire_size_of(std::get<net::CoordReadRespMsg>(resp)));
          } else if constexpr (is_kind_v<T, net::CoordReadRespMsg, net::CoordReadRespView>) {
            // A quorum-read reply lands at its coordinator: the engine
            // counts it toward the quorum (or drops it as late,
            // duplicate or stale — reply hygiene lives there).
            bool done;
            if (!m.found) {
              done = shard.engine.on_read_reply(m.req, from, nullptr, mechanism_);
            } else if (fast != nullptr) {
              done = shard.engine.on_read_reply(m.req, from, fast, mechanism_);
            } else {
              const Stored remote = Replica<M>::decode_state(m.state);
              done = shard.engine.on_read_reply(m.req, from, &remote, mechanism_);
            }
            if (done) maybe_read_repair(shard.engine, m.req);
          } else if constexpr (is_kind_v<T, net::CoordWriteReqMsg, net::CoordWriteReqView>) {
            // Replicate-with-ack: merge exactly as a ReplicateMsg
            // would, then acknowledge so the coordinator can count this
            // replica toward the write quorum.
            if (fast != nullptr) {
              dst.merge_key_view(mechanism_, m.key, *fast);
            } else {
              dst.merge_encoded(mechanism_, m.key, m.state);
            }
            const net::Message& ack = net::fill_message<net::CoordWriteRespMsg>(
                shard.slots.write_resp, [&](auto& out) { out.req = m.req; });
            transport_->send(
                to, from, net::borrow_message(ack), nullptr,
                net::wire_size_of(std::get<net::CoordWriteRespMsg>(ack)));
          } else if constexpr (is_kind_v<T, net::CoordWriteRespMsg, net::CoordWriteRespView>) {
            (void)shard.engine.on_write_ack(m.req, from);
          } else if constexpr (is_kind_v<T, net::SyncReqMsg, net::SyncReqView>) {
            run_sync_session(from, to, m.nonce);
          } else if constexpr (is_kind_v<T, net::JoinReqMsg, net::JoinReqView>) {
            // A member admits the join on the requester's behalf.  The
            // threaded cluster admits joins through the admin path
            // instead (a shard thread cannot stop the world it runs
            // on); a duplicate or out-of-capacity request is ignored.
            if (threaded_ == nullptr && m.node < replicas_.size() &&
                !membership_.is_member(static_cast<ReplicaId>(m.node)) &&
                replicas_.at(m.node).alive()) {
              join_node(static_cast<ReplicaId>(m.node));
            }
          } else if constexpr (is_kind_v<T, net::EpochAnnounceMsg,
                                         net::EpochAnnounceView>) {
            known_epoch_[to] = std::max(known_epoch_[to],
                                        static_cast<std::uint64_t>(m.epoch));
          } else if constexpr (is_kind_v<T, net::TransferDoneMsg,
                                         net::TransferDoneView>) {
            // Accounting/visibility only — a completed transfer implies
            // its target epoch is live somewhere.
            known_epoch_[to] = std::max(known_epoch_[to],
                                        static_cast<std::uint64_t>(m.epoch));
          } else if constexpr (is_kind_v<T, net::BatchMsg, net::BatchView>) {
            // Batches are expanded before dispatch (on_message, and the
            // transports themselves) — one can never reach the applier.
            DVV_ASSERT_MSG(false, "kv: unexpanded batch view in apply_view");
          } else {
            static_assert(is_kind_v<T, net::SyncRespMsg, net::SyncRespView>);
            CompletedSync cs;
            cs.initiator = to;
            cs.responder = from;
            cs.nonce = m.nonce;
            cs.stats.rounds = static_cast<std::size_t>(m.rounds);
            cs.stats.nodes_exchanged = static_cast<std::size_t>(m.nodes_exchanged);
            cs.stats.keys_compared = static_cast<std::size_t>(m.keys_compared);
            cs.stats.keys_shipped = static_cast<std::size_t>(m.keys_shipped);
            cs.stats.wire_bytes = static_cast<std::size_t>(m.wire_bytes);
            shard.completed_syncs.push_back(std::move(cs));
          }
    }
  }

  /// Runs one digest session at the responder after a SyncReqMsg
  /// arrived (refreshing both trees, walking shared partitions,
  /// repairing divergent keys) and answers the initiator with the
  /// stats.  The walk itself is computed in shared memory — its message
  /// rounds and wire bytes are metered in the stats, as before the
  /// transport existed — but whether a session happens AT ALL is the
  /// transport's call: a partitioned or dropped request means no
  /// repair.  An initiator that died after sending gets no session (a
  /// one-ended exchange cannot run).
  void run_sync_session(ReplicaId initiator, ReplicaId responder,
                        std::uint64_t nonce) {
    if (initiator == responder || !replicas_.at(initiator).alive()) return;
    refresh_tree(initiator);
    refresh_tree(responder);
    sync::SyncSession session(
        [this](const Key& key, ReplicaId sa, ReplicaId sb) {
          return repair_key(key, sa, sb);
        });
    sync::SyncStats stats;
    for (const auto partition : digest_index_.shared_partitions(initiator,
                                                                responder)) {
      stats.merge(session.run(initiator, digest_index_.tree(initiator, partition),
                              responder, digest_index_.tree(responder, partition)));
    }
    net::SyncRespMsg resp;
    resp.nonce = nonce;
    resp.rounds = stats.rounds;
    resp.nodes_exchanged = stats.nodes_exchanged;
    resp.keys_compared = stats.keys_compared;
    resp.keys_shipped = stats.keys_shipped;
    resp.wire_bytes = stats.wire_bytes;
    send_message(responder, initiator, resp);
  }

  void refresh_tree(ReplicaId r) {
    digest_index_.refresh(r, [this, r](const Key& key) {
      return replicas_.at(r).find(key);
    });
  }

  /// Read-repair of one divergent key, initiated by session endpoint
  /// `a` after disagreeing with `b` (or `a == b` for the hint round):
  /// gather every alive owner's state plus every alive holder's parked
  /// hint, fold in canonical order (owners by preference list, then
  /// hints by (holder, owner) — the same deterministic merge the legacy
  /// pass computes), scatter the merge back, and rewrite differing
  /// hints to the merged bytes.  The initiator can only gather from and
  /// scatter to replicas it can REACH: under an active partition,
  /// owners and hint holders across the cut are invisible to the repair
  /// (tests/transport_test.cpp: RepairCannotCrossAnActivePartition) —
  /// each side converges internally and the sides reconcile after
  /// heal().  Wire metering uses the per-key digests
  /// the owners already maintain: identical gather states ship once
  /// (the initiator recognizes duplicates by digest), the initiator's
  /// own copy stays local, and owners whose bytes already equal the
  /// merge receive nothing.  Keys the session pair does not own are
  /// left alone: a replica must never adopt keys outside its partition.
  sync::RepairResult repair_key(const Key& key, ReplicaId a, ReplicaId b) {
    const auto pref = preference_list(key);
    const bool a_owns = std::find(pref.begin(), pref.end(), a) != pref.end();
    const bool b_owns = std::find(pref.begin(), pref.end(), b) != pref.end();
    if (!a_owns || !b_owns) return {};

    struct OwnerState {
      ReplicaId replica;
      const Stored* stored;
      sync::Digest digest;
    };
    std::vector<OwnerState> owners;
    sync::Digest initiator_digest = sync::kMissing;
    Stored merged;
    bool found_any = false;
    for (const ReplicaId r : pref) {
      if (!replicas_[r].alive() || !transport_->link_up(a, r)) continue;
      const Stored* s = replicas_[r].find(key);
      const sync::Digest d = s ? sync::state_digest(*s) : sync::kMissing;
      owners.push_back({r, s, d});
      if (r == a) initiator_digest = d;
      if (s != nullptr) {
        mechanism_.sync(merged, *s);
        found_any = true;
      }
    }
    std::vector<HintSource> hints = collect_hints_for(key);
    std::erase_if(hints, [&](const HintSource& h) {
      return !transport_->link_up(a, h.holder);
    });
    for (const HintSource& h : hints) {
      mechanism_.sync(merged, *h.state);
      found_any = true;
    }
    if (!found_any) return {};

    sync::RepairResult result;
    // The dedup/skip decisions below need every owner's and hint
    // holder's per-key digest at the initiator.  `b`'s digests crossed
    // in the session's leaf round and the initiator knows its own, but
    // each OTHER owner and every hint holder must be probed (key out,
    // digest back) — metered here so the bench's digest-vs-full
    // comparison stays honest.
    for (const OwnerState& o : owners) {
      if (o.replica == a || o.replica == b) continue;
      result.wire_bytes += key_wire_bytes(key) + sizeof(sync::Digest);
    }
    for (const HintSource& h : hints) {
      if (h.holder == a) continue;
      result.wire_bytes += key_wire_bytes(key) + sizeof(sync::Digest);
    }
    // Gather: each distinct divergent state crosses to the initiator once.
    std::set<sync::Digest> gathered;
    for (const OwnerState& o : owners) {
      if (o.stored == nullptr || o.replica == a) continue;
      if (o.digest == initiator_digest || gathered.contains(o.digest)) continue;
      gathered.insert(o.digest);
      result.wire_bytes += key_wire_bytes(key) + mechanism_.total_bytes(*o.stored);
      ++result.states_shipped;
    }
    for (const HintSource& h : hints) {
      const sync::Digest hd = sync::state_digest(*h.state);
      if (h.holder == a || hd == initiator_digest || gathered.contains(hd)) continue;
      gathered.insert(hd);
      result.wire_bytes += key_wire_bytes(key) + mechanism_.total_bytes(*h.state);
      ++result.states_shipped;
    }
    // Scatter: the merge goes out to every owner not already holding it.
    const sync::Digest merged_digest = sync::state_digest(merged);
    const std::size_t merged_bytes =
        key_wire_bytes(key) + mechanism_.total_bytes(merged);
    for (const OwnerState& o : owners) {
      if (o.digest == merged_digest) continue;  // byte-identical already
      replicas_[o.replica].adopt(key, merged);
      if (o.replica != a) {
        result.wire_bytes += merged_bytes;
        ++result.states_shipped;
      }
    }
    // Hint refresh: parked hints converge to the merged bytes so future
    // rounds recognize them by digest instead of re-shipping them.
    for (const HintSource& h : hints) {
      if (sync::state_digest(*h.state) == merged_digest) continue;
      replicas_[h.holder].replace_hint(h.owner, key, merged);
      if (h.holder != a) {
        result.wire_bytes += merged_bytes;
        ++result.states_shipped;
      }
    }
    repairs_shipped_total_.fetch_add(result.states_shipped,
                                     std::memory_order_relaxed);
    return result;
  }

  [[nodiscard]] static std::size_t key_wire_bytes(const Key& key) {
    return codec::varint_size(key.size()) + key.size();
  }

  ClusterConfig config_;
  M mechanism_;
  /// Declared before ring_: the ACTIVE ring starts as a copy of the
  /// table's epoch-0 snapshot.
  membership::MembershipTable membership_;
  Ring ring_;  ///< ACTIVE routing snapshot (promoted at rebalance end)
  /// Present only mid-rebalance: the freshly minted epoch's ring.  Keys
  /// in flipped partitions route by it; everything else stays on ring_.
  /// Mutated only inside a stopped world / at quiescence, so shard
  /// threads always read a settled value.
  std::optional<Ring> target_ring_;
  std::set<std::uint64_t> flipped_partitions_;
  membership::RebalanceEngine rebalance_;
  /// Highest epoch each provisioned replica has heard announced —
  /// per-element writes land on the element owner's shard (apply_one),
  /// distinct memory locations, no lock needed.
  std::vector<std::uint64_t> known_epoch_;
  sync::DigestIndex digest_index_;
  std::unique_ptr<net::Transport> transport_;
  std::vector<Replica<M>> replicas_;
  /// One ShardState per execution shard (see the shard routing section
  /// above).  Size 1 unless the wired transport is a ThreadedTransport,
  /// in which case it matches the transport's shard count and each
  /// state is touched only from its owning shard thread.
  std::vector<std::unique_ptr<ShardState>> shards_;
  /// Set by wire_transport when the transport is threaded — the routing
  /// helpers key off it; null means single-domain (inline / sim).
  net::ThreadedTransport* threaded_ = nullptr;
  /// Atomic: request_sync may be scattered from several shard threads
  /// by a threaded driver (nonces only need uniqueness, not order).
  std::atomic<std::uint64_t> next_sync_nonce_{0};
  /// Atomic for the same reason; every state repair_key shipped.
  std::atomic<std::uint64_t> repairs_shipped_total_{0};
  /// Aggregation scratch for the merged accessors (mutable: the
  /// accessors are logically const).  Only valid to fill at quiescence.
  mutable DeliveryDrops drops_scratch_{};
  mutable CoordStats coord_scratch_{};
};

}  // namespace dvv::kv
