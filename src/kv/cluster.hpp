// dvv/kv/cluster.hpp
//
// The Riak-shaped replicated store: a consistent-hash ring of replicas,
// coordinator-routed GET/PUT, probabilistic write replication (to create
// the divergence anti-entropy then repairs), and the anti-entropy pass
// itself.  Templated on the causality mechanism — the whole point of the
// paper is that this file does not change between Fig. 1b and Fig. 1c.
//
// Determinism contract: the cluster itself makes NO random choices.
// Which replica coordinates, which replica serves a read, and whether a
// replication message "arrives" are all chosen by the caller (workload
// driver / test), which gets its randomness from a seeded Rng.  That is
// what lets the oracle (src/oracle) replay the exact same decision
// sequence against the causal-history mechanism and audit the outcome.
#pragma once

#include <cstddef>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "kv/mechanism.hpp"
#include "kv/replica.hpp"
#include "kv/ring.hpp"
#include "kv/types.hpp"
#include "util/assert.hpp"

namespace dvv::kv {

struct ClusterConfig {
  std::size_t servers = 3;
  std::size_t replication = 3;
  std::size_t vnodes = 64;
};

template <CausalityMechanism M>
class Cluster {
 public:
  using Context = typename M::Context;
  using Stored = typename M::Stored;
  using GetResult = typename Replica<M>::GetResult;

  struct PutReceipt {
    ReplicaId coordinator = 0;
    std::size_t replicated_to = 0;      ///< replicas the write reached now
    std::size_t replication_bytes = 0;  ///< wire bytes shipped to them
  };

  Cluster(ClusterConfig config, M mechanism)
      : config_(config),
        mechanism_(std::move(mechanism)),
        ring_(config.servers, config.replication, config.vnodes) {
    replicas_.reserve(config.servers);
    for (std::size_t s = 0; s < config.servers; ++s) {
      replicas_.emplace_back(static_cast<ReplicaId>(s));
    }
  }

  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const Ring& ring() const noexcept { return ring_; }
  [[nodiscard]] const M& mechanism() const noexcept { return mechanism_; }
  [[nodiscard]] Replica<M>& replica(ReplicaId id) { return replicas_.at(id); }
  [[nodiscard]] const Replica<M>& replica(ReplicaId id) const { return replicas_.at(id); }
  [[nodiscard]] std::size_t servers() const noexcept { return replicas_.size(); }

  /// Preference list for a key (coordinator candidates, in ring order).
  [[nodiscard]] std::vector<ReplicaId> preference_list(const Key& key) const {
    return ring_.preference_list(key);
  }

  /// First alive server of the preference list — the default coordinator.
  [[nodiscard]] ReplicaId default_coordinator(const Key& key) const {
    for (ReplicaId r : ring_.preference_list(key)) {
      if (replicas_[r].alive()) return r;
    }
    DVV_ASSERT_MSG(false, "no alive replica for key");
    return 0;
  }

  /// GET served by one replica (`from` must be in the key's preference
  /// list for realistic routing; not enforced, tests route freely).
  [[nodiscard]] GetResult get(const Key& key, ReplicaId from) const {
    return replicas_.at(from).get(mechanism_, key);
  }

  /// GET with read-coalescing across `quorum` preference-list replicas:
  /// their sibling states are merged (mechanism sync) into the reply, as
  /// a Dynamo-style R-quorum read would.  Does not write back; pair with
  /// anti_entropy for repair.
  [[nodiscard]] GetResult get_quorum(const Key& key, std::size_t quorum) const {
    DVV_ASSERT(quorum >= 1);
    const auto pref = ring_.preference_list(key);
    Stored merged;
    bool found = false;
    std::size_t asked = 0;
    for (ReplicaId r : pref) {
      if (asked == quorum) break;
      if (!replicas_[r].alive()) continue;
      ++asked;
      if (const Stored* s = replicas_[r].find(key)) {
        mechanism_.sync(merged, *s);
        found = true;
      }
    }
    GetResult out;
    out.found = found;
    if (found) {
      out.values = mechanism_.values_of(merged);
      out.context = mechanism_.context_of(merged);
    }
    return out;
  }

  /// PUT coordinated by `coordinator` on behalf of `client`, carrying the
  /// client's causal context.  `replicate_to` lists the other replicas
  /// the write should reach immediately (the caller decides, possibly
  /// dropping some to model replication lag); they receive the
  /// coordinator's post-update sibling state and merge it.
  PutReceipt put(const Key& key, ReplicaId coordinator, ClientId client,
                 const Context& ctx, Value value,
                 const std::vector<ReplicaId>& replicate_to) {
    DVV_ASSERT(replicas_.at(coordinator).alive());
    Replica<M>& coord = replicas_.at(coordinator);
    coord.put(mechanism_, key, coordinator, client, ctx, std::move(value));

    PutReceipt receipt;
    receipt.coordinator = coordinator;
    const Stored* fresh = coord.find(key);
    DVV_ASSERT(fresh != nullptr);
    const std::size_t bytes = mechanism_.total_bytes(*fresh);
    for (ReplicaId r : replicate_to) {
      if (r == coordinator || !replicas_.at(r).alive()) continue;
      replicas_.at(r).merge_key(mechanism_, key, *fresh);
      ++receipt.replicated_to;
      receipt.replication_bytes += bytes;
    }
    return receipt;
  }

  /// Convenience PUT: default coordinator, full immediate replication.
  PutReceipt put(const Key& key, ClientId client, const Context& ctx, Value value) {
    const ReplicaId coord = default_coordinator(key);
    return put(key, coord, client, ctx, std::move(value), ring_.preference_list(key));
  }

  /// PUT with hinted handoff (Dynamo's sloppy quorum): like put(), but
  /// for each DEAD preference-list member the write is parked on the
  /// next alive NON-preference server in ring order, tagged with the
  /// intended owner.  Call deliver_hints() after recoveries to push the
  /// parked writes home.
  PutReceipt put_with_handoff(const Key& key, ReplicaId coordinator, ClientId client,
                              const Context& ctx, Value value) {
    const auto pref = ring_.preference_list(key);
    std::vector<ReplicaId> alive_targets;
    std::vector<ReplicaId> dead_owners;
    for (const ReplicaId r : pref) {
      (replicas_.at(r).alive() ? alive_targets : dead_owners).push_back(r);
    }
    PutReceipt receipt = put(key, coordinator, client, ctx, std::move(value),
                             alive_targets);
    if (dead_owners.empty()) return receipt;

    const Stored* fresh = replicas_.at(coordinator).find(key);
    DVV_ASSERT(fresh != nullptr);
    const std::size_t bytes = mechanism_.total_bytes(*fresh);
    const auto order = ring_.ring_order(key);
    std::size_t next_fallback = ring_.replication();  // first non-pref slot
    for (const ReplicaId owner : dead_owners) {
      // Find the next alive fallback server (distinct per owner so one
      // fallback's crash cannot lose several owners' hints at once).
      while (next_fallback < order.size() &&
             !replicas_[order[next_fallback]].alive()) {
        ++next_fallback;
      }
      if (next_fallback >= order.size()) break;  // nowhere to park
      replicas_[order[next_fallback]].stash_hint(mechanism_, owner, key, *fresh);
      ++next_fallback;
      ++receipt.replicated_to;
      receipt.replication_bytes += bytes;
    }
    return receipt;
  }

  /// Delivers parked hints cluster-wide to every recovered owner.
  std::size_t deliver_hints() {
    std::size_t delivered = 0;
    for (auto& rep : replicas_) {
      delivered += rep.deliver_hints(
          mechanism_, [this](ReplicaId owner) -> Replica<M>& {
            return replicas_.at(owner);
          });
    }
    return delivered;
  }

  /// Total hints parked anywhere (observability for tests/benches).
  [[nodiscard]] std::size_t hinted_count() const {
    std::size_t n = 0;
    for (const auto& rep : replicas_) n += rep.hinted_count();
    return n;
  }

  /// One anti-entropy round: for every key anywhere in the cluster, the
  /// replicas in its preference list gather-merge-scatter so they end up
  /// identical.  Returns the number of (key, replica) states touched.
  std::size_t anti_entropy() {
    std::set<Key> all_keys;
    for (const auto& rep : replicas_) {
      for (auto& k : rep.keys()) all_keys.insert(k);
    }
    std::size_t touched = 0;
    for (const Key& key : all_keys) {
      const auto pref = ring_.preference_list(key);
      Stored merged;
      for (ReplicaId r : pref) {
        if (!replicas_[r].alive()) continue;
        if (const Stored* s = replicas_[r].find(key)) mechanism_.sync(merged, *s);
      }
      for (ReplicaId r : pref) {
        if (!replicas_[r].alive()) continue;
        replicas_[r].stored(key) = merged;
        ++touched;
      }
    }
    return touched;
  }

  /// Cluster-wide metadata footprint (sums replica footprints).
  [[nodiscard]] typename Replica<M>::Footprint footprint() const {
    typename Replica<M>::Footprint f;
    for (const auto& rep : replicas_) f.merge(rep.footprint(mechanism_));
    return f;
  }

 private:
  ClusterConfig config_;
  M mechanism_;
  Ring ring_;
  std::vector<Replica<M>> replicas_;
};

}  // namespace dvv::kv
