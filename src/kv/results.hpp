// dvv/kv/results.hpp
//
// Mechanism-independent receipt and report types shared by the
// templated Cluster<M> and the type-erased kv::Store facade.  These
// used to be nested inside Cluster<M> (and Replica<M>), which welded
// every caller that named them to one mechanism at compile time; the
// facade needs them at namespace scope so a runtime-selected store can
// hand them across the API boundary unchanged.  Cluster<M> and
// Replica<M> alias them under their historical nested names, so
// existing call sites (`Cluster<M>::DeliveryDrops`, ...) still compile.
#pragma once

#include <cstddef>
#include <cstdint>

#include "kv/types.hpp"
#include "sync/anti_entropy.hpp"

namespace dvv::kv {

/// Messages a cluster discarded because their destination replica was
/// not alive at delivery time (a dead process receives nothing).
struct DeliveryDrops {
  std::size_t replicate = 0;     ///< put fan-out payloads (state-bearing
                                 ///  CoordWriteReqMsg included: a dead
                                 ///  target lost a replica copy)
  std::size_t hint_stash = 0;    ///< hints headed for a dead fallback
  std::size_t hint_deliver = 0;  ///< deliveries to an owner that died again
  std::size_t hint_ack = 0;      ///< acks to a holder that died
  std::size_t sync = 0;          ///< anti-entropy session requests
  std::size_t coord = 0;         ///< coordination control traffic (read
                                 ///  requests/replies, write acks) to a
                                 ///  dead endpoint — the request machine
                                 ///  absorbs these as missing replies
  std::size_t membership = 0;    ///< join/epoch/transfer-done frames to a
                                 ///  dead peer — re-announced or retried
                                 ///  by the next transition

  [[nodiscard]] std::size_t total() const noexcept {
    return replicate + hint_stash + hint_deliver + hint_ack + sync + coord +
           membership;
  }
};

/// One finished digest anti-entropy session as observed by its
/// initiator (Cluster::take_completed_syncs).
struct CompletedSync {
  ReplicaId initiator = 0;
  ReplicaId responder = 0;
  std::uint64_t nonce = 0;
  sync::SyncStats stats;
};

/// Full digest-based repair report (Cluster::anti_entropy_digest).
struct DigestRepairReport {
  sync::SyncStats stats;
  std::size_t sessions = 0;  ///< pairwise sessions run
  std::size_t sweeps = 0;    ///< full pair sweeps until the fixed point
};

/// Aggregate metadata statistics over every key of a replica or a
/// whole cluster (experiment E5/E6).
struct Footprint {
  std::size_t keys = 0;
  std::size_t siblings = 0;
  std::size_t clock_entries = 0;
  std::size_t metadata_bytes = 0;
  std::size_t total_bytes = 0;

  void merge(const Footprint& o) noexcept {
    keys += o.keys;
    siblings += o.siblings;
    clock_entries += o.clock_entries;
    metadata_bytes += o.metadata_bytes;
    total_bytes += o.total_bytes;
  }
};

}  // namespace dvv::kv
