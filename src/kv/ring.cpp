#include "kv/ring.hpp"

#include <algorithm>
#include <string>

namespace dvv::kv {

Ring::Ring(std::size_t servers, std::size_t replication, std::size_t vnodes)
    : servers_(servers), replication_(replication) {
  DVV_ASSERT_MSG(servers >= 1, "ring needs at least one server");
  DVV_ASSERT_MSG(replication >= 1 && replication <= servers,
                 "replication factor must be in [1, servers]");
  DVV_ASSERT_MSG(vnodes >= 1, "at least one vnode per server");
  ring_.reserve(servers * vnodes);
  for (std::size_t s = 0; s < servers; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Hash a stable textual token per (server, vnode).
      const std::string token = "vnode:" + std::to_string(s) + ":" + std::to_string(v);
      ring_.push_back(VNode{hash(token), static_cast<ReplicaId>(s)});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::vector<ReplicaId> Ring::preference_list(std::string_view key) const {
  std::vector<ReplicaId> out = ring_order(key);
  out.resize(replication_);
  return out;
}

std::vector<ReplicaId> Ring::ring_order(std::string_view key) const {
  const std::uint64_t point = hash(key);
  std::vector<ReplicaId> out;
  out.reserve(servers_);

  auto it = std::lower_bound(ring_.begin(), ring_.end(), point,
                             [](const VNode& v, std::uint64_t p) { return v.point < p; });
  // Walk clockwise collecting distinct physical servers.
  for (std::size_t walked = 0; walked < ring_.size() && out.size() < servers_;
       ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->server) == out.end()) {
      out.push_back(it->server);
    }
    ++it;
  }
  DVV_ASSERT(out.size() == servers_);
  return out;
}

std::uint64_t Ring::hash(std::string_view data) noexcept {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  // Final avalanche to spread low-entropy keys around the ring.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace dvv::kv
