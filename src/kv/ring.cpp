#include "kv/ring.hpp"

#include <algorithm>
#include <string>

namespace dvv::kv {

namespace {

[[nodiscard]] std::vector<ReplicaId> contiguous_members(std::size_t servers) {
  std::vector<ReplicaId> out;
  out.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    out.push_back(static_cast<ReplicaId>(s));
  }
  return out;
}

}  // namespace

Ring::Ring(std::size_t servers, std::size_t replication, std::size_t vnodes)
    : Ring(contiguous_members(servers), replication, vnodes) {}

Ring::Ring(std::vector<ReplicaId> members, std::size_t replication,
           std::size_t vnodes)
    : members_(std::move(members)), replication_(replication), vnodes_(vnodes) {
  std::sort(members_.begin(), members_.end());
  DVV_ASSERT_MSG(!members_.empty(), "ring needs at least one member");
  DVV_ASSERT_MSG(
      std::adjacent_find(members_.begin(), members_.end()) == members_.end(),
      "ring members must be distinct");
  DVV_ASSERT_MSG(replication >= 1 && replication <= members_.size(),
                 "replication factor must be in [1, members]");
  DVV_ASSERT_MSG(vnodes >= 1, "at least one vnode per server");
  ring_.reserve(members_.size() * vnodes);
  for (const ReplicaId s : members_) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      // Hash a stable textual token per (server, vnode).  The token
      // depends only on the member's own id, so a member keeps its ring
      // positions across membership changes — minimal movement.
      const std::string token =
          "vnode:" + std::to_string(s) + ":" + std::to_string(v);
      ring_.push_back(VNode{hash(token), s});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

bool Ring::is_member(ReplicaId r) const noexcept {
  return std::binary_search(members_.begin(), members_.end(), r);
}

std::vector<ReplicaId> Ring::preference_list(std::string_view key) const {
  std::vector<ReplicaId> out = ring_order(key);
  out.resize(replication_);
  return out;
}

std::vector<ReplicaId> Ring::ring_order(std::string_view key) const {
  const std::uint64_t point = hash(key);
  std::vector<ReplicaId> out;
  out.reserve(members_.size());

  auto it = std::lower_bound(ring_.begin(), ring_.end(), point,
                             [](const VNode& v, std::uint64_t p) { return v.point < p; });
  // Walk clockwise collecting distinct physical servers.
  for (std::size_t walked = 0;
       walked < ring_.size() && out.size() < members_.size(); ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(out.begin(), out.end(), it->server) == out.end()) {
      out.push_back(it->server);
    }
    ++it;
  }
  DVV_ASSERT(out.size() == members_.size());
  return out;
}

std::uint64_t Ring::hash(std::string_view data) noexcept {
  // FNV-1a 64-bit.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  // Final avalanche to spread low-entropy keys around the ring.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

}  // namespace dvv::kv
