// dvv/kv/replica.hpp
//
// One storage server: a map from key to the mechanism's per-key sibling
// state.  The replica is deliberately thin — every causality decision
// lives in the mechanism's kernel (src/core) — so that what the cluster
// measures is the clock scheme, not incidental server logic.
//
// Durability: the in-memory map is the replica's volatile state; every
// mutation writes through to a pluggable StorageBackend (src/store) as
// the key's full post-write codec encoding.  crash() drops the volatile
// state (plus whatever the backend's durability model loses); recover()
// replays the surviving log and re-dirties every key so the anti-entropy
// Merkle trees rebuild through the KeyObserver hook.  With the default
// MemBackend the write-through is a no-op and crash() is total loss —
// the seed's behaviour, now explicit.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "kv/mechanism.hpp"
#include "kv/results.hpp"
#include "kv/types.hpp"
#include "store/backend.hpp"
#include "sync/key_digest.hpp"
#include "sync/key_observer.hpp"
#include "util/assert.hpp"

namespace dvv::kv {

template <CausalityMechanism M>
class Replica {
 public:
  using Context = typename M::Context;
  using Stored = typename M::Stored;

  struct GetResult {
    bool found = false;
    bool unavailable = false;   ///< request could not be served at all
    bool degraded = false;      ///< quorum read: fewer than R replicas answered
    std::size_t replies = 0;    ///< replicas that actually served the read
    std::vector<Value> values;  ///< all live siblings
    Context context;            ///< causal context for the client's next PUT
  };

  explicit Replica(ReplicaId id,
                   std::unique_ptr<store::StorageBackend> backend = nullptr)
      : id_(id),
        backend_(backend ? std::move(backend) : store::make_backend({})) {}

  [[nodiscard]] ReplicaId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t key_count() const noexcept { return data_.size(); }
  [[nodiscard]] bool alive() const noexcept { return alive_; }

  /// Pause/unpause (fail-stop with memory intact).  A PAUSED replica
  /// keeps its volatile state; contrast crash(), which loses it.
  void set_alive(bool alive) noexcept { alive_ = alive; }

  /// The storage backend this replica writes through (introspection for
  /// tests and benches — e.g. forcing a flush before a crash).
  [[nodiscard]] store::StorageBackend& backend() noexcept { return *backend_; }

  /// Registers the anti-entropy subsystem's dirty-key hook.  Every
  /// mutation path reports the touched key so Merkle digests can be
  /// refreshed incrementally (src/sync).  Null disables reporting.
  void set_observer(sync::KeyObserver* observer) noexcept { observer_ = observer; }

  // ---- crash / recovery --------------------------------------------------

  /// True crash: stops serving AND drops all volatile state.  What
  /// survives is the backend's durable log (nothing for MemBackend; the
  /// flushed prefix for WalBackend).  `torn_tail_bytes` > 0 additionally
  /// injects a torn write — that many bytes of the first un-flushed
  /// record hit the disk before power died.
  void crash(std::size_t torn_tail_bytes = 0) {
    alive_ = false;
    for (const auto& [key, stored] : data_) touched(key);  // trees must forget
    data_.clear();
    hinted_.clear();
    backend_->drop_volatile(torn_tail_bytes);
  }

  /// Replays the backend's surviving log into fresh volatile state and
  /// comes back alive.  Every recovered key is re-dirtied so the Merkle
  /// trees rebuild lazily through the observer.  A LOSSY recovery (the
  /// log dropped records, or there was no log) additionally bumps this
  /// replica's clock incarnation: the recovered counters have rolled
  /// back, so minting dots from them would reuse event ids the peers
  /// already hold for other values.  New writes therefore come from the
  /// incarnation-qualified actor (kv/types.hpp) — Riak's vnode-epoch
  /// move.  Idempotent per crash.
  store::RecoveryStats recover() {
    data_.clear();
    hinted_.clear();
    store::RecoveryResult replay = backend_->recover();
    for (store::Record& rec : replay.records) {
      switch (rec.type) {
        case store::RecordType::kData:
          decode_into(rec.state, data_[rec.key]);
          break;
        case store::RecordType::kHint:
          decode_into(rec.state, hinted_[{rec.owner, rec.key}]);
          break;
        case store::RecordType::kHintDrop:
          hinted_.erase({rec.owner, rec.key});
          break;
      }
    }
    for (const auto& [key, stored] : data_) touched(key);
    if (replay.stats.records_lost_unflushed > 0 ||
        replay.stats.torn_records_dropped > 0) {
      ++incarnation_;
      DVV_ASSERT_MSG(clock_actor() < kClientIdBase,
                     "replica reborn into the client actor space");
    }
    alive_ = true;
    return replay.stats;
  }

  /// How many lossy recoveries this replica has lived through.  The
  /// counter itself stands in for the tiny fsync'd superblock (or
  /// wall-clock epoch) a real node derives its incarnation from — it is
  /// the one thing crash() deliberately does not lose.
  [[nodiscard]] std::uint64_t incarnation() const noexcept { return incarnation_; }

  /// Membership rejoin (src/membership): an id returning to the ring
  /// mints its new dots under the next incarnation, so counters rolled
  /// back — or simply forgotten by the peers — since its departure can
  /// never reuse a pre-departure event id.  Lossy recovery bumps on its
  /// own; this is the REJOIN-path bump the cluster applies on top.
  void bump_incarnation() {
    ++incarnation_;
    DVV_ASSERT_MSG(clock_actor() < kClientIdBase,
                   "replica reborn into the client actor space");
  }

  /// Actor id this replica's NEW dots are minted under.
  [[nodiscard]] ReplicaId clock_actor() const noexcept {
    return incarnation_actor(id_, incarnation_);
  }

  // ---- request path ------------------------------------------------------

  /// Local GET: siblings plus the causal context.
  [[nodiscard]] GetResult get(const M& m, const Key& key) const {
    GetResult r;
    r.replies = 1;
    auto it = data_.find(key);
    if (it == data_.end()) return r;
    r.found = true;
    r.values = m.values_of(it->second);
    r.context = m.context_of(it->second);
    return r;
  }

  /// Local coordinated PUT (the mechanism's update()).  When this
  /// replica coordinates for itself, the dot is minted under its
  /// incarnation-qualified clock actor so a lossily-recovered replica
  /// can never re-issue a pre-crash event id.
  void put(const M& m, const Key& key, ReplicaId coordinator, ClientId client,
           const Context& ctx, Value value) {
    const ReplicaId actor = coordinator == id_ ? clock_actor() : coordinator;
    Stored& slot = data_[key];
    m.update(slot, actor, client, ctx, std::move(value));
    touched(key);
    persist_data(key, slot);
  }

  /// Merges a remote sibling state for `key` into ours (one direction).
  /// When the merge leaves the stored bytes unchanged (duplicate
  /// delivery, dominated remote), nothing is dirtied or persisted — a
  /// converged replica's Merkle paths and WAL stay untouched.
  void merge_key(const M& m, const Key& key, const Stored& remote) {
    merge_key_view(m, key, remote);
  }

  /// merge_key whose key is still a view into a received buffer (the
  /// zero-copy delivery path): the lookup is transparent, so the key
  /// bytes are copied only when the key is NEW here — adoption, the one
  /// place the view path materializes.
  void merge_key_view(const M& m, std::string_view key, const Stored& remote) {
    auto it = data_.find(key);
    const bool inserted = it == data_.end();
    if (inserted) it = data_.try_emplace(Key(key)).first;
    const std::string before = inserted ? std::string() : encode_state(it->second);
    m.sync(it->second, remote);
    const std::string after = encode_state(it->second);
    if (!inserted && after == before) return;
    touched(it->first);
    backend_->append({store::RecordType::kData, it->first, 0, after});
  }

  /// merge_key for a payload that arrived as wire bytes (the transport
  /// layer ships full codec encodings): decodes and merges straight out
  /// of the received buffer.
  void merge_encoded(const M& m, std::string_view key, std::string_view bytes) {
    Stored remote;
    decode_into(bytes, remote);
    merge_key_view(m, key, remote);
  }

  /// Repair write-back: adopts `state` verbatim (the anti-entropy
  /// merge), skipping the write entirely when the key already holds
  /// those exact bytes.  Returns whether anything changed.
  bool adopt(const Key& key, const Stored& state) {
    const std::string after = encode_state(state);
    auto [it, inserted] = data_.try_emplace(key);
    if (!inserted && encode_state(it->second) == after) return false;
    it->second = state;
    touched(key);
    backend_->append({store::RecordType::kData, key, 0, after});
    return true;
  }

  /// Pairwise bidirectional anti-entropy over the union of both key
  /// sets — including parked hints, which are replica state like any
  /// other: after a full sync both replicas hold identical data AND
  /// identical hints for every (owner, key).
  void sync_with(const M& m, Replica& other) {
    for (const auto& [key, stored] : other.data_) merge_key(m, key, stored);
    for (const auto& [key, stored] : data_) other.merge_key(m, key, stored);
    for (const auto& [owner_key, stored] : other.hinted_) {
      stash_hint(m, owner_key.first, owner_key.second, stored);
    }
    for (const auto& [owner_key, stored] : hinted_) {
      other.stash_hint(m, owner_key.first, owner_key.second, stored);
    }
  }

  [[nodiscard]] const Stored* find(std::string_view key) const {
    auto it = data_.find(key);
    return it == data_.end() ? nullptr : &it->second;
  }

  /// All keys this replica holds (sorted: data_ is an ordered map).
  [[nodiscard]] std::vector<Key> keys() const {
    std::vector<Key> out;
    out.reserve(data_.size());
    for (const auto& [key, stored] : data_) out.push_back(key);
    return out;
  }

  /// Aggregate metadata statistics over every key (experiment E5/E6) —
  /// lifted to kv/results.hpp for the mechanism-agnostic facade; the
  /// historical nested name keeps existing callers compiling.
  using Footprint = ::dvv::kv::Footprint;

  [[nodiscard]] Footprint footprint(const M& m) const {
    Footprint f;
    for (const auto& [key, stored] : data_) {
      ++f.keys;
      f.siblings += m.sibling_count(stored);
      f.clock_entries += m.clock_entries(stored);
      f.metadata_bytes += m.metadata_bytes(stored);
      f.total_bytes += m.total_bytes(stored);
    }
    return f;
  }

  // ---- hinted handoff (Dynamo-style sloppy quorum) -----------------------
  //
  // When a preference-list member is down, the coordinator parks the
  // write on a fallback server *with a hint* naming the intended owner.
  // The hinted state is kept aside (it does not serve reads here — this
  // replica does not own the key) and is pushed to the owner when it
  // recovers.  Because the hinted state carries its full causality
  // metadata, delivery is just a sync: late, duplicated or reordered
  // deliveries are harmless.

  /// Parks `remote` for `owner` (merging with any hint already parked).
  void stash_hint(const M& m, ReplicaId owner, const Key& key, const Stored& remote) {
    auto [it, inserted] = hinted_.try_emplace({owner, key});
    const std::string before = inserted ? std::string() : encode_state(it->second);
    m.sync(it->second, remote);
    const std::string after = encode_state(it->second);
    if (!inserted && after == before) return;
    backend_->append({store::RecordType::kHint, key, owner, after});
  }

  /// stash_hint for a payload that arrived as wire bytes (a HintMsg).
  /// Hints are the failure path, so materializing the key here is fine.
  void stash_hint_encoded(const M& m, ReplicaId owner, std::string_view key,
                          std::string_view bytes) {
    Stored remote;
    decode_into(bytes, remote);
    stash_hint(m, owner, Key(key), remote);
  }

  /// Drops the parked hint for (owner, key) if its current bytes still
  /// digest to `digest` — the guard a hint-delivery ack carries, so an
  /// ack that raced a newer re-stash of the same slot cannot erase the
  /// newer write.  Returns whether the hint was dropped.
  bool drop_hint_if(ReplicaId owner, const Key& key, std::uint64_t digest) {
    auto it = hinted_.find({owner, key});
    if (it == hinted_.end()) return false;
    if (sync::state_digest(it->second) != digest) return false;
    backend_->append({store::RecordType::kHintDrop, key, owner, {}});
    hinted_.erase(it);
    return true;
  }

  /// Replaces a parked hint's state wholesale (anti-entropy folds the
  /// hint into the cluster merge and writes the merge back, so future
  /// rounds can recognize the hint as already-reconciled by digest).
  /// No-op unless the hint exists and its bytes actually change.
  void replace_hint(ReplicaId owner, const Key& key, const Stored& state) {
    auto it = hinted_.find({owner, key});
    if (it == hinted_.end()) return;
    const std::string after = encode_state(state);
    if (encode_state(it->second) == after) return;
    it->second = state;
    backend_->append({store::RecordType::kHint, key, owner, after});
  }

  /// Number of (owner, key) hints currently parked here.
  [[nodiscard]] std::size_t hinted_count() const noexcept { return hinted_.size(); }

  /// Parked state for (owner, key), or null.
  [[nodiscard]] const Stored* find_hint(ReplicaId owner, const Key& key) const {
    auto it = hinted_.find({owner, key});
    return it == hinted_.end() ? nullptr : &it->second;
  }

  /// Visits every parked hint as f(owner, key, state), in deterministic
  /// (owner, key) order.
  template <typename F>
  void for_each_hint(F&& f) const {
    for (const auto& [owner_key, stored] : hinted_) {
      f(owner_key.first, owner_key.second, stored);
    }
  }

  /// Delivers every hint whose owner is alive into `owner_lookup(owner)`
  /// (a callback returning Replica&), erasing delivered hints.  Returns
  /// the number delivered.  A dead holder delivers nothing — a crashed
  /// server cannot push writes (Cluster::deliver_hints also skips dead
  /// holders; this guard keeps direct callers honest too).
  template <typename OwnerLookup>
  std::size_t deliver_hints(const M& m, OwnerLookup&& owner_lookup) {
    if (!alive_) return 0;
    std::size_t delivered = 0;
    for (auto it = hinted_.begin(); it != hinted_.end();) {
      Replica& owner = owner_lookup(it->first.first);
      if (owner.alive()) {
        owner.merge_key(m, it->first.second, it->second);
        backend_->append(
            {store::RecordType::kHintDrop, it->first.second, it->first.first, {}});
        it = hinted_.erase(it);
        ++delivered;
      } else {
        ++it;
      }
    }
    return delivered;
  }

  /// Full codec encoding of a Stored — the bytes that cross the wire,
  /// hit the WAL, and feed the state digests.  Public so the message
  /// layer builds payloads from the exact same encoding.
  [[nodiscard]] static std::string encode_state(const Stored& s) {
    codec::Writer w;
    codec::encode(w, s);
    return std::string(reinterpret_cast<const char*>(w.buffer().data()), w.size());
  }

  /// encode_state into a caller-provided buffer.  The message path
  /// encodes payloads into pooled strings through this, so steady state
  /// mints no fresh payload allocation per send — the scratch Writer and
  /// the destination both retain capacity.
  static void encode_state_into(const Stored& s, std::string& out) {
    static thread_local codec::Writer* scratch = new codec::Writer;
    scratch->clear();
    codec::encode(*scratch, s);
    out.assign(reinterpret_cast<const char*>(scratch->buffer().data()),
               scratch->size());
  }

  /// Inverse of encode_state: decodes a wire payload (a quorum-read
  /// reply the coordination engine merges, tests) back into a Stored.
  [[nodiscard]] static Stored decode_state(std::string_view bytes) {
    Stored out;
    decode_into(bytes, out);
    return out;
  }

 private:
  static void decode_into(std::string_view bytes, Stored& out) {
    codec::Reader r(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()));
    codec::decode(r, out);
    DVV_ASSERT_MSG(r.exhausted(), "storage replay: trailing bytes in record");
  }

  void persist_data(const Key& key, const Stored& s) {
    backend_->append({store::RecordType::kData, key, 0, encode_state(s)});
  }

  void touched(const Key& key) {
    if (observer_ != nullptr) observer_->on_key_touched(id_, key);
  }

  ReplicaId id_;
  bool alive_ = true;
  std::uint64_t incarnation_ = 0;  ///< survives crash(); see incarnation()
  sync::KeyObserver* observer_ = nullptr;
  std::unique_ptr<store::StorageBackend> backend_;
  /// Ordered on purpose (dvv_lint bans unordered containers here): every
  /// iteration over replica state — sync_with's merge order, crash/
  /// recover re-dirtying, footprint accounting — is part of the twin-
  /// equivalence surface, and unordered iteration order is an
  /// implementation detail of the standard library build.
  /// std::less<> so the view-based delivery path looks keys up without
  /// materializing a temporary Key (ordering is unchanged).
  std::map<Key, Stored, std::less<>> data_;
  std::map<std::pair<ReplicaId, Key>, Stored> hinted_;
};

}  // namespace dvv::kv
