// dvv/kv/replica.hpp
//
// One storage server: a map from key to the mechanism's per-key sibling
// state.  The replica is deliberately thin — every causality decision
// lives in the mechanism's kernel (src/core) — so that what the cluster
// measures is the clock scheme, not incidental server logic.
#pragma once

#include <cstddef>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kv/mechanism.hpp"
#include "kv/types.hpp"
#include "sync/key_observer.hpp"

namespace dvv::kv {

template <CausalityMechanism M>
class Replica {
 public:
  using Context = typename M::Context;
  using Stored = typename M::Stored;

  struct GetResult {
    bool found = false;
    std::vector<Value> values;  ///< all live siblings
    Context context;            ///< causal context for the client's next PUT
  };

  explicit Replica(ReplicaId id) : id_(id) {}

  [[nodiscard]] ReplicaId id() const noexcept { return id_; }
  [[nodiscard]] std::size_t key_count() const noexcept { return data_.size(); }
  [[nodiscard]] bool alive() const noexcept { return alive_; }
  void set_alive(bool alive) noexcept { alive_ = alive; }

  /// Registers the anti-entropy subsystem's dirty-key hook.  Every
  /// mutation path reports the touched key so Merkle digests can be
  /// refreshed incrementally (src/sync).  Null disables reporting.
  void set_observer(sync::KeyObserver* observer) noexcept { observer_ = observer; }

  /// Local GET: siblings plus the causal context.
  [[nodiscard]] GetResult get(const M& m, const Key& key) const {
    GetResult r;
    auto it = data_.find(key);
    if (it == data_.end()) return r;
    r.found = true;
    r.values = m.values_of(it->second);
    r.context = m.context_of(it->second);
    return r;
  }

  /// Local coordinated PUT (the mechanism's update()).
  void put(const M& m, const Key& key, ReplicaId coordinator, ClientId client,
           const Context& ctx, Value value) {
    m.update(data_[key], coordinator, client, ctx, std::move(value));
    touched(key);
  }

  /// Merges a remote sibling state for `key` into ours (one direction).
  void merge_key(const M& m, const Key& key, const Stored& remote) {
    m.sync(data_[key], remote);
    touched(key);
  }

  /// Pairwise bidirectional anti-entropy over the union of both key sets.
  /// Afterwards both replicas store identical state for every key.
  void sync_with(const M& m, Replica& other) {
    for (auto& [key, stored] : other.data_) {
      m.sync(data_[key], stored);
      touched(key);
    }
    for (auto& [key, stored] : data_) {
      m.sync(other.data_[key], stored);
      other.touched(key);
    }
  }

  [[nodiscard]] const Stored* find(const Key& key) const {
    auto it = data_.find(key);
    return it == data_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] Stored& stored(const Key& key) {
    touched(key);  // caller holds a mutable ref: conservatively dirty
    return data_[key];
  }

  /// All keys this replica holds (sorted for deterministic iteration).
  [[nodiscard]] std::vector<Key> keys() const {
    std::vector<Key> out;
    out.reserve(data_.size());
    for (const auto& [key, stored] : data_) out.push_back(key);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Aggregate metadata statistics over every key (experiment E5/E6).
  struct Footprint {
    std::size_t keys = 0;
    std::size_t siblings = 0;
    std::size_t clock_entries = 0;
    std::size_t metadata_bytes = 0;
    std::size_t total_bytes = 0;

    void merge(const Footprint& o) noexcept {
      keys += o.keys;
      siblings += o.siblings;
      clock_entries += o.clock_entries;
      metadata_bytes += o.metadata_bytes;
      total_bytes += o.total_bytes;
    }
  };

  [[nodiscard]] Footprint footprint(const M& m) const {
    Footprint f;
    for (const auto& [key, stored] : data_) {
      ++f.keys;
      f.siblings += m.sibling_count(stored);
      f.clock_entries += m.clock_entries(stored);
      f.metadata_bytes += m.metadata_bytes(stored);
      f.total_bytes += m.total_bytes(stored);
    }
    return f;
  }

  // ---- hinted handoff (Dynamo-style sloppy quorum) -----------------------
  //
  // When a preference-list member is down, the coordinator parks the
  // write on a fallback server *with a hint* naming the intended owner.
  // The hinted state is kept aside (it does not serve reads here — this
  // replica does not own the key) and is pushed to the owner when it
  // recovers.  Because the hinted state carries its full causality
  // metadata, delivery is just a sync: late, duplicated or reordered
  // deliveries are harmless.

  /// Parks `remote` for `owner` (merging with any hint already parked).
  void stash_hint(const M& m, ReplicaId owner, const Key& key, const Stored& remote) {
    m.sync(hinted_[{owner, key}], remote);
  }

  /// Number of (owner, key) hints currently parked here.
  [[nodiscard]] std::size_t hinted_count() const noexcept { return hinted_.size(); }

  /// Delivers every hint whose owner is alive into `owner_lookup(owner)`
  /// (a callback returning Replica&), erasing delivered hints.  Returns
  /// the number delivered.
  template <typename OwnerLookup>
  std::size_t deliver_hints(const M& m, OwnerLookup&& owner_lookup) {
    std::size_t delivered = 0;
    for (auto it = hinted_.begin(); it != hinted_.end();) {
      Replica& owner = owner_lookup(it->first.first);
      if (owner.alive()) {
        owner.merge_key(m, it->first.second, it->second);
        it = hinted_.erase(it);
        ++delivered;
      } else {
        ++it;
      }
    }
    return delivered;
  }

 private:
  void touched(const Key& key) {
    if (observer_ != nullptr) observer_->on_key_touched(id_, key);
  }

  ReplicaId id_;
  bool alive_ = true;
  sync::KeyObserver* observer_ = nullptr;
  std::unordered_map<Key, Stored> data_;
  std::map<std::pair<ReplicaId, Key>, Stored> hinted_;
};

}  // namespace dvv::kv
