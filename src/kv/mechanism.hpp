// dvv/kv/mechanism.hpp
//
// The CausalityMechanism policy: what a replica needs from a causality-
// tracking scheme to run the multi-version GET/PUT/SYNC workflow.  The
// replica/cluster templates are instantiated once per mechanism, so the
// paper's comparison ("swap the clock, keep the store") is literally how
// the code is organized:
//
//     ServerVvMechanism   Fig. 1b baseline (unsound for racing clients)
//     ClientVvMechanism   Riak-classic baseline (sound, unbounded)
//     PrunedClientVv...   Riak-classic with the unsafe size cap
//     DvvMechanism        the paper's contribution (sound, bounded)
//     DvvSetMechanism     compact sibling-set variant (extension)
//     HistoryMechanism    causal histories — exact, the oracle
//
// A mechanism is a small value object (it may carry configuration, e.g.
// the prune cap); all per-key state lives in its `Stored` type.
#pragma once

#include <concepts>
#include <cstddef>
#include <string_view>
#include <vector>

#include "codec/clock_codec.hpp"
#include "core/causal_history.hpp"
#include "core/dvv_kernel.hpp"
#include "core/dvv_set.hpp"
#include "core/history_kernel.hpp"
#include "core/pruning.hpp"
#include "core/version_vector.hpp"
#include "core/vv_kernels.hpp"
#include "core/vve.hpp"
#include "kv/types.hpp"

namespace dvv::kv {

/// What the replica template requires of a mechanism.
template <typename M>
concept CausalityMechanism = requires(const M cm, M m, typename M::Stored s,
                                      const typename M::Stored cs,
                                      const typename M::Context ctx, Value v) {
  typename M::Context;
  typename M::Stored;
  { M::kName } -> std::convertible_to<std::string_view>;
  { cm.context_of(cs) } -> std::same_as<typename M::Context>;
  { cm.values_of(cs) } -> std::same_as<std::vector<Value>>;
  { m.update(s, ReplicaId{}, ClientId{}, ctx, v) };
  { cm.sync(s, cs) };
  { cm.sibling_count(cs) } -> std::same_as<std::size_t>;
  { cm.clock_entries(cs) } -> std::same_as<std::size_t>;
  { cm.metadata_bytes(cs) } -> std::same_as<std::size_t>;
  { cm.total_bytes(cs) } -> std::same_as<std::size_t>;
};

namespace detail {

template <typename Stored>
[[nodiscard]] std::vector<Value> collect_values(const Stored& s) {
  std::vector<Value> out;
  out.reserve(s.sibling_count());
  for (const auto& v : s.versions()) out.push_back(v.value);
  return out;
}

template <typename Stored>
[[nodiscard]] std::size_t full_encoding_bytes(const Stored& s) {
  codec::Writer w;
  codec::encode(w, s);
  return w.size();
}

}  // namespace detail

/// The paper's mechanism: per-sibling dotted version vectors.
struct DvvMechanism {
  static constexpr std::string_view kName = "dvv";
  using Context = core::VersionVector;
  using Stored = core::DvvSiblings<Value>;

  [[nodiscard]] Context context_of(const Stored& s) const { return s.context(); }
  [[nodiscard]] std::vector<Value> values_of(const Stored& s) const {
    return detail::collect_values(s);
  }
  void update(Stored& s, ReplicaId server, ClientId /*client*/, const Context& ctx,
              Value v) const {
    s.update(server, ctx, std::move(v));
  }
  void sync(Stored& s, const Stored& other) const { s.sync(other); }
  [[nodiscard]] std::size_t sibling_count(const Stored& s) const {
    return s.sibling_count();
  }
  [[nodiscard]] std::size_t clock_entries(const Stored& s) const {
    return s.clock_entries();
  }
  [[nodiscard]] std::size_t metadata_bytes(const Stored& s) const {
    return codec::metadata_size(s);
  }
  [[nodiscard]] std::size_t total_bytes(const Stored& s) const {
    return detail::full_encoding_bytes(s);
  }
};

/// Compact sibling-set variant (one clock per key).
struct DvvSetMechanism {
  static constexpr std::string_view kName = "dvvset";
  using Context = core::VersionVector;
  using Stored = core::DvvSet<Value>;

  [[nodiscard]] Context context_of(const Stored& s) const { return s.context(); }
  [[nodiscard]] std::vector<Value> values_of(const Stored& s) const {
    std::vector<Value> out;
    for (const Value* v : s.values()) out.push_back(*v);
    return out;
  }
  void update(Stored& s, ReplicaId server, ClientId /*client*/, const Context& ctx,
              Value v) const {
    s.update(server, ctx, std::move(v));
  }
  void sync(Stored& s, const Stored& other) const { s.sync(other); }
  [[nodiscard]] std::size_t sibling_count(const Stored& s) const {
    return s.sibling_count();
  }
  [[nodiscard]] std::size_t clock_entries(const Stored& s) const {
    return s.clock_entries();
  }
  [[nodiscard]] std::size_t metadata_bytes(const Stored& s) const {
    return codec::metadata_size(s);
  }
  [[nodiscard]] std::size_t total_bytes(const Stored& s) const {
    return detail::full_encoding_bytes(s);
  }
};

/// Fig. 1b baseline: one VV entry per replica server.  Deliberately
/// faithful to its unsoundness — see core/vv_kernels.hpp.
struct ServerVvMechanism {
  static constexpr std::string_view kName = "server-vv";
  using Context = core::VersionVector;
  using Stored = core::ServerVvSiblings<Value>;

  [[nodiscard]] Context context_of(const Stored& s) const { return s.context(); }
  [[nodiscard]] std::vector<Value> values_of(const Stored& s) const {
    return detail::collect_values(s);
  }
  void update(Stored& s, ReplicaId server, ClientId /*client*/, const Context& ctx,
              Value v) const {
    s.update(server, ctx, std::move(v));
  }
  void sync(Stored& s, const Stored& other) const { s.sync(other); }
  [[nodiscard]] std::size_t sibling_count(const Stored& s) const {
    return s.sibling_count();
  }
  [[nodiscard]] std::size_t clock_entries(const Stored& s) const {
    return s.clock_entries();
  }
  [[nodiscard]] std::size_t metadata_bytes(const Stored& s) const {
    return codec::metadata_size(s);
  }
  [[nodiscard]] std::size_t total_bytes(const Stored& s) const {
    return detail::full_encoding_bytes(s);
  }
};

/// Riak-classic baseline: one VV entry per writing client.  `prune`
/// disabled by default; PrunedClientVvMechanism below turns it on.
struct ClientVvMechanism {
  static constexpr std::string_view kName = "client-vv";
  using Context = core::VersionVector;
  using Stored = core::ClientVvSiblings<Value>;

  core::PruneConfig prune{};
  mutable core::PruneStats prune_stats{};

  [[nodiscard]] Context context_of(const Stored& s) const { return s.context(); }
  [[nodiscard]] std::vector<Value> values_of(const Stored& s) const {
    return detail::collect_values(s);
  }
  void update(Stored& s, ReplicaId /*server*/, ClientId client, const Context& ctx,
              Value v) const {
    s.update(client, ctx, std::move(v), prune, &prune_stats);
  }
  void sync(Stored& s, const Stored& other) const { s.sync(other); }
  [[nodiscard]] std::size_t sibling_count(const Stored& s) const {
    return s.sibling_count();
  }
  [[nodiscard]] std::size_t clock_entries(const Stored& s) const {
    return s.clock_entries();
  }
  [[nodiscard]] std::size_t metadata_bytes(const Stored& s) const {
    return codec::metadata_size(s);
  }
  [[nodiscard]] std::size_t total_bytes(const Stored& s) const {
    return detail::full_encoding_bytes(s);
  }
};

/// Factory for the pruned variant of experiment E8.
[[nodiscard]] inline ClientVvMechanism pruned_client_vv(std::size_t cap) {
  ClientVvMechanism m;
  m.prune = core::PruneConfig{cap};
  return m;
}

/// Version vectors with exceptions (WinFS; the paper's §3 related
/// work).  Exact like the oracle, but encodes histories compactly as
/// base-plus-exceptions instead of explicit event sets — the ablation
/// comparator for "is the single dot enough?" (it is; see
/// bench_vve_ablation).
struct VveMechanism {
  static constexpr std::string_view kName = "vve";
  using Context = core::VersionVectorWithExceptions;
  using Stored = core::VveSiblings<Value>;

  [[nodiscard]] Context context_of(const Stored& s) const { return s.context(); }
  [[nodiscard]] std::vector<Value> values_of(const Stored& s) const {
    return detail::collect_values(s);
  }
  void update(Stored& s, ReplicaId server, ClientId /*client*/, const Context& ctx,
              Value v) const {
    s.update(server, ctx, std::move(v));
  }
  void sync(Stored& s, const Stored& other) const { s.sync(other); }
  [[nodiscard]] std::size_t sibling_count(const Stored& s) const {
    return s.sibling_count();
  }
  [[nodiscard]] std::size_t clock_entries(const Stored& s) const {
    return s.clock_entries();
  }
  [[nodiscard]] std::size_t metadata_bytes(const Stored& s) const {
    return codec::metadata_size(s);
  }
  [[nodiscard]] std::size_t total_bytes(const Stored& s) const {
    return detail::full_encoding_bytes(s);
  }
};

/// Exact causal histories — the oracle mechanism.
struct HistoryMechanism {
  static constexpr std::string_view kName = "causal-history";
  using Context = core::CausalHistory;
  using Stored = core::HistorySiblings<Value>;

  [[nodiscard]] Context context_of(const Stored& s) const { return s.context(); }
  [[nodiscard]] std::vector<Value> values_of(const Stored& s) const {
    return detail::collect_values(s);
  }
  void update(Stored& s, ReplicaId server, ClientId /*client*/, const Context& ctx,
              Value v) const {
    s.update(server, ctx, std::move(v));
  }
  void sync(Stored& s, const Stored& other) const { s.sync(other); }
  [[nodiscard]] std::size_t sibling_count(const Stored& s) const {
    return s.sibling_count();
  }
  [[nodiscard]] std::size_t clock_entries(const Stored& s) const {
    std::size_t n = 0;
    for (const auto& v : s.versions()) n += v.history.size();
    return n;
  }
  [[nodiscard]] std::size_t metadata_bytes(const Stored& s) const {
    return codec::metadata_size(s);
  }
  [[nodiscard]] std::size_t total_bytes(const Stored& s) const {
    return detail::full_encoding_bytes(s);
  }
};

static_assert(CausalityMechanism<DvvMechanism>);
static_assert(CausalityMechanism<DvvSetMechanism>);
static_assert(CausalityMechanism<ServerVvMechanism>);
static_assert(CausalityMechanism<ClientVvMechanism>);
static_assert(CausalityMechanism<VveMechanism>);
static_assert(CausalityMechanism<HistoryMechanism>);

}  // namespace dvv::kv
