// dvv/kv/token.hpp
//
// Opaque causal-context tokens — the wire form of "the client returns
// with its next PUT exactly what the last GET handed it".
//
// The paper's client contract is *opacity*: a GET returns the sibling
// values plus a causal context the client must treat as an opaque
// token; the server mints the dots.  That is what keeps DVV metadata
// bounded by the replica count where client-side IDs grow without
// bound — and it only holds if clients *cannot* inspect, forge or
// cross-wire contexts.  Riak ships the same contract as the opaque
// X-Riak-Vclock header.
//
// A CausalToken is the codec encoding of one mechanism's Context type
// under a small versioned header:
//
//     offset 0   magic 0xD7          ("DVV")
//     offset 1   magic 0x70
//     offset 2   format version      (1)
//     offset 3   mechanism tag       (MechanismId, 1..6)
//     ...        varint payload size
//     ...        payload             (codec context encoding)
//     last 4     CRC-32 (IEEE, little-endian) of everything above
//
// The empty token (zero bytes) is the empty causal context — a blind
// write — and is valid for every mechanism.
//
// Decoding is STRICT: a truncated, bit-flipped, wrong-magic,
// wrong-version or cross-mechanism token, a payload that does not parse
// exactly, and even a payload that parses but is not in canonical
// encoded form (decode→encode would not reproduce the bytes) are all
// rejected by returning false — never an assert, and never a silent
// fall-back to a blind write.  The kv::Store facade surfaces the
// rejection as StoreStatus::kBadToken without touching any state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "core/causal_history.hpp"
#include "core/version_vector.hpp"
#include "core/vve.hpp"

namespace dvv::kv {

/// Wire tag naming the causality mechanism a token belongs to.  Two
/// mechanisms sharing a Context TYPE (four of the six use a plain
/// VersionVector) still get distinct tags: a token minted by a DVV
/// store fed to a server-VV store is a cross-wired context and must be
/// rejected, not reinterpreted.
enum class MechanismId : std::uint8_t {
  kDvv = 1,
  kDvvSet = 2,
  kServerVv = 3,
  kClientVv = 4,
  kVve = 5,
  kCausalHistory = 6,
};

/// Canonical mechanism name ("dvv", "dvvset", "server-vv", "client-vv",
/// "vve", "causal-history") — matches each mechanism's kName.
[[nodiscard]] std::string_view to_string(MechanismId id) noexcept;

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<MechanismId> mechanism_id_of(
    std::string_view name) noexcept;

/// The opaque token.  Clients store and return it; only the store that
/// minted it (same mechanism) can decode it.  Equality is byte
/// equality — exactly what a client caching tokens per key needs.
class CausalToken {
 public:
  CausalToken() = default;

  /// Wraps raw wire bytes (e.g. received from a remote client) without
  /// validation — decoding validates.
  [[nodiscard]] static CausalToken from_bytes(std::string bytes) {
    CausalToken t;
    t.bytes_ = std::move(bytes);
    return t;
  }

  [[nodiscard]] bool empty() const noexcept { return bytes_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] const std::string& bytes() const noexcept { return bytes_; }

  friend bool operator==(const CausalToken&, const CausalToken&) = default;

 private:
  std::string bytes_;
};

// ---- minting ---------------------------------------------------------------

[[nodiscard]] CausalToken encode_token(MechanismId id,
                                       const core::VersionVector& ctx);
[[nodiscard]] CausalToken encode_token(
    MechanismId id, const core::VersionVectorWithExceptions& ctx);
[[nodiscard]] CausalToken encode_token(MechanismId id,
                                       const core::CausalHistory& ctx);

// ---- strict decoding -------------------------------------------------------
//
// Returns true and fills `out` when `token` is either empty (the empty
// context) or a well-formed token minted for `expect`.  Returns false
// — leaving `out` untouched — on ANY malformation.  Bounded work:
// every decode step is linear in the bytes the caller already holds
// (no size amplification), except that a forged VVE payload could
// CLAIM a huge exception count against a tiny byte string; claims
// beyond kMaxTokenEvents are rejected before any allocation.  There is
// deliberately no absolute size cap: every token encode_token can mint
// must strictly decode, whatever the mechanism's metadata growth.

inline constexpr std::uint64_t kMaxTokenEvents = 1u << 20;

[[nodiscard]] bool decode_token(const CausalToken& token, MechanismId expect,
                                core::VersionVector& out);
[[nodiscard]] bool decode_token(const CausalToken& token, MechanismId expect,
                                core::VersionVectorWithExceptions& out);
[[nodiscard]] bool decode_token(const CausalToken& token, MechanismId expect,
                                core::CausalHistory& out);

/// Mechanism tag of a structurally plausible token (header present and
/// magic/version right) — diagnostics only; says nothing about payload
/// integrity.  nullopt for empty or obviously malformed tokens.
[[nodiscard]] std::optional<MechanismId> token_mechanism(
    const CausalToken& token) noexcept;

}  // namespace dvv::kv
