// dvv/kv/snapshot.hpp
//
// Replica snapshots: serialize a replica's entire key->siblings state
// through the wire codec and restore it later.  This is the durability
// story of the simulated store (a crashed server that recovers "with
// its old state" is a snapshot written before the crash), and a
// whole-state exercise of the codec layer.
//
// Restore merges via the mechanism's sync rather than overwriting, so
// restoring a stale snapshot into a live replica is safe: dominated
// versions are discarded by the clocks, concurrent ones become
// siblings — the same guarantee anti-entropy gives, because it IS
// anti-entropy against a serialized past self.
#pragma once

#include <cstddef>

#include "codec/wire.hpp"
#include "kv/mechanism.hpp"
#include "kv/replica.hpp"

namespace dvv::kv {

/// Serializes `replica`'s primary data (not parked hints) as
/// count, (key, stored)*.
template <CausalityMechanism M>
void snapshot_replica(codec::Writer& w, const Replica<M>& replica) {
  const auto keys = replica.keys();
  w.varint(keys.size());
  for (const Key& key : keys) {
    w.bytes(key);
    const auto* stored = replica.find(key);
    DVV_ASSERT(stored != nullptr);
    codec::encode(w, *stored);
  }
}

/// Decoder dispatch per mechanism (the codec names its decode functions
/// by type; this maps Stored -> the right one).
template <typename Stored>
Stored decode_stored(codec::Reader& r);

template <>
inline core::DvvSiblings<Value> decode_stored(codec::Reader& r) {
  return codec::decode_dvv_siblings(r);
}
template <>
inline core::DvvSet<Value> decode_stored(codec::Reader& r) {
  return codec::decode_dvv_set(r);
}
template <>
inline core::ServerVvSiblings<Value> decode_stored(codec::Reader& r) {
  return codec::decode_server_vv_siblings(r);
}
template <>
inline core::ClientVvSiblings<Value> decode_stored(codec::Reader& r) {
  return codec::decode_client_vv_siblings(r);
}
template <>
inline core::HistorySiblings<Value> decode_stored(codec::Reader& r) {
  return codec::decode_history_siblings(r);
}
template <>
inline core::VveSiblings<Value> decode_stored(codec::Reader& r) {
  return codec::decode_vve_siblings(r);
}

/// Merges a snapshot into `replica` (sync semantics; see header note).
/// Returns the number of keys restored.
template <CausalityMechanism M>
std::size_t restore_replica(codec::Reader& r, const M& mechanism,
                            Replica<M>& replica) {
  const std::uint64_t count = r.varint();
  for (std::uint64_t i = 0; i < count; ++i) {
    Key key = r.bytes();
    auto stored = decode_stored<typename M::Stored>(r);
    replica.merge_key(mechanism, key, stored);
  }
  return static_cast<std::size_t>(count);
}

}  // namespace dvv::kv
