// dvv/kv/store.cpp
//
// The type-erased half of the facade: TypedStore<M> wraps Cluster<M>
// behind the Store interface, minting CausalTokens on every result that
// leaves and strictly decoding every token that arrives.  All six
// mechanisms are instantiated HERE, once — harness binaries that drive
// the facade stop paying the per-mechanism template fan-out.
#include "kv/store.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "obs/metrics.hpp"

namespace dvv::kv {

namespace {

/// Folds a facade result's status into the store.* taxonomy.
void note_status(StoreStatus status) {
  obs::StoreMetrics& m = obs::store_metrics();
  switch (status) {
    case StoreStatus::kOk: m.status_ok.inc(); break;
    case StoreStatus::kUnavailable: m.status_unavailable.inc(); break;
    case StoreStatus::kBadToken: m.status_bad_token.inc(); break;
  }
}

[[nodiscard]] StoreGetResult note_get(StoreGetResult out) {
  obs::store_metrics().gets.inc();
  note_status(out.status);
  return out;
}

[[nodiscard]] StorePutResult note_put(StorePutResult out) {
  obs::store_metrics().puts.inc();
  note_status(out.status);
  return out;
}

/// Compile-time mechanism -> wire tag.  Two mechanisms sharing a
/// Context TYPE still get distinct tags (see token.hpp).
template <typename M>
struct MechanismTag;
template <>
struct MechanismTag<DvvMechanism> {
  static constexpr MechanismId kId = MechanismId::kDvv;
};
template <>
struct MechanismTag<DvvSetMechanism> {
  static constexpr MechanismId kId = MechanismId::kDvvSet;
};
template <>
struct MechanismTag<ServerVvMechanism> {
  static constexpr MechanismId kId = MechanismId::kServerVv;
};
template <>
struct MechanismTag<ClientVvMechanism> {
  static constexpr MechanismId kId = MechanismId::kClientVv;
};
template <>
struct MechanismTag<VveMechanism> {
  static constexpr MechanismId kId = MechanismId::kVve;
};
template <>
struct MechanismTag<HistoryMechanism> {
  static constexpr MechanismId kId = MechanismId::kCausalHistory;
};

[[nodiscard]] ClusterConfig cluster_config_of(const StoreConfig& config) {
  ClusterConfig out;
  out.servers = config.servers;
  out.replication = config.replication;
  out.vnodes = config.vnodes;
  out.aae = config.aae;
  out.storage = config.storage;
  out.transport = config.transport;
  out.capacity = config.capacity;
  out.initial_members = config.initial_members;
  return out;
}

template <CausalityMechanism M>
class TypedStore final : public Store {
 public:
  using Context = typename M::Context;
  static constexpr MechanismId kId = MechanismTag<M>::kId;

  TypedStore(const StoreConfig& config, M mechanism)
      : cluster_(cluster_config_of(config), std::move(mechanism)) {}

  // ---- identity / topology ----------------------------------------------

  [[nodiscard]] std::string_view mechanism_name() const noexcept override {
    return M::kName;
  }
  [[nodiscard]] MechanismId mechanism_id() const noexcept override { return kId; }
  [[nodiscard]] std::size_t servers() const noexcept override {
    return cluster_.servers();
  }
  [[nodiscard]] std::vector<ReplicaId> preference_list(
      const Key& key) const override {
    return cluster_.preference_list(key);
  }
  [[nodiscard]] std::optional<ReplicaId> default_coordinator(
      const Key& key) const override {
    return cluster_.default_coordinator(key);
  }
  [[nodiscard]] bool alive(ReplicaId r) const override {
    return cluster_.replica(r).alive();
  }
  void set_alive(ReplicaId r, bool alive) override {
    cluster_.replica(r).set_alive(alive);
  }
  void crash(ReplicaId r, std::size_t torn_tail_bytes) override {
    cluster_.crash(r, torn_tail_bytes);
  }
  store::RecoveryStats recover(ReplicaId r) override { return cluster_.recover(r); }

  // ---- synchronous request path -----------------------------------------

  [[nodiscard]] StoreGetResult get(const Key& key,
                                   std::optional<ReplicaId> from) const override {
    const std::optional<ReplicaId> source =
        from.has_value() ? from : cluster_.default_coordinator(key);
    StoreGetResult out;
    if (!source.has_value() || !cluster_.replica(*source).alive()) {
      out.status = StoreStatus::kUnavailable;
      return note_get(std::move(out));
    }
    return note_get(to_get_result(cluster_.get(key, *source)));
  }

  [[nodiscard]] StoreGetResult get_quorum(const Key& key,
                                          std::size_t quorum) override {
    return note_get(to_get_result(cluster_.get_quorum(key, quorum)));
  }

  StorePutResult put(const Key& key, ClientId client, const CausalToken& token,
                     Value value) override {
    Context ctx;
    if (!decode_token(token, kId, ctx)) return note_put(bad_token_put());
    return note_put(
        to_put_result(cluster_.put(key, client, ctx, std::move(value))));
  }

  StorePutResult put_at(const Key& key, ReplicaId coordinator, ClientId client,
                        const CausalToken& token, Value value,
                        const std::vector<ReplicaId>& replicate_to) override {
    Context ctx;
    if (!decode_token(token, kId, ctx)) return note_put(bad_token_put());
    return note_put(to_put_result(cluster_.put(key, coordinator, client, ctx,
                                               std::move(value), replicate_to)));
  }

  StorePutResult put_with_handoff(const Key& key, ReplicaId coordinator,
                                  ClientId client, const CausalToken& token,
                                  Value value) override {
    Context ctx;
    if (!decode_token(token, kId, ctx)) return note_put(bad_token_put());
    return note_put(to_put_result(cluster_.put_with_handoff(
        key, coordinator, client, ctx, std::move(value))));
  }

  // ---- shard-per-thread server path --------------------------------------

  [[nodiscard]] std::size_t shard_count() const noexcept override {
    return cluster_.shard_count();
  }
  [[nodiscard]] std::size_t shard_of(ReplicaId r) const noexcept override {
    return cluster_.shard_of(r);
  }
  void run_at(ReplicaId r, const std::function<void()>& fn) override {
    cluster_.run_at(r, fn);
  }

  StorePutResult put_direct_local(const Key& key, ClientId client,
                                  const CausalToken& token,
                                  Value value) override {
    Context ctx;
    if (!decode_token(token, kId, ctx)) return note_put(bad_token_put());
    const std::optional<ReplicaId> coord = cluster_.default_coordinator(key);
    if (!coord.has_value()) return note_put(unavailable_put());
    return note_put(to_put_result(
        cluster_.put_direct(key, *coord, client, ctx, std::move(value))));
  }

  [[nodiscard]] StoreGetResult get_local(const Key& key) override {
    return get(key, std::nullopt);
  }

  // put_direct / get_direct resolve the coordinator on the CALLING
  // thread before hopping into its serial domain — the world-stop
  // inside a membership transition parks only shard threads, so a
  // client thread's routing read would race a transition from the
  // admin thread.  routing_mu_ closes that hole: client entries take
  // it shared (they never block each other), the control-plane
  // mutators below take it exclusive.  Shard threads never touch this
  // lock — their routing reads are already serialized by the
  // world-stop itself (the dvvd path enters via *_local).

  StorePutResult put_direct(const Key& key, ClientId client,
                            const CausalToken& token, Value value) override {
    std::shared_lock<std::shared_mutex> guard(routing_mu_);
    const std::optional<ReplicaId> coord = cluster_.default_coordinator(key);
    if (!coord.has_value()) return note_put(unavailable_put());
    StorePutResult out;
    cluster_.run_at(*coord, [&] {
      out = put_direct_local(key, client, token, std::move(value));
    });
    return out;
  }

  [[nodiscard]] StoreGetResult get_direct(const Key& key) override {
    std::shared_lock<std::shared_mutex> guard(routing_mu_);
    const std::optional<ReplicaId> coord = cluster_.default_coordinator(key);
    if (!coord.has_value()) {
      StoreGetResult out;
      out.status = StoreStatus::kUnavailable;
      return note_get(std::move(out));
    }
    StoreGetResult out;
    cluster_.run_at(*coord, [&] { out = get_local(key); });
    return out;
  }

  // ---- asynchronous quorum coordination ---------------------------------

  [[nodiscard]] std::uint64_t begin_read(const Key& key, std::size_t quorum,
                                         const ReadOptions& opts) override {
    obs::store_metrics().begin_reads.inc();
    return cluster_.begin_read(key, quorum, opts);
  }
  [[nodiscard]] std::uint64_t begin_read_at(const Key& key, ReplicaId coordinator,
                                            std::size_t quorum,
                                            const ReadOptions& opts) override {
    obs::store_metrics().begin_reads.inc();
    return cluster_.begin_read_at(key, coordinator, quorum, opts);
  }
  [[nodiscard]] StoreWriteBegin begin_write(
      const Key& key, ReplicaId coordinator, ClientId client,
      const CausalToken& token, Value value,
      const std::vector<ReplicaId>& replicate_to,
      const WriteOptions& opts) override {
    obs::store_metrics().begin_writes.inc();
    Context ctx;
    if (!decode_token(token, kId, ctx)) {
      note_status(StoreStatus::kBadToken);
      return StoreWriteBegin{StoreStatus::kBadToken, kInvalidRequestId};
    }
    note_status(StoreStatus::kOk);
    return StoreWriteBegin{
        StoreStatus::kOk,
        cluster_.begin_write(key, coordinator, client, ctx, std::move(value),
                             replicate_to, opts)};
  }
  [[nodiscard]] bool request_open(std::uint64_t id) const override {
    return cluster_.request_open(id);
  }
  [[nodiscard]] bool request_terminal(std::uint64_t id) const override {
    return cluster_.request_terminal(id);
  }
  [[nodiscard]] std::vector<std::uint64_t> take_completed_requests() override {
    return cluster_.take_completed_requests();
  }
  bool finalize_request(std::uint64_t id) override {
    return cluster_.finalize_request(id);
  }
  [[nodiscard]] StoreReadHarvest take_read_result(std::uint64_t id) override {
    auto h = cluster_.take_read_result(id);
    StoreReadHarvest out;
    out.result = to_get_result(std::move(h.result));
    out.key = std::move(h.key);
    out.coordinator = h.coordinator;
    out.outcome = h.outcome;
    out.quorum = h.quorum;
    out.asked = h.asked;
    out.responders = std::move(h.responders);
    out.state_bytes = h.state_bytes;
    out.metadata_bytes = h.metadata_bytes;
    out.siblings = h.siblings;
    out.clock_entries = h.clock_entries;
    return out;
  }
  [[nodiscard]] PutReceipt take_write_receipt(std::uint64_t id) override {
    return cluster_.take_write_receipt(id);
  }
  [[nodiscard]] const PutReceipt& peek_write_receipt(
      std::uint64_t id) const override {
    return cluster_.peek_write_receipt(id);
  }
  [[nodiscard]] const CoordStats& coord_stats() const noexcept override {
    return cluster_.coord_stats();
  }
  [[nodiscard]] std::size_t requests_in_flight() const noexcept override {
    return cluster_.requests_in_flight();
  }

  // ---- transport hooks ---------------------------------------------------

  [[nodiscard]] net::Transport& transport() noexcept override {
    return cluster_.transport();
  }
  std::size_t pump() override { return cluster_.pump(); }
  std::size_t pump_all() override { return cluster_.pump_all(); }
  void partition(const std::vector<std::vector<ReplicaId>>& groups,
                 std::string label) override {
    cluster_.partition(groups, std::move(label));
  }
  void heal() override { cluster_.heal(); }
  [[nodiscard]] const DeliveryDrops& delivery_drops() const noexcept override {
    return cluster_.delivery_drops();
  }

  // ---- hinted handoff + anti-entropy hooks -------------------------------

  std::size_t deliver_hints() override { return cluster_.deliver_hints(); }
  [[nodiscard]] std::size_t hinted_count() const override {
    return cluster_.hinted_count();
  }
  std::size_t anti_entropy() override {
    obs::store_metrics().anti_entropy_runs.inc();
    return cluster_.anti_entropy();
  }
  DigestRepairReport anti_entropy_digest() override {
    obs::store_metrics().anti_entropy_runs.inc();
    return cluster_.anti_entropy_digest();
  }
  sync::SyncStats anti_entropy_digest_pair(ReplicaId a, ReplicaId b) override {
    return cluster_.anti_entropy_digest_pair(a, b);
  }
  std::uint64_t request_sync(ReplicaId a, ReplicaId b) override {
    return cluster_.request_sync(a, b);
  }
  [[nodiscard]] std::vector<CompletedSync> take_completed_syncs() override {
    return cluster_.take_completed_syncs();
  }

  // ---- elastic membership -------------------------------------------------

  [[nodiscard]] std::uint64_t ring_epoch() const noexcept override {
    return cluster_.ring_epoch();
  }
  [[nodiscard]] std::vector<ReplicaId> members() const override {
    return cluster_.members();
  }
  [[nodiscard]] bool rebalancing() const noexcept override {
    return cluster_.rebalancing();
  }
  [[nodiscard]] membership::RebalanceStats rebalance_stats() const override {
    return cluster_.rebalance_stats();
  }
  bool join_node(ReplicaId node) override {
    std::unique_lock<std::shared_mutex> guard(routing_mu_);
    if (node >= cluster_.servers()) return false;
    if (cluster_.membership().is_member(node)) return false;
    if (!cluster_.replica(node).alive()) return false;
    cluster_.join_node(node);
    return true;
  }
  bool leave_node(ReplicaId node) override {
    std::unique_lock<std::shared_mutex> guard(routing_mu_);
    if (!can_depart(node)) return false;
    cluster_.leave_node(node);
    return true;
  }
  bool remove_node(ReplicaId node) override {
    std::unique_lock<std::shared_mutex> guard(routing_mu_);
    if (!can_depart(node)) return false;
    cluster_.remove_node(node);
    return true;
  }
  std::size_t rebalance_step() override {
    std::unique_lock<std::shared_mutex> guard(routing_mu_);
    return cluster_.rebalance_step_stopped();
  }
  membership::RebalanceStats complete_rebalance() override {
    std::unique_lock<std::shared_mutex> guard(routing_mu_);
    return cluster_.complete_rebalance_stopped();
  }

  // ---- observability -----------------------------------------------------

  [[nodiscard]] Footprint footprint() const override {
    return cluster_.footprint();
  }
  [[nodiscard]] StoreKeyStats key_stats(ReplicaId r,
                                        const Key& key) const override {
    StoreKeyStats out;
    const auto* stored = cluster_.replica(r).find(key);
    if (stored == nullptr) return out;
    const M& m = cluster_.mechanism();
    out.found = true;
    out.metadata_bytes = m.metadata_bytes(*stored);
    out.total_bytes = m.total_bytes(*stored);
    out.siblings = m.sibling_count(*stored);
    out.clock_entries = m.clock_entries(*stored);
    return out;
  }
  [[nodiscard]] std::vector<Key> keys(ReplicaId r) const override {
    return cluster_.replica(r).keys();
  }
  [[nodiscard]] std::optional<std::string> encoded_state(
      ReplicaId r, const Key& key) const override {
    const auto* stored = cluster_.replica(r).find(key);
    if (stored == nullptr) return std::nullopt;
    return Replica<M>::encode_state(*stored);
  }

 private:
  /// Maps a templated GetResult to the facade's: the raw context leaves
  /// the process only as a minted token, and an unavailable reply
  /// carries NO token (an error must never clobber a client's context).
  [[nodiscard]] StoreGetResult to_get_result(
      typename Cluster<M>::GetResult r) const {
    StoreGetResult out;
    if (r.unavailable) {
      out.status = StoreStatus::kUnavailable;
      out.replies = r.replies;
      return out;
    }
    out.found = r.found;
    out.degraded = r.degraded;
    out.replies = r.replies;
    out.values = std::move(r.values);
    out.token = encode_token(kId, r.context);
    return out;
  }

  [[nodiscard]] static StorePutResult to_put_result(PutReceipt receipt) {
    StorePutResult out;
    out.status = receipt.unavailable ? StoreStatus::kUnavailable : StoreStatus::kOk;
    out.receipt = std::move(receipt);
    return out;
  }

  [[nodiscard]] static StorePutResult bad_token_put() {
    StorePutResult out;
    out.status = StoreStatus::kBadToken;
    return out;
  }

  /// A node may leave (or be removed) only while it is a member and the
  /// ring stays at or above the replication floor without it.
  [[nodiscard]] bool can_depart(ReplicaId node) const {
    return cluster_.membership().is_member(node) &&
           cluster_.members().size() > cluster_.membership().replication();
  }

  [[nodiscard]] static StorePutResult unavailable_put() {
    StorePutResult out;
    out.status = StoreStatus::kUnavailable;
    out.receipt.unavailable = true;
    out.receipt.outcome = CoordOutcome::kUnavailable;
    return out;
  }

  Cluster<M> cluster_;
  /// Client-thread routing reads (shared) vs membership control plane
  /// (exclusive) — see the put_direct/get_direct comment above.
  mutable std::shared_mutex routing_mu_;
};

}  // namespace

const std::vector<std::string>& known_mechanisms() {
  static const std::vector<std::string> kNames = {
      "dvv", "dvvset", "server-vv", "client-vv", "vve", "causal-history"};
  return kNames;
}

std::string default_mechanism_name() {
  if (const char* v = std::getenv("DVV_MECHANISM")) {
    if (mechanism_id_of(v).has_value()) return v;
    // A typo here (e.g. DVV_MECHANISM=dvvst in a CI matrix leg) must
    // not silently run everything against the default and pass.
    std::string expected;
    for (const std::string& name : known_mechanisms()) {
      if (!expected.empty()) expected += ", ";
      expected += name;
    }
    std::fprintf(stderr,
                 "DVV_MECHANISM=\"%s\" is not a known mechanism; expected one "
                 "of: %s\n",
                 v, expected.c_str());
    std::abort();
  }
  return "dvv";
}

std::unique_ptr<Store> make_store(StoreConfig config) {
  std::string name =
      config.mechanism.empty() ? default_mechanism_name() : config.mechanism;
  const std::optional<MechanismId> id = mechanism_id_of(name);
  if (!id.has_value()) return nullptr;
  switch (*id) {
    case MechanismId::kDvv:
      return std::make_unique<TypedStore<DvvMechanism>>(config, DvvMechanism{});
    case MechanismId::kDvvSet:
      return std::make_unique<TypedStore<DvvSetMechanism>>(config,
                                                           DvvSetMechanism{});
    case MechanismId::kServerVv:
      return std::make_unique<TypedStore<ServerVvMechanism>>(config,
                                                             ServerVvMechanism{});
    case MechanismId::kClientVv:
      return std::make_unique<TypedStore<ClientVvMechanism>>(
          config, config.prune_cap > 0 ? pruned_client_vv(config.prune_cap)
                                       : ClientVvMechanism{});
    case MechanismId::kVve:
      return std::make_unique<TypedStore<VveMechanism>>(config, VveMechanism{});
    case MechanismId::kCausalHistory:
      return std::make_unique<TypedStore<HistoryMechanism>>(config,
                                                            HistoryMechanism{});
  }
  return nullptr;
}

std::unique_ptr<Store> make_store(std::string_view mechanism,
                                  StoreConfig config) {
  config.mechanism = std::string(mechanism);
  return make_store(std::move(config));
}

}  // namespace dvv::kv
