// dvv/kv/ring.hpp
//
// Consistent-hashing ring with virtual nodes — the placement layer of
// every Dynamo-descendant (and of Riak, the system the paper's
// evaluation modified).  A key hashes to a point on the ring; its
// *preference list* is the next R distinct physical servers clockwise
// from that point.  The first entry coordinates writes unless the
// cluster is configured to spread coordination (see Cluster).
//
// Placement is orthogonal to causality tracking, but it determines *how
// many distinct servers ever coordinate writes for one key* — which is
// precisely the bound on DVV metadata size.  The ring makes that bound
// R for free, so the metadata benches exercise the paper's
// "bounded by the degree of replication" claim under realistic routing.
//
// Membership (src/membership): a ring is a SNAPSHOT over an explicit
// member list.  A member's vnode points depend only on its own id
// ("vnode:<id>:<v>"), never on who else is present, so two rings that
// share a member agree on that member's positions — adding or removing
// one node moves only the key ranges adjacent to its vnodes (minimal
// movement, the property rebalancing cost rides on).  Ring objects are
// immutable; membership changes mint a new Ring inside a new RingEpoch.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "kv/types.hpp"
#include "util/assert.hpp"

namespace dvv::kv {

class Ring {
 public:
  /// `servers`: number of physical servers (ReplicaIds 0..servers-1).
  /// `replication`: preference-list length R (1 <= R <= servers).
  /// `vnodes`: virtual nodes per server (more = smoother balance).
  Ring(std::size_t servers, std::size_t replication, std::size_t vnodes = 64);

  /// Ring over an explicit member list (need not be contiguous — a
  /// cluster after joins and leaves routes over exactly this set).
  /// Members must be distinct; order does not matter (vnode points are
  /// a pure function of each member's id).
  Ring(std::vector<ReplicaId> members, std::size_t replication,
       std::size_t vnodes = 64);

  /// Number of ring members (NOT the highest id: after churn the member
  /// list can be sparse).
  [[nodiscard]] std::size_t servers() const noexcept { return members_.size(); }
  [[nodiscard]] std::size_t replication() const noexcept { return replication_; }
  [[nodiscard]] std::size_t vnodes_per_server() const noexcept { return vnodes_; }

  /// The member ids this ring routes over, ascending.
  [[nodiscard]] const std::vector<ReplicaId>& members() const noexcept {
    return members_;
  }
  [[nodiscard]] bool is_member(ReplicaId r) const noexcept;

  /// The R distinct servers responsible for `key`, coordinator first.
  [[nodiscard]] std::vector<ReplicaId> preference_list(std::string_view key) const;

  /// ALL distinct servers in clockwise ring order starting from the
  /// key's position.  preference_list is the first R entries; the rest
  /// are the fallback order used for hinted handoff when preference
  /// members are down.
  [[nodiscard]] std::vector<ReplicaId> ring_order(std::string_view key) const;

  /// 64-bit FNV-1a, exposed for tests and for workload key bucketing.
  [[nodiscard]] static std::uint64_t hash(std::string_view data) noexcept;

 private:
  struct VNode {
    std::uint64_t point;
    ReplicaId server;

    bool operator<(const VNode& o) const noexcept {
      if (point != o.point) return point < o.point;
      return server < o.server;
    }
  };

  std::vector<ReplicaId> members_;  // distinct, ascending
  std::size_t replication_;
  std::size_t vnodes_;
  std::vector<VNode> ring_;  // sorted by point
};

}  // namespace dvv::kv
