// dvv/kv/client.hpp
//
// A client session against the cluster: the read-modify-write loop from
// the paper's storage workflow.  The session remembers, per key, the
// causal context of its most recent GET and sends it with the next PUT —
// exactly the client-side behaviour whose causality the mechanisms must
// track.  A session that PUTs with a *stale* context (an old GET, or no
// GET at all — a blind write) is how concurrent versions arise.
#pragma once

#include <optional>
#include <map>
#include <utility>

#include "kv/cluster.hpp"
#include "kv/types.hpp"

namespace dvv::kv {

template <CausalityMechanism M>
class ClientSession {
 public:
  using Context = typename M::Context;

  ClientSession(ClientId id, Cluster<M>& cluster) : id_(id), cluster_(&cluster) {}

  [[nodiscard]] ClientId id() const noexcept { return id_; }

  /// GET through `from` (defaults to the key's coordinator); remembers
  /// the returned context for the next put().  When no coordinator is
  /// alive — or the explicitly-chosen source is down — the result comes
  /// back `unavailable` and the remembered context is left untouched:
  /// an error reply, not a crash, and never a context rollback (a
  /// clobbered context would turn the session's next put into a blind
  /// write).
  typename Cluster<M>::GetResult get(const Key& key,
                                     std::optional<ReplicaId> from = std::nullopt) {
    const std::optional<ReplicaId> source =
        from.has_value() ? from : cluster_->default_coordinator(key);
    if (!source.has_value() || !cluster_->replica(*source).alive()) {
      typename Cluster<M>::GetResult out;
      out.unavailable = true;
      return out;
    }
    auto result = cluster_->get(key, *source);
    contexts_[key] = result.context;
    return result;
  }

  /// PUT with the remembered context (empty if this session never read
  /// the key — a blind write).  Returns the cluster receipt.
  typename Cluster<M>::PutReceipt put(const Key& key, Value value) {
    const Context ctx = context_for(key);
    return cluster_->put(key, id_, ctx, std::move(value));
  }

  /// PUT with explicit routing (coordinator + replication fan-out),
  /// still using the remembered context.
  typename Cluster<M>::PutReceipt put_via(const Key& key, ReplicaId coordinator,
                                          Value value,
                                          const std::vector<ReplicaId>& replicate_to) {
    const Context ctx = context_for(key);
    return cluster_->put(key, coordinator, id_, ctx, std::move(value), replicate_to);
  }

  /// PUT through the sloppy quorum: dead preference members get hints
  /// parked on fallback servers (Cluster::put_with_handoff).
  typename Cluster<M>::PutReceipt put_with_handoff(const Key& key,
                                                   ReplicaId coordinator,
                                                   Value value) {
    const Context ctx = context_for(key);
    return cluster_->put_with_handoff(key, coordinator, id_, ctx, std::move(value));
  }

  /// Read-modify-write: GET, apply `f` to the sibling values, PUT the
  /// result.  This is the canonical correct client loop: because the PUT
  /// carries the GET's context, it overwrites exactly what was read and
  /// nothing else.  When the GET comes back unavailable the RMW must
  /// NOT write: the read it would be conditioned on never happened, so
  /// proceeding would blind-write f({}) under the stale remembered
  /// context (tests/cluster_test.cpp: RmwOnUnavailableReadDoesNotWrite).
  template <typename F>
  typename Cluster<M>::PutReceipt rmw(const Key& key, F&& f) {
    auto r = get(key);
    if (r.unavailable) {
      typename Cluster<M>::PutReceipt receipt;
      receipt.unavailable = true;
      receipt.outcome = CoordOutcome::kUnavailable;
      return receipt;
    }
    return put(key, std::forward<F>(f)(r.values));
  }

  /// Forgets the remembered context for `key` (the next put is blind).
  void forget(const Key& key) { contexts_.erase(key); }

  /// Adopts a context obtained OUTSIDE this session's own get() — the
  /// async replay path completes coordinated reads (Cluster::begin_read)
  /// long after issuing them and hands the merged context back here.
  /// Same rule as get(): an unavailable read must not call this (a
  /// clobbered context would turn the next put into a blind write).
  void remember(const Key& key, Context context) {
    contexts_[key] = std::move(context);
  }

  [[nodiscard]] Context context_for(const Key& key) const {
    auto it = contexts_.find(key);
    return it == contexts_.end() ? Context{} : it->second;
  }

 private:
  ClientId id_;
  Cluster<M>* cluster_;
  std::map<Key, Context> contexts_;  // ordered: see dvv_lint unordered-container
};

}  // namespace dvv::kv
