// dvv/kv/token.cpp
//
// CausalToken wire format: mint + strict decode.  See token.hpp for the
// layout and the rejection contract.  Decoding never uses codec::Reader
// (whose failure mode is an assert — correct for buffers the library
// produced itself, wrong for tokens a client hands back): every read
// goes through codec::StrictReader — bounds-checked, canonical-varint-
// only, malformation returns false.  The payload parsers layered on it
// add the per-mechanism canonical-form checks.
#include "kv/token.hpp"

#include <cstring>
#include <span>
#include <vector>

#include "codec/clock_codec.hpp"
#include "codec/wire.hpp"
#include "store/crc32.hpp"

namespace dvv::kv {

namespace {

constexpr std::uint8_t kMagic0 = 0xD7;
constexpr std::uint8_t kMagic1 = 0x70;
constexpr std::uint8_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 4;  // magic, magic, version, mechanism
constexpr std::size_t kCrcBytes = 4;

[[nodiscard]] bool valid_mechanism_byte(std::uint8_t b) noexcept {
  return b >= static_cast<std::uint8_t>(MechanismId::kDvv) &&
         b <= static_cast<std::uint8_t>(MechanismId::kCausalHistory);
}

/// Payload parsers: strict, canonical-order-enforcing, bounded work.
/// Each fills `out` only from input it fully validated.

[[nodiscard]] bool parse_payload(codec::StrictReader& r, core::VersionVector& out) {
  std::uint64_t n = 0;
  if (!r.varint(n)) return false;
  core::ActorId prev_actor = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t actor = 0;
    std::uint64_t counter = 0;
    if (!r.varint(actor) || !r.varint(counter)) return false;
    // Canonical encodings are sorted by actor with no duplicates and
    // never carry zero counters (set(actor, 0) erases the entry).
    if (counter == 0) return false;
    if (i > 0 && actor <= prev_actor) return false;
    prev_actor = actor;
    out.set(actor, counter);
  }
  return r.done();
}

[[nodiscard]] bool parse_payload(codec::StrictReader& r,
                                 core::VersionVectorWithExceptions& out) {
  std::uint64_t n = 0;
  if (!r.varint(n)) return false;
  core::ActorId prev_actor = 0;
  std::uint64_t total_exceptions = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t actor = 0;
    std::uint64_t base = 0;
    std::uint64_t ex_count = 0;
    if (!r.varint(actor) || !r.varint(base) || !r.varint(ex_count)) return false;
    if (base == 0) return false;  // canonical form drops empty entries
    if (i > 0 && actor <= prev_actor) return false;
    prev_actor = actor;
    // Bomb guard.  The per-entry check caps ex_count first so the sum
    // below cannot wrap mod 2^64 (a forged second entry claiming
    // ~2^64-1 exceptions must not slip the total back under the bound
    // and reach the reserve()).
    if (ex_count > kMaxTokenEvents ||
        total_exceptions + ex_count > kMaxTokenEvents) {
      return false;
    }
    total_exceptions += ex_count;
    std::vector<core::Counter> exceptions;
    exceptions.reserve(static_cast<std::size_t>(ex_count));
    core::Counter prev_ex = 0;
    for (std::uint64_t j = 0; j < ex_count; ++j) {
      std::uint64_t ex = 0;
      if (!r.varint(ex)) return false;
      // Canonical exceptions are sorted, unique, >= 1, strictly below
      // the base (an exception equal to the base cannot exist).
      if (ex == 0 || ex >= base || (j > 0 && ex <= prev_ex)) return false;
      prev_ex = ex;
      exceptions.push_back(ex);
    }
    out.install_entry(actor, base, std::move(exceptions));
  }
  return r.done();
}

[[nodiscard]] bool parse_payload(codec::StrictReader& r, core::CausalHistory& out) {
  std::uint64_t n = 0;
  if (!r.varint(n)) return false;
  core::Dot prev{};
  for (std::uint64_t i = 0; i < n; ++i) {
    core::Dot d;
    if (!r.varint(d.node) || !r.varint(d.counter)) return false;
    // Canonical histories are sorted unique dots with counters >= 1;
    // enforcing the order here also keeps insert() appending (linear
    // total) instead of shifting (quadratic on adversarial input).
    if (d.counter == 0) return false;
    if (i > 0 && d <= prev) return false;
    prev = d;
    out.insert(d);
  }
  return r.done();
}

[[nodiscard]] std::uint32_t crc_of(std::string_view bytes) noexcept {
  return store::crc32(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()));
}

template <typename Context>
[[nodiscard]] CausalToken encode_impl(MechanismId id, const Context& ctx) {
  codec::Writer payload;
  codec::encode(payload, ctx);

  std::string out;
  out.reserve(kHeaderBytes + codec::varint_size(payload.size()) +
              payload.size() + kCrcBytes);
  out.push_back(static_cast<char>(kMagic0));
  out.push_back(static_cast<char>(kMagic1));
  out.push_back(static_cast<char>(kFormatVersion));
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(id)));
  std::uint64_t len = payload.size();
  while (len >= 0x80) {
    out.push_back(static_cast<char>((len & 0x7f) | 0x80));
    len >>= 7;
  }
  out.push_back(static_cast<char>(len));
  out.append(reinterpret_cast<const char*>(payload.buffer().data()),
             payload.size());
  const std::uint32_t crc = crc_of(out);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  return CausalToken::from_bytes(std::move(out));
}

template <typename Context>
[[nodiscard]] bool decode_impl(const CausalToken& token, MechanismId expect,
                               Context& out) {
  const std::string& bytes = token.bytes();
  if (bytes.empty()) {
    out = Context{};  // the empty context: a blind write, always valid
    return true;
  }
  if (bytes.size() < kHeaderBytes + 1 + kCrcBytes) return false;
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  if (p[0] != kMagic0 || p[1] != kMagic1) return false;
  if (p[2] != kFormatVersion) return false;
  if (!valid_mechanism_byte(p[3])) return false;
  if (static_cast<MechanismId>(p[3]) != expect) return false;  // cross-wired

  // Integrity before structure: the CRC covers everything above it, so
  // a bit flip or truncation anywhere dies here.
  const std::size_t body = bytes.size() - kCrcBytes;
  std::uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<std::uint32_t>(p[body + i]) << (8 * i);
  }
  if (crc_of(std::string_view(bytes).substr(0, body)) != stored_crc) return false;

  codec::StrictReader header(p + kHeaderBytes, body - kHeaderBytes);
  std::uint64_t payload_len = 0;
  if (!header.varint(payload_len)) return false;
  const std::size_t payload_at = kHeaderBytes + header.position();
  if (payload_len != body - payload_at) return false;  // declared ≠ actual

  Context parsed{};
  codec::StrictReader payload(p + payload_at, static_cast<std::size_t>(payload_len));
  if (!parse_payload(payload, parsed)) return false;

  // Canonical-form seal: decode→encode must reproduce the payload
  // byte-for-byte, so every token in circulation has exactly one byte
  // representation (and the round-trip property is true by
  // construction, not by luck).
  codec::Writer reencoded;
  codec::encode(reencoded, parsed);
  if (reencoded.size() != payload_len ||
      (payload_len != 0 &&
       std::memcmp(reencoded.buffer().data(), p + payload_at,
                   static_cast<std::size_t>(payload_len)) != 0)) {
    return false;
  }

  out = std::move(parsed);
  return true;
}

}  // namespace

std::string_view to_string(MechanismId id) noexcept {
  switch (id) {
    case MechanismId::kDvv: return "dvv";
    case MechanismId::kDvvSet: return "dvvset";
    case MechanismId::kServerVv: return "server-vv";
    case MechanismId::kClientVv: return "client-vv";
    case MechanismId::kVve: return "vve";
    case MechanismId::kCausalHistory: return "causal-history";
  }
  return "?";
}

std::optional<MechanismId> mechanism_id_of(std::string_view name) noexcept {
  for (const MechanismId id :
       {MechanismId::kDvv, MechanismId::kDvvSet, MechanismId::kServerVv,
        MechanismId::kClientVv, MechanismId::kVve, MechanismId::kCausalHistory}) {
    if (name == to_string(id)) return id;
  }
  return std::nullopt;
}

CausalToken encode_token(MechanismId id, const core::VersionVector& ctx) {
  return encode_impl(id, ctx);
}
CausalToken encode_token(MechanismId id,
                         const core::VersionVectorWithExceptions& ctx) {
  return encode_impl(id, ctx);
}
CausalToken encode_token(MechanismId id, const core::CausalHistory& ctx) {
  return encode_impl(id, ctx);
}

bool decode_token(const CausalToken& token, MechanismId expect,
                  core::VersionVector& out) {
  return decode_impl(token, expect, out);
}
bool decode_token(const CausalToken& token, MechanismId expect,
                  core::VersionVectorWithExceptions& out) {
  return decode_impl(token, expect, out);
}
bool decode_token(const CausalToken& token, MechanismId expect,
                  core::CausalHistory& out) {
  return decode_impl(token, expect, out);
}

std::optional<MechanismId> token_mechanism(const CausalToken& token) noexcept {
  const std::string& bytes = token.bytes();
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  const auto* p = reinterpret_cast<const std::uint8_t*>(bytes.data());
  if (p[0] != kMagic0 || p[1] != kMagic1 || p[2] != kFormatVersion ||
      !valid_mechanism_byte(p[3])) {
    return std::nullopt;
  }
  return static_cast<MechanismId>(p[3]);
}

}  // namespace dvv::kv
