// dvv/kv/types.hpp
//
// Domain aliases for the replicated key-value substrate.  Keys and
// values are byte strings (as in Riak); replica servers and clients are
// core::ActorId drawn from disjoint ranges managed by the cluster.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace dvv::kv {

using Key = std::string;
using Value = std::string;
using ReplicaId = core::ActorId;
using ClientId = core::ActorId;

/// Actor-id layout: replica servers occupy [0, kClientIdBase), clients
/// live at kClientIdBase + k.  Keeping the spaces disjoint means a
/// version vector can never confuse a server entry with a client entry,
/// and printed traces stay readable ("server 2" vs "client 3").
inline constexpr core::ActorId kClientIdBase = 1'000'000;

[[nodiscard]] constexpr ClientId client_actor(std::uint64_t index) noexcept {
  return kClientIdBase + index;
}

[[nodiscard]] constexpr bool is_client_actor(core::ActorId id) noexcept {
  return id >= kClientIdBase;
}

/// Human-readable actor names for traces: servers "A", "B", ..., then
/// "s26", "s27", ... once letters run out; clients "c0", "c1", ...
[[nodiscard]] inline std::string actor_name(core::ActorId id) {
  if (is_client_actor(id)) return "c" + std::to_string(id - kClientIdBase);
  if (id < 26) return std::string(1, static_cast<char>('A' + id));
  return "s" + std::to_string(id);
}

}  // namespace dvv::kv
