// dvv/kv/types.hpp
//
// Domain aliases for the replicated key-value substrate.  Keys and
// values are byte strings (as in Riak); replica servers and clients are
// core::ActorId drawn from disjoint ranges managed by the cluster.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace dvv::kv {

using Key = std::string;
using Value = std::string;
using ReplicaId = core::ActorId;
using ClientId = core::ActorId;

/// Actor-id layout: replica servers occupy [0, kClientIdBase), clients
/// live at kClientIdBase + k.  Keeping the spaces disjoint means a
/// version vector can never confuse a server entry with a client entry,
/// and printed traces stay readable ("server 2" vs "client 3").
inline constexpr core::ActorId kClientIdBase = 1'000'000;

/// Server clock-actor incarnations.  A replica that recovers from a
/// LOSSY crash (un-flushed WAL tail gone, or no log at all) has rolled
/// its clocks back: issuing dots from the recovered counters would
/// reuse event identifiers its peers already hold for DIFFERENT values
/// — silent causality corruption.  Like Riak's vnode epochs, the
/// replica therefore mints new dots under an incarnation-qualified
/// actor id: base id + incarnation * kIncarnationStride, still inside
/// the server id space.  Ring routing keeps using the base id; only the
/// clocks see incarnations.
inline constexpr core::ActorId kIncarnationStride = 1024;

[[nodiscard]] constexpr core::ActorId incarnation_actor(
    core::ActorId server, std::uint64_t incarnation) noexcept {
  return server + incarnation * kIncarnationStride;
}

[[nodiscard]] constexpr ClientId client_actor(std::uint64_t index) noexcept {
  return kClientIdBase + index;
}

[[nodiscard]] constexpr bool is_client_actor(core::ActorId id) noexcept {
  return id >= kClientIdBase;
}

/// Human-readable actor names for traces: servers "A", "B", ..., then
/// "s26", "s27", ... once letters run out; clients "c0", "c1", ...;
/// later incarnations of a server get a "'" suffix per rebirth ("B''").
[[nodiscard]] inline std::string actor_name(core::ActorId id) {
  if (is_client_actor(id)) return "c" + std::to_string(id - kClientIdBase);
  const core::ActorId base = id % kIncarnationStride;
  const auto incarnation = static_cast<std::size_t>(id / kIncarnationStride);
  std::string name = base < 26 ? std::string(1, static_cast<char>('A' + base))
                               : "s" + std::to_string(base);
  name.append(incarnation, '\'');
  return name;
}

}  // namespace dvv::kv
