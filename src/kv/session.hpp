// dvv/kv/session.hpp
//
// kv::Session — the client side of the paper's storage workflow against
// the type-erased facade: the session remembers, per key, the OPAQUE
// token of its most recent GET and returns it with the next PUT.  It is
// the non-template rework of ClientSession<M> (kv/client.hpp): same
// read-modify-write loop, but the session can no longer see, forge or
// cross-wire a causal context — it only ferries tokens, exactly like a
// Riak client ferrying X-Riak-Vclock headers.
//
// Context-clobber rule (same as ClientSession, now covering a third
// case): an UNAVAILABLE read, an UNAVAILABLE write and a kBadToken
// rejection all leave the remembered token untouched — any of them
// overwriting it would turn the session's next PUT into a blind write.
#pragma once

#include <optional>
#include <map>
#include <utility>

#include "kv/store.hpp"
#include "kv/token.hpp"
#include "kv/types.hpp"

namespace dvv::kv {

class Session {
 public:
  Session(ClientId id, Store& store) : id_(id), store_(&store) {}

  [[nodiscard]] ClientId id() const noexcept { return id_; }

  /// GET through `from` (defaults to the key's coordinator); remembers
  /// the returned token for the next put().  An unavailable result
  /// comes back as an error reply with the remembered token untouched.
  StoreGetResult get(const Key& key,
                     std::optional<ReplicaId> from = std::nullopt) {
    StoreGetResult result = store_->get(key, from);
    if (result.ok()) tokens_[key] = result.token;
    return result;
  }

  /// R-quorum GET through the coordination engine; same token rules.
  StoreGetResult get_quorum(const Key& key, std::size_t quorum) {
    StoreGetResult result = store_->get_quorum(key, quorum);
    if (result.ok()) tokens_[key] = result.token;
    return result;
  }

  /// PUT with the remembered token (empty if this session never read
  /// the key — a blind write).
  StorePutResult put(const Key& key, Value value) {
    return store_->put(key, id_, token_for(key), std::move(value));
  }

  /// PUT with explicit routing (coordinator + replication fan-out),
  /// still using the remembered token.
  StorePutResult put_via(const Key& key, ReplicaId coordinator, Value value,
                         const std::vector<ReplicaId>& replicate_to) {
    return store_->put_at(key, coordinator, id_, token_for(key),
                          std::move(value), replicate_to);
  }

  /// PUT through the sloppy quorum (hints parked for dead members).
  StorePutResult put_with_handoff(const Key& key, ReplicaId coordinator,
                                  Value value) {
    return store_->put_with_handoff(key, coordinator, id_, token_for(key),
                                    std::move(value));
  }

  /// Read-modify-write: GET, apply `f` to the sibling values, PUT the
  /// result.  When the GET comes back unavailable the RMW must NOT
  /// write: the read it would be conditioned on never happened, so
  /// proceeding would blind-write f({}) under a stale remembered token
  /// (tests/store_api_test.cpp: RmwOnUnavailableReadDoesNotWrite).
  template <typename F>
  StorePutResult rmw(const Key& key, F&& f) {
    StoreGetResult r = get(key);
    if (!r.ok()) {
      StorePutResult out;
      out.status = r.status;
      out.receipt.unavailable = true;
      out.receipt.outcome = CoordOutcome::kUnavailable;
      return out;
    }
    return put(key, std::forward<F>(f)(r.values));
  }

  /// Forgets the remembered token for `key` (the next put is blind).
  void forget(const Key& key) { tokens_.erase(key); }

  /// Adopts a token obtained OUTSIDE this session's own get() — e.g.
  /// the async replay path harvests coordinated reads long after
  /// issuing them.  Same rule as get(): an unavailable read must not
  /// call this.  The token stays opaque: adopting does not validate it
  /// (only the store can), it just ferries the bytes.
  void remember(const Key& key, CausalToken token) {
    tokens_[key] = std::move(token);
  }

  [[nodiscard]] CausalToken token_for(const Key& key) const {
    const auto it = tokens_.find(key);
    return it == tokens_.end() ? CausalToken{} : it->second;
  }

 private:
  ClientId id_;
  Store* store_;
  std::map<Key, CausalToken> tokens_;  // ordered: see dvv_lint unordered-container
};

}  // namespace dvv::kv
