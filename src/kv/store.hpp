// dvv/kv/store.hpp
//
// kv::Store — the mechanism-agnostic public API of the replicated
// store, and the boundary where causal contexts become opaque.
//
// The templated Cluster<M> welds every caller to one causality
// mechanism at compile time and hands clients the raw Context type —
// inspectable, forgeable, cross-wireable.  The paper's client contract
// is the opposite: a GET returns sibling values plus an opaque token,
// the client returns the token with its next PUT, and the server mints
// the dots.  Store is that contract as a type-erased facade:
//
//   * constructed from a mechanism NAME at runtime
//     (make_store("dvvset", config)) — one binary can sweep all six
//     mechanisms without instantiating six copies of every harness;
//   * contexts cross the boundary only as CausalToken (kv/token.hpp):
//     wire bytes under a versioned, checksummed, mechanism-tagged
//     header;
//   * a corrupted, truncated or cross-mechanism token is rejected as
//     StoreStatus::kBadToken without touching any replica state —
//     never an assert, never a silent blind write;
//   * everything else Cluster<M> offers — quorum options, receipts,
//     the asynchronous request engine, hinted handoff, both
//     anti-entropy passes, transport faults, crash/recovery — is
//     re-exposed through mechanism-independent types (kv/results.hpp,
//     kv/coordinator.hpp).
//
// The facade fully wraps Cluster<M> (store.cpp instantiates it for all
// six mechanisms); a workload driven through Store with round-tripped
// tokens is byte-identical to the same workload driven through
// Cluster<M> directly — results, receipts and digest fixed points
// (tests/store_api_test.cpp).  Use Cluster<M> directly only when the
// point IS the mechanism's internals (kernel tests, clock-shape
// benches, examples that print clocks); everything client-shaped goes
// through Store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "kv/coordinator.hpp"
#include "kv/results.hpp"
#include "kv/token.hpp"
#include "kv/types.hpp"
#include "membership/membership.hpp"
#include "net/transport.hpp"
#include "store/backend.hpp"
#include "sync/merkle.hpp"

namespace dvv::kv {

/// Outcome of a facade operation.  kBadToken is the new failure mode
/// the opaque boundary introduces: the request was REJECTED before any
/// replica was touched because the causal token did not strictly
/// decode for this store's mechanism.
enum class StoreStatus : std::uint8_t {
  kOk = 0,
  kUnavailable = 1,  ///< no alive replica could serve (error reply, not a crash)
  kBadToken = 2,     ///< token corrupt/truncated/cross-mechanism; state untouched
};

[[nodiscard]] constexpr const char* to_string(StoreStatus s) noexcept {
  switch (s) {
    case StoreStatus::kOk: return "ok";
    case StoreStatus::kUnavailable: return "unavailable";
    case StoreStatus::kBadToken: return "bad-token";
  }
  return "?";
}

/// What a GET hands the client: the sibling values and the opaque
/// causal token to return with the next PUT.  Mirrors the templated
/// Replica<M>::GetResult with the raw Context replaced by the token.
struct StoreGetResult {
  StoreStatus status = StoreStatus::kOk;
  bool found = false;
  bool degraded = false;      ///< quorum read completed below R
  std::size_t replies = 0;    ///< replicas that actually served the read
  std::vector<Value> values;  ///< all live siblings
  CausalToken token;          ///< opaque context for the client's next PUT

  [[nodiscard]] bool ok() const noexcept { return status == StoreStatus::kOk; }
  [[nodiscard]] bool unavailable() const noexcept {
    return status == StoreStatus::kUnavailable;
  }
};

/// What a PUT reports: the coordination receipt (kv/coordinator.hpp)
/// plus the facade status.  On kBadToken the receipt is empty — there
/// was no write to receipt.
struct StorePutResult {
  StoreStatus status = StoreStatus::kOk;
  PutReceipt receipt;

  [[nodiscard]] bool ok() const noexcept { return status == StoreStatus::kOk; }
};

/// Sentinel that never names a real request.  The engine's ids start
/// at (slot 0, generation 0) == 0, so 0 would alias the first genuine
/// request — a caller that stored a rejected begin's id unchecked
/// could then harvest someone else's receipt.
inline constexpr std::uint64_t kInvalidRequestId = ~0ULL;

/// Result of starting an asynchronous write.  kBadToken means no
/// request was started: no state was touched and `id` is
/// kInvalidRequestId, which request_open/request_terminal/finalize
/// treat as unknown.
struct StoreWriteBegin {
  StoreStatus status = StoreStatus::kOk;
  std::uint64_t id = kInvalidRequestId;

  [[nodiscard]] bool ok() const noexcept { return status == StoreStatus::kOk; }
};

/// Harvested asynchronous read: the client-visible result plus the
/// coordination trace (who answered, what the merged reply costs).
struct StoreReadHarvest {
  StoreGetResult result;
  Key key;
  ReplicaId coordinator = 0;
  CoordOutcome outcome = CoordOutcome::kPending;
  std::size_t quorum = 0;
  std::size_t asked = 0;
  std::vector<ReplicaId> responders;
  std::size_t state_bytes = 0;  ///< total_bytes of the merged reply
  std::size_t metadata_bytes = 0;
  std::size_t siblings = 0;
  std::size_t clock_entries = 0;
};

/// Per-key metadata measurements at one replica (observability: the
/// workload replayer meters replies from here without naming Stored).
struct StoreKeyStats {
  bool found = false;
  std::size_t metadata_bytes = 0;
  std::size_t total_bytes = 0;
  std::size_t siblings = 0;
  std::size_t clock_entries = 0;
};

/// Everything a store needs at construction.  `mechanism` is the
/// runtime mechanism choice by name; empty selects the process default
/// (env DVV_MECHANISM when set — see default_mechanism_name() — else
/// "dvv").
struct StoreConfig {
  std::string mechanism;             ///< "", "dvv", "dvvset", "server-vv",
                                     ///  "client-vv", "vve", "causal-history"
  std::size_t servers = 3;
  std::size_t replication = 3;
  std::size_t vnodes = 64;
  sync::MerkleConfig aae{};          ///< geometry of the per-replica hash trees
  store::BackendConfig storage{};    ///< per-replica durability model
  net::TransportConfig transport{};  ///< inter-replica message layer
  std::size_t prune_cap = 0;         ///< client-vv only: >0 enables the unsafe
                                     ///  Riak-classic prune cap (experiment E8)
  /// Elastic membership (src/membership): provisioned replica slots
  /// beyond the seed ring.  0 means capacity == servers (no headroom,
  /// byte-identical to the pre-membership store); ids in
  /// [servers, capacity) start provisioned-but-outside the ring and
  /// enter via join_node.
  std::size_t capacity = 0;
  /// Seed ring members (epoch 0).  Empty means {0 .. servers-1}.
  std::vector<ReplicaId> initial_members{};
};

/// The type-erased facade.  One virtual call per operation; the hot
/// paths behind it (clock kernels, codec, transport) dominate, so the
/// dispatch overhead stays within bench noise (bench_context_token).
class Store {
 public:
  virtual ~Store() = default;

  // ---- identity / topology ----------------------------------------------

  [[nodiscard]] virtual std::string_view mechanism_name() const noexcept = 0;
  [[nodiscard]] virtual MechanismId mechanism_id() const noexcept = 0;
  [[nodiscard]] virtual std::size_t servers() const noexcept = 0;
  [[nodiscard]] virtual std::vector<ReplicaId> preference_list(
      const Key& key) const = 0;
  [[nodiscard]] virtual std::optional<ReplicaId> default_coordinator(
      const Key& key) const = 0;
  [[nodiscard]] virtual bool alive(ReplicaId r) const = 0;
  virtual void set_alive(ReplicaId r, bool alive) = 0;
  virtual void crash(ReplicaId r, std::size_t torn_tail_bytes = 0) = 0;
  virtual store::RecoveryStats recover(ReplicaId r) = 0;

  // ---- synchronous request path -----------------------------------------

  /// GET served by one replica (default: the key's coordinator).  A
  /// dead or absent source yields kUnavailable — and, as everywhere, an
  /// error result never carries a token (a clobbered token would turn
  /// the client's next PUT into a blind write).
  [[nodiscard]] virtual StoreGetResult get(
      const Key& key, std::optional<ReplicaId> from = std::nullopt) const = 0;

  /// Dynamo-style R-quorum read through the coordination engine.
  [[nodiscard]] virtual StoreGetResult get_quorum(const Key& key,
                                                  std::size_t quorum) = 0;

  /// PUT with the client's token (empty = blind write): default
  /// coordinator, full immediate replication.
  virtual StorePutResult put(const Key& key, ClientId client,
                             const CausalToken& token, Value value) = 0;

  /// PUT with explicit routing (coordinator + replication fan-out).
  virtual StorePutResult put_at(const Key& key, ReplicaId coordinator,
                                ClientId client, const CausalToken& token,
                                Value value,
                                const std::vector<ReplicaId>& replicate_to) = 0;

  /// PUT through the sloppy quorum (hints parked for dead members).
  virtual StorePutResult put_with_handoff(const Key& key, ReplicaId coordinator,
                                          ClientId client,
                                          const CausalToken& token,
                                          Value value) = 0;

  // ---- shard-per-thread server path --------------------------------------
  //
  // The dvvd request path.  Over a threaded transport every replica
  // lives in exactly one shard's serial domain; the *_local entries
  // below touch the coordinator replica directly and are therefore
  // legal ONLY on the owning shard's thread (the server's event loop,
  // a run_at closure).  The non-local spellings wrap themselves in
  // run_at and may be called from any non-shard thread — tests and
  // bench drivers.  Over an inline/sim transport there is one implicit
  // shard and every spelling is legal everywhere.

  /// Shards in the execution domain (1 unless the transport is
  /// threaded), and the shard owning replica `r`.
  [[nodiscard]] virtual std::size_t shard_count() const noexcept = 0;
  [[nodiscard]] virtual std::size_t shard_of(ReplicaId r) const noexcept = 0;

  /// Runs `fn` inside replica `r`'s serial domain and blocks until it
  /// ran (inline when single-domain).  Must not be called from a shard
  /// thread — the server path uses the *_local entries instead.
  virtual void run_at(ReplicaId r, const std::function<void()>& fn) = 0;

  /// W=1 coordinator-apply PUT: completes on the coordinator's local
  /// apply, replication to the rest of the preference list is
  /// fire-and-forget.  MUST run on the coordinator's shard.
  virtual StorePutResult put_direct_local(const Key& key, ClientId client,
                                          const CausalToken& token,
                                          Value value) = 0;

  /// Coordinator-local GET (no quorum round).  MUST run on the
  /// coordinator's shard.
  [[nodiscard]] virtual StoreGetResult get_local(const Key& key) = 0;

  /// Blocking wrappers: route the op into the coordinator's shard via
  /// run_at.  For tests and bench drivers on non-shard threads.
  virtual StorePutResult put_direct(const Key& key, ClientId client,
                                    const CausalToken& token, Value value) = 0;
  [[nodiscard]] virtual StoreGetResult get_direct(const Key& key) = 0;

  // ---- asynchronous quorum coordination ---------------------------------

  [[nodiscard]] virtual std::uint64_t begin_read(const Key& key,
                                                 std::size_t quorum,
                                                 const ReadOptions& opts = {}) = 0;
  [[nodiscard]] virtual std::uint64_t begin_read_at(
      const Key& key, ReplicaId coordinator, std::size_t quorum,
      const ReadOptions& opts = {}) = 0;
  [[nodiscard]] virtual StoreWriteBegin begin_write(
      const Key& key, ReplicaId coordinator, ClientId client,
      const CausalToken& token, Value value,
      const std::vector<ReplicaId>& replicate_to,
      const WriteOptions& opts = {}) = 0;
  [[nodiscard]] virtual bool request_open(std::uint64_t id) const = 0;
  [[nodiscard]] virtual bool request_terminal(std::uint64_t id) const = 0;
  [[nodiscard]] virtual std::vector<std::uint64_t> take_completed_requests() = 0;
  virtual bool finalize_request(std::uint64_t id) = 0;
  [[nodiscard]] virtual StoreReadHarvest take_read_result(std::uint64_t id) = 0;
  [[nodiscard]] virtual PutReceipt take_write_receipt(std::uint64_t id) = 0;
  [[nodiscard]] virtual const PutReceipt& peek_write_receipt(
      std::uint64_t id) const = 0;
  [[nodiscard]] virtual const CoordStats& coord_stats() const noexcept = 0;
  [[nodiscard]] virtual std::size_t requests_in_flight() const noexcept = 0;

  // ---- transport hooks ---------------------------------------------------

  [[nodiscard]] virtual net::Transport& transport() noexcept = 0;
  virtual std::size_t pump() = 0;
  virtual std::size_t pump_all() = 0;
  virtual void partition(const std::vector<std::vector<ReplicaId>>& groups,
                         std::string label = {}) = 0;
  virtual void heal() = 0;
  [[nodiscard]] virtual const DeliveryDrops& delivery_drops() const noexcept = 0;

  // ---- hinted handoff + anti-entropy hooks -------------------------------

  virtual std::size_t deliver_hints() = 0;
  [[nodiscard]] virtual std::size_t hinted_count() const = 0;
  virtual std::size_t anti_entropy() = 0;
  virtual DigestRepairReport anti_entropy_digest() = 0;
  virtual sync::SyncStats anti_entropy_digest_pair(ReplicaId a, ReplicaId b) = 0;
  virtual std::uint64_t request_sync(ReplicaId a, ReplicaId b) = 0;
  [[nodiscard]] virtual std::vector<CompletedSync> take_completed_syncs() = 0;

  // ---- elastic membership (src/membership) -------------------------------
  //
  // Join / graceful-leave / crash-removal as store transitions.  The
  // mutating entries are control-plane: they stop the world internally
  // (legal under concurrent client traffic on a threaded transport) but
  // must be called from a NON-shard thread — dvvd routes them through a
  // dedicated admin thread.  The bool returns report precondition
  // failures (out-of-range id, already/not a member, leave below the
  // replication floor) without touching any state — the dvvd admin
  // path answers kBadRequest instead of asserting.

  [[nodiscard]] virtual std::uint64_t ring_epoch() const noexcept = 0;
  [[nodiscard]] virtual std::vector<ReplicaId> members() const = 0;
  [[nodiscard]] virtual bool rebalancing() const noexcept = 0;
  [[nodiscard]] virtual membership::RebalanceStats rebalance_stats() const = 0;
  virtual bool join_node(ReplicaId node) = 0;
  virtual bool leave_node(ReplicaId node) = 0;
  virtual bool remove_node(ReplicaId node) = 0;
  /// One pass over the owed transfer walks; returns walks performed.
  virtual std::size_t rebalance_step() = 0;
  /// Drives the rebalance to completion; returns the cumulative stats.
  virtual membership::RebalanceStats complete_rebalance() = 0;

  // ---- observability -----------------------------------------------------

  [[nodiscard]] virtual Footprint footprint() const = 0;
  [[nodiscard]] virtual StoreKeyStats key_stats(ReplicaId r,
                                                const Key& key) const = 0;
  [[nodiscard]] virtual std::vector<Key> keys(ReplicaId r) const = 0;
  /// Full codec encoding of one replica's state for `key` (nullopt when
  /// absent) — the byte-level equivalence probe the facade proof tests
  /// compare against the templated twin.
  [[nodiscard]] virtual std::optional<std::string> encoded_state(
      ReplicaId r, const Key& key) const = 0;
};

/// The six mechanism names make_store accepts, in MechanismId order.
[[nodiscard]] const std::vector<std::string>& known_mechanisms();

/// Process default mechanism name: env DVV_MECHANISM when set (the CI
/// matrix re-runs the facade-driven suites under different values),
/// else "dvv".  An UNRECOGNIZED env value aborts with a message — a
/// typo in a CI leg must not silently run everything against the
/// default and pass.
[[nodiscard]] std::string default_mechanism_name();

/// Builds a store for `config.mechanism` (empty = process default).
/// Returns nullptr for an unknown mechanism name passed explicitly —
/// runtime mechanism selection deserves an inspectable error; only the
/// env-driven default (see above) aborts.
[[nodiscard]] std::unique_ptr<Store> make_store(StoreConfig config);

/// Convenience overload: name + config (name wins over config.mechanism).
[[nodiscard]] std::unique_ptr<Store> make_store(std::string_view mechanism,
                                                StoreConfig config = {});

}  // namespace dvv::kv
