// dvv/kv/coordinator.hpp
//
// Per-request quorum coordination: the client read/write path as
// explicit state machines over the transport (src/net).
//
// Before this subsystem existed, Cluster::get_quorum and Cluster::put
// were synchronous loops over `replicas_.at(...)` — a client operation
// could never be *in flight* across the partitions, reorderings and
// crashes the transport and storage layers make real.  Now a GET/PUT is
// a REQUEST: the coordinator replica scatters typed messages
// (net::CoordReadReqMsg / CoordWriteReqMsg), peers answer
// (CoordReadRespMsg / CoordWriteRespMsg), and this engine tracks each
// request from kScatter to a terminal outcome:
//
//     start ──▶ scatter ──▶ collecting replies ──▶ kQuorum   (R/W distinct
//                │                 │                          replies won)
//                │                 ├────────────▶ kTimeout   (deadline hit
//                │                 │                          with partial
//                │                 │                          replies)
//                └─────────────────┴────────────▶ kUnavailable (nobody
//                                                              answered)
//
// Completion is PARTIAL-QUORUM: the first R (read) / W (write) distinct
// replies win; replies still in flight keep arriving and are dropped.
// Reply hygiene is the heart of the machine:
//
//   * a DUPLICATE reply (the transport's dup fault redelivers, or a
//     retried scatter double-answers) counts once toward the quorum —
//     the responder set is a set;
//   * a LATE reply (arriving after the request completed or timed out)
//     is dropped without touching the finished state;
//   * a STALE reply (arriving after its request slot was harvested and
//     REUSED by a newer request) is recognized by the generation half
//     of the request id and dropped — a reused slot can never be
//     corrupted by the previous tenant's stragglers.
//
// Request ids encode (slot, generation): slots are recycled through a
// free list (bounded memory under millions of requests) and every reuse
// bumps the generation, so an id is valid for exactly one request ever.
// The RequestTable is mechanism-independent (coordinator.cpp); the
// templated engine below adds the payload half — merged read state,
// per-responder digests for read repair, and the receipts.
//
// The engine holds no transport or replica pointers: the owning Cluster
// routes messages and feeds replies in, which keeps this file pure
// bookkeeping (trivially movable with the cluster) and keeps every
// side effect — scatter sends, read-repair sends, local applies — in
// one place (cluster.hpp).  Deadlines are tick-based: Cluster::pump()
// advances one coordination tick per transport tick.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kv/mechanism.hpp"
#include "kv/types.hpp"
#include "obs/metrics.hpp"
#include "sync/key_digest.hpp"
#include "util/assert.hpp"

namespace dvv::kv {

/// Terminal state of a coordinated request.
enum class CoordOutcome : std::uint8_t {
  kPending = 0,      ///< still collecting replies
  kQuorum = 1,       ///< R/W distinct replies arrived in time
  kTimeout = 2,      ///< deadline (or forced finalize) with partial replies
  kUnavailable = 3,  ///< nobody answered at all
};

[[nodiscard]] constexpr const char* to_string(CoordOutcome o) noexcept {
  switch (o) {
    case CoordOutcome::kPending: return "pending";
    case CoordOutcome::kQuorum: return "quorum";
    case CoordOutcome::kTimeout: return "timeout";
    case CoordOutcome::kUnavailable: return "unavailable";
  }
  return "?";
}

/// Engine observability: request and reply-hygiene accounting.
struct CoordStats {
  std::size_t reads_started = 0;
  std::size_t writes_started = 0;
  std::size_t quorum_completions = 0;
  std::size_t timeouts = 0;          ///< deadline AND forced finalizes
  std::size_t unavailable = 0;
  std::size_t duplicate_replies_dropped = 0;  ///< same responder twice
  /// Reply for a request that already reached a terminal outcome but is
  /// not yet harvested — dropped without touching the finished state.
  std::size_t late_replies_dropped = 0;
  /// Reply for a request id whose slot was already harvested (retired,
  /// possibly reacquired by a newer request): the generation half of
  /// the id no longer matches, so the straggler cannot touch the slot's
  /// new tenant.
  std::size_t stale_replies_dropped = 0;
};

/// Per-read tuning knobs (Cluster::begin_read / get_quorum).
struct ReadOptions {
  /// Extra preference-list replicas asked beyond the quorum (insurance
  /// against drops: any R of the asked set completes the read).  0 asks
  /// exactly `quorum` replicas — the synchronous shim's shape, which is
  /// byte-identical to the pre-engine get_quorum loop.
  std::size_t extra_scatter = 0;
  /// Scatter the merged state back to responders whose reply digest
  /// differs once the read completes (Dynamo read repair).  Off by
  /// default: the shim must not write where the old code did not.
  bool read_repair = false;
  /// Coordination ticks until the request times out with whatever
  /// replies arrived (one tick per Cluster::pump()).
  std::uint64_t deadline_ticks = 32;
};

/// Per-write tuning knobs (Cluster::begin_write).
struct WriteOptions {
  /// Distinct acks (the coordinator's local apply counts as the first)
  /// that complete the write.  0 means "all": the coordinator plus
  /// every fan-out message actually sent.
  std::size_t write_quorum = 0;
  std::uint64_t deadline_ticks = 32;
};

/// What a coordinated PUT reports back.  Send-time fields are filled by
/// the cluster's scatter; ack fields by the engine as CoordWriteRespMsg
/// replies land.  With the inline transport acks arrive before the
/// synchronous shims return; with a queued transport the receipt counts
/// sends, and acks observed by harvest time.
struct PutReceipt {
  ReplicaId coordinator = 0;
  bool unavailable = false;       ///< no alive replica could coordinate
  std::size_t targets = 0;        ///< intended non-coordinator fan-out width
  std::size_t replicated_to = 0;  ///< fan-out messages sent to alive replicas
                                  ///  (delivery is the transport's business)
  std::size_t hinted = 0;         ///< hints parked for dead preference members
  std::size_t unparked = 0;       ///< dead members NO fallback could cover —
                                  ///  the write is below its intended
                                  ///  durability and only repair can fix it
  /// Neither a direct copy nor a parked hint reached some intended
  /// preference-list target: the fan-out is PARTIAL and the caller must
  /// not mistake the receipt for full replication
  /// (tests/cluster_test.cpp: PlainPutBelowFullFanoutReportsDegraded).
  bool degraded = false;
  std::size_t replication_bytes = 0;  ///< wire bytes of every message sent
  /// Exactly which replicas acknowledged the write, in arrival order;
  /// the coordinator's local apply is always first.  Duplicate acks
  /// count once; late acks are dropped by the engine.
  std::vector<ReplicaId> acked_by;
  CoordOutcome outcome = CoordOutcome::kPending;

  [[nodiscard]] std::size_t acks() const noexcept { return acked_by.size(); }
};

/// Slot + generation request-id table (mechanism-independent half of
/// the engine; implementation in coordinator.cpp).  An id is
/// `generation << kSlotBits | slot`: slots recycle through a free list
/// and every reuse bumps the slot's generation, so a late message
/// addressed to a previous tenant of the slot can never resolve to the
/// current one.
class RequestTable {
 public:
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

  [[nodiscard]] static std::size_t slot_of(std::uint64_t id) noexcept {
    return static_cast<std::size_t>(id & kSlotMask);
  }
  [[nodiscard]] static std::uint64_t generation_of(std::uint64_t id) noexcept {
    return id >> kSlotBits;
  }

  /// Opens a new request; returns its id (the slot may be recycled, the
  /// id never is).
  [[nodiscard]] std::uint64_t acquire();

  /// True while `id` names the live tenant of its slot (open, matching
  /// generation).
  [[nodiscard]] bool is_current(std::uint64_t id) const noexcept;

  /// True when `id`'s slot has been reacquired by a NEWER request —
  /// the distinction between a merely-late reply and one aimed at a
  /// reused slot.
  [[nodiscard]] bool is_stale(std::uint64_t id) const noexcept;

  /// Closes `id` and recycles its slot.  Asserts it is current.
  void retire(std::uint64_t id);

  [[nodiscard]] std::size_t open_count() const noexcept { return open_; }

 private:
  struct Slot {
    std::uint64_t generation = 0;
    bool open = false;
  };
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t open_ = 0;
};

/// The per-request state machines for one cluster's client path.
/// M is the causality mechanism (kv/mechanism.hpp); the engine only
/// ever touches it to merge read replies.
template <CausalityMechanism M>
class QuorumCoordinator {
 public:
  using Stored = typename M::Stored;
  using Context = typename M::Context;

  /// Harvested result of a coordinated read.
  struct ReadReceipt {
    std::uint64_t id = 0;
    Key key;
    ReplicaId coordinator = 0;
    CoordOutcome outcome = CoordOutcome::kPending;
    std::size_t quorum = 0;
    std::size_t asked = 0;  ///< replicas asked (local read included)
    bool found = false;
    /// Exactly which replicas answered, in arrival order (duplicates
    /// counted once, late/stale replies never).
    std::vector<ReplicaId> responders;
    /// Mechanism-merged state over every counted reply.
    Stored merged;
  };

  // ---- lifecycle ---------------------------------------------------------

  std::uint64_t start_read(Key key, ReplicaId coordinator, std::size_t quorum,
                           const ReadOptions& opts) {
    DVV_ASSERT(quorum >= 1);
    const std::uint64_t id = table_.acquire();
    Request& req = slot(id);
    req.reset();
    req.id = id;
    req.is_read = true;
    req.read.id = id;
    req.read.key = std::move(key);
    req.read.coordinator = coordinator;
    req.read.quorum = quorum;
    req.read_repair = opts.read_repair;
    req.deadline = tick_ + opts.deadline_ticks;
    req.start_tick = tick_;
    ++stats_.reads_started;
    obs::coord_metrics().reads_started.inc();
    // The request id (slot|generation) doubles as the trace id of every
    // span event this request emits into the flight recorder.
    obs::flight().record("coord", "read_start", id, coordinator, quorum);
    return id;
  }

  std::uint64_t start_write(PutReceipt base, const WriteOptions& opts) {
    const std::uint64_t id = table_.acquire();
    Request& req = slot(id);
    req.reset();
    req.id = id;
    req.is_read = false;
    req.write = std::move(base);
    req.requested_write_quorum = opts.write_quorum;
    req.deadline = tick_ + opts.deadline_ticks;
    req.start_tick = tick_;
    ++stats_.writes_started;
    obs::coord_metrics().writes_started.inc();
    obs::flight().record("coord", "write_start", id, req.write.coordinator,
                         opts.write_quorum);
    return id;
  }

  /// Records one scatter message sent for a read (receipt honesty:
  /// `asked` counts the coordinator's local read plus real sends).
  void note_read_asked(std::uint64_t id) {
    DVV_ASSERT(table_.is_current(id));
    ++slot(id).read.asked;
    obs::flight().record("coord", "read_scatter", id, slot(id).read.asked);
  }

  /// Send-time receipt fields of an open write (the cluster's scatter
  /// loop fills replicated_to / hinted / unparked / bytes through this).
  [[nodiscard]] PutReceipt& write_receipt(std::uint64_t id) {
    DVV_ASSERT(table_.is_current(id));
    Request& req = slot(id);
    DVV_ASSERT(!req.is_read);
    return req.write;
  }

  /// Pins the write's completion bar once the scatter width is known:
  /// effective W = min(requested, coordinator + messages actually
  /// sent) — a W the fan-out cannot reach would otherwise hang the
  /// request until its deadline for no benefit.  May complete the
  /// request on the spot (W already satisfied by inline acks, or W=1
  /// with an empty fan-out); returns true when it did.
  bool seal_write_quorum(std::uint64_t id) {
    DVV_ASSERT(table_.is_current(id));
    Request& req = slot(id);
    DVV_ASSERT(!req.is_read && req.write_quorum == 0);
    const std::size_t reachable = 1 + req.write.replicated_to;
    req.write_quorum = req.requested_write_quorum == 0
                           ? reachable
                           : std::min(req.requested_write_quorum, reachable);
    if (req.requested_write_quorum > reachable) req.write.degraded = true;
    return maybe_complete_write(req);
  }

  // ---- replies -----------------------------------------------------------

  /// One read reply (`state` null when the responder does not hold the
  /// key).  The coordinator's own local read goes through here too.
  /// Returns true when this reply completed the request.
  bool on_read_reply(std::uint64_t id, ReplicaId from, const Stored* state,
                     const M& mechanism) {
    Request* req = reply_target(id, /*want_read=*/true);
    if (req == nullptr) return false;
    if (already_counted(req->read.responders, from)) return false;
    obs::flight().record("coord", "read_reply", id, from);
    req->read.responders.push_back(from);
    req->reply_digests.emplace_back(
        from, state == nullptr ? sync::kMissing : sync::state_digest(*state));
    if (state != nullptr) {
      mechanism.sync(req->read.merged, *state);
      req->read.found = true;
    }
    if (req->read.responders.size() >= req->read.quorum) {
      complete(*req, CoordOutcome::kQuorum);
      return true;
    }
    return false;
  }

  /// One write ack.  Returns true when it completed the request.
  bool on_write_ack(std::uint64_t id, ReplicaId from) {
    Request* req = reply_target(id, /*want_read=*/false);
    if (req == nullptr) return false;
    if (already_counted(req->write.acked_by, from)) return false;
    obs::flight().record("coord", "write_ack", id, from);
    req->write.acked_by.push_back(from);
    return maybe_complete_write(*req);
  }

  // ---- time and forced completion ----------------------------------------

  /// Advances one coordination tick; requests whose deadline passed
  /// complete as kTimeout (kUnavailable when nobody answered).  Returns
  /// the newly terminal ids.
  std::vector<std::uint64_t> tick() {
    ++tick_;
    std::vector<std::uint64_t> expired;
    for (std::size_t s = 0; s < requests_.size(); ++s) {
      Request& req = requests_[s];
      // A retired or never-used slot holds a default Request whose id
      // (0) aliases slot 0's first tenant — the slot check keeps such
      // junk from expiring someone else's request.
      if (RequestTable::slot_of(req.id) != s) continue;
      if (!table_.is_current(req.id) || req.outcome() != CoordOutcome::kPending) {
        continue;
      }
      if (tick_ >= req.deadline) {
        expire(req);
        expired.push_back(req.id);
      }
    }
    return expired;
  }

  /// Force-completes a still-pending request NOW (the synchronous shims
  /// call this at their return boundary: whatever has not answered by
  /// then is, for this caller, timed out).  Returns true if the call
  /// performed the completion.
  bool finalize(std::uint64_t id) {
    if (!table_.is_current(id)) return false;
    Request& req = slot(id);
    if (req.outcome() != CoordOutcome::kPending) return false;
    expire(req);
    return true;
  }

  // ---- harvest -----------------------------------------------------------

  [[nodiscard]] bool is_open(std::uint64_t id) const {
    return table_.is_current(id);
  }

  [[nodiscard]] bool is_terminal(std::uint64_t id) const {
    return table_.is_current(id) &&
           requests_[RequestTable::slot_of(id)].outcome() != CoordOutcome::kPending;
  }

  /// Terminal requests not yet harvested, oldest first (completion
  /// order).  Harvesting (take_read / take_write) removes the id.
  [[nodiscard]] std::vector<std::uint64_t> take_completed() {
    return std::exchange(completed_, {});
  }

  /// Per-responder reply digests of a terminal read (the read-repair
  /// scatter diffs these against the merged digest).
  [[nodiscard]] const std::vector<std::pair<ReplicaId, sync::Digest>>&
  reply_digests(std::uint64_t id) const {
    DVV_ASSERT(table_.is_current(id));
    return requests_[RequestTable::slot_of(id)].reply_digests;
  }

  [[nodiscard]] bool read_repair_requested(std::uint64_t id) const {
    DVV_ASSERT(table_.is_current(id));
    return requests_[RequestTable::slot_of(id)].read_repair;
  }

  /// Terminal read's receipt without harvesting it (the read-repair
  /// scatter inspects the merged state before the caller harvests).
  [[nodiscard]] const ReadReceipt& peek_read(std::uint64_t id) const {
    DVV_ASSERT(table_.is_current(id));
    const Request& req = requests_[RequestTable::slot_of(id)];
    DVV_ASSERT(req.is_read);
    return req.read;
  }

  /// Live write receipt without harvesting it (the simulator meters
  /// fan-out legs from the send-time fields while acks are in flight).
  [[nodiscard]] const PutReceipt& peek_write(std::uint64_t id) const {
    DVV_ASSERT(table_.is_current(id));
    const Request& req = requests_[RequestTable::slot_of(id)];
    DVV_ASSERT(!req.is_read);
    return req.write;
  }

  /// Harvests a terminal read and retires its slot (the id is dead
  /// forever; the slot recycles under a new generation).
  [[nodiscard]] ReadReceipt take_read(std::uint64_t id) {
    Request& req = harvest_target(id, /*want_read=*/true);
    ReadReceipt out = std::move(req.read);
    retire(id);
    return out;
  }

  [[nodiscard]] PutReceipt take_write(std::uint64_t id) {
    Request& req = harvest_target(id, /*want_read=*/false);
    PutReceipt out = std::move(req.write);
    retire(id);
    return out;
  }

  [[nodiscard]] const CoordStats& stats() const noexcept { return stats_; }

  /// Requests open (pending or terminal-unharvested).
  [[nodiscard]] std::size_t open_requests() const noexcept {
    return table_.open_count();
  }

  [[nodiscard]] std::uint64_t now() const noexcept { return tick_; }

 private:
  struct Request {
    std::uint64_t id = 0;
    bool is_read = true;
    bool read_repair = false;
    std::uint64_t deadline = 0;
    std::uint64_t start_tick = 0;  ///< coordination tick at start_*

    std::size_t requested_write_quorum = 0;
    std::size_t write_quorum = 0;  ///< sealed bar; 0 = scatter not sealed yet
    ReadReceipt read;
    PutReceipt write;
    std::vector<std::pair<ReplicaId, sync::Digest>> reply_digests;

    [[nodiscard]] CoordOutcome outcome() const noexcept {
      return is_read ? read.outcome : write.outcome;
    }
    void set_outcome(CoordOutcome o) noexcept {
      (is_read ? read.outcome : write.outcome) = o;
    }

    /// Clears the slot for its next tenant, RETAINING container
    /// capacity: the request path recycles slots millions of times and
    /// must not churn the allocator.  (Harvest moves the receipt's
    /// buffers out to the caller; whatever stays behind is reused.)
    void reset() noexcept {
      id = 0;
      is_read = true;
      read_repair = false;
      deadline = 0;
      start_tick = 0;
      requested_write_quorum = 0;
      write_quorum = 0;
      read.id = 0;
      read.key.clear();
      read.coordinator = 0;
      read.outcome = CoordOutcome::kPending;
      read.quorum = 0;
      read.asked = 0;
      read.found = false;
      read.responders.clear();
      read.merged = Stored{};
      write.coordinator = 0;
      write.unavailable = false;
      write.targets = 0;
      write.replicated_to = 0;
      write.hinted = 0;
      write.unparked = 0;
      write.degraded = false;
      write.replication_bytes = 0;
      write.acked_by.clear();
      write.outcome = CoordOutcome::kPending;
      reply_digests.clear();
    }
  };

  Request& slot(std::uint64_t id) {
    const std::size_t s = RequestTable::slot_of(id);
    if (s >= requests_.size()) requests_.resize(s + 1);
    return requests_[s];
  }

  /// Resolves a reply's target request, applying the hygiene rules:
  /// stale generation, late arrival, and read/write kind confusion all
  /// drop the reply (counted) and return null.
  Request* reply_target(std::uint64_t id, bool want_read) {
    if (!table_.is_current(id)) {
      if (table_.is_stale(id)) {
        ++stats_.stale_replies_dropped;
        obs::coord_metrics().replies_stale_dropped.inc();
        obs::flight().record("coord", "reply_stale_dropped", id);
      } else {
        ++stats_.late_replies_dropped;
        obs::coord_metrics().replies_late_dropped.inc();
        obs::flight().record("coord", "reply_late_dropped", id);
      }
      return nullptr;
    }
    Request& req = slot(id);
    // A read reply cannot land on a write request (or vice versa): the
    // id was recycled across kinds — generation hygiene catches reuse,
    // this catches a corrupted id.
    DVV_ASSERT_MSG(req.is_read == want_read, "coord: reply kind mismatch");
    if (req.outcome() != CoordOutcome::kPending) {
      ++stats_.late_replies_dropped;  // finished state stays untouched
      obs::coord_metrics().replies_late_dropped.inc();
      obs::flight().record("coord", "reply_late_dropped", id);
      return nullptr;
    }
    return &req;
  }

  Request& harvest_target(std::uint64_t id, bool want_read) {
    DVV_ASSERT_MSG(table_.is_current(id), "coord: harvesting a dead request id");
    Request& req = slot(id);
    DVV_ASSERT(req.is_read == want_read);
    DVV_ASSERT_MSG(req.outcome() != CoordOutcome::kPending,
                   "coord: harvesting a pending request (finalize first)");
    return req;
  }

  static bool already_counted_impl(const std::vector<ReplicaId>& seen,
                                   ReplicaId from) noexcept {
    for (const ReplicaId r : seen) {
      if (r == from) return true;
    }
    return false;
  }

  bool already_counted(const std::vector<ReplicaId>& seen, ReplicaId from) {
    if (!already_counted_impl(seen, from)) return false;
    ++stats_.duplicate_replies_dropped;  // a duplicate counts once
    obs::coord_metrics().replies_duplicate_dropped.inc();
    obs::flight().record("coord", "reply_duplicate_dropped", 0, from);
    return true;
  }

  bool maybe_complete_write(Request& req) {
    if (req.write_quorum == 0) return false;  // scatter not sealed yet
    if (req.write.acked_by.size() < req.write_quorum) return false;
    complete(req, CoordOutcome::kQuorum);
    return true;
  }

  void complete(Request& req, CoordOutcome outcome) {
    DVV_ASSERT(req.outcome() == CoordOutcome::kPending);
    req.set_outcome(outcome);
    obs::CoordMetrics& m = obs::coord_metrics();
    switch (outcome) {
      case CoordOutcome::kQuorum:
        ++stats_.quorum_completions;
        m.requests_quorum.inc();
        break;
      case CoordOutcome::kTimeout:
        ++stats_.timeouts;
        m.requests_timeout.inc();
        break;
      case CoordOutcome::kUnavailable:
        ++stats_.unavailable;
        m.requests_unavailable.inc();
        break;
      case CoordOutcome::kPending: break;
    }
    m.latency_ticks.record(tick_ - req.start_tick);
    obs::flight().record("coord", "complete", req.id,
                         static_cast<std::uint64_t>(outcome),
                         tick_ - req.start_tick);
    completed_.push_back(req.id);
  }

  void expire(Request& req) {
    obs::flight().record("coord", "deadline_expired", req.id, tick_);
    const bool answered = req.is_read ? !req.read.responders.empty()
                                      : !req.write.acked_by.empty();
    complete(req, answered ? CoordOutcome::kTimeout : CoordOutcome::kUnavailable);
  }

  void retire(std::uint64_t id) {
    requests_[RequestTable::slot_of(id)].reset();
    std::erase(completed_, id);
    table_.retire(id);
  }

  RequestTable table_;
  std::vector<Request> requests_;       ///< indexed by slot
  std::vector<std::uint64_t> completed_;  ///< terminal, unharvested, in order
  CoordStats stats_;
  std::uint64_t tick_ = 0;
};

}  // namespace dvv::kv
