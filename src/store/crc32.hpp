// dvv/store/crc32.hpp
//
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for framing
// write-ahead-log records.  Unlike the 64-bit content digests in
// src/sync (which compare *states* across replicas), this checksum
// guards *physical* log integrity: a record whose CRC does not match
// was torn by a crash mid-write and must be discarded at recovery.
// Table-driven, constexpr-initialized, dependency free.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace dvv::store {

namespace detail {

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::byte b : data) {
    crc = detail::kCrc32Table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dvv::store
