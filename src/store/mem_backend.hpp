// dvv/store/mem_backend.hpp
//
// The no-durability backend: the seed's original behaviour, now stated
// explicitly.  The replica's in-memory map is the only copy, so a
// crash() is total state loss and recovery finds nothing — every byte
// the replica serves after recovering must come back from its peers
// (WAL-less Redis, memcached, or a Riak node whose disk died).  Appends
// are counted but not stored: the backend costs nothing, which is why
// it stays the default.
#pragma once

#include <cstddef>

#include "store/backend.hpp"

namespace dvv::store {

class MemBackend final : public StorageBackend {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "mem"; }

  void append(const Record& /*record*/) override {
    ++appends_;
    ++appends_since_recover_;
  }
  void flush() override {}
  void drop_volatile(std::size_t /*torn_tail_bytes*/) override {}

  /// Nothing to replay — but every record appended since the previous
  /// recovery is reported LOST, so the owning replica knows this was a
  /// lossy rebirth (and must bump its clock incarnation).
  [[nodiscard]] RecoveryResult recover() override {
    RecoveryResult out;
    out.stats.records_lost_unflushed = appends_since_recover_;
    appends_since_recover_ = 0;
    return out;
  }
  [[nodiscard]] std::size_t log_bytes() const noexcept override { return 0; }

  [[nodiscard]] std::size_t appends() const noexcept { return appends_; }

 private:
  std::size_t appends_ = 0;
  std::size_t appends_since_recover_ = 0;
};

}  // namespace dvv::store
