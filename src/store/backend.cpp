#include "store/backend.hpp"

#include <cstdlib>
#include <string_view>

#include "store/mem_backend.hpp"
#include "store/wal_backend.hpp"

namespace dvv::store {

BackendKind default_backend_kind() {
  static const BackendKind kind = [] {
    const char* v = std::getenv("DVV_STORE_BACKEND");
    if (v != nullptr && std::string_view(v) == "wal") return BackendKind::kWal;
    return BackendKind::kMem;
  }();
  return kind;
}

std::unique_ptr<StorageBackend> make_backend(const BackendConfig& config) {
  switch (config.kind) {
    case BackendKind::kWal:
      return std::make_unique<WalBackend>(config.wal);
    case BackendKind::kMem:
      break;
  }
  return std::make_unique<MemBackend>();
}

}  // namespace dvv::store
