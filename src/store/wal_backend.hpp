// dvv/store/wal_backend.hpp
//
// Append-only write-ahead log over the codec encodings.
//
// Physical layout: a list of sealed segments plus one active segment,
// each an append-only byte buffer of CRC-framed records:
//
//   frame   := varint(payload_len) varint(crc32(payload)) payload
//   payload := varint(seq) varint(type) bytes(key) varint(owner) bytes(state)
//
// Durability model: sealed segments are fully durable (rotation implies
// a flush, like fdatasync-on-close); the active segment is durable up
// to `active_durable_` — the watermark flush() advances.  Group commit
// batches appends between flushes (WalConfig::flush_every); a crash
// truncates the active segment to the watermark, except that torn-write
// injection may leave a partial frame behind for recovery's CRC check
// to reject.
//
// Recovery scans segments in order, validates every frame (length
// bounds, then CRC over the payload), stops at the first invalid frame
// (a torn tail), decodes the surviving records, and resets the write
// state to the valid prefix.  Because each record carries the key's
// full post-write state, replay is last-record-wins — no mechanism
// logic, no merge.
//
// Compaction: when enough sealed segments have accumulated and enough
// of their records have been superseded, the sealed list is rewritten
// as one segment holding only the latest record per slot — a slot being
// (data, key) or (hint, owner, key) — in deterministic sorted order.
// Hint slots whose latest sealed record is a kHintDrop vanish entirely.
// The active segment is never touched (its records are newer than
// anything sealed, so last-wins replay ordering is preserved).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "store/backend.hpp"

namespace dvv::store {

/// Lifetime counters (observability for tests and the bench).
struct WalStats {
  std::size_t appends = 0;
  std::size_t flushes = 0;
  std::size_t segments_sealed = 0;
  std::size_t compactions = 0;
  std::size_t compaction_records_dropped = 0;
};

class WalBackend final : public StorageBackend {
 public:
  explicit WalBackend(WalConfig config = {});

  [[nodiscard]] const char* name() const noexcept override { return "wal"; }

  void append(const Record& record) override;
  void flush() override;
  void drop_volatile(std::size_t torn_tail_bytes) override;
  [[nodiscard]] RecoveryResult recover() override;
  [[nodiscard]] std::size_t log_bytes() const noexcept override;

  [[nodiscard]] const WalConfig& config() const noexcept { return config_; }
  [[nodiscard]] const WalStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return sealed_.size() + 1;
  }
  [[nodiscard]] std::size_t durable_bytes() const noexcept;
  [[nodiscard]] std::size_t pending_records() const noexcept {
    return pending_records_;
  }

  // ---- tamper / corpus hooks ----------------------------------------------
  //
  // The crash model can only tear the active tail; EXTERNAL tampering
  // (a bit-rotted disk, an adversary editing segment files) can put
  // arbitrary bytes anywhere.  These hooks let tests and the fuzz
  // harnesses drive recover() over exactly such segments, and let the
  // corpus generator mint seed inputs from real log bytes.

  /// Installs `bytes` verbatim as an additional sealed segment — of
  /// unknown provenance, exactly what recover() must survive.  The
  /// recovery contract over injected garbage is rejection, never an
  /// abort: scanning stops at the first invalid frame.
  void inject_raw_segment(std::vector<std::byte> bytes) {
    sealed_.push_back(std::move(bytes));
  }

  /// Raw bytes of every segment, sealed first, active last.
  [[nodiscard]] std::vector<std::vector<std::byte>> raw_segments() const {
    std::vector<std::vector<std::byte>> out = sealed_;
    out.push_back(active_);
    return out;
  }

 private:
  using Segment = std::vector<std::byte>;
  /// (is-hint, owner, key): one live state per slot.
  using SlotKey = std::tuple<bool, core::ActorId, std::string>;

  void rotate();
  void maybe_compact();
  [[nodiscard]] static SlotKey slot_of(const Record& record);

  WalConfig config_;
  std::vector<Segment> sealed_;
  Segment active_;
  std::size_t active_durable_ = 0;   ///< flushed watermark into active_
  std::size_t pending_records_ = 0;  ///< appends since the last flush
  std::size_t active_records_ = 0;   ///< complete frames in active_
  std::size_t last_crash_lost_records_ = 0;  ///< set by drop_volatile()
  std::uint64_t next_seq_ = 1;

  // Garbage accounting for the compaction trigger: a sealed record is
  // garbage when a later record for its slot exists anywhere, i.e. when
  // the slot's latest record is NOT the sealed one.
  std::map<SlotKey, bool> latest_in_sealed_;  ///< slot -> latest lives sealed
  std::size_t sealed_records_ = 0;

  WalStats stats_;
};

}  // namespace dvv::store
