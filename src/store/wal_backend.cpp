#include "store/wal_backend.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <utility>

#include "codec/wire.hpp"
#include "obs/metrics.hpp"
#include "store/crc32.hpp"
#include "util/assert.hpp"

namespace dvv::store {

namespace {

struct ParsedFrame {
  Record record;
  std::uint64_t seq = 0;
  std::size_t payload_bytes = 0;
  std::size_t end = 0;  ///< offset just past the frame
};

/// Parses and validates one frame at `pos`.  Returns false on any
/// truncation, CRC mismatch or malformed payload — the caller treats
/// that as the torn end of the log.
///
/// Every read is strict, INCLUDING the post-CRC payload parse: a CRC
/// match only proves the payload bytes arrived as written, not that
/// they were written by append() — a tampered or fuzzer-minted segment
/// can carry a correct CRC over a malformed payload, and replay must
/// reject it as corruption, not abort on it.
bool parse_frame(std::span<const std::byte> seg, std::size_t pos, ParsedFrame& out) {
  codec::StrictReader header(seg.subspan(pos));
  std::uint64_t payload_len = 0;
  std::uint64_t crc_stored = 0;
  if (!header.varint(payload_len)) return false;
  if (!header.varint(crc_stored)) return false;
  pos += header.position();
  if (payload_len > seg.size() - pos) return false;
  const std::span<const std::byte> payload = seg.subspan(pos, payload_len);
  if (crc32(payload) != crc_stored) return false;

  codec::StrictReader r(payload);
  std::uint64_t type = 0;
  if (!r.varint(out.seq) || !r.varint(type)) return false;
  if (type > static_cast<std::uint64_t>(RecordType::kHintDrop)) return false;
  out.record.type = static_cast<RecordType>(type);
  if (!r.bytes(out.record.key)) return false;
  if (!r.varint(out.record.owner)) return false;
  if (!r.bytes(out.record.state)) return false;
  if (!r.done()) return false;
  out.payload_bytes = payload_len;
  out.end = pos + payload_len;
  return true;
}

void frame_record(std::vector<std::byte>& segment, std::uint64_t seq,
                  const Record& record) {
  codec::Writer payload;
  payload.varint(seq);
  payload.varint(static_cast<std::uint64_t>(record.type));
  payload.bytes(record.key);
  payload.varint(record.owner);
  payload.bytes(record.state);

  codec::Writer header;
  header.varint(payload.size());
  header.varint(crc32(std::span<const std::byte>(payload.buffer())));

  segment.insert(segment.end(), header.buffer().begin(), header.buffer().end());
  segment.insert(segment.end(), payload.buffer().begin(), payload.buffer().end());
}

}  // namespace

WalBackend::WalBackend(WalConfig config) : config_(config) {
  DVV_ASSERT(config_.segment_bytes > 0);
}

WalBackend::SlotKey WalBackend::slot_of(const Record& record) {
  return {record.type != RecordType::kData, record.owner, record.key};
}

void WalBackend::append(const Record& record) {
  frame_record(active_, next_seq_++, record);
  ++active_records_;
  ++pending_records_;
  ++stats_.appends;
  obs::wal_metrics().appends.inc();
  latest_in_sealed_[slot_of(record)] = false;  // latest is now in active_
  if (config_.flush_every > 0 && pending_records_ >= config_.flush_every) flush();
  if (active_.size() >= config_.segment_bytes) rotate();
}

void WalBackend::flush() {
  if (pending_records_ == 0) return;
  active_durable_ = active_.size();
  pending_records_ = 0;
  ++stats_.flushes;
  obs::wal_metrics().fsyncs.inc();
}

void WalBackend::rotate() {
  flush();
  sealed_.push_back(std::move(active_));
  active_.clear();
  active_durable_ = 0;
  sealed_records_ += active_records_;
  active_records_ = 0;
  for (auto& [slot, in_sealed] : latest_in_sealed_) in_sealed = true;
  ++stats_.segments_sealed;
  obs::wal_metrics().segments_sealed.inc();
  maybe_compact();
}

void WalBackend::maybe_compact() {
  if (sealed_.size() < config_.compact_min_segments || sealed_records_ == 0) return;
  std::size_t live_in_sealed = 0;
  for (const auto& [slot, in_sealed] : latest_in_sealed_) {
    live_in_sealed += in_sealed ? 1 : 0;
  }
  const double garbage =
      1.0 - static_cast<double>(live_in_sealed) /
                static_cast<double>(sealed_records_);
  if (garbage < config_.compact_min_garbage) return;

  // Last sealed record per slot (sorted slot order = deterministic
  // output); hint slots whose final sealed record is a drop vanish.
  std::map<SlotKey, std::pair<std::uint64_t, Record>> latest;
  for (const Segment& seg : sealed_) {
    std::size_t pos = 0;
    ParsedFrame frame;
    while (pos < seg.size() && parse_frame(seg, pos, frame)) {
      latest[slot_of(frame.record)] = {frame.seq, std::move(frame.record)};
      pos = frame.end;
    }
  }
  Segment compacted;
  std::size_t emitted = 0;
  for (const auto& [slot, entry] : latest) {
    if (entry.second.type == RecordType::kHintDrop) {
      // Nothing survives for this slot anywhere in the sealed log; if
      // the active segment has not re-stashed it, forget the slot.
      if (auto it = latest_in_sealed_.find(slot);
          it != latest_in_sealed_.end() && it->second) {
        latest_in_sealed_.erase(it);
      }
      continue;
    }
    frame_record(compacted, entry.first, entry.second);
    ++emitted;
  }
  obs::WalMetrics& m = obs::wal_metrics();
  m.compaction_records_dropped.inc(sealed_records_ - emitted);
  stats_.compaction_records_dropped += sealed_records_ - emitted;
  sealed_.clear();
  sealed_.push_back(std::move(compacted));
  sealed_records_ = emitted;
  ++stats_.compactions;
  m.compactions.inc();
}

void WalBackend::drop_volatile(std::size_t torn_tail_bytes) {
  // Accumulate: a second crash before recovery must not erase the first
  // crash's recorded loss (the incarnation bump hangs off this count).
  last_crash_lost_records_ += pending_records_;
  std::size_t keep = active_durable_;
  if (torn_tail_bytes > 0 && active_.size() > keep) {
    // A torn write: part of the first un-flushed frame reached the disk.
    keep = std::min(active_.size(), keep + torn_tail_bytes);
  }
  active_.resize(keep);
  active_records_ -= pending_records_;
  pending_records_ = 0;
}

RecoveryResult WalBackend::recover() {
  // Wall-clock the replay for wal.replay_us.  The timer feeds metrics
  // only — no control flow depends on it, so behavior invariance holds.
  // dvv-lint: allow(wall-clock)
  const auto replay_start = std::chrono::steady_clock::now();
  RecoveryResult out;
  out.stats.records_lost_unflushed = last_crash_lost_records_;
  last_crash_lost_records_ = 0;

  sealed_records_ = 0;
  active_records_ = 0;
  latest_in_sealed_.clear();
  std::uint64_t max_seq = 0;
  bool torn = false;

  for (std::size_t s = 0; s <= sealed_.size() && !torn; ++s) {
    const bool is_active = s == sealed_.size();
    Segment& seg = is_active ? active_ : sealed_[s];
    ++out.stats.segments_scanned;
    std::size_t pos = 0;
    while (pos < seg.size()) {
      ParsedFrame frame;
      if (!parse_frame(seg, pos, frame)) {
        // Torn/corrupt frame: the log ends here.  Drop the partial
        // bytes so future appends continue a clean tail.
        ++out.stats.torn_records_dropped;
        seg.resize(pos);
        torn = true;
        break;
      }
      max_seq = std::max(max_seq, frame.seq);
      out.stats.bytes_replayed += frame.payload_bytes;
      ++out.stats.records_replayed;
      latest_in_sealed_[slot_of(frame.record)] = !is_active;
      if (is_active) {
        ++active_records_;
      } else {
        ++sealed_records_;
      }
      out.records.push_back(std::move(frame.record));
      pos = frame.end;
    }
    if (torn && !is_active) {
      // Corruption inside a sealed segment (not reachable through the
      // crash model, but possible via external tampering): everything
      // after it is of unknown provenance — drop it.
      sealed_.resize(s + 1);
      active_.clear();
    }
  }

  active_durable_ = active_.size();
  pending_records_ = 0;
  next_seq_ = max_seq + 1;

  obs::WalMetrics& m = obs::wal_metrics();
  m.recoveries.inc();
  m.records_replayed.inc(out.stats.records_replayed);
  m.torn_records_dropped.inc(out.stats.torn_records_dropped);
  // dvv-lint: allow(wall-clock) — metrics-only replay timer (replay_us)
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - replay_start);
  m.replay_us.record(static_cast<std::uint64_t>(elapsed.count()));
  obs::flight().record("wal", "recover", 0, out.stats.records_replayed,
                       out.stats.torn_records_dropped,
                       static_cast<std::uint64_t>(elapsed.count()));
  return out;
}

std::size_t WalBackend::log_bytes() const noexcept {
  std::size_t n = active_.size();
  for (const Segment& seg : sealed_) n += seg.size();
  return n;
}

std::size_t WalBackend::durable_bytes() const noexcept {
  std::size_t n = active_durable_;
  for (const Segment& seg : sealed_) n += seg.size();
  return n;
}

}  // namespace dvv::store
