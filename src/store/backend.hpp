// dvv/store/backend.hpp
//
// Pluggable per-replica storage: the durability model under Replica<M>.
//
// A replica's in-memory map is its *volatile* state; the backend is its
// *disk*.  Every mutation writes through as a logical record carrying
// the key's full post-write codec encoding (the same bytes that cross
// the wire on replication), so replay needs no mechanism logic: the
// last record per key IS the key's state.  Records are mechanism
// agnostic — the backend stores bytes, the replica encodes/decodes.
//
// Two implementations:
//
//   MemBackend   memory only (the seed's behaviour): appends are
//                dropped, a crash loses everything, recovery returns
//                nothing.  Zero cost — the default.
//
//   WalBackend   an append-only write-ahead log with CRC-framed
//                records, segment rotation, group commit (batched
//                fsync) and compaction; crash() keeps exactly the
//                flushed prefix (plus an optionally-injected torn tail)
//                and recovery replays it.  See wal_backend.hpp.
//
// The "disk" is a byte-faithful in-process model, matching how this
// repository models the network: segments are byte buffers with an
// explicit durable watermark standing in for fsync.  Everything a real
// log does to bytes — framing, tearing, CRC rejection, rotation,
// compaction — happens to these bytes, deterministically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dvv::store {

/// What a log record describes.  kData carries a key's sibling state;
/// kHint carries the state parked for a dead owner (hinted handoff);
/// kHintDrop marks a delivered hint so replay does not resurrect it.
enum class RecordType : std::uint8_t { kData = 0, kHint = 1, kHintDrop = 2 };

/// One logical write-through record.  `state` is the full post-write
/// codec encoding of the key's stored sibling state (empty for
/// kHintDrop); `owner` is the intended owner for hint records (0 for
/// data records — replica ids are small, but 0 is fine because the
/// type tag disambiguates).
struct Record {
  RecordType type = RecordType::kData;
  std::string key;
  core::ActorId owner = 0;
  std::string state;
};

/// What recovery observed while replaying the log.
struct RecoveryStats {
  std::size_t segments_scanned = 0;
  std::size_t records_replayed = 0;
  std::size_t bytes_replayed = 0;          ///< payload bytes of valid records
  std::size_t torn_records_dropped = 0;    ///< truncated / CRC-failed records
  std::size_t records_lost_unflushed = 0;  ///< complete records dropped by the
                                           ///  last crash (never made the disk)
};

struct RecoveryResult {
  std::vector<Record> records;  ///< valid records, in log order (last wins)
  RecoveryStats stats;
};

/// The backend interface Replica<M> writes through.  All calls are
/// issued by the owning replica on its own single-threaded timeline.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Appends one logical record (called AFTER the in-memory apply).
  virtual void append(const Record& record) = 0;

  /// Durability barrier: everything appended so far survives a crash.
  virtual void flush() = 0;

  /// Crash: drops whatever the durability model says is volatile.
  /// `torn_tail_bytes` > 0 injects a torn write — that many bytes of
  /// the first un-flushed record made it to disk before power died,
  /// leaving a partial frame for recovery's CRC check to reject.
  virtual void drop_volatile(std::size_t torn_tail_bytes) = 0;

  /// Replays the surviving log.  Also resets the backend's write state
  /// to the valid replayed prefix so subsequent appends continue it.
  [[nodiscard]] virtual RecoveryResult recover() = 0;

  /// Total bytes currently occupying the log (0 for memory backends).
  [[nodiscard]] virtual std::size_t log_bytes() const noexcept = 0;
};

enum class BackendKind : std::uint8_t { kMem = 0, kWal = 1 };

/// Geometry and durability knobs of the write-ahead log.
struct WalConfig {
  std::size_t segment_bytes = 64 * 1024;  ///< rotate when active exceeds this
  /// Group commit: flush after every N appends.  1 = write-through
  /// (every record durable immediately), 0 = only explicit flush().
  std::size_t flush_every = 1;
  std::size_t compact_min_segments = 4;  ///< sealed segments before compacting
  double compact_min_garbage = 0.5;      ///< obsolete-record fraction trigger
};

/// Process-wide default backend kind: DVV_STORE_BACKEND=wal flips every
/// default-configured cluster to the write-ahead log (CI runs the whole
/// suite in that mode); anything else means MemBackend.
[[nodiscard]] BackendKind default_backend_kind();

struct BackendConfig {
  BackendKind kind = default_backend_kind();
  WalConfig wal{};
};

[[nodiscard]] std::unique_ptr<StorageBackend> make_backend(const BackendConfig& config);

}  // namespace dvv::store
