// dvv/core/vv_kernels.hpp
//
// The two plain-version-vector baselines the paper argues against, as
// per-key storage kernels with the same GET/PUT/SYNC shape as
// DvvSiblings:
//
//   * ServerVvSiblings — one VV entry per replica *server* (the scheme of
//     Locus/Coda/Ficus, Fig. 1b).  Bounded metadata, but UNSOUND for
//     multi-version stores: when two clients write concurrently through
//     the same server, the second new version's VV necessarily dominates
//     the first's ([2,0] < [3,0] in the paper's example), so a later sync
//     silently destroys a true sibling.  We implement it faithfully,
//     anomaly included — it is the E2 baseline and the oracle counts its
//     errors.
//
//   * ClientVvSiblings — one VV entry per writing *client* (Riak-classic).
//     SOUND (each concurrent writer owns an entry) but the vector grows
//     with every distinct client that ever wrote the key, which is the
//     size blow-up of experiment E5.  An optional pruning policy caps the
//     entry count the way production systems did — optimistically and
//     unsafely (experiment E8).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/causality.hpp"
#include "core/pruning.hpp"
#include "core/version_vector.hpp"
#include "util/assert.hpp"

namespace dvv::core {

/// A stored version tagged by a plain version vector.
template <typename Value>
struct VvVersion {
  VersionVector clock;
  Value value;

  friend bool operator==(const VvVersion&, const VvVersion&) = default;
};

namespace detail {

/// Shared sibling-set plumbing for both VV kernels: the difference
/// between them is *who increments which entry*, which lives in update().
template <typename Value>
class VvSiblingsBase {
 public:
  using Version = VvVersion<Value>;

  [[nodiscard]] bool empty() const noexcept { return versions_.empty(); }
  [[nodiscard]] std::size_t sibling_count() const noexcept { return versions_.size(); }
  [[nodiscard]] const std::vector<Version>& versions() const noexcept { return versions_; }

  [[nodiscard]] std::size_t clock_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& v : versions_) n += v.clock.size();
    return n;
  }

  /// GET context: join of all sibling VVs.
  [[nodiscard]] VersionVector context() const {
    VersionVector ctx;
    for (const auto& v : versions_) ctx.merge(v.clock);
    return ctx;
  }

  /// Anti-entropy merge under plain VV comparison: keep versions not
  /// dominated by the other side.  For the server-VV kernel this is
  /// where falsely-dominating clocks destroy true siblings.
  void sync(const VvSiblingsBase& other) {
    if (&other == this) return;  // self-sync is a no-op (idempotence)
    std::vector<Version> merged;
    merged.reserve(versions_.size() + other.versions_.size());
    // Both passes must test against the *original* states, so no moves
    // until the merged set is complete.
    for (const auto& mine : versions_) {
      if (!dominated_by(mine.clock, other.versions_, /*equal_counts=*/false)) {
        merged.push_back(mine);
      }
    }
    for (const auto& theirs : other.versions_) {
      if (!dominated_by(theirs.clock, versions_, /*equal_counts=*/true)) {
        merged.push_back(theirs);
      }
    }
    versions_ = std::move(merged);
  }

  void absorb(const Version& incoming) {
    VvSiblingsBase single;
    single.versions_.push_back(incoming);
    sync(single);
  }

  void inject(VersionVector clock, Value value) {
    versions_.push_back(Version{std::move(clock), std::move(value)});
  }

  friend bool operator==(const VvSiblingsBase&, const VvSiblingsBase&) = default;

 protected:
  void discard_obsolete(const VersionVector& ctx) {
    std::erase_if(versions_,
                  [&](const Version& v) { return ctx.descends(v.clock); });
  }

  [[nodiscard]] static bool dominated_by(const VersionVector& clock,
                                         const std::vector<Version>& others,
                                         bool equal_counts) noexcept {
    for (const auto& o : others) {
      const Ordering ord = clock.compare(o.clock);
      if (ord == Ordering::kBefore) return true;
      if (equal_counts && ord == Ordering::kEqual) return true;
    }
    return false;
  }

  std::vector<Version> versions_;
};

}  // namespace detail

/// Per-server version vectors (Fig. 1b).  See file header for the anomaly.
template <typename Value>
class ServerVvSiblings : public detail::VvSiblingsBase<Value> {
  using Base = detail::VvSiblingsBase<Value>;

 public:
  /// PUT coordinated by `server`.  The new clock is the client context
  /// bumped at the server's entry, past the highest counter this key has
  /// issued here — the faithful Coda-style rule.  When the write raced a
  /// sibling, the fresh clock *falsely dominates* that sibling's clock:
  /// a VV has nowhere to record "concurrent with (server, n)".
  void update(ActorId server, const VersionVector& ctx, Value value) {
    Counter n = ctx.get(server);
    for (const auto& v : this->versions_) n = std::max(n, v.clock.get(server));
    this->discard_obsolete(ctx);
    VersionVector clock = ctx;
    clock.set(server, n + 1);
    this->versions_.push_back(
        typename Base::Version{std::move(clock), std::move(value)});
  }
};

/// Per-client version vectors (Riak-classic), optionally pruned.
template <typename Value>
class ClientVvSiblings : public detail::VvSiblingsBase<Value> {
  using Base = detail::VvSiblingsBase<Value>;

 public:
  /// PUT by `client`.  The new clock is the context bumped at the
  /// *client's* entry.  Sound: two concurrent writers bump different
  /// entries, so neither clock dominates the other.  The cost is one
  /// entry per distinct writer forever — unless pruned via `prune_cfg`,
  /// which trades the growth for correctness (experiment E8).  Pruning
  /// activity is reported through `stats` when given.
  void update(ActorId client, const VersionVector& ctx, Value value,
              const PruneConfig& prune_cfg = {}, PruneStats* stats = nullptr) {
    Counter n = ctx.get(client);
    for (const auto& v : this->versions_) n = std::max(n, v.clock.get(client));
    this->discard_obsolete(ctx);
    VersionVector clock = ctx;
    clock.set(client, n + 1);
    if (prune_cfg.enabled()) {
      const PruneStats dropped = prune(clock, prune_cfg);
      if (stats != nullptr) stats->merge(dropped);
    }
    this->versions_.push_back(
        typename Base::Version{std::move(clock), std::move(value)});
  }
};

}  // namespace dvv::core
