// dvv/core/dvv_set.hpp
//
// Dotted version vector *sets* — the compact successor representation
// (Gonçalves, Almeida, Baquero, Fonte: "Scalable and Accurate Causality
// Tracking for Eventually Consistent Stores", 2014; shipped in Riak as
// `dvvset`).  The brief announcement tags each sibling with its own DVV;
// a DVVSet replaces the whole sibling set with ONE clock:
//
//     { (actor_i, n_i, [v_1, v_2, ...]) }
//
// Per actor, n_i is the highest event of actor_i this key has seen, and
// the value list holds the values of the *retained* (still-concurrent)
// versions with dots (actor_i, n_i), (actor_i, n_i - 1), ... newest
// first.  Every dot below the retained run is known-obsolete, so the
// causal past needs no separate vector: the pair (actor, n) doubles as
// the context entry, and each value's dot is implied by its position.
//
// Why it is in this reproduction: it is the natural end point of the
// paper's own argument (decouple identity from past, bound metadata by
// the replication degree) and the representation the Riak evaluation in
// the paper's §2 ultimately led to.  bench_dvvset_ablation (E10)
// measures what the compaction buys over per-sibling DVVs.
//
// Deviation from the Erlang reference: no "anonymous" (dotless) value
// list.  Anonymous values exist there to interoperate with legacy data;
// every write in this library is coordinated by a server and therefore
// dotted.  DESIGN.md records the substitution.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/dot.hpp"
#include "core/version_vector.hpp"
#include "util/assert.hpp"

namespace dvv::core {

template <typename Value>
class DvvSet {
 public:
  struct Entry {
    ActorId actor = 0;
    Counter n = 0;              ///< highest event of `actor` seen by this key
    std::vector<Value> values;  ///< values of dots n, n-1, ... (newest first)

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  DvvSet() = default;

  [[nodiscard]] bool empty() const noexcept {
    return sibling_count() == 0;
  }

  /// Number of live concurrent values.
  [[nodiscard]] std::size_t sibling_count() const noexcept {
    std::size_t n = 0;
    for (const auto& e : entries_) n += e.values.size();
    return n;
  }

  /// Clock-map entries (the E5/E10 metadata metric): one (actor, n) pair
  /// per entry, independent of how many values are retained.
  [[nodiscard]] std::size_t clock_entries() const noexcept { return entries_.size(); }

  [[nodiscard]] const std::vector<Entry>& entries() const noexcept { return entries_; }

  /// GET context: the top counters, as a plain VV.  Dominates every
  /// retained value's dot by construction.
  [[nodiscard]] VersionVector context() const {
    VersionVector ctx;
    for (const auto& e : entries_) ctx.set(e.actor, e.n);
    return ctx;
  }

  /// All live values, newest-first within each actor.
  [[nodiscard]] std::vector<const Value*> values() const {
    std::vector<const Value*> out;
    out.reserve(sibling_count());
    for (const auto& e : entries_) {
      for (const auto& v : e.values) out.push_back(&v);
    }
    return out;
  }

  /// The dot implicitly attached to e.values[k].
  [[nodiscard]] static Dot dot_of(const Entry& e, std::size_t k) noexcept {
    DVV_ASSERT(k < e.values.size());
    return Dot{e.actor, e.n - k};
  }

  /// PUT coordinated by `server` with the client's read context:
  /// absorb the context into the clock (discarding the values it
  /// obsoletes), then mint the next server event and prepend the new
  /// value.  Returns the new dot.  This is `update/3` of the reference
  /// algorithm: sync the clock with the context-as-clock, then `event`.
  Dot update(ActorId server, const VersionVector& ctx, Value value) {
    discard(ctx);
    Entry& e = entry_for(server);
    e.n += 1;
    e.values.insert(e.values.begin(), std::move(value));
    return Dot{server, e.n};
  }

  /// Merges a causal context into the clock: equivalent to syncing with
  /// a value-less clock { (actor, c, []) }.  Per context entry (i, c):
  /// values of i with implied dot <= c are dropped; if c exceeds our top
  /// counter the entry is raised to (c, []) — and *adopted* if we had
  /// never seen actor i.  Adoption is what carries causal knowledge
  /// about third-party actors across servers; without it a replica that
  /// never coordinated a write for actor i would forget that i's events
  /// are obsolete and later resurrect them during sync.
  void discard(const VersionVector& ctx) {
    for (const auto& [actor, c] : ctx.entries()) {
      Entry& e = entry_for(actor);
      if (c >= e.n) {
        e.n = c;  // context covers everything we retain for this actor
        e.values.clear();
      } else {
        // value k has dot n-k; survives iff n-k > c  <=>  k < n - c.
        const std::size_t keep = std::min<std::size_t>(
            e.values.size(), static_cast<std::size_t>(e.n - c));
        e.values.resize(keep);
      }
    }
  }

  /// Replica merge (reference algorithm `dvvset:sync/2`).  Per shared
  /// actor with (n1, l1), (n2, l2) and n1 >= n2: if n1 - |l1| >= n2 the
  /// left run already subsumes everything the right retains; otherwise
  /// keep the newest n1 - n2 + |l2| values of the left run (the runs
  /// overlap, and equal dots carry equal values).  Commutative,
  /// associative, idempotent.
  void sync(const DvvSet& other) {
    if (&other == this) return;  // self-sync is a no-op (idempotence)
    std::vector<Entry> merged;
    merged.reserve(entries_.size() + other.entries_.size());
    auto a = entries_.begin();
    auto b = other.entries_.begin();
    while (a != entries_.end() || b != other.entries_.end()) {
      if (b == other.entries_.end() ||
          (a != entries_.end() && a->actor < b->actor)) {
        merged.push_back(std::move(*a++));
      } else if (a == entries_.end() || b->actor < a->actor) {
        merged.push_back(*b++);
      } else {
        merged.push_back(merge_entries(*a, *b));
        ++a;
        ++b;
      }
    }
    entries_ = std::move(merged);
  }

  /// Direct injection for tests: entry must keep the invariants
  /// (n >= |values|, entries sorted by actor, one entry per actor).
  void inject(Entry entry) {
    DVV_ASSERT(entry.n >= entry.values.size());
    auto it = std::lower_bound(entries_.begin(), entries_.end(), entry.actor,
                               [](const Entry& e, ActorId a) { return e.actor < a; });
    DVV_ASSERT(it == entries_.end() || it->actor != entry.actor);
    entries_.insert(it, std::move(entry));
  }

  friend bool operator==(const DvvSet&, const DvvSet&) = default;

 private:
  Entry& entry_for(ActorId actor) {
    auto it = std::lower_bound(entries_.begin(), entries_.end(), actor,
                               [](const Entry& e, ActorId a) { return e.actor < a; });
    if (it != entries_.end() && it->actor == actor) return *it;
    it = entries_.insert(it, Entry{actor, 0, {}});
    return *it;
  }

  [[nodiscard]] static Entry merge_entries(const Entry& x, const Entry& y) {
    const Entry& hi = x.n >= y.n ? x : y;
    const Entry& lo = x.n >= y.n ? y : x;
    if (hi.n - hi.values.size() >= lo.n) {
      // hi's retained run reaches at/below everything lo retains.
      return hi;
    }
    // Runs overlap: dots (lo.n - |lo.values| , hi.n] survive on both
    // sides' evidence; keep the newest (hi.n - lo.n + |lo.values|) of hi.
    Entry out;
    out.actor = hi.actor;
    out.n = hi.n;
    const std::size_t keep = static_cast<std::size_t>(hi.n - lo.n) + lo.values.size();
    out.values.assign(hi.values.begin(),
                      hi.values.begin() +
                          static_cast<std::ptrdiff_t>(std::min(keep, hi.values.size())));
    return out;
  }

  std::vector<Entry> entries_;  // sorted by actor, unique actors
};

}  // namespace dvv::core
