// dvv/core/causality.hpp
//
// The causality partial order.  Every clock mechanism in this library
// (causal histories, version vectors, dotted version vectors, DVVSets)
// exposes a comparison returning one of these four outcomes; the oracle
// (src/oracle) checks mechanisms against each other by comparing the
// Ordering values they produce for the same pair of versions.
#pragma once

#include <string_view>

namespace dvv::core {

/// Outcome of comparing two versions a and b under the causal order.
enum class Ordering {
  kEqual,       ///< a and b are the same version
  kBefore,      ///< a happened-before b (a < b): b supersedes a
  kAfter,       ///< b happened-before a (b < a): a supersedes b
  kConcurrent,  ///< neither precedes the other: true siblings
};

[[nodiscard]] constexpr std::string_view to_string(Ordering o) noexcept {
  switch (o) {
    case Ordering::kEqual: return "=";
    case Ordering::kBefore: return "<";
    case Ordering::kAfter: return ">";
    case Ordering::kConcurrent: return "||";
  }
  return "?";
}

/// Flips the direction of an ordering (compare(a,b) == flip(compare(b,a))).
[[nodiscard]] constexpr Ordering flip(Ordering o) noexcept {
  switch (o) {
    case Ordering::kBefore: return Ordering::kAfter;
    case Ordering::kAfter: return Ordering::kBefore;
    default: return o;
  }
}

/// True when the ordering says the left side is redundant: it is the same
/// version or causally precedes the right side.  This is the predicate a
/// storage server applies to decide whether a stored version is obsoleted.
[[nodiscard]] constexpr bool dominated(Ordering o) noexcept {
  return o == Ordering::kEqual || o == Ordering::kBefore;
}

}  // namespace dvv::core
