// dvv/core/dvv_kernel.hpp
//
// The multi-version storage workflow for dotted version vectors — the
// server-side kernel the paper's §2 describes and its companion report
// specifies as the `update`/`sync` functions.  One DvvSiblings<Value>
// instance is the per-key state of one replica server: the set of
// concurrent versions ("siblings"), each tagged with a DVV.
//
// Protocol recap (the classic get/put cycle of Dynamo-style stores):
//
//   GET:  the server returns every sibling value plus a *causal context*
//         — one plain VV that is the join of all sibling clocks.  The
//         context compactly says "the client has seen everything below
//         this line".
//
//   PUT:  the client sends back the context it got from its last GET
//         (empty for a blind write) plus the new value.  The server
//           1. discards the siblings whose dot the context contains
//              (they are causally overwritten — one O(1) lookup each),
//           2. mints the next dot (r, n+1) where n is the highest
//              r-event this key has ever seen here, and
//           3. stores the new version as ((r, n+1), context): the new
//              version depends on exactly what the client read — no
//              more, no less.  Anything the client did not read stays
//              concurrent and survives as a sibling.
//
//   SYNC: anti-entropy between two replicas keeps, from each side, the
//         versions not dominated by the other side (checked with the
//         O(1) dot rule).
//
// This is what fixes Figure 1b: a VV-based server must tag the second
// concurrent write with something that dominates its own sibling
// ([3,0] > [2,0]); the DVV server tags it (A,3)[1,0], concurrent with
// (A,2)[1,0], because the dot is not part of the causal past.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/causality.hpp"
#include "core/dot.hpp"
#include "core/dotted_version_vector.hpp"
#include "core/version_vector.hpp"
#include "util/assert.hpp"

namespace dvv::core {

template <typename Value>
class DvvSiblings {
 public:
  struct Version {
    DottedVersionVector clock;
    Value value;

    friend bool operator==(const Version&, const Version&) = default;
  };

  DvvSiblings() = default;

  [[nodiscard]] bool empty() const noexcept { return versions_.empty(); }
  [[nodiscard]] std::size_t sibling_count() const noexcept { return versions_.size(); }
  [[nodiscard]] const std::vector<Version>& versions() const noexcept { return versions_; }

  /// Total clock-map entries across all siblings — the metadata metric of
  /// experiment E5 (each sibling pays its vector entries plus its dot).
  [[nodiscard]] std::size_t clock_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& v : versions_) n += v.clock.entry_count();
    return n;
  }

  /// GET context: join of every sibling clock.  Dominates all siblings,
  /// so a PUT carrying it back overwrites all of them.
  [[nodiscard]] VersionVector context() const {
    VersionVector ctx;
    for (const auto& v : versions_) v.clock.fold_into(ctx);
    return ctx;
  }

  /// PUT at coordinator `server`: the paper's update().  Returns the dot
  /// minted for the new version (useful for tracing and the oracle).
  Dot update(ActorId server, const VersionVector& ctx, Value value) {
    // Highest server event this key has seen *before* discarding: dots
    // must never be reused, even for versions the context obsoletes.
    const Counter n = local_max(server, ctx);
    discard_obsolete(ctx);
    const Dot dot{server, n + 1};
    versions_.push_back(Version{DottedVersionVector(dot, ctx), std::move(value)});
    return dot;
  }

  /// Replica-to-replica merge: the paper's sync().  Keeps, from each
  /// side, the versions not obsoleted by the other side; versions present
  /// on both sides (equal dots) are kept once.  Commutative, associative
  /// and idempotent — properties the test suite checks exhaustively.
  void sync(const DvvSiblings& other) {
    if (&other == this) return;  // self-sync is a no-op (idempotence)
    std::vector<Version> merged;
    merged.reserve(versions_.size() + other.versions_.size());
    // Both passes must test against the *original* states, so no moves
    // until the merged set is complete.
    for (const auto& mine : versions_) {
      if (!dominated_by(mine.clock, other.versions_, /*equal_counts=*/false)) {
        merged.push_back(mine);
      }
    }
    for (const auto& theirs : other.versions_) {
      if (!dominated_by(theirs.clock, versions_, /*equal_counts=*/true)) {
        merged.push_back(theirs);
      }
    }
    versions_ = std::move(merged);
  }

  /// Absorbs a single replicated version (coordinator -> replica push).
  /// Equivalent to sync with a singleton set.
  void absorb(const Version& incoming) {
    DvvSiblings single;
    single.versions_.push_back(incoming);
    sync(single);
  }

  /// Direct injection for tests/replay tooling: bypasses the workflow.
  void inject(DottedVersionVector clock, Value value) {
    versions_.push_back(Version{std::move(clock), std::move(value)});
  }

  friend bool operator==(const DvvSiblings&, const DvvSiblings&) = default;

 private:
  /// max over {ctx[server]} ∪ {every server-event recorded by any stored
  /// sibling, dot or vector entry}.
  [[nodiscard]] Counter local_max(ActorId server, const VersionVector& ctx) const noexcept {
    Counter n = ctx.get(server);
    for (const auto& v : versions_) {
      n = std::max(n, v.clock.past().get(server));
      if (v.clock.dot().node == server) n = std::max(n, v.clock.dot().counter);
    }
    return n;
  }

  void discard_obsolete(const VersionVector& ctx) {
    std::erase_if(versions_,
                  [&](const Version& v) { return v.clock.obsoleted_by(ctx); });
  }

  /// Is `clock` dominated by any version in `others`?  With
  /// `equal_counts` set, an equal-dot twin counts as dominating (used for
  /// the second phase of sync so duplicates are kept exactly once).
  [[nodiscard]] static bool dominated_by(const DottedVersionVector& clock,
                                         const std::vector<Version>& others,
                                         bool equal_counts) noexcept {
    for (const auto& o : others) {
      const Ordering ord = clock.compare(o.clock);
      if (ord == Ordering::kBefore) return true;
      if (equal_counts && ord == Ordering::kEqual) return true;
    }
    return false;
  }

  std::vector<Version> versions_;
};

}  // namespace dvv::core
