// dvv/core/types.hpp
//
// Fundamental identifier types shared by every clock mechanism.
//
// The paper's unique event identifiers are pairs of a site identifier and
// a monotonic counter ("(si, ni)").  We represent site/actor identifiers
// as opaque 64-bit integers: replica servers and clients draw from the
// same space (a version vector keyed by servers and one keyed by clients
// are then the *same type*, differing only in which actor increments it —
// exactly the framing of the paper, where the mechanism, not the type,
// is what changes between Fig. 1b and Fig. 1c).
//
// Human-readable names ("server A", "client c1") are a presentation
// concern: printing functions accept an optional ActorNamer callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace dvv::core {

/// Opaque actor identifier (replica server or writing client).
using ActorId = std::uint64_t;

/// Monotonic per-actor event counter.  Counter value 0 never identifies
/// an event: the first event of actor `i` is (i, 1), matching the paper's
/// "assuming that the first assigned identifier in si is (si, 1)".
using Counter = std::uint64_t;

/// Maps an ActorId to a display name.  The default renders the number.
using ActorNamer = std::function<std::string(ActorId)>;

/// Default namer: "7" for actor 7.
[[nodiscard]] inline std::string default_actor_name(ActorId id) {
  return std::to_string(id);
}

}  // namespace dvv::core
