// dvv/core/version_vector.hpp
//
// Version vectors (Parker et al. 1983): the classic mechanism for
// encoding causal histories in optimistic replication.  A version vector
// V maps each actor s to a counter V[s] = n, meaning that the events
// (s, 1) ... (s, n) are all in the causal past it represents.  Version
// vectors can only represent *downward-closed* histories — contiguous
// per-actor prefixes — which is exactly why a bare VV cannot name "the
// third write of server A but not the second" and why the paper adds the
// dot.
//
// This one type serves three roles in the reproduction:
//   * the per-server VV baseline of Figure 1b (incremented by servers),
//   * the per-client VV baseline used by Riak-classic (incremented by
//     clients),
//   * the causal-past component `v` of a dotted version vector, and the
//     causal *context* clients carry between a GET and a PUT.
#pragma once

#include <string>

#include "core/causality.hpp"
#include "core/dot.hpp"
#include "core/types.hpp"
#include "util/flat_map.hpp"

namespace dvv::core {

class VersionVector {
 public:
  using Map = util::FlatMap<ActorId, Counter>;

  VersionVector() = default;
  VersionVector(std::initializer_list<std::pair<ActorId, Counter>> init) : entries_(init) {}

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// V[actor]; absent actors map to 0 ("no events known").
  [[nodiscard]] Counter get(ActorId actor) const noexcept { return entries_.get_or(actor, 0); }

  /// Sets V[actor] = counter.  Counter 0 erases the entry (a zero entry
  /// and an absent entry are semantically identical; keeping them absent
  /// makes size() mean "entries that cost wire bytes").
  void set(ActorId actor, Counter counter);

  /// Records one new event by `actor` and returns its identifier.
  /// This is the write-side primitive of every VV-based mechanism.
  Dot increment(ActorId actor);

  /// Set-containment of a single event: is (d.node, d.counter) inside the
  /// downward-closed history this vector represents?  One point lookup —
  /// this is the operation the dot of a DVV is checked against, and the
  /// source of the O(1) causality verification claim.
  [[nodiscard]] bool contains(const Dot& d) const noexcept {
    return d.counter <= get(d.node);
  }

  /// Pointwise maximum (least upper bound).  Joining two VVs yields the
  /// union of the causal histories they encode.
  void merge(const VersionVector& other);

  /// Folds a single event into the history.  Unlike `contains`, this may
  /// create a *gap-free overapproximation*: a VV cannot represent a
  /// non-contiguous history, so absorbing (A,3) into [A->1] yields
  /// [A->3].  Callers that must stay exact (the DVV `sync`) never use
  /// this on dots that could have gaps below them; the GET-context path
  /// uses it deliberately (the context must dominate every sibling).
  void absorb(const Dot& d) {
    if (d.counter > get(d.node)) set(d.node, d.counter);
  }

  /// True iff this vector dominates-or-equals `other` pointwise
  /// (the history of `other` is a subset of ours).
  [[nodiscard]] bool descends(const VersionVector& other) const noexcept;

  /// Full causal comparison.  Cost is linear in the number of entries —
  /// the O(n) the paper contrasts DVV's O(1) dot check against.
  [[nodiscard]] Ordering compare(const VersionVector& other) const noexcept;

  /// Sum of all counters = number of events in the represented history.
  [[nodiscard]] std::uint64_t total_events() const noexcept;

  [[nodiscard]] const Map& entries() const noexcept { return entries_; }

  /// Renders "[2, 0]"-style output when given an ordered actor list
  /// (matching the paper's dense notation), via to_string_dense; the
  /// default renders the sparse map "{A:2}".
  [[nodiscard]] std::string to_string(const ActorNamer& namer = default_actor_name) const;
  [[nodiscard]] std::string to_string_dense(const std::vector<ActorId>& order) const;

  friend bool operator==(const VersionVector&, const VersionVector&) = default;

 private:
  Map entries_;
};

}  // namespace dvv::core
