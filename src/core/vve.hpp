// dvv/core/vve.hpp
//
// Version vectors with exceptions (VVE) — the WinFS mechanism the
// paper's §3 compares against (Malkhi & Terry, "Concise version vectors
// in WinFS", Dist. Computing 2007).
//
// A VVE represents an arbitrary (possibly non-contiguous) set of events
// per actor as a base counter plus an exception list:
//
//     { actor -> (n, {e1, e2, ...}) }   =   events 1..n except the e_i
//
// Unlike a plain VV it can express "I have A4 but not A3", so — like a
// DVV — it can tag versions created concurrently by clients racing
// through one server.  The §3 trade-off this module exists to
// demonstrate (bench_vve_ablation, E11 in DESIGN.md):
//
//   * VVE is a *general* history encoding: any causal history fits, at
//     the cost of exception bookkeeping on every operation and a
//     worst-case size proportional to the history's raggedness;
//   * the storage workflow only ever creates histories of the shape
//     "downward-closed past plus ONE extra event" — exactly one gap —
//     so a DVV's single dot is sufficient, with no exception machinery
//     at all.  ("In most multi-version distributed storage systems, a
//     client can only replace all versions in the repository by a new
//     version, making DVV with a single dot sufficient.")
//
// The implementation keeps exceptions sorted and eagerly normalized
// (an exception equal to the base is impossible; counters above the
// base are represented by raising the base).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "core/causal_history.hpp"
#include "core/causality.hpp"
#include "core/dot.hpp"
#include "core/types.hpp"
#include "util/assert.hpp"
#include "util/flat_map.hpp"

namespace dvv::core {

class VersionVectorWithExceptions {
 public:
  struct Entry {
    Counter base = 0;                  ///< events 1..base, minus exceptions
    std::vector<Counter> exceptions;   ///< sorted, unique, all <= base

    friend bool operator==(const Entry&, const Entry&) = default;
  };
  using Map = util::FlatMap<ActorId, Entry>;

  VersionVectorWithExceptions() = default;

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Number of scalar slots the encoding pays for: one base counter per
  /// actor plus one slot per exception (the metadata metric).
  [[nodiscard]] std::size_t slot_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [actor, e] : entries_) n += 1 + e.exceptions.size();
    return n;
  }

  [[nodiscard]] std::size_t exception_count() const noexcept {
    std::size_t n = 0;
    for (const auto& [actor, e] : entries_) n += e.exceptions.size();
    return n;
  }

  [[nodiscard]] bool contains(const Dot& d) const noexcept {
    const auto it = entries_.find(d.node);
    if (it == entries_.end() || d.counter > it->second.base) return false;
    return !std::binary_search(it->second.exceptions.begin(),
                               it->second.exceptions.end(), d.counter);
  }

  /// Adds one event, creating exceptions for any gap it jumps over.
  void add(const Dot& d) {
    DVV_ASSERT(valid(d));
    Entry& e = entries_[d.node];
    if (d.counter > e.base) {
      for (Counter c = e.base + 1; c < d.counter; ++c) e.exceptions.push_back(c);
      std::sort(e.exceptions.begin(), e.exceptions.end());
      e.base = d.counter;
    } else {
      // Filling a hole (or a no-op if already present).
      const auto it = std::lower_bound(e.exceptions.begin(), e.exceptions.end(),
                                       d.counter);
      if (it != e.exceptions.end() && *it == d.counter) e.exceptions.erase(it);
    }
  }

  /// Codec rebuild: installs one actor's entry wholesale.  The caller
  /// guarantees canonical form — base > 0, exceptions sorted, unique,
  /// all strictly below base — which decoders validate before calling
  /// (rebuilding event-by-event through add() would cost O(base) per
  /// entry, an unacceptable bound for wire-facing strict decodes).
  void install_entry(ActorId actor, Counter base, std::vector<Counter> exceptions) {
    DVV_ASSERT(base > 0);
    DVV_DEBUG_ASSERT(std::is_sorted(exceptions.begin(), exceptions.end()));
    DVV_ASSERT(exceptions.empty() ||
               (exceptions.back() < base && exceptions.front() >= 1));
    Entry& e = entries_[actor];
    e.base = base;
    e.exceptions = std::move(exceptions);
  }

  /// Set union of the represented histories.
  void merge(const VersionVectorWithExceptions& other) {
    entries_.merge_with(other.entries_, [](const Entry& a, const Entry& b) {
      Entry out;
      out.base = std::max(a.base, b.base);
      // An event is missing from the union iff missing from both sides.
      for (Counter c : a.exceptions) {
        const bool missing_in_b =
            c > b.base ||
            std::binary_search(b.exceptions.begin(), b.exceptions.end(), c);
        if (missing_in_b) out.exceptions.push_back(c);
      }
      // Events above a.base but <= out.base are present iff b has them;
      // b's exceptions in that range stay missing.
      for (Counter c : b.exceptions) {
        if (c > a.base) out.exceptions.push_back(c);
      }
      std::sort(out.exceptions.begin(), out.exceptions.end());
      out.exceptions.erase(std::unique(out.exceptions.begin(), out.exceptions.end()),
                           out.exceptions.end());
      return out;
    });
  }

  /// Ha ⊆ Hb over the represented sets.
  [[nodiscard]] bool subset_of(const VersionVectorWithExceptions& other) const {
    for (const auto& [actor, e] : entries_) {
      const auto it = other.entries_.find(actor);
      const Entry* oe = it == other.entries_.end() ? nullptr : &it->second;
      // Every event of ours must be in theirs.
      for (Counter c = 1; c <= e.base; ++c) {
        if (std::binary_search(e.exceptions.begin(), e.exceptions.end(), c)) {
          continue;  // not ours
        }
        const bool theirs =
            oe != nullptr && c <= oe->base &&
            !std::binary_search(oe->exceptions.begin(), oe->exceptions.end(), c);
        if (!theirs) return false;
      }
    }
    return true;
  }

  [[nodiscard]] Ordering compare(const VersionVectorWithExceptions& other) const {
    const bool ab = subset_of(other);
    const bool ba = other.subset_of(*this);
    if (ab && ba) return Ordering::kEqual;
    if (ab) return Ordering::kBefore;
    if (ba) return Ordering::kAfter;
    return Ordering::kConcurrent;
  }

  /// Highest event counter recorded for `actor` (0 if none).
  [[nodiscard]] Counter top(ActorId actor) const noexcept {
    const auto it = entries_.find(actor);
    return it == entries_.end() ? 0 : it->second.base;
  }

  /// Expands to an explicit causal history (tests/oracle only).
  [[nodiscard]] CausalHistory to_history() const {
    CausalHistory h;
    for (const auto& [actor, e] : entries_) {
      for (Counter c = 1; c <= e.base; ++c) {
        if (!std::binary_search(e.exceptions.begin(), e.exceptions.end(), c)) {
          h.insert(Dot{actor, c});
        }
      }
    }
    return h;
  }

  [[nodiscard]] const Map& entries() const noexcept { return entries_; }

  /// Renders "{A:4\{2,3\}, B:1}" — base with the exception set.
  [[nodiscard]] std::string to_string(const ActorNamer& namer = default_actor_name) const;

  friend bool operator==(const VersionVectorWithExceptions&,
                         const VersionVectorWithExceptions&) = default;

 private:
  Map entries_;
};

/// The storage kernel over VVE clocks: same GET/PUT/SYNC workflow, every
/// version tagged with the full VVE of its history.  Exact (it encodes
/// the same sets the causal-history oracle does) — the point of the
/// ablation is its cost, not its soundness.
template <typename Value>
class VveSiblings {
 public:
  struct Version {
    VersionVectorWithExceptions clock;
    Value value;

    friend bool operator==(const Version&, const Version&) = default;
  };

  [[nodiscard]] bool empty() const noexcept { return versions_.empty(); }
  [[nodiscard]] std::size_t sibling_count() const noexcept { return versions_.size(); }
  [[nodiscard]] const std::vector<Version>& versions() const noexcept {
    return versions_;
  }

  [[nodiscard]] std::size_t clock_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& v : versions_) n += v.clock.slot_count();
    return n;
  }

  [[nodiscard]] VersionVectorWithExceptions context() const {
    VersionVectorWithExceptions ctx;
    for (const auto& v : versions_) ctx.merge(v.clock);
    return ctx;
  }

  Dot update(ActorId server, const VersionVectorWithExceptions& ctx, Value value) {
    Counter n = ctx.top(server);
    for (const auto& v : versions_) n = std::max(n, v.clock.top(server));
    std::erase_if(versions_,
                  [&](const Version& v) { return v.clock.subset_of(ctx); });
    const Dot dot{server, n + 1};
    VersionVectorWithExceptions clock = ctx;
    clock.add(dot);
    versions_.push_back(Version{std::move(clock), std::move(value)});
    return dot;
  }

  void sync(const VveSiblings& other) {
    if (&other == this) return;
    std::vector<Version> merged;
    merged.reserve(versions_.size() + other.versions_.size());
    for (const auto& mine : versions_) {
      if (!dominated_by(mine, other.versions_, /*equal_counts=*/false)) {
        merged.push_back(mine);
      }
    }
    for (const auto& theirs : other.versions_) {
      if (!dominated_by(theirs, versions_, /*equal_counts=*/true)) {
        merged.push_back(theirs);
      }
    }
    versions_ = std::move(merged);
  }

  void inject(VersionVectorWithExceptions clock, Value value) {
    versions_.push_back(Version{std::move(clock), std::move(value)});
  }

  friend bool operator==(const VveSiblings&, const VveSiblings&) = default;

 private:
  [[nodiscard]] static bool dominated_by(const Version& v,
                                         const std::vector<Version>& others,
                                         bool equal_counts) {
    for (const auto& o : others) {
      const Ordering ord = v.clock.compare(o.clock);
      if (ord == Ordering::kBefore) return true;
      if (equal_counts && ord == Ordering::kEqual) return true;
    }
    return false;
  }

  std::vector<Version> versions_;
};

}  // namespace dvv::core
