// dvv/core/causal_history.hpp
//
// Causal histories (Schwarz & Mattern): the *definition* of causality.
// A history is the explicit set of unique event identifiers in a
// version's past, including its own; Ha precedes Hb iff Ha ⊂ Hb, and two
// histories are concurrent iff neither contains the other.
//
// Causal histories are hopelessly inefficient as a production mechanism
// (they grow with the total number of events), which is exactly why the
// paper exists — but they are *exact by construction*, so this library
// runs them alongside every compressed mechanism as the ground-truth
// oracle (Fig. 1a, experiments E1/E9): any disagreement between a
// mechanism's verdict and the causal-history verdict is, by definition,
// a causality-tracking error of that mechanism.
//
// Representation: a sorted vector of dots.  Subset testing is a linear
// merge-walk; good enough for the oracle, irrelevant for production.
#pragma once

#include <string>
#include <vector>

#include "core/causality.hpp"
#include "core/dot.hpp"
#include "core/types.hpp"

namespace dvv::core {

class CausalHistory {
 public:
  CausalHistory() = default;
  CausalHistory(std::initializer_list<Dot> dots);

  [[nodiscard]] bool empty() const noexcept { return dots_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return dots_.size(); }

  [[nodiscard]] bool contains(const Dot& d) const noexcept;

  /// Inserts one event identifier (idempotent).
  void insert(const Dot& d);

  /// Set union with another history.
  void merge(const CausalHistory& other);

  /// Ha ⊆ Hb test.
  [[nodiscard]] bool subset_of(const CausalHistory& other) const noexcept;

  /// Exact causal comparison via set inclusion (the paper's §1 defs):
  /// equal sets => kEqual; Ha ⊂ Hb => kBefore; ⊃ => kAfter; else
  /// kConcurrent.
  [[nodiscard]] Ordering compare(const CausalHistory& other) const noexcept;

  [[nodiscard]] const std::vector<Dot>& dots() const noexcept { return dots_; }

  /// Renders "{A1,A2,B1}" exactly as in the paper's Figure 1a.
  [[nodiscard]] std::string to_string(const ActorNamer& namer = default_actor_name) const;

  friend bool operator==(const CausalHistory&, const CausalHistory&) = default;

 private:
  std::vector<Dot> dots_;  // sorted, unique
};

}  // namespace dvv::core
