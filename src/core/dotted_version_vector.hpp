// dvv/core/dotted_version_vector.hpp
//
// Dotted version vectors — the paper's contribution.
//
// A DVV is a pair ((i, n), v): the *dot* (i, n) is the globally unique
// identifier of the write event this version was created by, and `v` is a
// plain version vector encoding the version's causal past.  Its causal
// history is
//
//     C[[((i,n), v)]] = {i_n}  ∪  { j_m | 1 <= m <= v[j] }
//
// i.e. the dot plus everything below the vector.  Note the dot is allowed
// to sit *above a gap*: ((A,4), [A->2]) is a perfectly valid DVV whose
// history is {A1, A2, A4} — representable here but not by any plain VV.
// That extra expressiveness is exactly what lets a server tag a new
// version created by a client write as *concurrent* with the sibling it
// did not read, while still using only one clock entry per replica
// server (Fig. 1c).
//
// Causality verification is O(1)*: a < b iff n_a <= v_b[i_a] — one point
// lookup of a's dot in b's causal past, instead of the entrywise O(n)
// walk plain VVs need.  (*one flat-map binary search over at most
// replication-degree entries; constant in the number of clients and in
// the length of the vectors, which is what the paper's claim is about.)
#pragma once

#include <string>

#include "core/causal_history.hpp"
#include "core/causality.hpp"
#include "core/dot.hpp"
#include "core/types.hpp"
#include "core/version_vector.hpp"

namespace dvv::core {

class DottedVersionVector {
 public:
  DottedVersionVector() = default;
  DottedVersionVector(Dot dot, VersionVector past)
      : dot_(dot), past_(std::move(past)) {}

  [[nodiscard]] const Dot& dot() const noexcept { return dot_; }
  [[nodiscard]] const VersionVector& past() const noexcept { return past_; }

  /// Number of map entries (the metadata-size metric of experiment E5):
  /// the vector's entries plus one for the dot.
  [[nodiscard]] std::size_t entry_count() const noexcept { return past_.size() + 1; }

  /// Set-containment of an arbitrary event in this version's history:
  /// either it is the dot itself or it lies below the vector.
  [[nodiscard]] bool history_contains(const Dot& d) const noexcept {
    return d == dot_ || past_.contains(d);
  }

  /// O(1) causal comparison (the paper's §2 rule):
  ///   a < b   iff  n_a <= v_b[i_a]
  ///   a || b  iff  n_a >  v_b[i_a]  and  n_b > v_a[i_b]
  /// Equal dots identify the same version.
  ///
  /// Precondition (system invariant, checked in debug builds): the two
  /// DVVs were produced by the storage workflow for the same key, so dot
  /// containment implies full history containment.  On arbitrary
  /// hand-built pairs violating that invariant the fast rule is
  /// meaningless — use causal_history().compare() instead.
  [[nodiscard]] Ordering compare(const DottedVersionVector& other) const noexcept;

  /// True iff this version is obsoleted by a causal context: the context
  /// (a plain VV obtained from a GET) already includes our dot.  This is
  /// the server-side discard test — again a single point lookup.
  [[nodiscard]] bool obsoleted_by(const VersionVector& context) const noexcept {
    return context.contains(dot_);
  }

  /// Folds this version into a causal context VV: merge the past and
  /// absorb the dot.  The result dominates this version; the union over
  /// all siblings is what a GET hands back to the client.
  void fold_into(VersionVector& context) const {
    context.merge(past_);
    context.absorb(dot_);
  }

  /// Expands to the exact causal history (oracle/validation use only —
  /// linear in the number of past events).
  [[nodiscard]] CausalHistory causal_history() const;

  /// Renders "(A,3)[1,0]" given a dense actor order, as in Fig. 1c.
  [[nodiscard]] std::string to_string_dense(const std::vector<ActorId>& order,
                                            const ActorNamer& namer = default_actor_name) const;
  /// Sparse rendering "((A,3), {A:1})".
  [[nodiscard]] std::string to_string(const ActorNamer& namer = default_actor_name) const;

  friend bool operator==(const DottedVersionVector&, const DottedVersionVector&) = default;

 private:
  Dot dot_;
  VersionVector past_;
};

}  // namespace dvv::core
