#include "core/vve.hpp"

#include "util/fmt.hpp"

namespace dvv::core {

std::string VersionVectorWithExceptions::to_string(const ActorNamer& namer) const {
  return "{" +
         util::join(entries_, ", ",
                    [&](const auto& kv) {
                      std::string s = namer(kv.first) + ":" +
                                      std::to_string(kv.second.base);
                      if (!kv.second.exceptions.empty()) {
                        s += "\\{" +
                             util::join(kv.second.exceptions, ",",
                                        [](Counter c) { return std::to_string(c); }) +
                             "}";
                      }
                      return s;
                    }) +
         "}";
}

}  // namespace dvv::core
