// dvv/core/pruning.hpp
//
// Optimistic version-vector pruning — the unsafe size cap the paper calls
// out: "these systems prune VV optimistically, which is unsafe, possibly
// leading to lost updates and/or to the introduction of false
// concurrency".
//
// Production stores with per-client vectors (Riak-classic's vclocks)
// capped vector growth by dropping entries once a vector exceeded a size
// threshold, picking victims heuristically (oldest-touched in Riak; we
// use lowest-counter, the standard stand-in when entries carry no wall
// clock — both heuristics drop an entry some future comparison may need,
// which is the only property the anomaly depends on).  Dropping the entry
// for client c forgets that c's first k writes are in this version's
// past:
//   * a later comparison against a version that *does* carry c's entry
//     can report "concurrent" where the truth is "dominated"
//     (false concurrency: resurrected siblings), and
//   * when c writes again, its counter restarts from the context the
//     server hands out; the restarted counter can be dominated by stale
//     state and the write silently discarded (lost update).
// Experiment E8 measures both against the causal-history oracle.
//
// Safe pruning (Golding 1992) needs global knowledge of what every node
// has seen — exactly what a loosely coupled storage system does not have,
// and the reason the paper's bounded-by-design DVV is the better answer.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/version_vector.hpp"

namespace dvv::core {

/// Pruning policy.  `cap == 0` disables pruning.
struct PruneConfig {
  std::size_t cap = 0;

  [[nodiscard]] bool enabled() const noexcept { return cap != 0; }
};

/// Counters reported by the pruning pass, aggregated by the kernels and
/// surfaced by bench_pruning_safety.
struct PruneStats {
  std::uint64_t invocations = 0;      ///< vectors that exceeded the cap
  std::uint64_t entries_dropped = 0;  ///< total entries removed

  void merge(const PruneStats& o) noexcept {
    invocations += o.invocations;
    entries_dropped += o.entries_dropped;
  }
};

/// Prunes `vv` down to at most `config.cap` entries by repeatedly
/// dropping the entry with the smallest counter (ties: smallest actor
/// id, for determinism).  Returns what was dropped.  No-op when the
/// vector already fits or pruning is disabled.
PruneStats prune(VersionVector& vv, const PruneConfig& config);

}  // namespace dvv::core
