#include "core/causal_history.hpp"

#include <algorithm>

#include "util/fmt.hpp"

namespace dvv::core {

CausalHistory::CausalHistory(std::initializer_list<Dot> dots) : dots_(dots) {
  std::sort(dots_.begin(), dots_.end());
  dots_.erase(std::unique(dots_.begin(), dots_.end()), dots_.end());
}

bool CausalHistory::contains(const Dot& d) const noexcept {
  return std::binary_search(dots_.begin(), dots_.end(), d);
}

void CausalHistory::insert(const Dot& d) {
  auto it = std::lower_bound(dots_.begin(), dots_.end(), d);
  if (it != dots_.end() && *it == d) return;
  dots_.insert(it, d);
}

void CausalHistory::merge(const CausalHistory& other) {
  std::vector<Dot> out;
  out.reserve(dots_.size() + other.dots_.size());
  std::set_union(dots_.begin(), dots_.end(), other.dots_.begin(), other.dots_.end(),
                 std::back_inserter(out));
  dots_ = std::move(out);
}

bool CausalHistory::subset_of(const CausalHistory& other) const noexcept {
  return std::includes(other.dots_.begin(), other.dots_.end(), dots_.begin(),
                       dots_.end());
}

Ordering CausalHistory::compare(const CausalHistory& other) const noexcept {
  const bool ab = subset_of(other);
  const bool ba = other.subset_of(*this);
  if (ab && ba) return Ordering::kEqual;
  if (ab) return Ordering::kBefore;
  if (ba) return Ordering::kAfter;
  return Ordering::kConcurrent;
}

std::string CausalHistory::to_string(const ActorNamer& namer) const {
  return "{" +
         util::join(dots_, ",", [&](const Dot& d) { return d.to_string(namer); }) +
         "}";
}

}  // namespace dvv::core
