// dvv/core/history_kernel.hpp
//
// The causal-history storage kernel: the same GET/PUT/SYNC workflow as
// DvvSiblings, but tagging every version with its *explicit* causal
// history (the set of all event identifiers in its past).  Exact by
// definition (§1 of the paper), unboundedly expensive by definition —
// this kernel exists to be the oracle of experiments E1 and E9 and the
// referee for the anomaly counts of E2 and E8, never to be deployed.
//
// Event identifiers are minted like DVV dots — (server, n) with n one
// past the highest server event recorded anywhere in this key's state —
// so a replayed scenario produces the paper's literal event names
// (A1, A2, B1, ...) and the oracle's dots are directly comparable with
// the dots the DVV kernel mints for the same trace.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/causal_history.hpp"
#include "core/causality.hpp"
#include "core/dot.hpp"
#include "util/assert.hpp"

namespace dvv::core {

template <typename Value>
class HistorySiblings {
 public:
  struct Version {
    CausalHistory history;
    Dot id;  ///< this version's own event (underlined-bold in Fig. 1a)
    Value value;

    friend bool operator==(const Version&, const Version&) = default;
  };

  HistorySiblings() = default;

  [[nodiscard]] bool empty() const noexcept { return versions_.empty(); }
  [[nodiscard]] std::size_t sibling_count() const noexcept { return versions_.size(); }
  [[nodiscard]] const std::vector<Version>& versions() const noexcept { return versions_; }

  /// GET context: union of all sibling histories.
  [[nodiscard]] CausalHistory context() const {
    CausalHistory ctx;
    for (const auto& v : versions_) ctx.merge(v.history);
    return ctx;
  }

  /// PUT coordinated by `server` with the client's read context.
  /// Returns the freshly minted event identifier.
  Dot update(ActorId server, const CausalHistory& ctx, Value value) {
    const Counter n = local_max(server, ctx);
    std::erase_if(versions_,
                  [&](const Version& v) { return v.history.subset_of(ctx); });
    const Dot id{server, n + 1};
    CausalHistory h = ctx;
    h.insert(id);
    versions_.push_back(Version{std::move(h), id, std::move(value)});
    return id;
  }

  /// Anti-entropy merge under exact set inclusion.
  void sync(const HistorySiblings& other) {
    if (&other == this) return;  // self-sync is a no-op (idempotence)
    std::vector<Version> merged;
    merged.reserve(versions_.size() + other.versions_.size());
    // Both passes must test against the *original* states, so no moves
    // until the merged set is complete.
    for (const auto& mine : versions_) {
      if (!dominated_by(mine, other.versions_, /*equal_counts=*/false)) {
        merged.push_back(mine);
      }
    }
    for (const auto& theirs : other.versions_) {
      if (!dominated_by(theirs, versions_, /*equal_counts=*/true)) {
        merged.push_back(theirs);
      }
    }
    versions_ = std::move(merged);
  }

  void absorb(const Version& incoming) {
    HistorySiblings single;
    single.versions_.push_back(incoming);
    sync(single);
  }

  void inject(CausalHistory history, Dot id, Value value) {
    versions_.push_back(Version{std::move(history), id, std::move(value)});
  }

  friend bool operator==(const HistorySiblings&, const HistorySiblings&) = default;

 private:
  [[nodiscard]] Counter local_max(ActorId server, const CausalHistory& ctx) const noexcept {
    Counter n = 0;
    for (const Dot& d : ctx.dots()) {
      if (d.node == server) n = std::max(n, d.counter);
    }
    for (const auto& v : versions_) {
      for (const Dot& d : v.history.dots()) {
        if (d.node == server) n = std::max(n, d.counter);
      }
    }
    return n;
  }

  [[nodiscard]] static bool dominated_by(const Version& v,
                                         const std::vector<Version>& others,
                                         bool equal_counts) noexcept {
    for (const auto& o : others) {
      const Ordering ord = v.history.compare(o.history);
      if (ord == Ordering::kBefore) return true;
      if (equal_counts && ord == Ordering::kEqual) return true;
    }
    return false;
  }

  std::vector<Version> versions_;
};

}  // namespace dvv::core
