#include "core/pruning.hpp"

#include <algorithm>
#include <vector>

namespace dvv::core {

PruneStats prune(VersionVector& vv, const PruneConfig& config) {
  PruneStats stats;
  if (!config.enabled() || vv.size() <= config.cap) return stats;

  // Collect entries, order by (counter, actor) ascending, drop the head.
  std::vector<std::pair<ActorId, Counter>> entries(vv.entries().begin(),
                                                   vv.entries().end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  const std::size_t to_drop = entries.size() - config.cap;
  for (std::size_t i = 0; i < to_drop; ++i) vv.set(entries[i].first, 0);

  stats.invocations = 1;
  stats.entries_dropped = to_drop;
  return stats;
}

}  // namespace dvv::core
