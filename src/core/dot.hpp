// dvv/core/dot.hpp
//
// A *dot* is the globally unique identifier of one write event: the pair
// (i, n) of the actor that coordinated the write and that actor's
// monotonic counter.  The paper's central move is to keep this identifier
// *separate* from the causal past instead of diluting it inside a version
// vector — the dot is what makes O(1) causality verification possible.
#pragma once

#include <compare>
#include <cstddef>
#include <functional>
#include <string>

#include "core/types.hpp"

namespace dvv::core {

struct Dot {
  ActorId node = 0;
  Counter counter = 0;

  friend auto operator<=>(const Dot&, const Dot&) = default;

  /// Renders "A3"-style event names as used in the paper's Figure 1a
  /// (actor name immediately followed by the counter).
  [[nodiscard]] std::string to_string(const ActorNamer& namer = default_actor_name) const {
    return namer(node) + std::to_string(counter);
  }
};

/// True when `d` is a valid event identifier (counters start at 1).
[[nodiscard]] constexpr bool valid(const Dot& d) noexcept { return d.counter >= 1; }

struct DotHash {
  [[nodiscard]] std::size_t operator()(const Dot& d) const noexcept {
    // Splitmix-style combine; dots are tiny and this is only used by
    // oracle-side hash sets, never on the clock hot paths.
    std::uint64_t x = d.node * 0x9e3779b97f4a7c15ULL ^ (d.counter + 0x7f4a7c159e3779b9ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace dvv::core
