#include "core/version_vector.hpp"

#include <algorithm>

#include "util/fmt.hpp"

namespace dvv::core {

void VersionVector::set(ActorId actor, Counter counter) {
  if (counter == 0) {
    entries_.erase(actor);
  } else {
    entries_.insert_or_assign(actor, counter);
  }
}

Dot VersionVector::increment(ActorId actor) {
  Counter& c = entries_[actor];
  ++c;
  return Dot{actor, c};
}

void VersionVector::merge(const VersionVector& other) {
  entries_.merge_with(other.entries_,
                      [](Counter a, Counter b) { return std::max(a, b); });
}

bool VersionVector::descends(const VersionVector& other) const noexcept {
  // Every entry of `other` must be covered here.  Entries absent from
  // `other` are 0 and trivially covered.
  for (const auto& [actor, counter] : other.entries_) {
    if (get(actor) < counter) return false;
  }
  return true;
}

Ordering VersionVector::compare(const VersionVector& other) const noexcept {
  // Single linear merge-walk over both sorted entry lists, tracking
  // whether either side has an entry strictly above the other.
  bool self_above = false;   // some entry where *this > other
  bool other_above = false;  // some entry where other > *this
  auto a = entries_.begin();
  auto b = other.entries_.begin();
  while (a != entries_.end() || b != other.entries_.end()) {
    if (b == other.entries_.end() || (a != entries_.end() && a->first < b->first)) {
      if (a->second > 0) self_above = true;
      ++a;
    } else if (a == entries_.end() || b->first < a->first) {
      if (b->second > 0) other_above = true;
      ++b;
    } else {
      if (a->second > b->second) self_above = true;
      if (b->second > a->second) other_above = true;
      ++a;
      ++b;
    }
    if (self_above && other_above) return Ordering::kConcurrent;
  }
  if (self_above) return Ordering::kAfter;
  if (other_above) return Ordering::kBefore;
  return Ordering::kEqual;
}

std::uint64_t VersionVector::total_events() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [actor, counter] : entries_) total += counter;
  return total;
}

std::string VersionVector::to_string(const ActorNamer& namer) const {
  return "{" +
         util::join(entries_, ", ",
                    [&](const auto& kv) {
                      return namer(kv.first) + ":" + std::to_string(kv.second);
                    }) +
         "}";
}

std::string VersionVector::to_string_dense(const std::vector<ActorId>& order) const {
  return "[" +
         util::join(order, ",",
                    [&](ActorId a) { return std::to_string(get(a)); }) +
         "]";
}

}  // namespace dvv::core
