#include "core/dotted_version_vector.hpp"

#include "util/assert.hpp"

namespace dvv::core {

Ordering DottedVersionVector::compare(const DottedVersionVector& other) const noexcept {
  if (dot_ == other.dot_) {
    // One event, one version: system-generated clocks with the same dot
    // must carry the same past.
    DVV_DEBUG_ASSERT(past_ == other.past_);
    return Ordering::kEqual;
  }
  const bool before = other.past_.contains(dot_);   // our event in their past
  const bool after = past_.contains(other.dot_);    // their event in our past
  // Both directions at once would be a causality cycle; impossible for
  // clocks produced by the storage workflow.
  DVV_DEBUG_ASSERT(!(before && after));
  if (before) return Ordering::kBefore;
  if (after) return Ordering::kAfter;
  return Ordering::kConcurrent;
}

CausalHistory DottedVersionVector::causal_history() const {
  CausalHistory h;
  for (const auto& [actor, counter] : past_.entries()) {
    for (Counter c = 1; c <= counter; ++c) h.insert(Dot{actor, c});
  }
  if (valid(dot_)) h.insert(dot_);
  return h;
}

std::string DottedVersionVector::to_string_dense(const std::vector<ActorId>& order,
                                                 const ActorNamer& namer) const {
  return "(" + namer(dot_.node) + "," + std::to_string(dot_.counter) + ")" +
         past_.to_string_dense(order);
}

std::string DottedVersionVector::to_string(const ActorNamer& namer) const {
  return "((" + namer(dot_.node) + "," + std::to_string(dot_.counter) + "), " +
         past_.to_string(namer) + ")";
}

}  // namespace dvv::core
