// dvv/net/transport.hpp
//
// The pluggable message-passing layer between replicas.
//
// A Transport carries opaque encoded messages (net/message.hpp) from
// one replica to another and hands them to a delivery sink installed by
// the owning cluster.  Two implementations:
//
//   InlineTransport  synchronous immediate delivery — provably
//                    byte-identical to the pre-transport direct-call
//                    semantics (tests/transport_equivalence_test.cpp);
//                    the default, and the zero-overhead baseline
//                    bench_transport measures against.
//
//   SimTransport     deterministic seeded fault injection: per-message
//                    drop probability, duplication, reordering via
//                    delayed-delivery queues, and named partitions that
//                    cut the node set into isolated groups.  Delivery
//                    happens in pump() ticks, so "in flight" is real
//                    queued state a crash or partition can destroy.
//
// Serialization is LAZY, the way a production stack treats loopback: an
// Envelope carries the typed message plus its exact codec size
// (net::wire_size), and the sender may attach the already-decoded state
// payload.  InlineTransport hands both straight through — zero copies,
// so the message layer costs nothing on the hot path — while
// SimTransport serializes every message to real bytes at send and
// decodes at delivery (asserting the metered size matches), so the
// fault plane exercises the true wire encoding everywhere it matters.
// Either way wire accounting is the same bytes-on-the-wire number.
//
// Partitions live in the base class: they are a topology fact, not a
// timing artifact, so both transports honor them — an InlineTransport
// under partition({A},{B}) drops cross-group sends on the spot (a
// refused connection), while SimTransport also kills queued messages
// whose link is cut before delivery (in-flight loss).
//
// Determinism contract: a transport makes no random choice of its own
// beyond the seeded Rng its config provides.  Identical configs and
// identical send sequences produce identical delivery schedules, drops
// and duplicates — fault decisions are drawn at send time in send
// order, independent of payload bytes, which is what lets a mirrored
// oracle run replay the exact same network weather against two
// mechanisms whose encodings differ.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dvv::net {

/// Uniformly random two-way split of {0, 1, ..., n-1} with both groups
/// nonempty — the partition-storm shape the simulator, the trace
/// generator and the chaos tests all inject (one draw sequence:
/// shuffle, then cut point).  `Id` is the caller's node-id type.
template <typename Id>
[[nodiscard]] std::vector<std::vector<Id>> random_split(util::Rng& rng,
                                                        std::size_t n) {
  DVV_ASSERT(n >= 2);
  std::vector<Id> nodes(n);
  for (std::size_t i = 0; i < n; ++i) nodes[i] = static_cast<Id>(i);
  rng.shuffle(nodes);
  const std::size_t cut = 1 + rng.index(n - 1);
  std::vector<std::vector<Id>> groups(2);
  groups[0].assign(nodes.begin(), nodes.begin() + cut);
  groups[1].assign(nodes.begin() + cut, nodes.end());
  return groups;
}

/// One message in the transport's custody.  At delivery a sink reads
/// the payload through exactly one of three forms:
///
///   msg    owned typed message — how InlineTransport delivers (its
///          loopback skips serialization, so the sender's object passes
///          straight through);
///   view   zero-copy decoded view over the received wire bytes — how
///          SimTransport delivers a single queued frame; valid only
///          during the sink call;
///   batch  ordered sub-message views of one coalesced BatchMsg frame —
///          how SimTransport delivers a same-link run; valid only
///          during the sink call.
///
/// Sinks that only ever face one transport may assume its form; generic
/// sinks (kv::Cluster::on_message) dispatch on whichever is set.
struct Envelope {
  std::uint64_t seq = 0;  ///< global send order (assigned by the transport)
  NodeId from = 0;
  NodeId to = 0;
  std::shared_ptr<const Message> msg;  ///< owned form; null for view deliveries
  const MessageView* view = nullptr;   ///< zero-copy form (sink-call lifetime)
  std::span<const MessageView> batch;  ///< coalesced sub-views, delivery order
  /// Sender-attached fast-path payload (the decoded sibling state a
  /// ReplicateMsg/HintMsg/HintDeliverMsg carries), valid only when the
  /// transport delivered the sender's envelope unserialized.  It may be
  /// a NON-OWNING alias of live sender state, so it is only safe to use
  /// during a synchronous delivery inside send(); any transport that
  /// queues messages must drop it at send time and let the receiver
  /// decode the message's state field like a real peer would (the
  /// byte-faithful SimTransport does exactly that).
  std::shared_ptr<const void> decoded;
  std::size_t wire_bytes = 0;  ///< exact codec size of the encoded frame

  /// The delivered message's variant index (batch deliveries report
  /// BatchMsg's own index; per-sub-message attribution happens in the
  /// transport's metering).
  [[nodiscard]] std::size_t type_index() const {
    if (!batch.empty()) return std::variant_size_v<Message> - 1;
    if (view != nullptr) return view->index();
    return msg->index();
  }
};

/// Cumulative transport accounting (observability for tests/benches).
struct TransportStats {
  std::size_t sent = 0;             ///< messages handed to send()
  std::size_t delivered = 0;        ///< sink invocations (duplicates included)
  std::size_t dropped = 0;          ///< lost to the drop probability
  std::size_t duplicated = 0;       ///< extra copies enqueued
  std::size_t partition_dropped = 0;  ///< lost to a cut link (send or delivery)
  std::size_t wire_bytes = 0;       ///< payload bytes of every send
  /// Frames that failed the strict delivery decode and were dropped
  /// (net.decode_reject).  Never bumped by traffic this transport
  /// framed itself — only hostile bytes (inject_raw, a future socket
  /// peer) can be malformed.
  std::size_t decode_rejected = 0;
};

class Transport {
 public:
  using Sink = std::function<void(const Envelope&)>;

  virtual ~Transport() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Installs the delivery callback (the owning cluster's apply path).
  /// Must be set before the first send; re-set after moving the owner.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Hands one message to the wire.  `decoded` optionally carries the
  /// sender's already-decoded state payload for zero-copy local
  /// delivery (see Envelope::decoded).  `size_hint`, when nonzero, is
  /// the message's exact wire_size — fan-out senders compute it once
  /// and every send of the shared message skips the re-walk.
  virtual void send(NodeId from, NodeId to,
                    const std::shared_ptr<const Message>& msg,
                    const std::shared_ptr<const void>& decoded = nullptr,
                    std::size_t size_hint = 0) = 0;

  /// Convenience: wraps a by-value message in a recycled pooled slot
  /// (no per-send Message or control-block allocation once warm).
  void send(NodeId from, NodeId to, Message msg) {
    const std::shared_ptr<const Message> slot = pooled_message(std::move(msg));
    send(from, to, slot);
  }

  /// Delivers due messages (one tick of simulated network time).
  /// Returns the number of messages delivered — sub-messages, for
  /// coalesced batch envelopes, so the count matches stats().delivered
  /// regardless of batching.  Inline transports have nothing queued and
  /// return 0.
  virtual std::size_t pump() = 0;

  /// Pumps until nothing remains in flight.  Queued messages whose
  /// links are cut by an active partition are dropped, not kept.
  std::size_t drain() {
    std::size_t n = 0;
    while (!idle()) n += pump();
    return n;
  }

  /// Cluster synchronization point (end of a top-level operation).
  /// Inline: no-op.  SimTransport: drains when auto_settle is set, so
  /// the chaos-default transport reorders and duplicates *within* an
  /// operation but never leaks messages across operation boundaries.
  virtual void settle() {}

  [[nodiscard]] virtual bool idle() const noexcept { return true; }
  [[nodiscard]] virtual std::size_t in_flight() const noexcept { return 0; }

  // ---- named partitions ---------------------------------------------------

  /// Cuts the node set into isolated groups: a message may cross only
  /// between nodes of the same group.  Nodes named in no group form one
  /// implicit remainder group (so partition({{0}}, "iso") isolates node
  /// 0 from everyone else).  Replaces any previous partition.
  void partition(const std::vector<std::vector<NodeId>>& groups,
                 std::string label = {}) {
    group_of_.clear();
    std::size_t id = 1;  // 0 is the implicit remainder group
    for (const auto& group : groups) {
      for (const NodeId node : group) {
        DVV_ASSERT_MSG(!group_of_.contains(node),
                       "net: node named in two partition groups");
        group_of_[node] = id;
      }
      ++id;
    }
    partitioned_ = true;
    partition_label_ = std::move(label);
  }

  /// Removes the partition: every link carries again.  Messages already
  /// lost to the cut stay lost (healing is not retroactive).
  void heal() {
    partitioned_ = false;
    group_of_.clear();
    partition_label_.clear();
  }

  [[nodiscard]] bool partitioned() const noexcept { return partitioned_; }
  [[nodiscard]] const std::string& partition_label() const noexcept {
    return partition_label_;
  }

  /// True when `from` -> `to` can carry under the current partition.
  [[nodiscard]] bool link_up(NodeId from, NodeId to) const {
    if (!partitioned_) return true;
    const auto ga = group_of_.find(from);
    const auto gb = group_of_.find(to);
    const std::size_t a = ga == group_of_.end() ? 0 : ga->second;
    const std::size_t b = gb == group_of_.end() ? 0 : gb->second;
    return a == b;
  }

  /// Virtual so a sharded transport can aggregate per-shard counters on
  /// demand (ThreadedTransport); call at quiescence for an exact total.
  [[nodiscard]] virtual const TransportStats& stats() const noexcept {
    return stats_;
  }

 protected:
  /// Single-message delivery (owned or view form).  Batch envelopes are
  /// metered per sub-message by the coalescing transport itself so the
  /// delivered counters stay identical to an unbatched run.
  void deliver(const Envelope& envelope) {
    DVV_ASSERT_MSG(sink_ != nullptr, "net: transport has no delivery sink");
    ++stats_.delivered;
    if (met_.msgs_delivered.armed()) {
      met_.msgs_delivered.inc();
      met_.delivered_by_type[envelope.type_index()].inc();
      met_.wire_bytes_delivered.inc(envelope.wire_bytes);
    }
    sink_(envelope);
  }

  Sink sink_;
  TransportStats stats_;
  /// The net.* catalog handles, resolved once (the singleton lookup is
  /// cheap but not free, and send/deliver touch these per message).
  obs::NetMetrics& met_ = obs::net_metrics();

 private:
  bool partitioned_ = false;
  std::string partition_label_;
  std::map<NodeId, std::size_t> group_of_;
};

/// Synchronous immediate delivery: send() invokes the sink before it
/// returns, in send order — the pre-transport direct-call semantics,
/// byte for byte.  Partitions still apply (a cut link refuses the send).
/// The typed message and the sender's decoded payload pass straight
/// through (loopback skips serialization); wire accounting still meters
/// the exact encoded size.
class InlineTransport final : public Transport {
 public:
  [[nodiscard]] const char* name() const noexcept override { return "inline"; }

  void send(NodeId from, NodeId to, const std::shared_ptr<const Message>& msg,
            const std::shared_ptr<const void>& decoded = nullptr,
            std::size_t size_hint = 0) override {
    ++stats_.sent;
    const std::size_t size = size_hint != 0 ? size_hint : wire_size(*msg);
    stats_.wire_bytes += size;
    if (met_.msgs_sent.armed()) {
      met_.msgs_sent.inc();
      met_.sent_by_type[msg->index()].inc();
      met_.wire_bytes_sent.inc(size);
    }
    if (!link_up(from, to)) {
      ++stats_.partition_dropped;
      met_.partition_dropped.inc();
      return;
    }
    Envelope envelope;
    envelope.seq = next_seq_++;
    envelope.from = from;
    envelope.to = to;
    envelope.msg = msg;
    envelope.decoded = decoded;
    envelope.wire_bytes = size;
    deliver(envelope);
  }
  using Transport::send;

  std::size_t pump() override { return 0; }

 private:
  std::uint64_t next_seq_ = 0;
};

enum class TransportKind : std::uint8_t { kInline = 0, kSim = 1, kThreaded = 2 };

/// Fault model of the simulated transport.  All probabilities are per
/// message (per copy, for duplicates); delays are in pump() ticks.
struct SimTransportConfig {
  std::uint64_t seed = 0x7ea7005ULL;
  double drop_probability = 0.0;       ///< P(message silently lost)
  double duplicate_probability = 0.0;  ///< P(a second copy is enqueued)
  std::size_t reorder_window = 0;      ///< max extra delivery delay (ticks)
  /// Drain at cluster sync points (end of put / deliver_hints / ...).
  /// On: faults stay within one operation — the chaos CI default, safe
  /// for code that never pumps.  Off: messages stay queued until the
  /// caller pumps — the mode for real in-flight windows (sim_store,
  /// the partition property tests).
  bool auto_settle = true;
  /// Coalesce each maximal run of consecutive due same-link messages
  /// into one BatchMsg envelope at pump time (representation-only:
  /// delivery order, fault draws, receipts and stats are identical to
  /// unbatched delivery — the transport_batch_test contract).  Off
  /// restores one-envelope-per-message delivery, which the unit tests
  /// that pin per-envelope sink granularity rely on.
  bool batch_delivery = true;

  /// The DVV_TRANSPORT=chaos defaults: every test operation's fan-out
  /// is duplicated and reordered (delivery-order chaos that idempotent,
  /// commutative merges must absorb), with no silent loss — drops and
  /// partitions change *outcomes*, so they are injected by scenarios
  /// that assert about them, not blanket-applied to every suite.
  [[nodiscard]] static SimTransportConfig chaos_defaults() {
    SimTransportConfig config;
    config.duplicate_probability = 0.10;
    config.reorder_window = 3;
    config.auto_settle = true;
    return config;
  }
};

/// Shard layout of the threaded transport (net/threaded_transport.hpp).
/// Node n is owned by shard n % shards: all delivery to n — and all
/// mutation of n's replica — happens on that shard's thread.
struct ThreadedTransportConfig {
  std::size_t shards = 1;
};

struct TransportConfig {
  TransportKind kind;  // default set by default_transport_kind()
  SimTransportConfig sim{};
  ThreadedTransportConfig threaded{};

  TransportConfig();
};

/// Process-wide default transport kind: DVV_TRANSPORT=chaos flips every
/// default-configured cluster to SimTransport with chaos_defaults()
/// (CI runs the whole suite that way); anything else means inline.
[[nodiscard]] TransportKind default_transport_kind();

[[nodiscard]] std::unique_ptr<Transport> make_transport(const TransportConfig& config);

}  // namespace dvv::net
