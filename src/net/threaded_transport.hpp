// dvv/net/threaded_transport.hpp
//
// The shard-per-thread transport behind `dvvd` (ROADMAP item 1): real
// threads, byte-faithful wire delivery, and the same Transport contract
// the single-threaded twins run against.
//
// Sharding model.  Node n is owned by shard `n % shards`.  A shard is
// a serial execution domain: every message addressed TO a node — and
// therefore every mutation of that node's replica and of the
// coordination engine that serves it — is processed on the owning
// shard's thread, one entry at a time.  Shards share NOTHING but the
// inter-shard queues; the architecture's no-shared-state-across-
// replicas invariant does the rest.  With shards == 1 this degrades to
// a queued single-threaded transport.
//
// Queues.  One mutex-ring inbox per shard (mutex + condvar + deque).
// send() serializes the message SYNCHRONOUSLY on the sending thread
// into a plain owned std::string — never a pooled buffer: the net
// pools are thread_local freelists, and a pooled handle released on
// another thread would race the owner's freelist.  At delivery the
// receiving shard strict-decodes the bytes (decode_view_or_reject),
// exactly like SimTransport: bytes this transport framed always parse;
// injected hostile bytes are counted and dropped, never an abort.
// The sender's `decoded` fast-path alias is dropped at send time (it
// may alias live sender state — see Envelope::decoded).
//
// Quiescence.  A global atomic in-flight count is incremented BEFORE an
// entry is enqueued and decremented AFTER its sink returns, so a
// cascade (delivery that sends onward) keeps the count nonzero through
// the handoff: when it reads 0 with acquire ordering, every effect of
// every delivery is visible to the reader.  quiesce() blocks on that;
// settle() quiesces when called from outside the shard threads and is
// a no-op on a shard thread (a sink that settled would deadlock on
// itself).  Control-plane operations (partition/heal, anti-entropy,
// stats aggregation, crash/recover) are only legal at quiescence.
//
// Drive modes.
//   * Self-hosted (default): start() spawns one worker per shard that
//     blocks on the inbox condvar; the first send()/post() lazily
//     starts the workers.  stop() (and the destructor) drains and
//     joins.
//   * Hosted: an embedding event loop (the dvvd epoll server) calls
//     set_wake_hook(shard, fn) — invoked on enqueue, e.g. writing an
//     eventfd — and pump_shard(shard) from its own thread whenever
//     woken.  start() is never called; the host owns the threads.
//
// Tasks.  post(shard, fn) enqueues an arbitrary closure into a shard's
// serial domain (counted in flight like a message); run_on(shard, fn)
// additionally blocks the caller until it ran.  This is how client
// operations (Store::put_direct, the twin tests, bench drivers) enter
// a shard: cluster state for node n may only be touched from n's
// shard, and run_on is the door.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/message.hpp"
#include "net/transport.hpp"

namespace dvv::net {

class ThreadedTransport final : public Transport {
 public:
  explicit ThreadedTransport(ThreadedTransportConfig config);
  ~ThreadedTransport() override;

  [[nodiscard]] const char* name() const noexcept override { return "threaded"; }

  [[nodiscard]] std::size_t shards() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(NodeId node) const noexcept {
    return static_cast<std::size_t>(node) % shards_.size();
  }

  /// Serializes on the calling thread, enqueues to shard_of(to).  Safe
  /// from any thread.  Lazily starts the self-hosted workers unless a
  /// wake hook was installed (hosted mode).
  void send(NodeId from, NodeId to, const std::shared_ptr<const Message>& msg,
            const std::shared_ptr<const void>& decoded = nullptr,
            std::size_t size_hint = 0) override;
  using Transport::send;

  /// Enqueues hostile raw bytes addressed to `to` (tests/fuzz): they
  /// face the same strict delivery decode as real traffic.
  void inject_raw(NodeId from, NodeId to, std::string bytes);

  /// Enqueues a closure into `shard`'s serial domain.  Safe from any
  /// thread, including shard threads (cross-shard request forwarding).
  void post(std::size_t shard, std::function<void()> task);

  /// post + wait until the closure ran.  Must NOT be called from a
  /// shard thread (self-deadlock when shard == caller's shard).
  void run_on(std::size_t shard, const std::function<void()>& task);

  /// From a control thread: waits until nothing is in flight.  The
  /// workers deliver; this only blocks.  Returns 0 (delivery counts
  /// live in stats().delivered).
  std::size_t pump() override;

  /// Blocks until every queued entry (and everything those entries
  /// sent) has been processed.
  void quiesce();

  /// Quiesce from outside; no-op on a shard thread (a delivery sink
  /// that settled would wait for its own entry to finish).
  void settle() override;

  [[nodiscard]] bool idle() const noexcept override;
  [[nodiscard]] std::size_t in_flight() const noexcept override;

  /// Aggregates per-shard delivery counters into the base accounting.
  /// Exact only at quiescence (shards bump their own blocks racily
  /// otherwise — relaxed atomics, no torn reads, but no snapshot).
  [[nodiscard]] const TransportStats& stats() const noexcept override;

  // ---- hosted mode --------------------------------------------------------

  /// Installs the host's wake callback for `shard` (called on enqueue,
  /// possibly from any thread — it must be async-safe to the host's
  /// loop, e.g. an eventfd write).  Installing any hook disables the
  /// self-hosted workers; install before the first send.
  void set_wake_hook(std::size_t shard, std::function<void()> hook);

  /// Processes everything currently queued for `shard` on the CALLING
  /// thread (the host's event loop).  Returns entries processed.
  std::size_t pump_shard(std::size_t shard);

  /// Spawns the self-hosted workers (idempotent).  Implicit on first
  /// send/post when no wake hook is installed.
  void start();

  /// Drains, stops and joins the self-hosted workers (idempotent).
  void stop();

 private:
  struct Entry {
    std::uint64_t seq = 0;
    NodeId from = 0;
    NodeId to = 0;
    std::string bytes;            ///< encoded frame (empty for tasks)
    std::function<void()> task;   ///< set for post() entries
  };

  /// One shard's serial domain.  Aligned out of false sharing: the
  /// inbox mutex and the stats block are the only cross-thread traffic.
  struct alignas(64) Shard {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<Entry> inbox;
    std::function<void()> wake_hook;
    std::thread worker;
    bool stopping = false;
    /// Per-shard delivery accounting, owned by the shard thread; the
    /// aggregate view is stats().  Plain (non-atomic) because only the
    /// owning shard writes it and readers aggregate at quiescence
    /// under the inbox mutex.
    TransportStats local;
    /// Decode scratch, reused per delivery (thread-confined).
    std::vector<MessageView> batch_views;
  };

  void enqueue(std::size_t shard, Entry entry);
  void process(Shard& shard, Entry& entry);
  void worker_loop(std::size_t index);
  [[nodiscard]] bool on_shard_thread() const noexcept;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  /// Entries enqueued but not fully processed (cascade-safe; see file
  /// comment).  release on decrement / acquire on the zero-read gives
  /// the quiescent reader visibility of every delivery's effects.
  std::atomic<std::size_t> in_flight_{0};
  std::mutex quiesce_mutex_;
  std::condition_variable quiesce_cv_;
  std::mutex lifecycle_mutex_;  ///< guards start/stop and hosted_
  bool started_ = false;
  bool hosted_ = false;
  /// Aggregation target for stats() (mutable: stats() is const).
  mutable TransportStats aggregated_;
};

}  // namespace dvv::net
