// dvv/net/message.hpp
//
// Typed wire messages for the replication data plane.
//
// Everything that crosses between replicas — put fan-out, hinted
// handoff, hint delivery and its ack, anti-entropy session initiation —
// is one of these message types, serialized through the same codec the
// clock encodings use (codec/wire.hpp).  The transport layer
// (net/transport.hpp) carries only the encoded bytes, so wire-byte
// metering is the size of real encodings, not a modelled estimate, and
// a fault injector can drop/duplicate/reorder messages without knowing
// what they mean.
//
// Mechanism independence: the sibling-state payloads are carried as the
// key's full codec encoding (the same bytes Replica persists and ships
// today), produced and consumed by the kv layer.  The message layer
// never decodes a clock — which is what keeps one transport serving all
// six causality mechanisms.
//
// The hot message path adds three throughput layers on top of the
// typed messages (see README "Message path"):
//
//   * BatchMsg — a composite frame coalescing several same-destination
//     messages under one header, assembled by SimTransport at delivery
//     time and strict-decoded like every other frame;
//   * MessageView — a non-owning mirror of Message whose string fields
//     are views into the received buffer; the delivery path decodes
//     into views and the kv layer copies bytes only on adoption;
//   * net pools — recycled Message objects, encode buffers and a
//     freelist arena for shared_ptr control blocks, so the steady
//     state allocates nothing per op.  Pool MISSES are observable as
//     the net.alloc.* counters.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "codec/wire.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"
#include "util/pool.hpp"

namespace dvv::net {

using NodeId = core::ActorId;

/// Put replication fan-out: merge `state` (the coordinator's post-write
/// encoding of `key`) into the destination replica.
struct ReplicateMsg {
  std::string key;
  std::string state;  ///< codec encoding of the coordinator's Stored
};

/// Hinted handoff stash: park `state` on the destination (a fallback
/// server outside the preference list) on behalf of dead `owner`.
struct HintMsg {
  NodeId owner = 0;
  std::string key;
  std::string state;
};

/// Hint delivery: a fallback holder pushes a parked write home to its
/// recovered `owner` (the destination).  The holder keeps the hint
/// parked until the ack comes back — a delivery lost in flight is
/// retried by the next deliver_hints round, never silently dropped.
struct HintDeliverMsg {
  NodeId owner = 0;
  std::string key;
  std::string state;
};

/// Acknowledges a HintDeliverMsg.  `digest` is the state digest the
/// owner merged; the holder drops its parked hint only if the parked
/// bytes still match, so an ack that raced a newer re-stash of the same
/// (owner, key) cannot erase the newer write.
struct HintAckMsg {
  NodeId owner = 0;
  std::string key;
  std::uint64_t digest = 0;
};

/// Asks the destination to run one digest-based anti-entropy session
/// with the sender (sync/anti_entropy.hpp).  `nonce` pairs the eventual
/// SyncRespMsg with the request at the initiator.
struct SyncReqMsg {
  std::uint64_t nonce = 0;
};

/// Reports a completed session's stats back to the initiator (the
/// fields of sync::SyncStats, flattened for the wire).
struct SyncRespMsg {
  std::uint64_t nonce = 0;
  std::uint64_t rounds = 0;
  std::uint64_t nodes_exchanged = 0;
  std::uint64_t keys_compared = 0;
  std::uint64_t keys_shipped = 0;
  std::uint64_t wire_bytes = 0;
};

// ---- quorum coordination (kv/coordinator.hpp) ------------------------------
//
// The client read/write path as request state machines: a coordinator
// replica scatters read/write requests to its peers and counts distinct
// replies toward an R/W quorum.  `req` is the coordinator-side request
// id (slot | generation); the engine drops late, duplicate and
// stale-generation replies, so these messages are safe to duplicate,
// reorder and delay arbitrarily.

/// Quorum-read scatter: asks the destination for its local state of
/// `key` (answered with a CoordReadRespMsg carrying the same `req`).
struct CoordReadReqMsg {
  std::uint64_t req = 0;
  std::string key;
};

/// Quorum-read reply: the responder's full codec encoding of the key's
/// state (`found` false and empty `state` when it holds nothing).
struct CoordReadRespMsg {
  std::uint64_t req = 0;
  bool found = false;
  std::string state;
};

/// Quorum-write fan-out: merge `state` (the coordinator's post-write
/// encoding of `key`) into the destination — a ReplicateMsg that asks
/// for an ack.
struct CoordWriteReqMsg {
  std::uint64_t req = 0;
  std::string key;
  std::string state;
};

/// Acknowledges a CoordWriteReqMsg: the destination applied the merge.
struct CoordWriteRespMsg {
  std::uint64_t req = 0;
};

// ---- elastic membership (src/membership, kv/cluster.hpp) -------------------
//
// Membership changes travel as typed frames like everything else: a
// joining node asks in with a JoinReqMsg, every minted epoch is
// disseminated as an EpochAnnounceMsg (droppable/partitionable like any
// other message — stale receivers are what the stale-epoch forwarding
// path exists for), and a completed partition transfer is broadcast as
// a TransferDoneMsg so peers can account the rebalance.

/// Asks the destination (a current member) to admit `node` into the
/// ring: the receiving member drives the join through its
/// MembershipTable and answers with an EpochAnnounceMsg broadcast.
struct JoinReqMsg {
  NodeId node = 0;
};

/// Disseminates one minted ring epoch: the epoch number and the full
/// member list it routes over.  `members` is canonical — strictly
/// ascending (sorted, distinct) — and the strict decoder rejects any
/// other order, so a frame cannot smuggle two rings that hash alike.
struct EpochAnnounceMsg {
  std::uint64_t epoch = 0;
  std::vector<NodeId> members;  ///< strictly ascending
};

/// Announces that `owner` finished syncing claimed `partition` for
/// `epoch` (its task reached kOwned): the transfer effort rides along
/// for membership.* accounting at every peer.
struct TransferDoneMsg {
  std::uint64_t epoch = 0;
  std::uint64_t partition = 0;
  NodeId owner = 0;
  std::uint64_t keys_shipped = 0;
  std::uint64_t wire_bytes = 0;
};

/// Composite frame: `count` sub-messages for one destination under one
/// header, each sub-frame a complete encoding of a NON-batch message
/// (no nesting).  SimTransport assembles one per maximal run of
/// consecutive due same-link messages at delivery time, so a tick's
/// fan-out crosses as a single envelope; the strict decoder validates
/// every sub-frame before the batch is accepted, and rejects empty
/// batches, nested batches, sub-frames with trailing bytes, and counts
/// the input cannot hold.
struct BatchMsg {
  std::vector<std::string> frames;  ///< each: full encoding of one sub-message
};

using Message = std::variant<ReplicateMsg, HintMsg, HintDeliverMsg, HintAckMsg,
                             SyncReqMsg, SyncRespMsg, CoordReadReqMsg,
                             CoordReadRespMsg, CoordWriteReqMsg, CoordWriteRespMsg,
                             JoinReqMsg, EpochAnnounceMsg, TransferDoneMsg,
                             BatchMsg>;

// The obs catalog's per-message-type counter axes (sent, delivered,
// decode_reject) must track the Message variant exactly; obs cannot
// include net headers, so the check lives here.
static_assert(std::variant_size_v<Message> == obs::kMessageTypes,
              "net: Message variant and obs::kMessageTypeNames diverged");

// ---- zero-copy views -------------------------------------------------------
//
// MessageView mirrors Message alternative-for-alternative (same order,
// so view.index() == message.index()), with every string field a
// std::string_view into the buffer it was decoded from.  The delivery
// path decodes received frames into views; owned bytes materialize
// only where the kv layer adopts them (replica merge, hint stash).

struct ReplicateView {
  std::string_view key;
  std::string_view state;
};
struct HintView {
  NodeId owner = 0;
  std::string_view key;
  std::string_view state;
};
struct HintDeliverView {
  NodeId owner = 0;
  std::string_view key;
  std::string_view state;
};
struct HintAckView {
  NodeId owner = 0;
  std::string_view key;
  std::uint64_t digest = 0;
};
struct SyncReqView {
  std::uint64_t nonce = 0;
};
struct SyncRespView {
  std::uint64_t nonce = 0;
  std::uint64_t rounds = 0;
  std::uint64_t nodes_exchanged = 0;
  std::uint64_t keys_compared = 0;
  std::uint64_t keys_shipped = 0;
  std::uint64_t wire_bytes = 0;
};
struct CoordReadReqView {
  std::uint64_t req = 0;
  std::string_view key;
};
struct CoordReadRespView {
  std::uint64_t req = 0;
  bool found = false;
  std::string_view state;
};
struct CoordWriteReqView {
  std::uint64_t req = 0;
  std::string_view key;
  std::string_view state;
};
struct CoordWriteRespView {
  std::uint64_t req = 0;
};
struct JoinReqView {
  NodeId node = 0;
};
/// `members` is the raw strictly-ascending varint region (already
/// validated when this view came out of the strict decoder).
struct EpochAnnounceView {
  std::uint64_t epoch = 0;
  std::uint64_t count = 0;
  std::string_view members;
};
struct TransferDoneView {
  std::uint64_t epoch = 0;
  std::uint64_t partition = 0;
  NodeId owner = 0;
  std::uint64_t keys_shipped = 0;
  std::uint64_t wire_bytes = 0;
};
/// `frames` is the raw length-prefixed sub-frame region (already
/// validated when this view came out of the strict decoder).
struct BatchView {
  std::uint64_t count = 0;
  std::string_view frames;
};

using MessageView =
    std::variant<ReplicateView, HintView, HintDeliverView, HintAckView,
                 SyncReqView, SyncRespView, CoordReadReqView, CoordReadRespView,
                 CoordWriteReqView, CoordWriteRespView, JoinReqView,
                 EpochAnnounceView, TransferDoneView, BatchView>;

static_assert(std::variant_size_v<MessageView> == std::variant_size_v<Message>,
              "net: MessageView and Message variants diverged");

// ---- codec -----------------------------------------------------------------
//
// One-byte type tag (the variant index as a varint), then the fields in
// declaration order.  Strings are length-prefixed; ids and digests are
// varints — the exact framing the clock codecs use.

inline void encode(codec::Writer& w, const Message& msg) {
  w.varint(msg.index());
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ReplicateMsg>) {
          w.bytes(m.key);
          w.bytes(m.state);
        } else if constexpr (std::is_same_v<T, HintMsg> ||
                             std::is_same_v<T, HintDeliverMsg>) {
          w.varint(m.owner);
          w.bytes(m.key);
          w.bytes(m.state);
        } else if constexpr (std::is_same_v<T, HintAckMsg>) {
          w.varint(m.owner);
          w.bytes(m.key);
          w.varint(m.digest);
        } else if constexpr (std::is_same_v<T, SyncReqMsg>) {
          w.varint(m.nonce);
        } else if constexpr (std::is_same_v<T, SyncRespMsg>) {
          w.varint(m.nonce);
          w.varint(m.rounds);
          w.varint(m.nodes_exchanged);
          w.varint(m.keys_compared);
          w.varint(m.keys_shipped);
          w.varint(m.wire_bytes);
        } else if constexpr (std::is_same_v<T, CoordReadReqMsg>) {
          w.varint(m.req);
          w.bytes(m.key);
        } else if constexpr (std::is_same_v<T, CoordReadRespMsg>) {
          w.varint(m.req);
          w.varint(m.found ? 1 : 0);
          w.bytes(m.state);
        } else if constexpr (std::is_same_v<T, CoordWriteReqMsg>) {
          w.varint(m.req);
          w.bytes(m.key);
          w.bytes(m.state);
        } else if constexpr (std::is_same_v<T, CoordWriteRespMsg>) {
          w.varint(m.req);
        } else if constexpr (std::is_same_v<T, JoinReqMsg>) {
          w.varint(m.node);
        } else if constexpr (std::is_same_v<T, EpochAnnounceMsg>) {
          w.varint(m.epoch);
          w.varint(m.members.size());
          for (std::size_t i = 0; i < m.members.size(); ++i) {
            // The wire form is canonical-only; encoding an unsorted
            // list would mint bytes the strict decoder rejects.
            DVV_ASSERT_MSG(i == 0 || m.members[i - 1] < m.members[i],
                           "net: epoch members must be strictly ascending");
            w.varint(m.members[i]);
          }
        } else if constexpr (std::is_same_v<T, TransferDoneMsg>) {
          w.varint(m.epoch);
          w.varint(m.partition);
          w.varint(m.owner);
          w.varint(m.keys_shipped);
          w.varint(m.wire_bytes);
        } else {
          static_assert(std::is_same_v<T, BatchMsg>);
          w.varint(m.frames.size());
          for (const std::string& frame : m.frames) w.bytes(frame);
        }
      },
      msg);
}

// Decoding is STRICT — the message layer is the first thing a socket
// front-end will point at hostile bytes, so the decode path follows the
// token.hpp contract: bounds-checked, linear in the received bytes
// (length claims are capped against the remaining input before any
// allocation), canonical-form-only (non-minimal varints and found
// flags outside {0,1} are rejected), and a failure is a status return,
// never an assert.  Successful decode of a full frame therefore
// implies encode_to_bytes reproduces the input byte-for-byte — the
// round-trip property the wire fuzzer pins.
//
// There is ONE parser: try_decode_view.  Owned decode is the view
// parser plus materialize(), so the strict contract cannot drift
// between the zero-copy delivery path and the owned path.

[[nodiscard]] inline bool parse_batch_frames(codec::StrictReader& r,
                                             std::uint64_t count,
                                             std::vector<MessageView>* out);

/// Strict decode of one message from `r`, into non-owning views over
/// the input buffer.  Returns nullopt on any malformation, leaving `r`
/// mid-buffer.  When `tag_out` is non-null it receives the claimed
/// variant index if one was readable and in range (rejection taxonomy
/// for the decode_reject counters), else SIZE_MAX.  `allow_batch`
/// false rejects BatchMsg frames — how sub-frame validation bans
/// nested batches.
[[nodiscard]] inline std::optional<MessageView> try_decode_view(
    codec::StrictReader& r, std::size_t* tag_out = nullptr,
    bool allow_batch = true) {
  if (tag_out != nullptr) *tag_out = SIZE_MAX;
  std::uint64_t tag = 0;
  if (!r.varint(tag)) return std::nullopt;
  if (tag >= std::variant_size_v<MessageView>) return std::nullopt;
  if (tag_out != nullptr) *tag_out = static_cast<std::size_t>(tag);
  switch (tag) {
    case 0: {
      ReplicateView v;
      if (!r.bytes_view(v.key) || !r.bytes_view(v.state)) return std::nullopt;
      return MessageView{v};
    }
    case 1: {
      HintView v;
      if (!r.varint(v.owner) || !r.bytes_view(v.key) || !r.bytes_view(v.state)) {
        return std::nullopt;
      }
      return MessageView{v};
    }
    case 2: {
      HintDeliverView v;
      if (!r.varint(v.owner) || !r.bytes_view(v.key) || !r.bytes_view(v.state)) {
        return std::nullopt;
      }
      return MessageView{v};
    }
    case 3: {
      HintAckView v;
      if (!r.varint(v.owner) || !r.bytes_view(v.key) || !r.varint(v.digest)) {
        return std::nullopt;
      }
      return MessageView{v};
    }
    case 4: {
      SyncReqView v;
      if (!r.varint(v.nonce)) return std::nullopt;
      return MessageView{v};
    }
    case 5: {
      SyncRespView v;
      if (!r.varint(v.nonce) || !r.varint(v.rounds) ||
          !r.varint(v.nodes_exchanged) || !r.varint(v.keys_compared) ||
          !r.varint(v.keys_shipped) || !r.varint(v.wire_bytes)) {
        return std::nullopt;
      }
      return MessageView{v};
    }
    case 6: {
      CoordReadReqView v;
      if (!r.varint(v.req) || !r.bytes_view(v.key)) return std::nullopt;
      return MessageView{v};
    }
    case 7: {
      CoordReadRespView v;
      std::uint64_t found = 0;
      if (!r.varint(v.req) || !r.varint(found)) return std::nullopt;
      if (found > 1) return std::nullopt;  // canonical bool
      v.found = found != 0;
      if (!r.bytes_view(v.state)) return std::nullopt;
      return MessageView{v};
    }
    case 8: {
      CoordWriteReqView v;
      if (!r.varint(v.req) || !r.bytes_view(v.key) || !r.bytes_view(v.state)) {
        return std::nullopt;
      }
      return MessageView{v};
    }
    case 9: {
      CoordWriteRespView v;
      if (!r.varint(v.req)) return std::nullopt;
      return MessageView{v};
    }
    case 10: {
      JoinReqView v;
      if (!r.varint(v.node)) return std::nullopt;
      return MessageView{v};
    }
    case 11: {
      EpochAnnounceView v;
      if (!r.varint(v.epoch) || !r.varint(v.count)) return std::nullopt;
      // A ring is never empty; every member varint costs >= 1 byte, so
      // a count beyond the remaining bytes is an overclaim — reject
      // before walking anything.
      if (v.count == 0 || v.count > r.remaining()) return std::nullopt;
      const std::size_t begin = r.position();
      std::uint64_t prev = 0;
      for (std::uint64_t i = 0; i < v.count; ++i) {
        std::uint64_t member = 0;
        if (!r.varint(member)) return std::nullopt;
        // Canonical form only: strictly ascending ids (sorted AND
        // distinct), so equal member sets have equal encodings.
        if (i > 0 && member <= prev) return std::nullopt;
        prev = member;
      }
      v.members = r.viewed_since(begin);
      return MessageView{v};
    }
    case 12: {
      TransferDoneView v;
      if (!r.varint(v.epoch) || !r.varint(v.partition) || !r.varint(v.owner) ||
          !r.varint(v.keys_shipped) || !r.varint(v.wire_bytes)) {
        return std::nullopt;
      }
      return MessageView{v};
    }
    default: {
      if (!allow_batch) return std::nullopt;  // no nested batches
      BatchView v;
      if (!r.varint(v.count)) return std::nullopt;
      // An empty batch is never framed; a count beyond the remaining
      // bytes is an overclaim (every sub-frame costs >= 2 bytes).
      if (v.count == 0 || v.count > r.remaining()) return std::nullopt;
      const std::size_t begin = r.position();
      if (!parse_batch_frames(r, v.count, nullptr)) return std::nullopt;
      v.frames = r.viewed_since(begin);
      return MessageView{v};
    }
  }
}

/// Validates `count` length-prefixed sub-frames at `r`, each a complete
/// non-batch message with no trailing bytes; collects the decoded views
/// into `out` when non-null.  Linear: fails at the first sub-frame the
/// input cannot hold.
[[nodiscard]] inline bool parse_batch_frames(codec::StrictReader& r,
                                             std::uint64_t count,
                                             std::vector<MessageView>* out) {
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string_view frame;
    if (!r.bytes_view(frame)) return false;
    codec::StrictReader sub(frame.data(), frame.size());
    std::optional<MessageView> view =
        try_decode_view(sub, nullptr, /*allow_batch=*/false);
    if (!view.has_value() || !sub.done()) return false;
    if (out != nullptr) out->push_back(*view);
  }
  return true;
}

/// Strict decode of one complete NON-batch frame (a batch sub-frame, or
/// an owned BatchMsg's stored encoding): one message, every byte
/// consumed.
[[nodiscard]] inline std::optional<MessageView> decode_frame_view(
    std::string_view frame) {
  codec::StrictReader r(frame.data(), frame.size());
  std::optional<MessageView> view =
      try_decode_view(r, nullptr, /*allow_batch=*/false);
  if (!view.has_value() || !r.done()) return std::nullopt;
  return view;
}

/// Owned message from a decoded view: copies every viewed byte range
/// into fresh strings — the one adoption point where the zero-copy
/// path materializes.
[[nodiscard]] inline Message materialize(const MessageView& view) {
  return std::visit(
      [](const auto& v) -> Message {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, ReplicateView>) {
          return ReplicateMsg{std::string(v.key), std::string(v.state)};
        } else if constexpr (std::is_same_v<T, HintView>) {
          return HintMsg{v.owner, std::string(v.key), std::string(v.state)};
        } else if constexpr (std::is_same_v<T, HintDeliverView>) {
          return HintDeliverMsg{v.owner, std::string(v.key), std::string(v.state)};
        } else if constexpr (std::is_same_v<T, HintAckView>) {
          return HintAckMsg{v.owner, std::string(v.key), v.digest};
        } else if constexpr (std::is_same_v<T, SyncReqView>) {
          return SyncReqMsg{v.nonce};
        } else if constexpr (std::is_same_v<T, SyncRespView>) {
          return SyncRespMsg{v.nonce,         v.rounds,       v.nodes_exchanged,
                             v.keys_compared, v.keys_shipped, v.wire_bytes};
        } else if constexpr (std::is_same_v<T, CoordReadReqView>) {
          return CoordReadReqMsg{v.req, std::string(v.key)};
        } else if constexpr (std::is_same_v<T, CoordReadRespView>) {
          return CoordReadRespMsg{v.req, v.found, std::string(v.state)};
        } else if constexpr (std::is_same_v<T, CoordWriteReqView>) {
          return CoordWriteReqMsg{v.req, std::string(v.key), std::string(v.state)};
        } else if constexpr (std::is_same_v<T, CoordWriteRespView>) {
          return CoordWriteRespMsg{v.req};
        } else if constexpr (std::is_same_v<T, JoinReqView>) {
          return JoinReqMsg{v.node};
        } else if constexpr (std::is_same_v<T, EpochAnnounceView>) {
          EpochAnnounceMsg m;
          m.epoch = v.epoch;
          m.members.reserve(static_cast<std::size_t>(v.count));
          codec::StrictReader r(v.members.data(), v.members.size());
          for (std::uint64_t i = 0; i < v.count; ++i) {
            std::uint64_t member = 0;
            const bool ok = r.varint(member);
            DVV_ASSERT_MSG(ok, "net: materializing an unvalidated epoch view");
            m.members.push_back(static_cast<NodeId>(member));
          }
          return m;
        } else if constexpr (std::is_same_v<T, TransferDoneView>) {
          return TransferDoneMsg{v.epoch, v.partition, v.owner, v.keys_shipped,
                                 v.wire_bytes};
        } else {
          static_assert(std::is_same_v<T, BatchView>);
          BatchMsg m;
          m.frames.reserve(static_cast<std::size_t>(v.count));
          codec::StrictReader r(v.frames.data(), v.frames.size());
          for (std::uint64_t i = 0; i < v.count; ++i) {
            std::string_view frame;
            const bool ok = r.bytes_view(frame);
            DVV_ASSERT_MSG(ok, "net: materializing an unvalidated batch view");
            m.frames.emplace_back(frame);
          }
          return m;
        }
      },
      view);
}

/// Non-owning view of an owned message (string fields become views into
/// the message's own strings — valid while `msg` lives).  BatchMsg and
/// EpochAnnounceMsg are excluded: their view forms are contiguous wire
/// regions an owned frame list / member vector does not have; consumers
/// iterate the owned fields directly.
[[nodiscard]] inline MessageView as_view(const Message& msg) {
  return std::visit(
      [](const auto& m) -> MessageView {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ReplicateMsg>) {
          return ReplicateView{m.key, m.state};
        } else if constexpr (std::is_same_v<T, HintMsg>) {
          return HintView{m.owner, m.key, m.state};
        } else if constexpr (std::is_same_v<T, HintDeliverMsg>) {
          return HintDeliverView{m.owner, m.key, m.state};
        } else if constexpr (std::is_same_v<T, HintAckMsg>) {
          return HintAckView{m.owner, m.key, m.digest};
        } else if constexpr (std::is_same_v<T, SyncReqMsg>) {
          return SyncReqView{m.nonce};
        } else if constexpr (std::is_same_v<T, SyncRespMsg>) {
          return SyncRespView{m.nonce,         m.rounds,       m.nodes_exchanged,
                              m.keys_compared, m.keys_shipped, m.wire_bytes};
        } else if constexpr (std::is_same_v<T, CoordReadReqMsg>) {
          return CoordReadReqView{m.req, m.key};
        } else if constexpr (std::is_same_v<T, CoordReadRespMsg>) {
          return CoordReadRespView{m.req, m.found, m.state};
        } else if constexpr (std::is_same_v<T, CoordWriteReqMsg>) {
          return CoordWriteReqView{m.req, m.key, m.state};
        } else if constexpr (std::is_same_v<T, CoordWriteRespMsg>) {
          return CoordWriteRespView{m.req};
        } else if constexpr (std::is_same_v<T, JoinReqMsg>) {
          return JoinReqView{m.node};
        } else if constexpr (std::is_same_v<T, TransferDoneMsg>) {
          return TransferDoneView{m.epoch, m.partition, m.owner, m.keys_shipped,
                                  m.wire_bytes};
        } else {
          static_assert(std::is_same_v<T, BatchMsg> ||
                        std::is_same_v<T, EpochAnnounceMsg>);
          DVV_ASSERT_MSG(false, "net: as_view has no batch/epoch-announce form");
          return SyncReqView{};  // unreachable
        }
      },
      msg);
}

/// Strict decode of one OWNED message from `r` — the view parser plus
/// materialize, so both decode forms share one implementation.
[[nodiscard]] inline std::optional<Message> try_decode_message(
    codec::StrictReader& r, std::size_t* tag_out = nullptr) {
  std::optional<MessageView> view = try_decode_view(r, tag_out);
  if (!view.has_value()) return std::nullopt;
  return materialize(*view);
}

/// Strict decode of a full transport payload: one message consuming
/// every byte.  Trailing bytes, truncation, unknown tags and
/// non-canonical encodings all return nullopt.  `tag_out` as above.
[[nodiscard]] inline std::optional<Message> try_decode_from_bytes(
    std::string_view bytes, std::size_t* tag_out = nullptr) {
  codec::StrictReader r(bytes.data(), bytes.size());
  std::optional<Message> msg = try_decode_message(r, tag_out);
  if (!msg.has_value() || !r.done()) return std::nullopt;
  return msg;
}

namespace detail {

template <typename T, typename... Ts>
[[nodiscard]] constexpr std::size_t variant_index_of(const std::variant<Ts...>*) {
  constexpr bool matches[] = {std::is_same_v<T, Ts>...};
  for (std::size_t i = 0; i < sizeof...(Ts); ++i) {
    if (matches[i]) return i;
  }
  return std::variant_npos;
}

}  // namespace detail

/// `T`'s wire tag (its Message variant index), at compile time.
template <typename T>
inline constexpr std::size_t kMessageTagOf =
    detail::variant_index_of<T>(static_cast<const Message*>(nullptr));

/// Exact codec size of a STATICALLY-known alternative — wire_size's
/// arithmetic with the variant dispatch compiled away.  Fan-out
/// senders that just filled a typed slot use this to compute the
/// size_hint they pass along with the borrowed message, so the
/// transport never re-walks the variant (SimTransport asserts the hint
/// against the real encoding, which keeps this table honest).
template <typename T>
[[nodiscard]] inline std::size_t wire_size_of(const T& m) {
  static_assert(kMessageTagOf<T> != std::variant_npos);
  const auto bytes_size = [](const std::string& s) {
    return codec::varint_size(s.size()) + s.size();
  };
  std::size_t n = codec::varint_size(kMessageTagOf<T>);
  if constexpr (std::is_same_v<T, ReplicateMsg>) {
    n += bytes_size(m.key) + bytes_size(m.state);
  } else if constexpr (std::is_same_v<T, HintMsg> ||
                       std::is_same_v<T, HintDeliverMsg>) {
    n += codec::varint_size(m.owner) + bytes_size(m.key) + bytes_size(m.state);
  } else if constexpr (std::is_same_v<T, HintAckMsg>) {
    n += codec::varint_size(m.owner) + bytes_size(m.key) +
         codec::varint_size(m.digest);
  } else if constexpr (std::is_same_v<T, SyncReqMsg>) {
    n += codec::varint_size(m.nonce);
  } else if constexpr (std::is_same_v<T, SyncRespMsg>) {
    n += codec::varint_size(m.nonce) + codec::varint_size(m.rounds) +
         codec::varint_size(m.nodes_exchanged) +
         codec::varint_size(m.keys_compared) +
         codec::varint_size(m.keys_shipped) + codec::varint_size(m.wire_bytes);
  } else if constexpr (std::is_same_v<T, CoordReadReqMsg>) {
    n += codec::varint_size(m.req) + bytes_size(m.key);
  } else if constexpr (std::is_same_v<T, CoordReadRespMsg>) {
    n += codec::varint_size(m.req) + codec::varint_size(m.found ? 1 : 0) +
         bytes_size(m.state);
  } else if constexpr (std::is_same_v<T, CoordWriteReqMsg>) {
    n += codec::varint_size(m.req) + bytes_size(m.key) + bytes_size(m.state);
  } else if constexpr (std::is_same_v<T, CoordWriteRespMsg>) {
    n += codec::varint_size(m.req);
  } else if constexpr (std::is_same_v<T, JoinReqMsg>) {
    n += codec::varint_size(m.node);
  } else if constexpr (std::is_same_v<T, EpochAnnounceMsg>) {
    n += codec::varint_size(m.epoch) + codec::varint_size(m.members.size());
    for (const NodeId id : m.members) n += codec::varint_size(id);
  } else if constexpr (std::is_same_v<T, TransferDoneMsg>) {
    n += codec::varint_size(m.epoch) + codec::varint_size(m.partition) +
         codec::varint_size(m.owner) + codec::varint_size(m.keys_shipped) +
         codec::varint_size(m.wire_bytes);
  } else {
    static_assert(std::is_same_v<T, BatchMsg>);
    n += codec::varint_size(m.frames.size());
    for (const std::string& frame : m.frames) n += bytes_size(frame);
  }
  return n;
}

/// Exact size of `msg`'s codec encoding, computed without building the
/// bytes.  Envelopes are metered with this so the inline transport's
/// zero-copy fast path charges the same wire bytes the byte-faithful
/// SimTransport pays for real (it asserts the two agree).
[[nodiscard]] inline std::size_t wire_size(const Message& msg) {
  return std::visit([](const auto& m) { return wire_size_of(m); }, msg);
}

/// Encodes `msg` into `out` via a persistent scratch writer: once both
/// are warm (capacity >= frame size) this allocates nothing.
inline void encode_into(const Message& msg, std::string& out) {
  // Leaky thread_local scratch: shared_ptr releases during static
  // destruction must never race a destroyed writer.
  static thread_local codec::Writer* scratch = new codec::Writer;
  scratch->clear();
  encode(*scratch, msg);
  out.assign(reinterpret_cast<const char*>(scratch->buffer().data()),
             scratch->size());
}

/// Encodes `msg` to the byte string a Transport carries.
[[nodiscard]] inline std::string encode_to_bytes(const Message& msg) {
  codec::Writer w;
  encode(w, msg);
  return std::string(reinterpret_cast<const char*>(w.buffer().data()), w.size());
}

/// Decodes a payload the process framed itself (tests, loopback
/// round-trips): same strict parse, but failure asserts — on bytes of
/// local provenance a malformed frame is a bug, not an input error.
/// Bytes of foreign provenance go through decode_or_reject instead.
[[nodiscard]] inline Message decode_from_bytes(const std::string& bytes) {
  std::optional<Message> msg = try_decode_from_bytes(bytes);
  DVV_ASSERT_MSG(msg.has_value(), "net: malformed self-framed message");
  return *std::move(msg);
}

/// Rejection accounting shared by the untrusted-boundary decoders:
/// bumps net.decode_reject plus the per-type taxonomy counter
/// (net.decode_reject.<type> when a plausible type tag was readable,
/// net.decode_reject.unknown otherwise).
inline void note_decode_reject(std::size_t tag) {
  obs::NetMetrics& m = obs::net_metrics();
  m.decode_reject.inc();
  if (tag < obs::kMessageTypes) {
    m.decode_reject_by_type[tag].inc();
  } else {
    m.decode_reject_unknown.inc();
  }
}

/// The untrusted-boundary entry point: strict decode plus rejection
/// accounting.  On failure bumps the decode_reject taxonomy and returns
/// nullopt — the caller drops the frame; no malformed input can abort.
[[nodiscard]] inline std::optional<Message> decode_or_reject(
    std::string_view bytes) {
  std::size_t tag = SIZE_MAX;
  std::optional<Message> msg = try_decode_from_bytes(bytes, &tag);
  if (!msg.has_value()) note_decode_reject(tag);
  return msg;
}

/// Zero-copy untrusted-boundary decode: views over `bytes` (which must
/// outlive the returned view), same strictness and rejection accounting
/// as decode_or_reject.
[[nodiscard]] inline std::optional<MessageView> decode_view_or_reject(
    std::string_view bytes) {
  std::size_t tag = SIZE_MAX;
  codec::StrictReader r(bytes.data(), bytes.size());
  std::optional<MessageView> view = try_decode_view(r, &tag);
  if (view.has_value() && r.done()) return view;
  note_decode_reject(tag);
  return std::nullopt;
}

/// Strict decode of a full BatchMsg frame into its ordered sub-views
/// (appended to `out`; views alias `bytes`).  Returns false — with `out`
/// restored — on anything that is not a well-formed batch.  No
/// rejection accounting: the caller (SimTransport's coalescer) falls
/// back to delivering the sub-frames individually, where each failure
/// is counted exactly as an unbatched delivery would count it.
[[nodiscard]] inline bool try_decode_batch_views(
    std::string_view bytes, std::vector<MessageView>& out) {
  const std::size_t mark = out.size();
  codec::StrictReader r(bytes.data(), bytes.size());
  std::uint64_t tag = 0;
  std::uint64_t count = 0;
  if (r.varint(tag) && tag == std::variant_size_v<Message> - 1 &&
      r.varint(count) && count > 0 && count <= r.remaining() &&
      parse_batch_frames(r, count, &out) && r.done()) {
    return true;
  }
  out.resize(mark);
  return false;
}

// ---- pooled messages and encode buffers ------------------------------------
//
// The net pools: recycled Message instances (alternative-affine —
// LIFO reuse hands homogeneous traffic an object that already holds
// the right alternative, so field assignment reuses string capacity),
// recycled encode buffers, and a freelist arena for the shared_ptr
// control blocks and SimTransport queue nodes the standard library
// would otherwise heap-allocate per message.  Everything is
// thread_local and leaked on purpose: a shared_ptr released during
// static destruction must find its pool alive.
//
// Pool misses surface as net.alloc.{messages,encode_buffers,envelopes}.

struct NetPools {
  util::FreelistArena arena;
  util::RecyclePool<Message> messages;
  util::RecyclePool<std::string> buffers;

  NetPools() {
    arena.set_miss_hook([] { obs::net_metrics().alloc_envelopes.inc(); });
    messages.set_miss_hook([] { obs::net_metrics().alloc_messages.inc(); });
    buffers.set_miss_hook([] { obs::net_metrics().alloc_encode_buffers.inc(); });
  }
};

[[nodiscard]] inline NetPools& net_pools() {
  static thread_local NetPools* pools = new NetPools;  // leaked by design
  return *pools;
}

/// shared_ptr deleter that parks the Message back in its pool,
/// un-destructed, so its strings keep their capacity for the next use.
struct MessageRecycler {
  void operator()(const Message* p) const noexcept {
    net_pools().messages.release(const_cast<Message*>(p));
  }
};

struct BufferRecycler {
  void operator()(const std::string* p) const noexcept {
    net_pools().buffers.release(const_cast<std::string*>(p));
  }
};

/// A recycled Message holding alternative T: `fill` assigns its fields
/// in place (string assignment onto a recycled same-alternative object
/// reuses capacity), and the returned handle's control block comes from
/// the arena — zero per-op allocations once the pools are warm.
template <typename T, typename Fill>
[[nodiscard]] std::shared_ptr<const Message> pooled_message(Fill&& fill) {
  NetPools& pools = net_pools();
  Message* slot = pools.messages.acquire();
  if (!std::holds_alternative<T>(*slot)) slot->emplace<T>();
  fill(std::get<T>(*slot));
  return std::shared_ptr<const Message>(slot, MessageRecycler{},
                                        util::ArenaAllocator<Message>(&pools.arena));
}

/// Wraps an already-built message in a recycled slot (the by-value
/// Transport::send convenience path).
[[nodiscard]] inline std::shared_ptr<const Message> pooled_message(Message&& msg) {
  NetPools& pools = net_pools();
  Message* slot = pools.messages.acquire();
  *slot = std::move(msg);
  return std::shared_ptr<const Message>(slot, MessageRecycler{},
                                        util::ArenaAllocator<Message>(&pools.arena));
}

/// Fills a caller-kept Message slot with alternative T in place.
/// Alternative-affine like the pooled path: a same-alternative refill
/// assigns fields onto the previous occupant, so string capacity is
/// reused.  Pairs with borrow_message for the zero-overhead send idiom.
template <typename T, typename Fill>
const Message& fill_message(Message& slot, Fill&& fill) {
  if (!std::holds_alternative<T>(slot)) slot.emplace<T>();
  fill(std::get<T>(slot));
  return slot;
}

/// Non-owning handle over a caller-kept message: the aliasing
/// constructor with an empty owner yields a shared_ptr with NO control
/// block, so creating and copying it costs two pointer stores — no
/// allocation, no refcount traffic.  The caller must keep `msg` alive
/// and unmodified until the send completes (synchronous delivery
/// included) and the delivery sink must not retain the envelope's msg
/// beyond the sink call — the same lifetime contract as
/// Envelope::decoded.  Senders that cannot promise that (or whose
/// sinks retain messages) use pooled_message instead.
[[nodiscard]] inline std::shared_ptr<const Message> borrow_message(
    const Message& msg) {
  return {std::shared_ptr<const void>{}, &msg};
}

/// A recycled encode buffer (cleared, capacity retained) with an
/// arena-backed control block.  SimTransport's wire bytes live in
/// these; duplicates share one buffer by sharing the handle.
[[nodiscard]] inline std::shared_ptr<std::string> pooled_buffer() {
  NetPools& pools = net_pools();
  std::string* s = pools.buffers.acquire();
  s->clear();
  return std::shared_ptr<std::string>(s, BufferRecycler{},
                                      util::ArenaAllocator<std::string>(&pools.arena));
}

}  // namespace dvv::net
