// dvv/net/message.hpp
//
// Typed wire messages for the replication data plane.
//
// Everything that crosses between replicas — put fan-out, hinted
// handoff, hint delivery and its ack, anti-entropy session initiation —
// is one of these message types, serialized through the same codec the
// clock encodings use (codec/wire.hpp).  The transport layer
// (net/transport.hpp) carries only the encoded bytes, so wire-byte
// metering is the size of real encodings, not a modelled estimate, and
// a fault injector can drop/duplicate/reorder messages without knowing
// what they mean.
//
// Mechanism independence: the sibling-state payloads are carried as the
// key's full codec encoding (the same bytes Replica persists and ships
// today), produced and consumed by the kv layer.  The message layer
// never decodes a clock — which is what keeps one transport serving all
// six causality mechanisms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "codec/wire.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace dvv::net {

using NodeId = core::ActorId;

/// Put replication fan-out: merge `state` (the coordinator's post-write
/// encoding of `key`) into the destination replica.
struct ReplicateMsg {
  std::string key;
  std::string state;  ///< codec encoding of the coordinator's Stored
};

/// Hinted handoff stash: park `state` on the destination (a fallback
/// server outside the preference list) on behalf of dead `owner`.
struct HintMsg {
  NodeId owner = 0;
  std::string key;
  std::string state;
};

/// Hint delivery: a fallback holder pushes a parked write home to its
/// recovered `owner` (the destination).  The holder keeps the hint
/// parked until the ack comes back — a delivery lost in flight is
/// retried by the next deliver_hints round, never silently dropped.
struct HintDeliverMsg {
  NodeId owner = 0;
  std::string key;
  std::string state;
};

/// Acknowledges a HintDeliverMsg.  `digest` is the state digest the
/// owner merged; the holder drops its parked hint only if the parked
/// bytes still match, so an ack that raced a newer re-stash of the same
/// (owner, key) cannot erase the newer write.
struct HintAckMsg {
  NodeId owner = 0;
  std::string key;
  std::uint64_t digest = 0;
};

/// Asks the destination to run one digest-based anti-entropy session
/// with the sender (sync/anti_entropy.hpp).  `nonce` pairs the eventual
/// SyncRespMsg with the request at the initiator.
struct SyncReqMsg {
  std::uint64_t nonce = 0;
};

/// Reports a completed session's stats back to the initiator (the
/// fields of sync::SyncStats, flattened for the wire).
struct SyncRespMsg {
  std::uint64_t nonce = 0;
  std::uint64_t rounds = 0;
  std::uint64_t nodes_exchanged = 0;
  std::uint64_t keys_compared = 0;
  std::uint64_t keys_shipped = 0;
  std::uint64_t wire_bytes = 0;
};

// ---- quorum coordination (kv/coordinator.hpp) ------------------------------
//
// The client read/write path as request state machines: a coordinator
// replica scatters read/write requests to its peers and counts distinct
// replies toward an R/W quorum.  `req` is the coordinator-side request
// id (slot | generation); the engine drops late, duplicate and
// stale-generation replies, so these messages are safe to duplicate,
// reorder and delay arbitrarily.

/// Quorum-read scatter: asks the destination for its local state of
/// `key` (answered with a CoordReadRespMsg carrying the same `req`).
struct CoordReadReqMsg {
  std::uint64_t req = 0;
  std::string key;
};

/// Quorum-read reply: the responder's full codec encoding of the key's
/// state (`found` false and empty `state` when it holds nothing).
struct CoordReadRespMsg {
  std::uint64_t req = 0;
  bool found = false;
  std::string state;
};

/// Quorum-write fan-out: merge `state` (the coordinator's post-write
/// encoding of `key`) into the destination — a ReplicateMsg that asks
/// for an ack.
struct CoordWriteReqMsg {
  std::uint64_t req = 0;
  std::string key;
  std::string state;
};

/// Acknowledges a CoordWriteReqMsg: the destination applied the merge.
struct CoordWriteRespMsg {
  std::uint64_t req = 0;
};

using Message = std::variant<ReplicateMsg, HintMsg, HintDeliverMsg, HintAckMsg,
                             SyncReqMsg, SyncRespMsg, CoordReadReqMsg,
                             CoordReadRespMsg, CoordWriteReqMsg, CoordWriteRespMsg>;

// The obs catalog's per-message-type counter axes (sent, delivered,
// decode_reject) must track the Message variant exactly; obs cannot
// include net headers, so the check lives here.
static_assert(std::variant_size_v<Message> == obs::kMessageTypes,
              "net: Message variant and obs::kMessageTypeNames diverged");

// ---- codec -----------------------------------------------------------------
//
// One-byte type tag (the variant index as a varint), then the fields in
// declaration order.  Strings are length-prefixed; ids and digests are
// varints — the exact framing the clock codecs use.

inline void encode(codec::Writer& w, const Message& msg) {
  w.varint(msg.index());
  std::visit(
      [&w](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ReplicateMsg>) {
          w.bytes(m.key);
          w.bytes(m.state);
        } else if constexpr (std::is_same_v<T, HintMsg> ||
                             std::is_same_v<T, HintDeliverMsg>) {
          w.varint(m.owner);
          w.bytes(m.key);
          w.bytes(m.state);
        } else if constexpr (std::is_same_v<T, HintAckMsg>) {
          w.varint(m.owner);
          w.bytes(m.key);
          w.varint(m.digest);
        } else if constexpr (std::is_same_v<T, SyncReqMsg>) {
          w.varint(m.nonce);
        } else if constexpr (std::is_same_v<T, SyncRespMsg>) {
          w.varint(m.nonce);
          w.varint(m.rounds);
          w.varint(m.nodes_exchanged);
          w.varint(m.keys_compared);
          w.varint(m.keys_shipped);
          w.varint(m.wire_bytes);
        } else if constexpr (std::is_same_v<T, CoordReadReqMsg>) {
          w.varint(m.req);
          w.bytes(m.key);
        } else if constexpr (std::is_same_v<T, CoordReadRespMsg>) {
          w.varint(m.req);
          w.varint(m.found ? 1 : 0);
          w.bytes(m.state);
        } else if constexpr (std::is_same_v<T, CoordWriteReqMsg>) {
          w.varint(m.req);
          w.bytes(m.key);
          w.bytes(m.state);
        } else {
          static_assert(std::is_same_v<T, CoordWriteRespMsg>);
          w.varint(m.req);
        }
      },
      msg);
}

// Decoding is STRICT — the message layer is the first thing a socket
// front-end will point at hostile bytes, so the decode path follows the
// token.hpp contract: bounds-checked, linear in the received bytes
// (length claims are capped against the remaining input before any
// allocation), canonical-form-only (non-minimal varints and found
// flags outside {0,1} are rejected), and a failure is a status return,
// never an assert.  Successful decode of a full frame therefore
// implies encode_to_bytes reproduces the input byte-for-byte — the
// round-trip property the wire fuzzer pins.

/// Strict decode of one message from `r`.  Returns nullopt on any
/// malformation, leaving `r` mid-buffer.  When `tag_out` is non-null it
/// receives the claimed variant index if one was readable and in range
/// (rejection taxonomy for the decode_reject counters), else SIZE_MAX.
[[nodiscard]] inline std::optional<Message> try_decode_message(
    codec::StrictReader& r, std::size_t* tag_out = nullptr) {
  if (tag_out != nullptr) *tag_out = SIZE_MAX;
  std::uint64_t tag = 0;
  if (!r.varint(tag)) return std::nullopt;
  if (tag >= std::variant_size_v<Message>) return std::nullopt;
  if (tag_out != nullptr) *tag_out = static_cast<std::size_t>(tag);
  switch (tag) {
    case 0: {
      ReplicateMsg m;
      if (!r.bytes(m.key) || !r.bytes(m.state)) return std::nullopt;
      return m;
    }
    case 1: {
      HintMsg m;
      if (!r.varint(m.owner) || !r.bytes(m.key) || !r.bytes(m.state)) {
        return std::nullopt;
      }
      return m;
    }
    case 2: {
      HintDeliverMsg m;
      if (!r.varint(m.owner) || !r.bytes(m.key) || !r.bytes(m.state)) {
        return std::nullopt;
      }
      return m;
    }
    case 3: {
      HintAckMsg m;
      if (!r.varint(m.owner) || !r.bytes(m.key) || !r.varint(m.digest)) {
        return std::nullopt;
      }
      return m;
    }
    case 4: {
      SyncReqMsg m;
      if (!r.varint(m.nonce)) return std::nullopt;
      return m;
    }
    case 5: {
      SyncRespMsg m;
      if (!r.varint(m.nonce) || !r.varint(m.rounds) ||
          !r.varint(m.nodes_exchanged) || !r.varint(m.keys_compared) ||
          !r.varint(m.keys_shipped) || !r.varint(m.wire_bytes)) {
        return std::nullopt;
      }
      return m;
    }
    case 6: {
      CoordReadReqMsg m;
      if (!r.varint(m.req) || !r.bytes(m.key)) return std::nullopt;
      return m;
    }
    case 7: {
      CoordReadRespMsg m;
      std::uint64_t found = 0;
      if (!r.varint(m.req) || !r.varint(found)) return std::nullopt;
      if (found > 1) return std::nullopt;  // canonical bool
      m.found = found != 0;
      if (!r.bytes(m.state)) return std::nullopt;
      return m;
    }
    case 8: {
      CoordWriteReqMsg m;
      if (!r.varint(m.req) || !r.bytes(m.key) || !r.bytes(m.state)) {
        return std::nullopt;
      }
      return m;
    }
    default: {
      CoordWriteRespMsg m;
      if (!r.varint(m.req)) return std::nullopt;
      return m;
    }
  }
}

/// Strict decode of a full transport payload: one message consuming
/// every byte.  Trailing bytes, truncation, unknown tags and
/// non-canonical encodings all return nullopt.  `tag_out` as above.
[[nodiscard]] inline std::optional<Message> try_decode_from_bytes(
    std::string_view bytes, std::size_t* tag_out = nullptr) {
  codec::StrictReader r(bytes.data(), bytes.size());
  std::optional<Message> msg = try_decode_message(r, tag_out);
  if (!msg.has_value() || !r.done()) return std::nullopt;
  return msg;
}

/// Exact size of `msg`'s codec encoding, computed without building the
/// bytes.  Envelopes are metered with this so the inline transport's
/// zero-copy fast path charges the same wire bytes the byte-faithful
/// SimTransport pays for real (it asserts the two agree).
[[nodiscard]] inline std::size_t wire_size(const Message& msg) {
  std::size_t n = codec::varint_size(msg.index());
  std::visit(
      [&n](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        const auto bytes_size = [](const std::string& s) {
          return codec::varint_size(s.size()) + s.size();
        };
        if constexpr (std::is_same_v<T, ReplicateMsg>) {
          n += bytes_size(m.key) + bytes_size(m.state);
        } else if constexpr (std::is_same_v<T, HintMsg> ||
                             std::is_same_v<T, HintDeliverMsg>) {
          n += codec::varint_size(m.owner) + bytes_size(m.key) +
               bytes_size(m.state);
        } else if constexpr (std::is_same_v<T, HintAckMsg>) {
          n += codec::varint_size(m.owner) + bytes_size(m.key) +
               codec::varint_size(m.digest);
        } else if constexpr (std::is_same_v<T, SyncReqMsg>) {
          n += codec::varint_size(m.nonce);
        } else if constexpr (std::is_same_v<T, SyncRespMsg>) {
          n += codec::varint_size(m.nonce) + codec::varint_size(m.rounds) +
               codec::varint_size(m.nodes_exchanged) +
               codec::varint_size(m.keys_compared) +
               codec::varint_size(m.keys_shipped) +
               codec::varint_size(m.wire_bytes);
        } else if constexpr (std::is_same_v<T, CoordReadReqMsg>) {
          n += codec::varint_size(m.req) + bytes_size(m.key);
        } else if constexpr (std::is_same_v<T, CoordReadRespMsg>) {
          n += codec::varint_size(m.req) + codec::varint_size(m.found ? 1 : 0) +
               bytes_size(m.state);
        } else if constexpr (std::is_same_v<T, CoordWriteReqMsg>) {
          n += codec::varint_size(m.req) + bytes_size(m.key) +
               bytes_size(m.state);
        } else {
          static_assert(std::is_same_v<T, CoordWriteRespMsg>);
          n += codec::varint_size(m.req);
        }
      },
      msg);
  return n;
}

/// Encodes `msg` to the byte string a Transport carries.
[[nodiscard]] inline std::string encode_to_bytes(const Message& msg) {
  codec::Writer w;
  encode(w, msg);
  return std::string(reinterpret_cast<const char*>(w.buffer().data()), w.size());
}

/// Decodes a payload the process framed itself (tests, loopback
/// round-trips): same strict parse, but failure asserts — on bytes of
/// local provenance a malformed frame is a bug, not an input error.
/// Bytes of foreign provenance go through decode_or_reject instead.
[[nodiscard]] inline Message decode_from_bytes(const std::string& bytes) {
  std::optional<Message> msg = try_decode_from_bytes(bytes);
  DVV_ASSERT_MSG(msg.has_value(), "net: malformed self-framed message");
  return *std::move(msg);
}

/// The untrusted-boundary entry point: strict decode plus rejection
/// accounting.  On failure bumps net.decode_reject and the per-type
/// taxonomy counter (net.decode_reject.<type> when a plausible type
/// tag was readable, net.decode_reject.unknown otherwise) and returns
/// nullopt — the caller drops the frame; no malformed input can abort.
[[nodiscard]] inline std::optional<Message> decode_or_reject(
    std::string_view bytes) {
  std::size_t tag = SIZE_MAX;
  std::optional<Message> msg = try_decode_from_bytes(bytes, &tag);
  if (!msg.has_value()) {
    obs::NetMetrics& m = obs::net_metrics();
    m.decode_reject.inc();
    if (tag < obs::kMessageTypes) {
      m.decode_reject_by_type[tag].inc();
    } else {
      m.decode_reject_unknown.inc();
    }
  }
  return msg;
}

}  // namespace dvv::net
