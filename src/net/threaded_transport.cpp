// dvv/net/threaded_transport.cpp
//
// See the header for the sharding, quiescence and drive-mode contracts.
// Threading rules enforced here:
//
//   * a frame is serialized on the SENDING thread into a plain owned
//     string — pooled buffers are thread_local and must never cross;
//   * per-shard stats blocks are written either under the shard's inbox
//     mutex (send-side fields) or by the owning shard thread
//     (delivery-side fields) — distinct fields, no overlap;
//   * the in-flight count is incremented before enqueue and decremented
//     (release) after the sink returns, so a zero read (acquire) means
//     every delivery effect is visible to the quiescent observer.
#include "net/threaded_transport.hpp"

#include <optional>
#include <utility>
#include <variant>

#include "codec/wire.hpp"
#include "util/assert.hpp"

namespace dvv::net {

ThreadedTransport::ThreadedTransport(ThreadedTransportConfig config) {
  DVV_ASSERT_MSG(config.shards >= 1, "net: threaded transport needs >= 1 shard");
  shards_.reserve(config.shards);
  for (std::size_t i = 0; i < config.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ThreadedTransport::~ThreadedTransport() { stop(); }

bool ThreadedTransport::on_shard_thread() const noexcept {
  const std::thread::id self = std::this_thread::get_id();
  for (const auto& shard : shards_) {
    if (shard->worker.joinable() && shard->worker.get_id() == self) return true;
  }
  return false;
}

void ThreadedTransport::start() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_ || hosted_) return;
  started_ = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

void ThreadedTransport::stop() {
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    if (!started_) return;
    started_ = false;
  }
  for (const auto& shard : shards_) {
    {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      shard->stopping = true;
    }
    shard->ready.notify_all();
  }
  for (const auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
    shard->stopping = false;
    shard->worker = std::thread();
  }
}

void ThreadedTransport::set_wake_hook(std::size_t shard,
                                      std::function<void()> hook) {
  DVV_ASSERT(shard < shards_.size());
  {
    const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
    DVV_ASSERT_MSG(!started_,
                   "net: install wake hooks before the first send/post");
    hosted_ = true;
  }
  const std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
  shards_[shard]->wake_hook = std::move(hook);
}

void ThreadedTransport::enqueue(std::size_t index, Entry entry) {
  Shard& shard = *shards_[index];
  // Count BEFORE enqueue: a cascade's child entry is in the count
  // before the parent's decrement, so in-flight can only read 0 when
  // the whole causal tree has run.
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  bool need_start = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.inbox.push_back(std::move(entry));
    if (shard.wake_hook) {
      shard.wake_hook();  // hosted: must be async-safe (eventfd write)
    } else {
      need_start = true;
    }
  }
  shard.ready.notify_one();
  if (need_start) start();  // lazy self-hosted spin-up (idempotent)
}

void ThreadedTransport::send(NodeId from, NodeId to,
                             const std::shared_ptr<const Message>& msg,
                             const std::shared_ptr<const void>& decoded,
                             std::size_t size_hint) {
  // Byte-faithful like SimTransport: the frame crosses as its real
  // codec encoding and the sender's decoded alias never crosses a
  // thread boundary.
  (void)decoded;
  Entry entry;
  entry.from = from;
  entry.to = to;
  // encode_into targets a thread_local scratch Writer, so concurrent
  // senders each use their own; the result is a plain owned string the
  // receiving shard can free without touching our pools.
  encode_into(*msg, entry.bytes);
  DVV_ASSERT_MSG(size_hint == 0 || entry.bytes.size() == size_hint,
                 "net: sender's size hint disagrees with the real encoding");
  const std::size_t index = shard_of(to);
  Shard& shard = *shards_[index];
  if (met_.msgs_sent.armed()) {
    met_.msgs_sent.inc();
    met_.sent_by_type[msg->index()].inc();
    met_.wire_bytes_sent.inc(entry.bytes.size());
  }
  if (!link_up(from, to)) {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.local.sent;
    shard.local.wire_bytes += entry.bytes.size();
    ++shard.local.partition_dropped;
    met_.partition_dropped.inc();
    return;
  }
  entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    ++shard.local.sent;
    shard.local.wire_bytes += entry.bytes.size();
  }
  enqueue(index, std::move(entry));
}

void ThreadedTransport::inject_raw(NodeId from, NodeId to, std::string bytes) {
  Entry entry;
  entry.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  entry.from = from;
  entry.to = to;
  entry.bytes = std::move(bytes);
  enqueue(shard_of(to), std::move(entry));
}

void ThreadedTransport::post(std::size_t shard, std::function<void()> task) {
  DVV_ASSERT(shard < shards_.size());
  Entry entry;
  entry.task = std::move(task);
  enqueue(shard, std::move(entry));
}

void ThreadedTransport::run_on(std::size_t shard,
                               const std::function<void()>& task) {
  struct Done {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
  } done;
  post(shard, [&task, &done] {
    task();
    const std::lock_guard<std::mutex> lock(done.mutex);
    done.done = true;
    done.cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done.mutex);
  done.cv.wait(lock, [&done] { return done.done; });
}

void ThreadedTransport::process(Shard& shard, Entry& entry) {
  if (entry.task) {
    entry.task();
    return;
  }
  // Strict delivery decode over the received bytes — exactly the
  // SimTransport boundary: frames this transport encoded always parse;
  // injected hostile bytes are counted and dropped.
  std::optional<MessageView> view = decode_view_or_reject(entry.bytes);
  if (!view.has_value()) {
    ++shard.local.decode_rejected;
    return;
  }
  DVV_ASSERT_MSG(sink_ != nullptr, "net: transport has no delivery sink");
  if (std::holds_alternative<BatchView>(*view)) {
    // An injected composite frame (this transport never coalesces):
    // deliver as a batch envelope, metered per sub-message.
    shard.batch_views.clear();
    const bool ok = try_decode_batch_views(entry.bytes, shard.batch_views);
    DVV_ASSERT_MSG(ok, "net: accepted batch frame failed sub-view decode");
    const BatchView& batch = std::get<BatchView>(*view);
    codec::StrictReader frames(batch.frames.data(), batch.frames.size());
    for (const MessageView& sub : shard.batch_views) {
      std::string_view frame;
      const bool framed = frames.bytes_view(frame);
      DVV_ASSERT(framed);
      ++shard.local.delivered;
      if (met_.msgs_delivered.armed()) {
        met_.msgs_delivered.inc();
        met_.delivered_by_type[sub.index()].inc();
        met_.wire_bytes_delivered.inc(frame.size());
      }
    }
    Envelope envelope;
    envelope.seq = entry.seq;
    envelope.from = entry.from;
    envelope.to = entry.to;
    envelope.wire_bytes = entry.bytes.size();
    envelope.batch = std::span<const MessageView>(shard.batch_views);
    sink_(envelope);
    return;
  }
  ++shard.local.delivered;
  if (met_.msgs_delivered.armed()) {
    met_.msgs_delivered.inc();
    met_.delivered_by_type[view->index()].inc();
    met_.wire_bytes_delivered.inc(entry.bytes.size());
  }
  Envelope envelope;
  envelope.seq = entry.seq;
  envelope.from = entry.from;
  envelope.to = entry.to;
  envelope.wire_bytes = entry.bytes.size();
  envelope.view = &*view;
  sink_(envelope);
}

std::size_t ThreadedTransport::pump_shard(std::size_t index) {
  DVV_ASSERT(index < shards_.size());
  Shard& shard = *shards_[index];
  std::deque<Entry> batch;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    batch.swap(shard.inbox);
  }
  std::size_t processed = 0;
  for (Entry& entry : batch) {
    process(shard, entry);
    ++processed;
    // Decrement AFTER the sink returned: everything this delivery sent
    // onward is already counted, so 0 means fully quiescent.
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const std::lock_guard<std::mutex> lock(quiesce_mutex_);
      quiesce_cv_.notify_all();
    }
  }
  return processed;
}

void ThreadedTransport::worker_loop(std::size_t index) {
  Shard& shard = *shards_[index];
  while (true) {
    std::deque<Entry> batch;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.ready.wait(lock, [&shard] {
        return shard.stopping || !shard.inbox.empty();
      });
      if (shard.stopping && shard.inbox.empty()) return;
      // Batched dequeue: one lock round per run of entries, not per
      // entry (the lock-amortization half of PR 8's batching story).
      batch.swap(shard.inbox);
    }
    for (Entry& entry : batch) {
      process(shard, entry);
      if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        const std::lock_guard<std::mutex> lock(quiesce_mutex_);
        quiesce_cv_.notify_all();
      }
    }
  }
}

void ThreadedTransport::quiesce() {
  DVV_ASSERT_MSG(!on_shard_thread(),
                 "net: quiesce from a shard thread would self-deadlock");
  std::unique_lock<std::mutex> lock(quiesce_mutex_);
  quiesce_cv_.wait(lock, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

std::size_t ThreadedTransport::pump() {
  // The workers deliver; a control-plane pump just waits for them.
  quiesce();
  return 0;
}

void ThreadedTransport::settle() {
  if (on_shard_thread()) return;  // a sink must not wait on itself
  quiesce();
}

bool ThreadedTransport::idle() const noexcept {
  return in_flight_.load(std::memory_order_acquire) == 0;
}

std::size_t ThreadedTransport::in_flight() const noexcept {
  return in_flight_.load(std::memory_order_acquire);
}

const TransportStats& ThreadedTransport::stats() const noexcept {
  // Exact at quiescence: the acquire read in idle()/quiesce() ordered
  // every shard's last stats write before this aggregation.
  aggregated_ = TransportStats{};
  for (const auto& shard : shards_) {
    const TransportStats& s = shard->local;
    aggregated_.sent += s.sent;
    aggregated_.delivered += s.delivered;
    aggregated_.dropped += s.dropped;
    aggregated_.duplicated += s.duplicated;
    aggregated_.partition_dropped += s.partition_dropped;
    aggregated_.wire_bytes += s.wire_bytes;
    aggregated_.decode_rejected += s.decode_rejected;
  }
  return aggregated_;
}

}  // namespace dvv::net
