#include "net/sim_transport.hpp"

#include <cstdlib>
#include <optional>
#include <string_view>
#include <utility>

namespace dvv::net {

void SimTransport::send(NodeId from, NodeId to,
                        std::shared_ptr<const Message> msg,
                        std::shared_ptr<const void> decoded) {
  // This transport is byte-faithful: the message crosses as its real
  // codec encoding and the sender's decoded fast-path payload is
  // dropped on the floor.
  decoded.reset();
  std::string bytes = encode_to_bytes(*msg);
  DVV_ASSERT_MSG(bytes.size() == wire_size(*msg),
                 "net: wire_size disagrees with the real encoding");
  ++stats_.sent;
  stats_.wire_bytes += bytes.size();
  obs::NetMetrics& m = obs::net_metrics();
  m.msgs_sent.inc();
  m.sent_by_type[msg->index()].inc();
  m.wire_bytes_sent.inc(bytes.size());
  // Fault decisions are drawn unconditionally and in a fixed order so
  // the consumed Rng stream depends only on the send sequence — never
  // on payload bytes or on the current partition.
  const bool dropped = rng_.chance(config_.drop_probability);
  const bool duplicated = rng_.chance(config_.duplicate_probability);
  const std::size_t window = config_.reorder_window;
  const std::uint64_t extra1 = window == 0 ? 0 : rng_.below(window + 1);
  const std::uint64_t extra2 = window == 0 ? 0 : rng_.below(window + 1);

  if (!link_up(from, to)) {
    ++stats_.partition_dropped;
    m.partition_dropped.inc();
    return;
  }
  if (dropped) {
    ++stats_.dropped;
    m.msgs_dropped.inc();
    return;
  }
  if (extra1 > 0) m.msgs_reordered.inc();  // overtakable: later sends can pass
  Queued queued{next_seq_++, from, to, std::move(bytes)};
  if (duplicated) {
    ++stats_.duplicated;
    m.msgs_duplicated.inc();
    Queued copy = queued;
    copy.seq = next_seq_++;
    queue_.emplace(std::make_pair(tick_ + 1 + extra2, copy.seq), std::move(copy));
  }
  queue_.emplace(std::make_pair(tick_ + 1 + extra1, queued.seq),
                 std::move(queued));
}

std::size_t SimTransport::pump() {
  ++tick_;
  std::size_t delivered = 0;
  // Deliver everything due at or before the new tick, in (due, seq)
  // order.  The sink may send (e.g. a hint delivery triggers an ack);
  // those go to tick_ + 1 at the earliest, so this loop terminates.
  while (!queue_.empty() && queue_.begin()->first.first <= tick_) {
    Queued queued = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    if (!link_up(queued.from, queued.to)) {
      ++stats_.partition_dropped;  // the partition cut it mid-flight
      obs::net_metrics().partition_dropped.inc();
      continue;
    }
    // Strict delivery decode: bytes this transport framed itself always
    // parse; injected hostile bytes that do not are rejected and
    // dropped here (counted, never delivered, never an abort).
    std::optional<Message> msg = decode_or_reject(queued.bytes);
    if (!msg.has_value()) {
      ++stats_.decode_rejected;
      continue;
    }
    Envelope envelope;
    envelope.seq = queued.seq;
    envelope.from = queued.from;
    envelope.to = queued.to;
    envelope.wire_bytes = queued.bytes.size();
    envelope.msg = std::make_shared<const Message>(*std::move(msg));
    deliver(envelope);
    ++delivered;
  }
  return delivered;
}

TransportKind default_transport_kind() {
  static const TransportKind kind = [] {
    const char* v = std::getenv("DVV_TRANSPORT");
    if (v != nullptr && std::string_view(v) == "chaos") return TransportKind::kSim;
    return TransportKind::kInline;
  }();
  return kind;
}

TransportConfig::TransportConfig() : kind(default_transport_kind()) {
  if (kind == TransportKind::kSim) sim = SimTransportConfig::chaos_defaults();
}

std::unique_ptr<Transport> make_transport(const TransportConfig& config) {
  switch (config.kind) {
    case TransportKind::kSim:
      return std::make_unique<SimTransport>(config.sim);
    case TransportKind::kInline:
      break;
  }
  return std::make_unique<InlineTransport>();
}

}  // namespace dvv::net
