// dvv-hot-path: the per-message send/deliver path.  dvv_lint's
// no-alloc-in-hot-path rule audits this file — encode buffers, queue
// nodes and batch scratch all come from the net pools / retained
// capacity, never the global allocator.
#include "net/sim_transport.hpp"

#include <cstdlib>
#include <optional>
#include <string_view>
#include <utility>
#include <variant>

#include "net/threaded_transport.hpp"

namespace dvv::net {

namespace {

/// LEB128 append to a string — how the batch assembler writes the
/// frame header and sub-frame length prefixes into retained capacity.
void append_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

}  // namespace

void SimTransport::send(NodeId from, NodeId to,
                        const std::shared_ptr<const Message>& msg,
                        const std::shared_ptr<const void>& decoded,
                        std::size_t size_hint) {
  // This transport is byte-faithful: the message crosses as its real
  // codec encoding and the sender's decoded fast-path payload is
  // dropped on the floor (never retained, so the by-ref parameter costs
  // this transport no refcount traffic at all).
  (void)decoded;
  std::shared_ptr<std::string> bytes = pooled_buffer();
  encode_into(*msg, *bytes);
  DVV_ASSERT_MSG(size_hint == 0 || bytes->size() == size_hint,
                 "net: sender's size hint disagrees with the real encoding");
  ++stats_.sent;
  stats_.wire_bytes += bytes->size();
  obs::NetMetrics& m = met_;
  if (m.msgs_sent.armed()) {
    m.msgs_sent.inc();
    m.sent_by_type[msg->index()].inc();
    m.wire_bytes_sent.inc(bytes->size());
  }
  // Fault decisions are drawn unconditionally and in a fixed order so
  // the consumed Rng stream depends only on the send sequence — never
  // on payload bytes or on the current partition.
  const bool dropped = rng_.chance(config_.drop_probability);
  const bool duplicated = rng_.chance(config_.duplicate_probability);
  const std::size_t window = config_.reorder_window;
  const std::uint64_t extra1 = window == 0 ? 0 : rng_.below(window + 1);
  const std::uint64_t extra2 = window == 0 ? 0 : rng_.below(window + 1);

  if (!link_up(from, to)) {
    ++stats_.partition_dropped;
    m.partition_dropped.inc();
    return;
  }
  if (dropped) {
    ++stats_.dropped;
    m.msgs_dropped.inc();
    return;
  }
  if (extra1 > 0) m.msgs_reordered.inc();  // overtakable: later sends can pass
  const std::uint64_t seq = next_seq_++;
  if (duplicated) {
    ++stats_.duplicated;
    m.msgs_duplicated.inc();
    // The copy SHARES the original's encoded buffer — duplication costs
    // a queue node, not a re-encode or a byte copy.
    const std::uint64_t copy_seq = next_seq_++;
    queue_.emplace(std::make_pair(tick_ + 1 + extra2, copy_seq),
                   Queued{copy_seq, from, to, bytes});
  }
  queue_.emplace(std::make_pair(tick_ + 1 + extra1, seq),
                 Queued{seq, from, to, std::move(bytes)});
}

std::size_t SimTransport::deliver_one(const Queued& queued) {
  // Strict delivery decode, into views over the queued buffer: bytes
  // this transport framed itself always parse; injected hostile bytes
  // that do not are rejected and dropped here (counted, never
  // delivered, never an abort).
  std::optional<MessageView> view = decode_view_or_reject(*queued.bytes);
  if (!view.has_value()) {
    ++stats_.decode_rejected;
    return 0;
  }
  obs::NetMetrics& m = met_;
  if (std::holds_alternative<BatchView>(*view)) {
    // A frame that IS a BatchMsg (an injected composite): deliver it as
    // a batch envelope, metered per sub-message.
    batch_views_.clear();
    const bool ok = try_decode_batch_views(*queued.bytes, batch_views_);
    DVV_ASSERT_MSG(ok, "net: accepted batch frame failed sub-view decode");
    const BatchView& batch = std::get<BatchView>(*view);
    codec::StrictReader frames(batch.frames.data(), batch.frames.size());
    for (const MessageView& sub : batch_views_) {
      std::string_view frame;
      const bool framed = frames.bytes_view(frame);
      DVV_ASSERT(framed);
      ++stats_.delivered;
      if (m.msgs_delivered.armed()) {
        m.msgs_delivered.inc();
        m.delivered_by_type[sub.index()].inc();
        m.wire_bytes_delivered.inc(frame.size());
      }
    }
    sink_batch(queued.seq, queued.from, queued.to, queued.bytes->size());
    return batch_views_.size();
  }
  Envelope envelope;
  envelope.seq = queued.seq;
  envelope.from = queued.from;
  envelope.to = queued.to;
  envelope.wire_bytes = queued.bytes->size();
  envelope.view = &*view;
  deliver(envelope);
  return 1;
}

std::size_t SimTransport::deliver_run(std::size_t begin, std::size_t end) {
  // Assemble the run into a REAL BatchMsg wire frame and strict-decode
  // it whole — the batch path is the wire format, not a shortcut past
  // it.  Sub-frame views alias batch_bytes_, valid through the sink
  // call below.
  batch_bytes_.clear();
  append_varint(batch_bytes_, std::variant_size_v<Message> - 1);  // tag
  append_varint(batch_bytes_, end - begin);                       // count
  for (std::size_t k = begin; k < end; ++k) {
    append_varint(batch_bytes_, due_[k].bytes->size());
    batch_bytes_ += *due_[k].bytes;
  }
  batch_views_.clear();
  if (!try_decode_batch_views(batch_bytes_, batch_views_)) {
    // Hostile injected bytes rode the run: fall back to per-frame
    // delivery — each frame decodes or is rejected on its own, exactly
    // as an unbatched pump would have done.
    std::size_t n = 0;
    for (std::size_t k = begin; k < end; ++k) n += deliver_one(due_[k]);
    return n;
  }
  // Metering is per SUB-message, against each sub-frame's own wire
  // bytes — the counters a batched run produces are identical to the
  // unbatched twin's.
  obs::NetMetrics& m = met_;
  for (std::size_t k = begin; k < end; ++k) {
    ++stats_.delivered;
    if (m.msgs_delivered.armed()) {
      m.msgs_delivered.inc();
      m.delivered_by_type[batch_views_[k - begin].index()].inc();
      m.wire_bytes_delivered.inc(due_[k].bytes->size());
    }
  }
  sink_batch(due_[begin].seq, due_[begin].from, due_[begin].to,
             batch_bytes_.size());
  return end - begin;
}

void SimTransport::sink_batch(std::uint64_t seq, NodeId from, NodeId to,
                              std::size_t frame_bytes) {
  DVV_ASSERT_MSG(sink_ != nullptr, "net: transport has no delivery sink");
  Envelope envelope;
  envelope.seq = seq;  // the run's first sub-message
  envelope.from = from;
  envelope.to = to;
  envelope.wire_bytes = frame_bytes;
  envelope.batch = std::span<const MessageView>(batch_views_);
  sink_(envelope);
}

std::size_t SimTransport::pump() {
  ++tick_;
  // Phase 1: collect everything due at or before the new tick, in
  // (due, seq) order, applying the partition cut per frame exactly as
  // unbatched delivery would.  Sends triggered by the sinks below go to
  // tick_ + 1 at the earliest, so they cannot join this tick's set.
  due_.clear();
  while (!queue_.empty() && queue_.begin()->first.first <= tick_) {
    Queued queued = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    if (!link_up(queued.from, queued.to)) {
      ++stats_.partition_dropped;  // the partition cut it mid-flight
      met_.partition_dropped.inc();
      continue;
    }
    due_.push_back(std::move(queued));
  }
  // Phase 2: deliver in order, coalescing each maximal run of
  // consecutive same-link frames into one batch envelope.
  std::size_t delivered = 0;
  std::size_t i = 0;
  while (i < due_.size()) {
    std::size_t j = i + 1;
    if (config_.batch_delivery) {
      while (j < due_.size() && due_[j].from == due_[i].from &&
             due_[j].to == due_[i].to) {
        ++j;
      }
    }
    delivered += j - i == 1 ? deliver_one(due_[i]) : deliver_run(i, j);
    i = j;
  }
  due_.clear();  // release the buffers back to the pool promptly
  return delivered;
}

TransportKind default_transport_kind() {
  static const TransportKind kind = [] {
    const char* v = std::getenv("DVV_TRANSPORT");
    if (v != nullptr && std::string_view(v) == "chaos") return TransportKind::kSim;
    return TransportKind::kInline;
  }();
  return kind;
}

TransportConfig::TransportConfig() : kind(default_transport_kind()) {
  if (kind == TransportKind::kSim) sim = SimTransportConfig::chaos_defaults();
}

std::unique_ptr<Transport> make_transport(const TransportConfig& config) {
  switch (config.kind) {
    case TransportKind::kSim:
      return std::make_unique<SimTransport>(config.sim);
    case TransportKind::kThreaded:
      return std::make_unique<ThreadedTransport>(config.threaded);
    case TransportKind::kInline:
      break;
  }
  return std::make_unique<InlineTransport>();
}

}  // namespace dvv::net
