// dvv/net/sim_transport.hpp
//
// Deterministic faulty network: delayed-delivery queues with seeded
// per-message drop, duplication and reorder, plus the named partitions
// every Transport supports.
//
// Time is a tick counter advanced by pump(); a message sent at tick T
// becomes due at T + 1 + extra, with extra drawn uniformly from
// [0, reorder_window].  pump() advances one tick and delivers every due
// message in (due, seq) order — so a message with a larger extra delay
// is overtaken by later sends, which is exactly a reordered network.
// Duplication enqueues a second, independently delayed copy sharing the
// SAME immutable encoded buffer (one encode per send, however many
// copies fly); drop discards at send time (the bytes still count as
// sent: the sender paid for them).
//
// Batched delivery (config.batch_delivery, on by default): each tick's
// due messages are collected in (due, seq) order, and every maximal run
// of CONSECUTIVE same-(from, to) frames is assembled into one real
// BatchMsg wire frame, strict-decoded whole, and delivered as a single
// envelope carrying the ordered sub-message views.  This is
// representation-only batching — the sub-messages are applied in
// exactly the order, with exactly the decode outcomes and counter
// increments, an unbatched run would produce (transport_batch_test
// proves byte-identity across all six mechanisms under chaos).  If a
// hostile injected frame rides a run and the assembled batch fails its
// strict decode, delivery falls back to per-frame decode-or-reject —
// again identical to unbatched.
//
// Partition semantics: a cut link loses messages at BOTH ends of their
// flight — send() refuses them (connection refused) and pump() discards
// queued ones whose link is cut at delivery time (in-flight loss when
// the partition forms) — so heal() never resurrects a message that was
// in flight across the cut.
//
// Fault decisions are drawn from the config's seeded Rng at send time,
// in send order, independent of payload bytes.  Two transports with the
// same config seeing the same *sequence* of sends therefore make
// identical decisions even when the payload encodings differ — the
// property the lockstep oracle depends on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "util/pool.hpp"
#include "util/rng.hpp"

namespace dvv::net {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(SimTransportConfig config)
      : config_(config),
        rng_(config.seed),
        queue_(std::less<QueueKey>(),
               QueueAllocator(&net_pools().arena)) {}

  [[nodiscard]] const char* name() const noexcept override { return "sim"; }

  /// Serializes the message to real codec bytes (asserting they match
  /// the metered wire size) and drops any sender-attached decoded
  /// payload: whatever survives this transport's faults is decoded from
  /// the wire at delivery, like on a real network.
  void send(NodeId from, NodeId to, const std::shared_ptr<const Message>& msg,
            const std::shared_ptr<const void>& decoded = nullptr,
            std::size_t size_hint = 0) override;
  using Transport::send;

  /// Advances one tick and delivers every due message in (due, seq)
  /// order — coalescing same-link runs into batch envelopes when
  /// config().batch_delivery is set.  Messages whose link is cut by the
  /// active partition are discarded here — in-flight loss.  Returns the
  /// number of messages delivered (sub-messages, for batch envelopes).
  std::size_t pump() override;

  void settle() override {
    if (config_.auto_settle) drain();
  }

  [[nodiscard]] bool idle() const noexcept override { return queue_.empty(); }
  [[nodiscard]] std::size_t in_flight() const noexcept override {
    return queue_.size();
  }

  [[nodiscard]] std::uint64_t tick() const noexcept { return tick_; }

  /// Puts RAW bytes on the wire as if a (possibly hostile) peer sent
  /// them: no fault draws, no serialization — the bytes go on the queue
  /// verbatim, due at the next tick, and face the same strict delivery
  /// decode every queued frame faces.  Malformed bytes are rejected and
  /// dropped at pump() (net.decode_reject / stats().decode_rejected),
  /// never delivered and never an abort.  This is the adversarial-input
  /// hook the decode-boundary tests and fuzz harnesses drive; the
  /// seeded fault stream is untouched, so injecting frames never
  /// perturbs a chaos twin's delivery schedule.
  void inject_raw(NodeId from, NodeId to, std::string bytes) {
    ++stats_.sent;
    stats_.wire_bytes += bytes.size();
    obs::NetMetrics& m = obs::net_metrics();
    m.msgs_sent.inc();
    m.wire_bytes_sent.inc(bytes.size());
    std::shared_ptr<std::string> buf = pooled_buffer();
    *buf = std::move(bytes);
    queue_.emplace(std::make_pair(tick_ + 1, next_seq_),
                   Queued{next_seq_, from, to, std::move(buf)});
    ++next_seq_;
  }

  /// Rewrites the fault rates in place (the queue and partition state
  /// are untouched).  Chaos tests quiesce with this — zero rates, heal,
  /// drain — before asserting about fixed points.
  void set_fault_rates(double drop_probability, double duplicate_probability,
                       std::size_t reorder_window) {
    config_.drop_probability = drop_probability;
    config_.duplicate_probability = duplicate_probability;
    config_.reorder_window = reorder_window;
  }

  [[nodiscard]] const SimTransportConfig& config() const noexcept {
    return config_;
  }

 private:
  /// A message on the wire: immutable encoded bytes, shared between a
  /// message and its fault-injected duplicates (one encode per send).
  struct Queued {
    std::uint64_t seq = 0;
    NodeId from = 0;
    NodeId to = 0;
    std::shared_ptr<const std::string> bytes;
  };

  /// Delivers one queued frame as a single envelope (expanding a
  /// standalone BatchMsg frame into its sub-views).  Returns messages
  /// delivered (0 on decode rejection).
  std::size_t deliver_one(const Queued& queued);

  /// Coalesces due_[begin, end) — a same-link run — into one BatchMsg
  /// envelope; falls back to per-frame delivery if the assembled frame
  /// fails its strict decode (hostile injected bytes in the run).
  std::size_t deliver_run(std::size_t begin, std::size_t end);

  /// Builds and sinks the batch envelope over batch_views_; metering
  /// has already been done per sub-message by the caller.
  void sink_batch(std::uint64_t seq, NodeId from, NodeId to,
                  std::size_t frame_bytes);

  using QueueKey = std::pair<std::uint64_t, std::uint64_t>;
  using QueueEntry = std::pair<const QueueKey, Queued>;
  using QueueAllocator = util::ArenaAllocator<QueueEntry>;

  SimTransportConfig config_;
  util::Rng rng_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_seq_ = 0;
  /// (due tick, seq) -> message; seq makes ties FIFO and keys unique.
  /// Nodes come from the net arena — steady state allocates none.
  std::map<QueueKey, Queued, std::less<QueueKey>, QueueAllocator> queue_;
  /// pump() scratch (capacity retained across ticks): the tick's due
  /// frames, the assembled batch frame, and its decoded sub-views.
  std::vector<Queued> due_;
  std::string batch_bytes_;
  std::vector<MessageView> batch_views_;
};

}  // namespace dvv::net
