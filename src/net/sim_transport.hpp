// dvv/net/sim_transport.hpp
//
// Deterministic faulty network: delayed-delivery queues with seeded
// per-message drop, duplication and reorder, plus the named partitions
// every Transport supports.
//
// Time is a tick counter advanced by pump(); a message sent at tick T
// becomes due at T + 1 + extra, with extra drawn uniformly from
// [0, reorder_window].  pump() advances one tick and delivers every due
// message in (due, seq) order — so a message with a larger extra delay
// is overtaken by later sends, which is exactly a reordered network.
// Duplication enqueues a second, independently delayed copy of the same
// envelope; drop discards at send time (the bytes still count as sent:
// the sender paid for them).
//
// Partition semantics: a cut link loses messages at BOTH ends of their
// flight — send() refuses them (connection refused) and pump() discards
// queued ones whose link is cut at delivery time (in-flight loss when
// the partition forms) — so heal() never resurrects a message that was
// in flight across the cut.
//
// Fault decisions are drawn from the config's seeded Rng at send time,
// in send order, independent of payload bytes.  Two transports with the
// same config seeing the same *sequence* of sends therefore make
// identical decisions even when the payload encodings differ — the
// property the lockstep oracle depends on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>

#include "net/transport.hpp"
#include "util/rng.hpp"

namespace dvv::net {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(SimTransportConfig config)
      : config_(config), rng_(config.seed) {}

  [[nodiscard]] const char* name() const noexcept override { return "sim"; }

  /// Serializes the message to real codec bytes (asserting they match
  /// the metered wire size) and drops any sender-attached decoded
  /// payload: whatever survives this transport's faults is decoded from
  /// the wire at delivery, like on a real network.
  void send(NodeId from, NodeId to, std::shared_ptr<const Message> msg,
            std::shared_ptr<const void> decoded = nullptr) override;
  using Transport::send;

  /// Advances one tick and delivers every due message in (due, seq)
  /// order.  Messages whose link is cut by the active partition are
  /// discarded here — in-flight loss.
  std::size_t pump() override;

  void settle() override {
    if (config_.auto_settle) drain();
  }

  [[nodiscard]] bool idle() const noexcept override { return queue_.empty(); }
  [[nodiscard]] std::size_t in_flight() const noexcept override {
    return queue_.size();
  }

  [[nodiscard]] std::uint64_t tick() const noexcept { return tick_; }

  /// Puts RAW bytes on the wire as if a (possibly hostile) peer sent
  /// them: no fault draws, no serialization — the bytes go on the queue
  /// verbatim, due at the next tick, and face the same strict delivery
  /// decode every queued frame faces.  Malformed bytes are rejected and
  /// dropped at pump() (net.decode_reject / stats().decode_rejected),
  /// never delivered and never an abort.  This is the adversarial-input
  /// hook the decode-boundary tests and fuzz harnesses drive; the
  /// seeded fault stream is untouched, so injecting frames never
  /// perturbs a chaos twin's delivery schedule.
  void inject_raw(NodeId from, NodeId to, std::string bytes) {
    ++stats_.sent;
    stats_.wire_bytes += bytes.size();
    obs::NetMetrics& m = obs::net_metrics();
    m.msgs_sent.inc();
    m.wire_bytes_sent.inc(bytes.size());
    queue_.emplace(std::make_pair(tick_ + 1, next_seq_),
                   Queued{next_seq_, from, to, std::move(bytes)});
    ++next_seq_;
  }

  /// Rewrites the fault rates in place (the queue and partition state
  /// are untouched).  Chaos tests quiesce with this — zero rates, heal,
  /// drain — before asserting about fixed points.
  void set_fault_rates(double drop_probability, double duplicate_probability,
                       std::size_t reorder_window) {
    config_.drop_probability = drop_probability;
    config_.duplicate_probability = duplicate_probability;
    config_.reorder_window = reorder_window;
  }

  [[nodiscard]] const SimTransportConfig& config() const noexcept {
    return config_;
  }

 private:
  /// A message on the wire: owned encoded bytes only.
  struct Queued {
    std::uint64_t seq = 0;
    NodeId from = 0;
    NodeId to = 0;
    std::string bytes;
  };

  SimTransportConfig config_;
  util::Rng rng_;
  std::uint64_t tick_ = 0;
  std::uint64_t next_seq_ = 0;
  /// (due tick, seq) -> message; seq makes ties FIFO and keys unique.
  std::map<std::pair<std::uint64_t, std::uint64_t>, Queued> queue_;
};

}  // namespace dvv::net
