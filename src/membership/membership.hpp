// dvv/membership/membership.hpp
//
// Elastic ring membership: node join, graceful leave and crash-removal
// as first-class, versioned cluster transitions (ROADMAP item 3).
//
// The model
// ---------
// A MembershipTable holds a totally ordered sequence of RingEpochs.
// Every membership change — join, leave, remove — MINTS a new epoch
// carrying a fresh Ring snapshot over the new member list (the
// vnode→owner map; see kv/ring.hpp for why a member's vnode points are
// stable across epochs, which is what makes the movement minimal).
// Epochs are immutable once minted: routing questions are answered
// against a snapshot, never against mutating state, and an epoch number
// on the wire (EpochAnnounceMsg) is enough for a peer to detect that
// its view is stale.
//
// Rebalancing
// -----------
// Minting an epoch does NOT flip routing.  The RebalanceEngine tracks,
// per (partition, new owner), a transfer task through
//
//     kPending -> kTransferring -> kOwned
//
// A task reaches kOwned only after the new owner's Merkle tree for the
// partition has been walked against EVERY other member (the old owners
// among them) — bytes proportional to divergence, digests only when
// already converged — so flipping the partition's routing can never
// strand data on a replica the steady-state AAE no longer repairs
// (repair_key only folds between CURRENT preference members).  Until
// the flip, writes dual-apply: the old owners keep serving while the
// new owner catches up.  The cluster (kv/cluster.hpp) drives the walks;
// this engine owns the bookkeeping: which sources remain per task, when
// a task completes, and the transfer wire accounting that must stay
// separate from steady-state aae.* metering.
//
// A membership change arriving mid-rebalance SUPERSEDES the plan: the
// engine is re-planned against the newest epoch and flip progress is
// discarded.  Nothing is ever deleted from a replica, so a discarded
// plan loses no data — only the routing flip is deferred.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "kv/ring.hpp"
#include "kv/types.hpp"

namespace dvv::membership {

/// One immutable membership version: the epoch number and the ring
/// (vnode→owner map) routing decisions are answered against.
struct RingEpoch {
  std::uint64_t epoch = 0;
  kv::Ring ring;

  RingEpoch(std::uint64_t e, kv::Ring r) : epoch(e), ring(std::move(r)) {}
};

/// The versioned member list.  Starts at epoch 0 with the seed members;
/// every change appends a new epoch.  The table never forgets an epoch:
/// stale-epoch forwarding and the tests want to name old versions.
class MembershipTable {
 public:
  MembershipTable(std::vector<kv::ReplicaId> seed_members,
                  std::size_t replication, std::size_t vnodes);

  [[nodiscard]] const RingEpoch& current() const noexcept {
    return epochs_.back();
  }
  [[nodiscard]] std::uint64_t epoch() const noexcept {
    return current().epoch;
  }
  [[nodiscard]] const std::vector<kv::ReplicaId>& members() const noexcept {
    return current().ring.members();
  }
  [[nodiscard]] bool is_member(kv::ReplicaId r) const noexcept {
    return current().ring.is_member(r);
  }
  [[nodiscard]] std::size_t replication() const noexcept { return replication_; }

  /// Epoch `e` (asserts it exists — epochs are dense from 0).
  [[nodiscard]] const RingEpoch& at(std::uint64_t e) const;

  /// True when `node` was a member of SOME past epoch but is not one
  /// now — a joining id with history must pass through the clock
  /// incarnation bump so its pre-departure dots are never reused.
  [[nodiscard]] bool was_member(kv::ReplicaId node) const noexcept {
    return ever_members_.contains(node) && !is_member(node);
  }

  /// Mints the next epoch with `node` added.  Asserts non-membership.
  const RingEpoch& join(kv::ReplicaId node);

  /// Mints the next epoch with `node` removed (graceful leave and
  /// crash-removal share the placement math; the cluster layers the
  /// different data-safety story on top).  Asserts membership and that
  /// at least `replication` members remain.
  const RingEpoch& leave(kv::ReplicaId node);

 private:
  const RingEpoch& mint(std::vector<kv::ReplicaId> members);

  std::size_t replication_;
  std::size_t vnodes_;
  std::vector<RingEpoch> epochs_;
  std::set<kv::ReplicaId> ever_members_;
};

/// Transfer lifecycle of one (partition, new owner) claim.
enum class TransferState : std::uint8_t {
  kPending,       ///< planned, no walk attempted yet
  kTransferring,  ///< some sources walked, some still owed
  kOwned,         ///< walked against every source; routing may flip
};

/// Wire/work accounting for one transfer task (and, summed, for a whole
/// rebalance).  Kept apart from sync::SyncStats on purpose: transfer
/// traffic must not pollute the steady-state aae.* series.
struct TransferStats {
  std::uint64_t rounds = 0;          ///< tree-walk rounds
  std::uint64_t nodes_exchanged = 0; ///< Merkle nodes crossed
  std::uint64_t keys_shipped = 0;    ///< states merged into the new owner
  std::uint64_t wire_bytes = 0;      ///< digests + shipped states

  void merge(const TransferStats& o) noexcept {
    rounds += o.rounds;
    nodes_exchanged += o.nodes_exchanged;
    keys_shipped += o.keys_shipped;
    wire_bytes += o.wire_bytes;
  }
};

/// One claimed partition's transfer task.
struct PartitionTransfer {
  std::uint64_t partition = 0;
  kv::ReplicaId owner = 0;
  TransferState state = TransferState::kPending;
  std::set<kv::ReplicaId> pending_sources;  ///< members still to walk
  TransferStats stats;
};

/// Aggregate rebalance progress, exposed through the kv::Store facade.
struct RebalanceStats {
  std::uint64_t epoch = 0;  ///< target epoch (0 = never rebalanced)
  std::uint64_t transfers_planned = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t partitions_flipped = 0;
  TransferStats totals;
  bool rebalancing = false;
};

/// Bookkeeping for one epoch's rebalance.  The cluster performs the
/// actual Merkle walks and reports back; the engine decides when a
/// partition may flip and when the whole plan is done.
class RebalanceEngine {
 public:
  /// Replaces any in-progress plan (supersede semantics) with transfer
  /// tasks toward `target_epoch`.  Each task lists the sources the new
  /// owner must be walked against before its partition flips.
  void plan(std::uint64_t target_epoch, std::vector<PartitionTransfer> tasks);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint64_t target_epoch() const noexcept { return epoch_; }

  /// (partition, owner, source) triples still owed a walk.
  struct Work {
    std::uint64_t partition;
    kv::ReplicaId owner;
    kv::ReplicaId source;
  };
  [[nodiscard]] std::vector<Work> pending_work() const;

  /// Records one completed walk.  Returns true when this walk completed
  /// its task (state reached kOwned).
  bool note_walked(std::uint64_t partition, kv::ReplicaId owner,
                   kv::ReplicaId source, const TransferStats& cost);

  /// Partitions whose every task reached kOwned since the last call —
  /// the cluster flips their routing (and announces TransferDone).
  [[nodiscard]] std::vector<std::uint64_t> take_flippable();

  /// True once every task is kOwned (the cluster then promotes the
  /// target ring to active and retires the plan via finish()).
  [[nodiscard]] bool complete() const noexcept;
  void finish();

  [[nodiscard]] const std::vector<PartitionTransfer>& transfers() const noexcept {
    return transfers_;
  }
  [[nodiscard]] const RebalanceStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] PartitionTransfer* find(std::uint64_t partition,
                                        kv::ReplicaId owner);

  bool active_ = false;
  std::uint64_t epoch_ = 0;
  std::vector<PartitionTransfer> transfers_;
  std::set<std::uint64_t> flippable_;       ///< ready, not yet taken
  std::set<std::uint64_t> flipped_;         ///< taken by the cluster
  RebalanceStats stats_;
};

}  // namespace dvv::membership
