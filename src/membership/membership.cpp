#include "membership/membership.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace dvv::membership {

// ---- MembershipTable -------------------------------------------------------

MembershipTable::MembershipTable(std::vector<kv::ReplicaId> seed_members,
                                 std::size_t replication, std::size_t vnodes)
    : replication_(replication), vnodes_(vnodes) {
  DVV_ASSERT_MSG(seed_members.size() >= replication,
                 "membership: seed members < replication factor");
  ever_members_.insert(seed_members.begin(), seed_members.end());
  epochs_.emplace_back(0, kv::Ring(std::move(seed_members), replication, vnodes));
}

const RingEpoch& MembershipTable::at(std::uint64_t e) const {
  DVV_ASSERT_MSG(e < epochs_.size(), "membership: unknown epoch");
  return epochs_[e];
}

const RingEpoch& MembershipTable::mint(std::vector<kv::ReplicaId> members) {
  ever_members_.insert(members.begin(), members.end());
  kv::Ring ring(std::move(members), replication_, vnodes_);
  epochs_.emplace_back(epochs_.size(), std::move(ring));
  return epochs_.back();
}

const RingEpoch& MembershipTable::join(kv::ReplicaId node) {
  DVV_ASSERT_MSG(!is_member(node), "membership: joining node already a member");
  std::vector<kv::ReplicaId> next = members();
  next.push_back(node);
  return mint(std::move(next));
}

const RingEpoch& MembershipTable::leave(kv::ReplicaId node) {
  DVV_ASSERT_MSG(is_member(node), "membership: departing node not a member");
  DVV_ASSERT_MSG(members().size() > replication_,
                 "membership: departure would drop below replication factor");
  std::vector<kv::ReplicaId> next = members();
  next.erase(std::find(next.begin(), next.end(), node));
  return mint(std::move(next));
}

// ---- RebalanceEngine -------------------------------------------------------

void RebalanceEngine::plan(std::uint64_t target_epoch,
                           std::vector<PartitionTransfer> tasks) {
  active_ = true;
  epoch_ = target_epoch;
  transfers_ = std::move(tasks);
  flippable_.clear();
  flipped_.clear();
  stats_ = RebalanceStats{};
  stats_.epoch = target_epoch;
  stats_.rebalancing = true;
  stats_.transfers_planned = transfers_.size();
  // A task planned with no sources (single-member degenerate rings) is
  // born kOwned; its partition may be flippable immediately.
  std::set<std::uint64_t> partitions;
  for (PartitionTransfer& t : transfers_) {
    partitions.insert(t.partition);
    if (t.pending_sources.empty()) {
      t.state = TransferState::kOwned;
      ++stats_.transfers_completed;
    }
  }
  for (const std::uint64_t p : partitions) {
    const bool owned = std::all_of(
        transfers_.begin(), transfers_.end(), [&](const PartitionTransfer& t) {
          return t.partition != p || t.state == TransferState::kOwned;
        });
    if (owned) flippable_.insert(p);
  }
}

std::vector<RebalanceEngine::Work> RebalanceEngine::pending_work() const {
  std::vector<Work> out;
  for (const PartitionTransfer& t : transfers_) {
    for (const kv::ReplicaId src : t.pending_sources) {
      out.push_back({t.partition, t.owner, src});
    }
  }
  return out;
}

PartitionTransfer* RebalanceEngine::find(std::uint64_t partition,
                                         kv::ReplicaId owner) {
  for (PartitionTransfer& t : transfers_) {
    if (t.partition == partition && t.owner == owner) return &t;
  }
  return nullptr;
}

bool RebalanceEngine::note_walked(std::uint64_t partition, kv::ReplicaId owner,
                                  kv::ReplicaId source,
                                  const TransferStats& cost) {
  PartitionTransfer* t = find(partition, owner);
  DVV_ASSERT_MSG(t != nullptr, "rebalance: walk reported for unplanned task");
  DVV_ASSERT_MSG(t->pending_sources.erase(source) == 1,
                 "rebalance: source walked twice (or never owed)");
  t->stats.merge(cost);
  stats_.totals.merge(cost);
  if (t->state == TransferState::kPending) {
    t->state = TransferState::kTransferring;
  }
  if (!t->pending_sources.empty()) return false;
  t->state = TransferState::kOwned;
  ++stats_.transfers_completed;
  // The partition flips only when EVERY new owner's task is done: a
  // half-synced owner set must keep routing at the old owners.
  const bool partition_owned = std::all_of(
      transfers_.begin(), transfers_.end(), [&](const PartitionTransfer& o) {
        return o.partition != partition || o.state == TransferState::kOwned;
      });
  if (partition_owned && !flipped_.contains(partition)) {
    flippable_.insert(partition);
  }
  return true;
}

std::vector<std::uint64_t> RebalanceEngine::take_flippable() {
  std::vector<std::uint64_t> out(flippable_.begin(), flippable_.end());
  flipped_.insert(flippable_.begin(), flippable_.end());
  stats_.partitions_flipped += out.size();
  flippable_.clear();
  return out;
}

bool RebalanceEngine::complete() const noexcept {
  if (!active_) return true;
  return std::all_of(transfers_.begin(), transfers_.end(),
                     [](const PartitionTransfer& t) {
                       return t.state == TransferState::kOwned;
                     });
}

void RebalanceEngine::finish() {
  active_ = false;
  stats_.rebalancing = false;
  transfers_.clear();
  flippable_.clear();
  flipped_.clear();
}

}  // namespace dvv::membership
