// dvv/workload/trace.hpp
//
// Mechanism-independent workload traces.
//
// A Trace is a fully *resolved* sequence of storage operations: every
// random choice (which client, which key, which preference-list slot
// coordinates, which replicas the write reaches immediately, whether the
// client read before writing) is already fixed.  Replaying the same
// trace against two clusters that differ only in their causality
// mechanism therefore exercises the mechanisms on the *identical*
// interleaving — the foundation of the oracle audits (E2/E8/E9): any
// difference in outcome is attributable to the clocks alone.
//
// Ranks, not replica ids: operations name preference-list *positions*
// ("slot 2 of this key's preference list"), resolved against the ring at
// replay time.  Both sides of a mirrored run use identical ring
// configuration, so ranks resolve identically — and a trace stays valid
// for any mechanism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kv/types.hpp"

namespace dvv::workload {

struct TraceOp {
  enum class Kind : std::uint8_t {
    kGet,          ///< client reads key via `rank` (refreshes its context)
    kPut,          ///< client writes key; coordinator = `rank`
    kAntiEntropy,  ///< cluster-wide anti-entropy round
    kFail,         ///< server `server` crashes (stops serving, keeps disk)
    kRecover,      ///< server `server` comes back with its old state
    kPartition,    ///< network splits into `groups` (messages crossing are lost)
    kHeal,         ///< the partition heals; every link carries again
    kTick,         ///< async replay: one transport pump + coordination tick
    kJoin,         ///< server `server` joins the ring (rebalance completes inline)
    kLeave,        ///< server `server` gracefully leaves the ring
  };

  Kind kind = Kind::kGet;
  std::size_t client = 0;  ///< client index (ClientId = client_actor(index))
  kv::Key key;
  std::size_t rank = 0;    ///< preference-list slot of the GET source / PUT coordinator
  std::vector<std::size_t> replicate_ranks;  ///< PUT: slots reached immediately
  bool blind = false;      ///< PUT: ignore any remembered context (classic overwrite)
  kv::Value value;         ///< PUT payload (unique per write: "w<seq>")
  std::size_t server = 0;  ///< kFail/kRecover/kJoin/kLeave: absolute server id
  std::vector<std::vector<std::size_t>> groups;  ///< kPartition: isolated server groups
};

struct Trace {
  std::vector<TraceOp> ops;
  /// Total client identities used: spec.clients named read-modify-write
  /// sessions plus one fresh anonymous identity per blind write (the
  /// Riak-classic "short-lived writer" population).
  std::size_t clients = 0;
  /// When set, PUTs use the sloppy quorum (Cluster::put_with_handoff)
  /// and recoveries trigger hint delivery.
  bool hinted_handoff = false;
  /// When set, kFail/kRecover are TRUE crashes: volatile state dropped,
  /// recovery replays the replica's storage backend (src/store) instead
  /// of waking up with memory intact.
  bool crash_faults = false;
  /// When set, kGet/kPut are issued as ASYNCHRONOUS coordinator
  /// requests (Cluster::begin_read_at / begin_write with the quorums
  /// below): operations stay in flight across subsequent ops, kTick
  /// events pump the transport and expire deadlines, and completions
  /// are harvested as they land — concurrent client operations on an
  /// identical, mechanism-independent schedule.
  bool async_quorum = false;
  std::size_t read_quorum = 1;
  std::size_t write_quorum = 1;
  /// Coordination ticks before an in-flight op times out (async only).
  std::size_t deadline_ticks = 16;
  std::uint64_t seed = 0;

  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
};

/// Workload shape parameters (the sweep axes of experiments E5-E9).
struct WorkloadSpec {
  std::size_t keys = 100;           ///< distinct keys
  double zipf_skew = 0.99;          ///< key popularity skew (0 = uniform)
  std::size_t clients = 32;         ///< concurrent writing clients
  std::size_t operations = 10'000;  ///< writes issued (plus their reads)
  double read_before_write = 0.9;   ///< P(write is read-modify-write)
  double replicate_probability = 1.0;  ///< P(each non-coordinator replica
                                       ///  receives the write immediately)
  bool spread_coordination = true;  ///< coordinator uniform over preference
                                    ///  list (vs always slot 0)
  std::size_t anti_entropy_every = 0;  ///< ops between AE rounds (0 = never)
  std::size_t value_bytes = 16;     ///< payload size per write

  /// Failure injection: per-operation probability that one alive server
  /// crashes / one crashed server recovers.  At most replication-1
  /// servers are ever down at once, so every key keeps at least one
  /// alive preference replica.  Servers keep their stored state across
  /// a crash (fail-stop, durable disk) — exactly the situation
  /// anti-entropy plus sound clocks must repair.
  double fail_probability = 0.0;
  double recover_probability = 0.0;
  std::size_t servers = 0;  ///< must match ClusterConfig.servers when
                            ///  failure or partition injection is enabled
  bool hinted_handoff = false;  ///< PUTs park hints for dead preference
                                ///  members; recoveries deliver them
  bool crash_faults = false;  ///< kFail drops volatile state (true crash);
                              ///  kRecover replays the storage backend

  /// Network partition injection: per-operation probability that the
  /// cluster splits into two random groups (kPartition) / that an
  /// active split heals (kHeal).  At most one partition is active at a
  /// time; an active split at trace end is healed by a final kHeal so
  /// replays can converge.  Requires spec.servers >= 2.
  double partition_probability = 0.0;
  double heal_probability = 0.0;

  /// Ring churn injection: per-operation probability that a provisioned
  /// non-member joins (kJoin) / that a member beyond the replication
  /// floor gracefully leaves (kLeave).  Requires `capacity` >= servers
  /// (slots [servers, capacity) start outside the seed ring, matching
  /// ClusterConfig/StoreConfig defaults).  Churn ops are emitted only at
  /// healthy moments — no member down, no partition active — because
  /// the replayers complete each rebalance inline, which needs every
  /// transfer source reachable.  A slot that left earlier may rejoin,
  /// exercising the clock-incarnation bump.
  double join_probability = 0.0;
  double leave_probability = 0.0;
  std::size_t capacity = 0;  ///< provisioned replica slots (0 = servers)

  /// Asynchronous quorum coordination: when set, GET/PUT trace ops are
  /// replayed as in-flight coordinator requests (R = read_quorum acks a
  /// read, W = write_quorum a write) and kTick ops — emitted before
  /// each operation with `tick_probability` — pump the transport, so
  /// client operations genuinely overlap.  Sloppy-quorum (hinted
  /// handoff) puts stay synchronous: hint parking is a coordinator-side
  /// scatter, not a client wait.
  bool async_quorum = false;
  std::size_t read_quorum = 1;
  std::size_t write_quorum = 1;
  double tick_probability = 0.6;
  std::size_t deadline_ticks = 16;

  std::uint64_t seed = 1;
};

/// Expands a spec into a resolved trace for a cluster with the given
/// replication factor.  Deterministic in (spec, replication).
[[nodiscard]] Trace generate_trace(const WorkloadSpec& spec, std::size_t replication);

}  // namespace dvv::workload
