// dvv/workload/replay.hpp
//
// Replays a resolved Trace against a Cluster<M> and collects the
// measurements the paper's evaluation reports: per-request metadata
// bytes, sibling counts, clock entries, replication traffic, and the
// final storage footprint.
//
// Replayer<M> is steppable (one TraceOp at a time) so the oracle can
// drive a subject cluster and the causal-history truth cluster in
// lockstep and audit *during* the run — causality anomalies are often
// transient (a later read-modify-write paves over the evidence), so
// end-state comparison alone under-counts them.
#pragma once

#include <cstdint>
#include <vector>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "workload/trace.hpp"

namespace dvv::workload {

struct ReplayStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t anti_entropy_rounds = 0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;

  /// Per-GET reply measurements (what the client downloads every read).
  util::Samples get_metadata_bytes;
  util::Samples get_total_bytes;
  util::Samples get_siblings;
  util::Samples get_clock_entries;

  /// Per-PUT replication traffic.
  util::Samples put_replication_bytes;

  /// Final cluster-wide footprint, filled by finish().
  std::size_t final_keys = 0;
  std::size_t final_siblings = 0;
  std::size_t final_clock_entries = 0;
  std::size_t final_metadata_bytes = 0;
  std::size_t final_total_bytes = 0;
};

template <kv::CausalityMechanism M>
class Replayer {
 public:
  Replayer(kv::Cluster<M>& cluster, const Trace& trace)
      : cluster_(&cluster),
        hinted_handoff_(trace.hinted_handoff),
        crash_faults_(trace.crash_faults) {
    sessions_.reserve(trace.clients);
    for (std::size_t c = 0; c < trace.clients; ++c) {
      sessions_.emplace_back(kv::client_actor(c), cluster);
    }
  }

  /// Resolves a preference-list slot to the first ALIVE server at or
  /// after it (wrapping).  Trace generation guarantees at most R-1
  /// simultaneous failures, so some preference member is always alive.
  [[nodiscard]] kv::ReplicaId resolve_alive(const std::vector<kv::ReplicaId>& pref,
                                            std::size_t rank) const {
    for (std::size_t i = 0; i < pref.size(); ++i) {
      const kv::ReplicaId candidate = pref[(rank + i) % pref.size()];
      if (cluster_->replica(candidate).alive()) return candidate;
    }
    DVV_ASSERT_MSG(false, "no alive replica in preference list");
    return pref[0];
  }

  /// Applies one trace operation.
  void step(const TraceOp& op) {
    const M& mech = cluster_->mechanism();
    switch (op.kind) {
      case TraceOp::Kind::kGet: {
        const auto pref = cluster_->preference_list(op.key);
        const kv::ReplicaId source = resolve_alive(pref, op.rank);
        (void)sessions_[op.client].get(op.key, source);
        ++stats_.gets;
        if (const auto* stored = cluster_->replica(source).find(op.key)) {
          stats_.get_metadata_bytes.add(
              static_cast<double>(mech.metadata_bytes(*stored)));
          stats_.get_total_bytes.add(
              static_cast<double>(mech.total_bytes(*stored)));
          stats_.get_siblings.add(static_cast<double>(mech.sibling_count(*stored)));
          stats_.get_clock_entries.add(
              static_cast<double>(mech.clock_entries(*stored)));
        } else {
          stats_.get_metadata_bytes.add(0.0);
          stats_.get_total_bytes.add(0.0);
          stats_.get_siblings.add(0.0);
          stats_.get_clock_entries.add(0.0);
        }
        break;
      }
      case TraceOp::Kind::kPut: {
        const auto pref = cluster_->preference_list(op.key);
        const kv::ReplicaId coordinator = resolve_alive(pref, op.rank);
        if (op.blind) sessions_[op.client].forget(op.key);
        typename kv::Cluster<M>::PutReceipt receipt;
        if (hinted_handoff_) {
          receipt =
              sessions_[op.client].put_with_handoff(op.key, coordinator, op.value);
        } else {
          std::vector<kv::ReplicaId> replicate_to;
          replicate_to.reserve(op.replicate_ranks.size());
          for (const std::size_t r : op.replicate_ranks) {
            replicate_to.push_back(pref.at(r));
          }
          receipt = sessions_[op.client].put_via(op.key, coordinator, op.value,
                                                 replicate_to);
        }
        ++stats_.puts;
        stats_.put_replication_bytes.add(
            static_cast<double>(receipt.replication_bytes));
        break;
      }
      case TraceOp::Kind::kAntiEntropy: {
        cluster_->anti_entropy();
        ++stats_.anti_entropy_rounds;
        break;
      }
      case TraceOp::Kind::kFail: {
        const auto server = static_cast<kv::ReplicaId>(op.server);
        if (crash_faults_) {
          cluster_->crash(server);  // volatile state gone; log survives
        } else {
          cluster_->replica(server).set_alive(false);  // pause, memory intact
        }
        ++stats_.failures;
        break;
      }
      case TraceOp::Kind::kRecover: {
        const auto server = static_cast<kv::ReplicaId>(op.server);
        if (crash_faults_) {
          (void)cluster_->recover(server);  // storage replay
        } else {
          cluster_->replica(server).set_alive(true);
        }
        if (hinted_handoff_) cluster_->deliver_hints();
        ++stats_.recoveries;
        break;
      }
      case TraceOp::Kind::kPartition: {
        std::vector<std::vector<kv::ReplicaId>> groups;
        groups.reserve(op.groups.size());
        for (const auto& group : op.groups) {
          groups.emplace_back(group.begin(), group.end());
        }
        cluster_->partition(groups, "trace");
        ++stats_.partitions;
        break;
      }
      case TraceOp::Kind::kHeal: {
        cluster_->heal();
        ++stats_.heals;
        break;
      }
    }
  }

  /// Records the final footprint and returns the accumulated stats.
  /// Drains the cluster's transport first, so a queued (manually
  /// pumped) transport cannot leave replicated state unaccounted.
  ReplayStats finish() {
    (void)cluster_->pump_all();
    const auto fp = cluster_->footprint();
    stats_.final_keys = fp.keys;
    stats_.final_siblings = fp.siblings;
    stats_.final_clock_entries = fp.clock_entries;
    stats_.final_metadata_bytes = fp.metadata_bytes;
    stats_.final_total_bytes = fp.total_bytes;
    return stats_;
  }

  [[nodiscard]] const ReplayStats& stats() const noexcept { return stats_; }

 private:
  kv::Cluster<M>* cluster_;
  bool hinted_handoff_;
  bool crash_faults_;
  std::vector<kv::ClientSession<M>> sessions_;
  ReplayStats stats_;
};

/// One-shot replay of a whole trace.
template <kv::CausalityMechanism M>
ReplayStats replay(kv::Cluster<M>& cluster, const Trace& trace) {
  Replayer<M> replayer(cluster, trace);
  for (const TraceOp& op : trace.ops) replayer.step(op);
  return replayer.finish();
}

}  // namespace dvv::workload
