// dvv/workload/replay.hpp
//
// Replays a resolved Trace and collects the measurements the paper's
// evaluation reports: per-request metadata bytes, sibling counts, clock
// entries, replication traffic, and the final storage footprint.
//
// Two drivers over the same trace:
//
//   * Replayer<M> drives a Cluster<M> directly with raw contexts —
//     steppable (one TraceOp at a time) so the oracle can run a subject
//     cluster and the causal-history truth cluster in lockstep and
//     audit *during* the run (causality anomalies are often transient;
//     a later read-modify-write paves over the evidence);
//   * StoreReplayer drives the type-erased kv::Store facade through
//     kv::Session, ferrying opaque CausalTokens where the templated
//     path passes Contexts.  Same decisions, same order, same stats —
//     which is exactly what lets tests/store_api_test.cpp prove the
//     facade path byte-identical to the templated twin for all six
//     mechanisms (the api_redesign analogue of transport_equivalence).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/session.hpp"
#include "kv/store.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"
#include "workload/trace.hpp"

namespace dvv::workload {

struct ReplayStats {
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::uint64_t anti_entropy_rounds = 0;
  std::uint64_t failures = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t joins = 0;           ///< ring churn: nodes joined
  std::uint64_t leaves = 0;          ///< ring churn: graceful departures
  std::uint64_t ticks = 0;           ///< async replay: transport pumps
  std::uint64_t op_timeouts = 0;     ///< async ops that missed their deadline
  std::uint64_t max_in_flight = 0;   ///< concurrent client ops peak

  /// Per-GET reply measurements (what the client downloads every read).
  util::Samples get_metadata_bytes;
  util::Samples get_total_bytes;
  util::Samples get_siblings;
  util::Samples get_clock_entries;

  /// Per-PUT replication traffic.
  util::Samples put_replication_bytes;

  /// Final cluster-wide footprint, filled by finish().
  std::size_t final_keys = 0;
  std::size_t final_siblings = 0;
  std::size_t final_clock_entries = 0;
  std::size_t final_metadata_bytes = 0;
  std::size_t final_total_bytes = 0;
};

template <kv::CausalityMechanism M>
class Replayer {
 public:
  Replayer(kv::Cluster<M>& cluster, const Trace& trace)
      : cluster_(&cluster),
        hinted_handoff_(trace.hinted_handoff),
        crash_faults_(trace.crash_faults),
        async_(trace.async_quorum),
        read_quorum_(trace.read_quorum),
        write_quorum_(trace.write_quorum),
        deadline_ticks_(trace.deadline_ticks) {
    sessions_.reserve(trace.clients);
    for (std::size_t c = 0; c < trace.clients; ++c) {
      sessions_.emplace_back(kv::client_actor(c), cluster);
    }
  }

  /// Resolves a preference-list slot to the first ALIVE server at or
  /// after it (wrapping).  Trace generation guarantees at most R-1
  /// simultaneous failures, so some preference member is always alive.
  [[nodiscard]] kv::ReplicaId resolve_alive(const std::vector<kv::ReplicaId>& pref,
                                            std::size_t rank) const {
    for (std::size_t i = 0; i < pref.size(); ++i) {
      const kv::ReplicaId candidate = pref[(rank + i) % pref.size()];
      if (cluster_->replica(candidate).alive()) return candidate;
    }
    DVV_ASSERT_MSG(false, "no alive replica in preference list");
    return pref[0];
  }

  /// Applies one trace operation.
  void step(const TraceOp& op) {
    const M& mech = cluster_->mechanism();
    switch (op.kind) {
      case TraceOp::Kind::kGet: {
        const auto pref = cluster_->preference_list(op.key);
        const kv::ReplicaId source = resolve_alive(pref, op.rank);
        ++stats_.gets;
        if (async_) {
          // In-flight coordinated read: the session's context refreshes
          // when the quorum completes (harvest_completions), not now —
          // a put issued meanwhile genuinely races this read.
          kv::ReadOptions opts;
          opts.deadline_ticks = deadline_ticks_;
          const std::uint64_t id =
              cluster_->begin_read_at(op.key, source, read_quorum_, opts);
          pending_reads_[id] = op.client;
          note_in_flight();
          break;
        }
        (void)sessions_[op.client].get(op.key, source);
        if (const auto* stored = cluster_->replica(source).find(op.key)) {
          stats_.get_metadata_bytes.add(
              static_cast<double>(mech.metadata_bytes(*stored)));
          stats_.get_total_bytes.add(
              static_cast<double>(mech.total_bytes(*stored)));
          stats_.get_siblings.add(static_cast<double>(mech.sibling_count(*stored)));
          stats_.get_clock_entries.add(
              static_cast<double>(mech.clock_entries(*stored)));
        } else {
          stats_.get_metadata_bytes.add(0.0);
          stats_.get_total_bytes.add(0.0);
          stats_.get_siblings.add(0.0);
          stats_.get_clock_entries.add(0.0);
        }
        break;
      }
      case TraceOp::Kind::kPut: {
        const auto pref = cluster_->preference_list(op.key);
        const kv::ReplicaId coordinator = resolve_alive(pref, op.rank);
        if (op.blind) sessions_[op.client].forget(op.key);
        ++stats_.puts;
        // Sloppy-quorum puts stay synchronous even in async replays:
        // hint parking is coordinator-side scatter, not a client wait.
        if (async_ && !hinted_handoff_) {
          std::vector<kv::ReplicaId> replicate_to;
          replicate_to.reserve(op.replicate_ranks.size());
          for (const std::size_t r : op.replicate_ranks) {
            replicate_to.push_back(pref.at(r));
          }
          kv::WriteOptions opts;
          opts.write_quorum = write_quorum_;
          opts.deadline_ticks = deadline_ticks_;
          const std::uint64_t id = cluster_->begin_write(
              op.key, coordinator, kv::client_actor(op.client),
              sessions_[op.client].context_for(op.key), op.value, replicate_to,
              opts);
          stats_.put_replication_bytes.add(static_cast<double>(
              cluster_->peek_write_receipt(id).replication_bytes));
          pending_writes_.push_back(id);
          note_in_flight();
          break;
        }
        typename kv::Cluster<M>::PutReceipt receipt;
        if (hinted_handoff_) {
          receipt =
              sessions_[op.client].put_with_handoff(op.key, coordinator, op.value);
        } else {
          std::vector<kv::ReplicaId> replicate_to;
          replicate_to.reserve(op.replicate_ranks.size());
          for (const std::size_t r : op.replicate_ranks) {
            replicate_to.push_back(pref.at(r));
          }
          receipt = sessions_[op.client].put_via(op.key, coordinator, op.value,
                                                 replicate_to);
        }
        stats_.put_replication_bytes.add(
            static_cast<double>(receipt.replication_bytes));
        break;
      }
      case TraceOp::Kind::kAntiEntropy: {
        cluster_->anti_entropy();
        ++stats_.anti_entropy_rounds;
        break;
      }
      case TraceOp::Kind::kFail: {
        const auto server = static_cast<kv::ReplicaId>(op.server);
        if (crash_faults_) {
          cluster_->crash(server);  // volatile state gone; log survives
        } else {
          cluster_->replica(server).set_alive(false);  // pause, memory intact
        }
        ++stats_.failures;
        break;
      }
      case TraceOp::Kind::kRecover: {
        const auto server = static_cast<kv::ReplicaId>(op.server);
        if (crash_faults_) {
          (void)cluster_->recover(server);  // storage replay
        } else {
          cluster_->replica(server).set_alive(true);
        }
        if (hinted_handoff_) cluster_->deliver_hints();
        ++stats_.recoveries;
        break;
      }
      case TraceOp::Kind::kPartition: {
        std::vector<std::vector<kv::ReplicaId>> groups;
        groups.reserve(op.groups.size());
        for (const auto& group : op.groups) {
          groups.emplace_back(group.begin(), group.end());
        }
        cluster_->partition(groups, "trace");
        ++stats_.partitions;
        break;
      }
      case TraceOp::Kind::kHeal: {
        cluster_->heal();
        ++stats_.heals;
        break;
      }
      case TraceOp::Kind::kTick: {
        // One pump of network time: queued scatter/replies/fan-out land,
        // deadlines advance — in-flight ops complete (or expire) HERE,
        // interleaved with later operations.
        cluster_->pump();
        ++stats_.ticks;
        break;
      }
      case TraceOp::Kind::kJoin:
      case TraceOp::Kind::kLeave: {
        // Membership transition, completed inline: drain queued traffic
        // first (a rebalance wants no replication in flight toward the
        // old owners), mint the epoch, then walk every transfer to
        // completion so the next op already routes on the new ring.
        (void)cluster_->pump_all();
        const auto server = static_cast<kv::ReplicaId>(op.server);
        if (op.kind == TraceOp::Kind::kJoin) {
          cluster_->join_node(server);
          ++stats_.joins;
        } else {
          cluster_->leave_node(server);
          ++stats_.leaves;
        }
        (void)cluster_->complete_rebalance();
        break;
      }
    }
    if (async_) harvest_completions();
  }

  /// Records the final footprint and returns the accumulated stats.
  /// Drains the cluster's transport first, so a queued (manually
  /// pumped) transport cannot leave replicated state unaccounted, and
  /// force-completes any still-pending async operation (a trace may end
  /// with ops in flight; their late replies are the engine's problem).
  ReplayStats finish() {
    (void)cluster_->pump_all();
    if (async_) {
      for (const auto& [id, client] : pending_reads_) {
        (void)cluster_->finalize_request(id);
      }
      for (const std::uint64_t id : pending_writes_) {
        (void)cluster_->finalize_request(id);
      }
      harvest_completions();
      DVV_ASSERT(pending_reads_.empty() && pending_writes_.empty());
    }
    const auto fp = cluster_->footprint();
    stats_.final_keys = fp.keys;
    stats_.final_siblings = fp.siblings;
    stats_.final_clock_entries = fp.clock_entries;
    stats_.final_metadata_bytes = fp.metadata_bytes;
    stats_.final_total_bytes = fp.total_bytes;
    return stats_;
  }

  [[nodiscard]] const ReplayStats& stats() const noexcept { return stats_; }

 private:
  void note_in_flight() {
    stats_.max_in_flight =
        std::max(stats_.max_in_flight,
                 static_cast<std::uint64_t>(cluster_->requests_in_flight()));
  }

  /// Harvests every async operation that reached a terminal outcome:
  /// completed reads hand their merged context to the issuing session
  /// (unavailable ones must not — the context-clobber rule) and record
  /// the reply measurements; completed writes just retire.
  void harvest_completions() {
    for (const std::uint64_t id : cluster_->take_completed_requests()) {
      if (const auto it = pending_reads_.find(id); it != pending_reads_.end()) {
        const std::size_t client = it->second;
        pending_reads_.erase(it);
        const auto harvest = cluster_->take_read_result(id);
        if (harvest.outcome != kv::CoordOutcome::kQuorum) ++stats_.op_timeouts;
        if (!harvest.result.unavailable) {
          sessions_[client].remember(harvest.key, harvest.result.context);
        }
        stats_.get_metadata_bytes.add(static_cast<double>(harvest.metadata_bytes));
        stats_.get_total_bytes.add(static_cast<double>(harvest.state_bytes));
        stats_.get_siblings.add(static_cast<double>(harvest.siblings));
        stats_.get_clock_entries.add(static_cast<double>(harvest.clock_entries));
      } else if (std::erase(pending_writes_, id) > 0) {
        const auto receipt = cluster_->take_write_receipt(id);
        if (receipt.outcome != kv::CoordOutcome::kQuorum) ++stats_.op_timeouts;
      }
      // Ids in neither list belong to synchronous shim calls that
      // already harvested themselves.
    }
  }

  kv::Cluster<M>* cluster_;
  bool hinted_handoff_;
  bool crash_faults_;
  bool async_ = false;
  std::size_t read_quorum_ = 1;
  std::size_t write_quorum_ = 1;
  std::size_t deadline_ticks_ = 16;
  std::vector<kv::ClientSession<M>> sessions_;
  std::map<std::uint64_t, std::size_t> pending_reads_;  ///< id -> client
  std::vector<std::uint64_t> pending_writes_;
  ReplayStats stats_;
};

/// One-shot replay of a whole trace.
template <kv::CausalityMechanism M>
ReplayStats replay(kv::Cluster<M>& cluster, const Trace& trace) {
  Replayer<M> replayer(cluster, trace);
  for (const TraceOp& op : trace.ops) replayer.step(op);
  return replayer.finish();
}

/// Facade twin of Replayer<M>: drives a kv::Store through kv::Session,
/// step for step.  Non-template — the mechanism was chosen at store
/// construction — and contexts cross only as opaque CausalTokens.  The
/// decision sequence mirrors Replayer<M> exactly (same resolve rules,
/// same call order, same stats), so a trace replayed on a Store and on
/// its templated Cluster<M> twin yields byte-identical replica states.
class StoreReplayer {
 public:
  StoreReplayer(kv::Store& store, const Trace& trace)
      : store_(&store),
        hinted_handoff_(trace.hinted_handoff),
        crash_faults_(trace.crash_faults),
        async_(trace.async_quorum),
        read_quorum_(trace.read_quorum),
        write_quorum_(trace.write_quorum),
        deadline_ticks_(trace.deadline_ticks) {
    sessions_.reserve(trace.clients);
    for (std::size_t c = 0; c < trace.clients; ++c) {
      sessions_.emplace_back(kv::client_actor(c), store);
    }
  }

  /// Resolves a preference-list slot to the first ALIVE server at or
  /// after it (wrapping) — Replayer<M>::resolve_alive, facade edition.
  [[nodiscard]] kv::ReplicaId resolve_alive(const std::vector<kv::ReplicaId>& pref,
                                            std::size_t rank) const {
    for (std::size_t i = 0; i < pref.size(); ++i) {
      const kv::ReplicaId candidate = pref[(rank + i) % pref.size()];
      if (store_->alive(candidate)) return candidate;
    }
    DVV_ASSERT_MSG(false, "no alive replica in preference list");
    return pref[0];
  }

  /// Applies one trace operation.
  void step(const TraceOp& op) {
    switch (op.kind) {
      case TraceOp::Kind::kGet: {
        const auto pref = store_->preference_list(op.key);
        const kv::ReplicaId source = resolve_alive(pref, op.rank);
        ++stats_.gets;
        if (async_) {
          kv::ReadOptions opts;
          opts.deadline_ticks = deadline_ticks_;
          const std::uint64_t id =
              store_->begin_read_at(op.key, source, read_quorum_, opts);
          pending_reads_[id] = op.client;
          note_in_flight();
          break;
        }
        (void)sessions_[op.client].get(op.key, source);
        const kv::StoreKeyStats measured = store_->key_stats(source, op.key);
        stats_.get_metadata_bytes.add(static_cast<double>(measured.metadata_bytes));
        stats_.get_total_bytes.add(static_cast<double>(measured.total_bytes));
        stats_.get_siblings.add(static_cast<double>(measured.siblings));
        stats_.get_clock_entries.add(static_cast<double>(measured.clock_entries));
        break;
      }
      case TraceOp::Kind::kPut: {
        const auto pref = store_->preference_list(op.key);
        const kv::ReplicaId coordinator = resolve_alive(pref, op.rank);
        if (op.blind) sessions_[op.client].forget(op.key);
        ++stats_.puts;
        if (async_ && !hinted_handoff_) {
          std::vector<kv::ReplicaId> replicate_to;
          replicate_to.reserve(op.replicate_ranks.size());
          for (const std::size_t r : op.replicate_ranks) {
            replicate_to.push_back(pref.at(r));
          }
          kv::WriteOptions opts;
          opts.write_quorum = write_quorum_;
          opts.deadline_ticks = deadline_ticks_;
          const kv::StoreWriteBegin begun = store_->begin_write(
              op.key, coordinator, kv::client_actor(op.client),
              sessions_[op.client].token_for(op.key), op.value, replicate_to,
              opts);
          // Sessions only ferry tokens this store minted; a rejection
          // here would be a replayer bug, not trace weather.
          DVV_ASSERT_MSG(begun.ok(), "StoreReplayer: own token rejected");
          stats_.put_replication_bytes.add(static_cast<double>(
              store_->peek_write_receipt(begun.id).replication_bytes));
          pending_writes_.push_back(begun.id);
          note_in_flight();
          break;
        }
        kv::StorePutResult result;
        if (hinted_handoff_) {
          result =
              sessions_[op.client].put_with_handoff(op.key, coordinator, op.value);
        } else {
          std::vector<kv::ReplicaId> replicate_to;
          replicate_to.reserve(op.replicate_ranks.size());
          for (const std::size_t r : op.replicate_ranks) {
            replicate_to.push_back(pref.at(r));
          }
          result = sessions_[op.client].put_via(op.key, coordinator, op.value,
                                                replicate_to);
        }
        DVV_ASSERT_MSG(result.status != kv::StoreStatus::kBadToken,
                       "StoreReplayer: own token rejected");
        stats_.put_replication_bytes.add(
            static_cast<double>(result.receipt.replication_bytes));
        break;
      }
      case TraceOp::Kind::kAntiEntropy: {
        store_->anti_entropy();
        ++stats_.anti_entropy_rounds;
        break;
      }
      case TraceOp::Kind::kFail: {
        const auto server = static_cast<kv::ReplicaId>(op.server);
        if (crash_faults_) {
          store_->crash(server);
        } else {
          store_->set_alive(server, false);
        }
        ++stats_.failures;
        break;
      }
      case TraceOp::Kind::kRecover: {
        const auto server = static_cast<kv::ReplicaId>(op.server);
        if (crash_faults_) {
          (void)store_->recover(server);
        } else {
          store_->set_alive(server, true);
        }
        if (hinted_handoff_) store_->deliver_hints();
        ++stats_.recoveries;
        break;
      }
      case TraceOp::Kind::kPartition: {
        std::vector<std::vector<kv::ReplicaId>> groups;
        groups.reserve(op.groups.size());
        for (const auto& group : op.groups) {
          groups.emplace_back(group.begin(), group.end());
        }
        store_->partition(groups, "trace");
        ++stats_.partitions;
        break;
      }
      case TraceOp::Kind::kHeal: {
        store_->heal();
        ++stats_.heals;
        break;
      }
      case TraceOp::Kind::kTick: {
        store_->pump();
        ++stats_.ticks;
        break;
      }
      case TraceOp::Kind::kJoin:
      case TraceOp::Kind::kLeave: {
        // Mirror of Replayer<M>: drain, transition, rebalance to done.
        (void)store_->pump_all();
        const auto server = static_cast<kv::ReplicaId>(op.server);
        if (op.kind == TraceOp::Kind::kJoin) {
          const bool ok = store_->join_node(server);
          DVV_ASSERT_MSG(ok, "StoreReplayer: trace join precondition broken");
          ++stats_.joins;
        } else {
          const bool ok = store_->leave_node(server);
          DVV_ASSERT_MSG(ok, "StoreReplayer: trace leave precondition broken");
          ++stats_.leaves;
        }
        (void)store_->complete_rebalance();
        break;
      }
    }
    if (async_) harvest_completions();
  }

  /// Records the final footprint and returns the accumulated stats —
  /// same drain/finalize discipline as Replayer<M>::finish.
  ReplayStats finish() {
    (void)store_->pump_all();
    if (async_) {
      for (const auto& [id, client] : pending_reads_) {
        (void)store_->finalize_request(id);
      }
      for (const std::uint64_t id : pending_writes_) {
        (void)store_->finalize_request(id);
      }
      harvest_completions();
      DVV_ASSERT(pending_reads_.empty() && pending_writes_.empty());
    }
    const kv::Footprint fp = store_->footprint();
    stats_.final_keys = fp.keys;
    stats_.final_siblings = fp.siblings;
    stats_.final_clock_entries = fp.clock_entries;
    stats_.final_metadata_bytes = fp.metadata_bytes;
    stats_.final_total_bytes = fp.total_bytes;
    return stats_;
  }

  [[nodiscard]] const ReplayStats& stats() const noexcept { return stats_; }

 private:
  void note_in_flight() {
    stats_.max_in_flight =
        std::max(stats_.max_in_flight,
                 static_cast<std::uint64_t>(store_->requests_in_flight()));
  }

  /// Harvests every async operation that reached a terminal outcome:
  /// completed reads hand their opaque token to the issuing session
  /// (unavailable ones must not — the token-clobber rule) and record
  /// the reply measurements; completed writes just retire.
  void harvest_completions() {
    for (const std::uint64_t id : store_->take_completed_requests()) {
      if (const auto it = pending_reads_.find(id); it != pending_reads_.end()) {
        const std::size_t client = it->second;
        pending_reads_.erase(it);
        const kv::StoreReadHarvest harvest = store_->take_read_result(id);
        if (harvest.outcome != kv::CoordOutcome::kQuorum) ++stats_.op_timeouts;
        if (!harvest.result.unavailable()) {
          sessions_[client].remember(harvest.key, harvest.result.token);
        }
        stats_.get_metadata_bytes.add(static_cast<double>(harvest.metadata_bytes));
        stats_.get_total_bytes.add(static_cast<double>(harvest.state_bytes));
        stats_.get_siblings.add(static_cast<double>(harvest.siblings));
        stats_.get_clock_entries.add(static_cast<double>(harvest.clock_entries));
      } else if (std::erase(pending_writes_, id) > 0) {
        const kv::PutReceipt receipt = store_->take_write_receipt(id);
        if (receipt.outcome != kv::CoordOutcome::kQuorum) ++stats_.op_timeouts;
      }
      // Ids in neither list belong to synchronous calls that already
      // harvested themselves.
    }
  }

  kv::Store* store_;
  bool hinted_handoff_;
  bool crash_faults_;
  bool async_ = false;
  std::size_t read_quorum_ = 1;
  std::size_t write_quorum_ = 1;
  std::size_t deadline_ticks_ = 16;
  std::vector<kv::Session> sessions_;
  std::map<std::uint64_t, std::size_t> pending_reads_;  ///< id -> client
  std::vector<std::uint64_t> pending_writes_;
  ReplayStats stats_;
};

/// One-shot facade replay of a whole trace.
inline ReplayStats replay(kv::Store& store, const Trace& trace) {
  StoreReplayer replayer(store, trace);
  for (const TraceOp& op : trace.ops) replayer.step(op);
  return replayer.finish();
}

}  // namespace dvv::workload
