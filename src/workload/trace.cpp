#include "workload/trace.hpp"

#include <string>

#include "net/transport.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dvv::workload {

Trace generate_trace(const WorkloadSpec& spec, std::size_t replication) {
  DVV_ASSERT(spec.keys >= 1);
  DVV_ASSERT(spec.clients >= 1);
  DVV_ASSERT(replication >= 1);

  util::Rng rng(spec.seed);
  const util::ZipfSampler zipf(spec.keys, spec.zipf_skew);

  Trace trace;
  trace.seed = spec.seed;
  trace.hinted_handoff = spec.hinted_handoff;
  trace.crash_faults = spec.crash_faults;
  trace.async_quorum = spec.async_quorum;
  trace.read_quorum = spec.read_quorum;
  trace.write_quorum = spec.write_quorum;
  trace.deadline_ticks = spec.deadline_ticks;
  trace.ops.reserve(spec.operations * 2 + spec.operations / 16);

  // Blind writes are issued by FRESH anonymous client identities (one
  // per blind write, ids spec.clients, spec.clients+1, ...).  This
  // models the workload that historically blew up Riak's per-client
  // vclocks — short-lived clients that write once without reading — and
  // it keeps the causality model uniform: a blind write is concurrent
  // with everything, including any earlier write that happened to come
  // from the same TCP client, because it carries no context at all.
  std::size_t next_anonymous = spec.clients;

  // Failure-injection state: which servers are currently down.
  const bool inject_failures =
      spec.fail_probability > 0.0 || spec.recover_probability > 0.0;
  DVV_ASSERT_MSG(!inject_failures || spec.servers >= replication,
                 "failure injection needs spec.servers set");
  std::vector<bool> down(inject_failures ? spec.servers : 0, false);
  std::size_t down_count = 0;

  // Partition-injection state: at most one split active at a time.
  const bool inject_partitions = spec.partition_probability > 0.0;
  DVV_ASSERT_MSG(!inject_partitions || spec.servers >= 2,
                 "partition injection needs spec.servers >= 2");
  bool partitioned = false;

  // Churn-injection state: which provisioned slots are ring members.
  // Slots [servers, capacity) start outside the ring and may join;
  // members may leave down to the replication floor; a departed slot
  // may rejoin (the replayed cluster bumps its clock incarnation).
  const bool inject_churn =
      spec.join_probability > 0.0 || spec.leave_probability > 0.0;
  const std::size_t capacity = spec.capacity == 0 ? spec.servers : spec.capacity;
  DVV_ASSERT_MSG(!inject_churn ||
                     (spec.servers >= replication && capacity >= spec.servers),
                 "churn injection needs spec.servers and capacity set");
  std::vector<bool> member(inject_churn ? capacity : 0, false);
  std::size_t member_count = spec.servers;
  for (std::size_t s = 0; s < spec.servers && inject_churn; ++s) member[s] = true;

  std::uint64_t write_seq = 0;
  for (std::size_t op = 0; op < spec.operations; ++op) {
    if (spec.anti_entropy_every != 0 && op != 0 &&
        op % spec.anti_entropy_every == 0) {
      TraceOp ae;
      ae.kind = TraceOp::Kind::kAntiEntropy;
      trace.ops.push_back(std::move(ae));
    }

    if (inject_failures) {
      // Crash one alive server (keeping at least servers-(R-1) alive so
      // every preference list retains an alive member).
      if (down_count + 1 < replication && rng.chance(spec.fail_probability)) {
        std::size_t victim = rng.index(spec.servers);
        while (down[victim]) victim = rng.index(spec.servers);
        down[victim] = true;
        ++down_count;
        TraceOp fail;
        fail.kind = TraceOp::Kind::kFail;
        fail.server = victim;
        trace.ops.push_back(std::move(fail));
      }
      if (down_count > 0 && rng.chance(spec.recover_probability)) {
        std::size_t lucky = rng.index(spec.servers);
        while (!down[lucky]) lucky = rng.index(spec.servers);
        down[lucky] = false;
        --down_count;
        TraceOp recover;
        recover.kind = TraceOp::Kind::kRecover;
        recover.server = lucky;
        trace.ops.push_back(std::move(recover));
      }
    }

    if (inject_partitions) {
      // Cut the cluster into two random groups, or heal the active cut.
      // Decided before the op so a write can land inside either side.
      if (!partitioned && rng.chance(spec.partition_probability)) {
        TraceOp split;
        split.kind = TraceOp::Kind::kPartition;
        split.groups = net::random_split<std::size_t>(rng, spec.servers);
        trace.ops.push_back(std::move(split));
        partitioned = true;
      } else if (partitioned && rng.chance(spec.heal_probability)) {
        TraceOp heal;
        heal.kind = TraceOp::Kind::kHeal;
        trace.ops.push_back(std::move(heal));
        partitioned = false;
      }
    }

    if (inject_churn && down_count == 0 && !partitioned) {
      // Membership transitions are operator actions at healthy moments:
      // the replayers complete each rebalance inline, which needs every
      // transfer source alive and reachable.  At most one transition
      // per op keeps epochs totally ordered with the surrounding ops.
      if (member_count < capacity && rng.chance(spec.join_probability)) {
        std::size_t joiner = rng.index(capacity);
        while (member[joiner]) joiner = rng.index(capacity);
        member[joiner] = true;
        ++member_count;
        TraceOp join;
        join.kind = TraceOp::Kind::kJoin;
        join.server = joiner;
        trace.ops.push_back(std::move(join));
      } else if (member_count > replication &&
                 rng.chance(spec.leave_probability)) {
        std::size_t leaver = rng.index(capacity);
        while (!member[leaver]) leaver = rng.index(capacity);
        member[leaver] = false;
        --member_count;
        TraceOp leave;
        leave.kind = TraceOp::Kind::kLeave;
        leave.server = leaver;
        trace.ops.push_back(std::move(leave));
      }
    }

    if (spec.async_quorum && rng.chance(spec.tick_probability)) {
      // One pump of network time between client operations: in-flight
      // scatter, replies and fan-out land (or expire) here, so async
      // replays interleave deliveries WITH the op stream instead of
      // quiescing after every op.
      TraceOp tick;
      tick.kind = TraceOp::Kind::kTick;
      trace.ops.push_back(std::move(tick));
    }

    kv::Key key = "key-" + std::to_string(zipf.sample(rng));
    const std::size_t rank =
        spec.spread_coordination ? rng.index(replication) : 0;

    const bool rmw = rng.chance(spec.read_before_write);
    const std::size_t client = rmw ? rng.index(spec.clients) : next_anonymous++;
    if (rmw) {
      TraceOp get;
      get.kind = TraceOp::Kind::kGet;
      get.client = client;
      get.key = key;
      get.rank = rank;
      trace.ops.push_back(std::move(get));
    }

    TraceOp put;
    put.kind = TraceOp::Kind::kPut;
    put.client = client;
    put.key = std::move(key);
    put.rank = rank;
    put.blind = !rmw;
    for (std::size_t r = 0; r < replication; ++r) {
      if (r == rank) continue;  // the coordinator always has the write
      if (rng.chance(spec.replicate_probability)) put.replicate_ranks.push_back(r);
    }
    // Unique, self-describing payload padded to the requested size:
    // uniqueness is what lets the oracle match values across mechanisms.
    put.value = "w" + std::to_string(write_seq++);
    if (put.value.size() < spec.value_bytes) {
      put.value.append(spec.value_bytes - put.value.size(), 'x');
    }
    trace.ops.push_back(std::move(put));
  }
  if (partitioned) {
    // Leave no split behind: replays (and the oracle's convergence
    // phase) expect the final anti-entropy rounds to reach everyone.
    TraceOp heal;
    heal.kind = TraceOp::Kind::kHeal;
    trace.ops.push_back(std::move(heal));
  }
  trace.clients = next_anonymous;  // named sessions + anonymous writers
  return trace;
}

}  // namespace dvv::workload
