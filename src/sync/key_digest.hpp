// dvv/sync/key_digest.hpp
//
// Per-key state digests for the anti-entropy subsystem.
//
// A digest is a 64-bit hash of a key's *serialized* sibling state — the
// same codec encoding that crosses the wire on replication.  Two
// replicas whose stored states encode to identical bytes therefore get
// identical digests, so they can agree the key needs no repair by
// exchanging 8 bytes instead of the whole state.  The digest is
// deliberately order-sensitive (it hashes the raw encoding): replicas
// holding the same sibling *set* in different internal orders will be
// repaired into the canonical merged form, which is exactly what makes
// digest-based repair reach the same byte-level fixed point as the
// legacy gather-merge-scatter pass.
//
// The hash is FNV-1a 64 with a splitmix64 finalizer — fast, dependency
// free, and deterministic across platforms (no pointers, no seeds).
// Collisions would make anti-entropy *skip* a genuinely divergent key;
// at 2^-64 per pair this is far below the simulation's concern, and the
// convergence property tests would surface any systematic weakness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "codec/clock_codec.hpp"
#include "codec/wire.hpp"

namespace dvv::sync {

using Digest = std::uint64_t;

/// Digest of an absent key (an empty byte range hashes to a nonzero
/// value, so "missing" needs its own sentinel).
inline constexpr Digest kMissing = 0;

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

[[nodiscard]] inline Digest hash_bytes(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return mix64(h);
}

[[nodiscard]] inline Digest hash_string(std::string_view s) noexcept {
  return hash_bytes(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size()));
}

/// Order-sensitive combination for hash-tree interior nodes and for
/// folding (key, digest) leaf entries into a bucket hash.
[[nodiscard]] constexpr Digest combine(Digest acc, Digest next) noexcept {
  return mix64(acc ^ (next + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2)));
}

/// Digest of an already-encoded sibling state (a wire payload).  Same
/// value as state_digest of the state it encodes, including the
/// kMissing-sentinel avoidance.
[[nodiscard]] inline Digest encoded_state_digest(std::string_view bytes) noexcept {
  const Digest d = hash_string(bytes);
  return d == kMissing ? Digest{1} : d;
}

/// Mechanism-aware per-key digest: hash of the stored sibling state's
/// full codec encoding (clocks + values).  `Stored` is any sibling-set
/// kernel with a codec::encode overload — i.e. every mechanism's Stored.
template <typename Stored>
[[nodiscard]] Digest state_digest(const Stored& s) {
  codec::Writer w;
  codec::encode(w, s);
  const Digest d = hash_bytes(std::span<const std::byte>(w.buffer()));
  // Reserve the kMissing sentinel for "key absent".
  return d == kMissing ? Digest{1} : d;
}

}  // namespace dvv::sync
