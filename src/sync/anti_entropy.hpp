// dvv/sync/anti_entropy.hpp
//
// Digest-based anti-entropy: the protocol layer that repairs replica
// divergence by shipping hashes first and state only where the hashes
// disagree — the paper's "pay only for actual concurrency" principle
// applied to replica repair instead of per-request metadata.
//
// Three pieces:
//
//   DigestIndex   per-(replica, partition) Merkle trees plus the
//                 dirty-key sets fed by the kv layer's KeyObserver
//                 hook; refresh() folds pending mutations into the
//                 trees incrementally.  A partition is an owner set —
//                 the keys sharing one preference list — so two
//                 replicas only ever compare trees over keys they BOTH
//                 own (Riak hashes per vnode for the same reason:
//                 whole-store trees would always differ just because
//                 the stores overlap partially).
//
//   SyncSession   one pairwise anti-entropy exchange: walk both trees
//                 top-down, descend only into differing subtrees, swap
//                 (key, digest) lists at differing leaves, and trigger
//                 repair for exactly the keys that differ.  Reports
//                 {rounds, nodes, keys_compared, keys_shipped,
//                 wire_bytes} with every byte metered through the same
//                 codec sizes the replication path uses.
//
//   Repair rule   a differing key is repaired read-repair style across
//                 its whole preference list (injected callback): gather
//                 every alive owner's state, fold it into an empty
//                 Stored in preference-list order, scatter the merge.
//                 Folding original states in preference order is
//                 exactly what the legacy full pass does per key, and a
//                 repaired key never diverges again within the pass, so
//                 each key is folded at most once from its pre-repair
//                 states — the digest fixed point is byte-identical to
//                 the legacy fixed point (every kernel's sync() keeps
//                 survivors in deterministic (mine, theirs) order).
//                 tests/anti_entropy_convergence_test.cpp checks this
//                 for every mechanism.
//
// Determinism: no randomness anywhere in this subsystem.  Which pairs
// sync and when is the caller's choice (driven by its seeded Rng);
// identical stores always produce identical trees, walks and stats.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "sync/key_digest.hpp"
#include "sync/key_observer.hpp"
#include "sync/merkle.hpp"
#include "util/assert.hpp"

namespace dvv::sync {

/// Wire/effort accounting for one or more sessions.
struct SyncStats {
  std::size_t rounds = 0;           ///< message round trips
  std::size_t nodes_exchanged = 0;  ///< tree hashes shipped (both directions)
  std::size_t keys_compared = 0;    ///< distinct keys whose digests crossed
  std::size_t keys_shipped = 0;     ///< keys repaired by shipping Stored state
  std::size_t wire_bytes = 0;       ///< total bytes on the wire

  void merge(const SyncStats& o) noexcept;
};

/// Tree walk of one session: exchanges the root, descends into differing
/// subtrees level by level, and returns the differing leaf buckets.
/// Accounts every exchanged hash in `stats`.  Both trees must share a
/// geometry.
[[nodiscard]] std::vector<std::size_t> diff_leaves(const MerkleTree& a,
                                                   const MerkleTree& b,
                                                   SyncStats& stats);

/// Per-(replica, partition) Merkle trees + dirty-key tracking.
/// Implements the kv layer's KeyObserver so replicas can mark keys
/// dirty on every mutation; digests are recomputed lazily in refresh().
/// The partitioner callback maps a key to its owner set (the cluster's
/// preference list); keys sharing an owner set share a tree.
class DigestIndex final : public KeyObserver {
 public:
  using PartitionId = std::uint64_t;
  using Partitioner =
      std::function<std::vector<core::ActorId>(const std::string& key)>;

  DigestIndex() = default;
  DigestIndex(std::size_t replicas, MerkleConfig config);

  /// Must be set before the first refresh().  (Re-set after moving the
  /// owning cluster: the callback captures its ring.)
  void set_partitioner(Partitioner partitioner) {
    partitioner_ = std::move(partitioner);
  }

  void on_key_touched(core::ActorId replica, const std::string& key) override;

  /// Folds `replica`'s dirty keys into its partition trees.  `find(key)`
  /// returns the replica's current Stored* (null when the key is absent).
  template <typename FindFn>
  void refresh(std::size_t replica, FindFn&& find) {
    DVV_ASSERT(replica < trees_.size());
    for (const std::string& key : dirty_[replica]) {
      MerkleTree& tree = tree_slot(replica, partition_of(key));
      if (const auto* stored = find(key)) {
        tree.set(key, state_digest(*stored));
      } else {
        tree.erase(key);
      }
    }
    dirty_[replica].clear();
  }

  /// Partition ids whose owner set contains both `a` and `b`, in
  /// deterministic (id) order — the partitions a pairwise session must
  /// compare.  Only partitions that have ever held a key appear.
  [[nodiscard]] std::vector<PartitionId> shared_partitions(core::ActorId a,
                                                           core::ActorId b) const;

  /// The partition's owner set as registered by the partitioner.
  [[nodiscard]] const std::vector<core::ActorId>& owners(PartitionId p) const;

  /// `replica`'s tree for partition `p`; an empty tree when the replica
  /// holds no key of that partition yet.
  [[nodiscard]] const MerkleTree& tree(std::size_t replica, PartitionId p) const;

  /// Partition id for `key` (registers the partition on first sight).
  [[nodiscard]] PartitionId partition_of(const std::string& key);

  [[nodiscard]] std::size_t dirty_count(std::size_t replica) const {
    return dirty_.at(replica).size();
  }
  [[nodiscard]] std::size_t replicas() const noexcept { return trees_.size(); }
  [[nodiscard]] std::size_t partition_count() const noexcept {
    return partition_owners_.size();
  }

 private:
  [[nodiscard]] MerkleTree& tree_slot(std::size_t replica, PartitionId p);

  MerkleConfig config_{};
  Partitioner partitioner_;
  std::vector<std::map<PartitionId, MerkleTree>> trees_;  // per replica
  std::vector<std::set<std::string>> dirty_;  // sorted: deterministic refresh
  std::map<PartitionId, std::vector<core::ActorId>> partition_owners_;
  MerkleTree empty_{};  // shared stand-in for "no keys of this partition"
};

/// Wire cost and outcome of repairing one divergent key.
struct RepairResult {
  std::size_t states_shipped = 0;  ///< Stored states that crossed the wire
  std::size_t wire_bytes = 0;
};

/// One pairwise anti-entropy session.  The repair action is injected so
/// the subsystem stays below the kv layer: the cluster passes a lambda
/// that performs the preference-list-wide read-repair and meters its
/// wire traffic (returning {0, 0} for keys the pair does not own).
class SyncSession {
 public:
  /// Repairs `key` after endpoints `a` and `b` disagreed on its digest.
  using Repair =
      std::function<RepairResult(const std::string& key, core::ActorId a,
                                 core::ActorId b)>;

  explicit SyncSession(Repair repair) : repair_(std::move(repair)) {}

  /// Runs one full session between replicas `a` and `b`, whose trees
  /// must already be refreshed: root exchange, subtree descent,
  /// (key, digest) list exchange at differing leaves, repair of every
  /// key whose digests differ (or that one side lacks).
  SyncStats run(core::ActorId a, const MerkleTree& ta, core::ActorId b,
                const MerkleTree& tb) {
    SyncStats stats;
    const std::vector<std::size_t> leaves = diff_leaves(ta, tb, stats);
    if (leaves.empty()) return note(a, b, stats);

    // Leaf round: both sides ship their (key, digest) lists for every
    // differing bucket; the union is the compared set, the mismatches
    // become repair candidates.
    ++stats.rounds;
    std::vector<std::string> candidates;
    for (const std::size_t leaf : leaves) {
      const MerkleTree::Bucket& ba = ta.bucket(leaf);
      const MerkleTree::Bucket& bb = tb.bucket(leaf);
      for (const auto& [key, digest] : ba) {
        (void)digest;
        stats.wire_bytes += key_digest_wire_bytes(key);
      }
      for (const auto& [key, digest] : bb) {
        (void)digest;
        stats.wire_bytes += key_digest_wire_bytes(key);
      }
      auto ia = ba.begin();
      auto ib = bb.begin();
      while (ia != ba.end() || ib != bb.end()) {
        ++stats.keys_compared;
        if (ib == bb.end() || (ia != ba.end() && ia->first < ib->first)) {
          candidates.push_back((ia++)->first);
        } else if (ia == ba.end() || ib->first < ia->first) {
          candidates.push_back((ib++)->first);
        } else {
          if (ia->second != ib->second) candidates.push_back(ia->first);
          ++ia;
          ++ib;
        }
      }
    }

    // Repair round: ship state for exactly the keys that differ.
    bool shipped_any = false;
    for (const std::string& key : candidates) {
      const RepairResult repaired = repair_(key, a, b);
      if (repaired.states_shipped == 0) continue;  // e.g. non-owner stray
      ++stats.keys_shipped;
      stats.wire_bytes += repaired.wire_bytes;
      shipped_any = true;
    }
    if (shipped_any) ++stats.rounds;
    return note(a, b, stats);
  }

 private:
  /// Folds one session's accounting into the process-wide aae.* catalog
  /// and drops a flight-recorder span (trace id = packed endpoint pair).
  static SyncStats note(core::ActorId a, core::ActorId b,
                        const SyncStats& stats) {
    obs::AaeMetrics& m = obs::aae_metrics();
    m.sessions.inc();
    m.rounds.inc(stats.rounds);
    m.nodes_exchanged.inc(stats.nodes_exchanged);
    m.keys_compared.inc(stats.keys_compared);
    m.keys_shipped.inc(stats.keys_shipped);
    m.wire_bytes.inc(stats.wire_bytes);
    obs::flight().record("aae", "session",
                         (static_cast<std::uint64_t>(a) << 32) |
                             static_cast<std::uint64_t>(b),
                         stats.keys_compared, stats.keys_shipped,
                         stats.wire_bytes);
    return stats;
  }

  [[nodiscard]] static std::size_t key_digest_wire_bytes(const std::string& key) {
    return codec::varint_size(key.size()) + key.size() + sizeof(Digest);
  }

  Repair repair_;
};

}  // namespace dvv::sync
