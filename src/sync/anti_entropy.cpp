#include "sync/anti_entropy.hpp"

#include "codec/wire.hpp"

namespace dvv::sync {

namespace {

/// Wire cost of one tree hash: 8-byte digest plus its varint node index.
[[nodiscard]] std::size_t hash_wire_bytes(std::size_t node_index) noexcept {
  return sizeof(Digest) + codec::varint_size(node_index);
}

}  // namespace

void SyncStats::merge(const SyncStats& o) noexcept {
  rounds += o.rounds;
  nodes_exchanged += o.nodes_exchanged;
  keys_compared += o.keys_compared;
  keys_shipped += o.keys_shipped;
  wire_bytes += o.wire_bytes;
}

std::vector<std::size_t> diff_leaves(const MerkleTree& a, const MerkleTree& b,
                                     SyncStats& stats) {
  DVV_ASSERT_MSG(a.fanout() == b.fanout() && a.levels() == b.levels(),
                 "sync: tree geometries must match");
  // Root exchange: one round, one hash each way.
  ++stats.rounds;
  stats.nodes_exchanged += 2;
  stats.wire_bytes += 2 * hash_wire_bytes(0);
  if (a.root() == b.root()) return {};

  // Descend level by level; each level is one request/response round in
  // which both sides ship the child hashes of every still-differing node.
  std::vector<std::size_t> frontier{0};
  for (std::size_t level = 1; level <= a.levels(); ++level) {
    ++stats.rounds;
    std::vector<std::size_t> next;
    for (const std::size_t parent : frontier) {
      const std::size_t first_child = parent * a.fanout();
      for (std::size_t c = 0; c < a.fanout(); ++c) {
        const std::size_t child = first_child + c;
        stats.nodes_exchanged += 2;
        stats.wire_bytes += 2 * hash_wire_bytes(child);
        if (a.node(level, child) != b.node(level, child)) next.push_back(child);
      }
    }
    frontier = std::move(next);
    // A differing parent always has a differing child (parent hashes are
    // pure functions of the children), so the frontier cannot drain early.
    DVV_ASSERT(!frontier.empty());
  }
  return frontier;
}

DigestIndex::DigestIndex(std::size_t replicas, MerkleConfig config)
    : config_(config), trees_(replicas), dirty_(replicas), empty_(config) {}

void DigestIndex::on_key_touched(core::ActorId replica, const std::string& key) {
  DVV_ASSERT(replica < trees_.size());
  dirty_[static_cast<std::size_t>(replica)].insert(key);
}

DigestIndex::PartitionId DigestIndex::partition_of(const std::string& key) {
  DVV_ASSERT_MSG(partitioner_ != nullptr, "sync: partitioner not set");
  std::vector<core::ActorId> owners = partitioner_(key);
  PartitionId id = 0x9ae16a3b2f90404fULL;
  for (const core::ActorId owner : owners) id = combine(id, mix64(owner + 1));
  partition_owners_.emplace(id, std::move(owners));
  return id;
}

std::vector<DigestIndex::PartitionId> DigestIndex::shared_partitions(
    core::ActorId a, core::ActorId b) const {
  std::vector<PartitionId> out;
  for (const auto& [id, owners] : partition_owners_) {
    bool has_a = false;
    bool has_b = false;
    for (const core::ActorId o : owners) {
      has_a = has_a || o == a;
      has_b = has_b || o == b;
    }
    if (has_a && has_b) out.push_back(id);
  }
  return out;
}

const std::vector<core::ActorId>& DigestIndex::owners(PartitionId p) const {
  const auto it = partition_owners_.find(p);
  DVV_ASSERT_MSG(it != partition_owners_.end(), "sync: unknown partition");
  return it->second;
}

const MerkleTree& DigestIndex::tree(std::size_t replica, PartitionId p) const {
  const auto& slots = trees_.at(replica);
  const auto it = slots.find(p);
  return it == slots.end() ? empty_ : it->second;
}

MerkleTree& DigestIndex::tree_slot(std::size_t replica, PartitionId p) {
  auto& slots = trees_[replica];
  const auto it = slots.find(p);
  if (it != slots.end()) return it->second;
  return slots.emplace(p, MerkleTree(config_)).first->second;
}

}  // namespace dvv::sync
