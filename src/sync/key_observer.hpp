// dvv/sync/key_observer.hpp
//
// The one-way hook that lets the anti-entropy subsystem keep its Merkle
// trees incremental without the kv layer depending on sync internals:
// a replica calls on_key_touched() whenever a key's stored state may
// have changed (PUT, replication merge, repair write-back).  The
// observer records the key as dirty; digests are recomputed lazily at
// the next tree refresh, so a burst of writes to one hot key costs one
// re-hash, not one per write.
#pragma once

#include <string>

#include "core/types.hpp"

namespace dvv::sync {

struct KeyObserver {
  virtual ~KeyObserver() = default;
  virtual void on_key_touched(core::ActorId replica, const std::string& key) = 0;
};

}  // namespace dvv::sync
