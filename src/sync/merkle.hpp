// dvv/sync/merkle.hpp
//
// Fixed-fanout hash tree over one replica's keyspace partition — the
// Riak-AAE-shaped index that lets two replicas agree on which keys
// diverge by exchanging O(fanout * log(buckets)) hashes instead of the
// whole store.
//
// Shape: `levels` edge levels of fanout `fanout`, so fanout^levels leaf
// buckets.  A key maps to a leaf by hashing its bytes; the leaf stores
// the (key -> state digest) entries of its bucket in sorted order, and
// the leaf hash chains those entries deterministically.  Interior node
// hashes chain their children.  An empty subtree hashes to 0, so two
// replicas that both lack a whole key range agree without descending.
//
// Updates are incremental: set()/erase() rehash one bucket and the
// `levels` nodes above it.  All hashing is content-only — no pointers,
// no timestamps — so identical stores always produce identical trees,
// preserving the repository's determinism contract.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "sync/key_digest.hpp"

namespace dvv::sync {

struct MerkleConfig {
  std::size_t fanout = 4;
  std::size_t levels = 2;  ///< edge levels below the root (4^2 = 16 leaves)
  // Defaults suit partitions of up to a few hundred keys (a partition
  // is one preference list's key range, not the whole store).  Deepen
  // the tree for bigger partitions: hash exchange grows with
  // fanout * levels, leaf-list exchange shrinks with leaf count.
};

class MerkleTree {
 public:
  using Bucket = std::map<std::string, Digest>;  // sorted: deterministic hashing

  explicit MerkleTree(MerkleConfig config = {});

  [[nodiscard]] std::size_t fanout() const noexcept { return config_.fanout; }
  [[nodiscard]] std::size_t levels() const noexcept { return config_.levels; }
  [[nodiscard]] std::size_t leaf_count() const noexcept { return buckets_.size(); }
  [[nodiscard]] std::size_t key_count() const noexcept { return key_count_; }

  /// Inserts or updates the digest for `key`, rehashing its leaf path.
  void set(const std::string& key, Digest digest);

  /// Removes `key` if present, rehashing its leaf path.
  void erase(const std::string& key);

  [[nodiscard]] Digest root() const noexcept { return nodes_[0][0]; }

  /// Hash of node `index` at `level` (level 0 = root, level `levels()` =
  /// leaves).  Node i at level l covers children [i*fanout, (i+1)*fanout)
  /// at level l+1.
  [[nodiscard]] Digest node(std::size_t level, std::size_t index) const {
    return nodes_.at(level).at(index);
  }

  [[nodiscard]] std::size_t bucket_of(const std::string& key) const noexcept {
    return static_cast<std::size_t>(hash_string(key) % buckets_.size());
  }

  [[nodiscard]] const Bucket& bucket(std::size_t leaf) const { return buckets_.at(leaf); }

  /// Digest stored for `key`, or kMissing if absent.
  [[nodiscard]] Digest digest_of(const std::string& key) const;

 private:
  void rehash_path(std::size_t leaf);

  MerkleConfig config_;
  std::vector<Bucket> buckets_;        // one per leaf
  std::vector<std::vector<Digest>> nodes_;  // nodes_[l]: fanout^l hashes
  std::size_t key_count_ = 0;
};

}  // namespace dvv::sync
