#include "sync/merkle.hpp"

#include "util/assert.hpp"

namespace dvv::sync {

namespace {

/// Hash of one (key, digest) bucket entry.
[[nodiscard]] Digest entry_hash(const std::string& key, Digest digest) noexcept {
  return combine(hash_string(key), digest);
}

}  // namespace

MerkleTree::MerkleTree(MerkleConfig config) : config_(config) {
  DVV_ASSERT_MSG(config_.fanout >= 2, "merkle: fanout must be >= 2");
  DVV_ASSERT_MSG(config_.levels >= 1, "merkle: need at least one level");
  std::size_t width = 1;
  nodes_.resize(config_.levels + 1);
  for (std::size_t l = 0; l <= config_.levels; ++l) {
    nodes_[l].assign(width, Digest{0});
    width *= config_.fanout;
  }
  buckets_.resize(nodes_[config_.levels].size());
}

void MerkleTree::set(const std::string& key, Digest digest) {
  const std::size_t leaf = bucket_of(key);
  auto [it, inserted] = buckets_[leaf].insert_or_assign(key, digest);
  (void)it;
  if (inserted) ++key_count_;
  rehash_path(leaf);
}

void MerkleTree::erase(const std::string& key) {
  const std::size_t leaf = bucket_of(key);
  if (buckets_[leaf].erase(key) == 0) return;
  --key_count_;
  rehash_path(leaf);
}

Digest MerkleTree::digest_of(const std::string& key) const {
  const Bucket& b = buckets_[bucket_of(key)];
  const auto it = b.find(key);
  return it == b.end() ? kMissing : it->second;
}

void MerkleTree::rehash_path(std::size_t leaf) {
  // Leaf hash: chain the sorted bucket entries; empty bucket -> 0 so
  // mutually absent ranges compare equal for free.
  const Bucket& b = buckets_[leaf];
  Digest h = 0;
  if (!b.empty()) {
    h = 0x9ae16a3b2f90404fULL;  // nonzero start: {} != {entry hashing to 0}
    for (const auto& [key, digest] : b) h = combine(h, entry_hash(key, digest));
  }
  nodes_[config_.levels][leaf] = h;

  // Interior nodes: chain children; all-empty children -> 0.
  std::size_t index = leaf;
  for (std::size_t l = config_.levels; l > 0; --l) {
    index /= config_.fanout;
    const std::size_t first_child = index * config_.fanout;
    Digest acc = 0;
    bool any = false;
    for (std::size_t c = 0; c < config_.fanout; ++c) {
      const Digest child = nodes_[l][first_child + c];
      if (child != 0) any = true;
      acc = combine(acc, child);
    }
    nodes_[l - 1][index] = any ? acc : Digest{0};
  }
}

}  // namespace dvv::sync
