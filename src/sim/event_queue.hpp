// dvv/sim/event_queue.hpp
//
// Deterministic discrete-event engine.
//
// The paper's evaluation ran on a modified Riak cluster; our substitute
// (DESIGN.md §4) is a single-threaded simulation: every network hop and
// processing step is an event with a simulated timestamp, executed in
// (time, insertion-sequence) order.  Identical seeds produce identical
// executions down to the last causality decision, which is what lets the
// oracle replay and audit every run.
//
// Time is a double in milliseconds — latency models are continuous and
// the benches report means/percentiles, so float time is the natural
// fit; ties are broken by a monotonically increasing sequence number so
// determinism never rests on floating-point coincidences.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace dvv::sim {

using SimTime = double;  ///< milliseconds since simulation start

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  // The queue hands out `this`-independent handles only through its own
  // run loop; copying would duplicate scheduled work.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Schedules `fn` to run `delay` milliseconds from now (delay >= 0).
  void schedule_in(SimTime delay, Callback fn) {
    DVV_ASSERT(delay >= 0.0);
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at an absolute time (>= now).
  void schedule_at(SimTime when, Callback fn) {
    DVV_ASSERT(when >= now_);
    heap_.push(Entry{when, next_seq_++, std::move(fn)});
  }

  /// Runs events until the queue drains.  Returns events executed.
  std::uint64_t run() { return run_until(std::numeric_limits<SimTime>::infinity()); }

  /// Runs events with time <= deadline; leaves later events queued and
  /// advances now() to min(deadline, last-executed time).
  std::uint64_t run_until(SimTime deadline) {
    std::uint64_t n = 0;
    while (!heap_.empty() && heap_.top().when <= deadline) {
      // Move the callback out before popping: the callback may schedule.
      Entry top = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      DVV_ASSERT(top.when >= now_);
      now_ = top.when;
      top.fn();
      ++n;
      ++executed_;
    }
    return n;
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;  ///< FIFO among equal timestamps
    Callback fn;

    bool operator>(const Entry& o) const noexcept {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dvv::sim
