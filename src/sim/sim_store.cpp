// dvv/sim/sim_store.cpp
//
// Implementation of the event-driven store simulation over the
// type-erased kv::Store facade — see sim_store.hpp for the model.
// Non-template on purpose: the mechanism is a runtime string, so this
// whole harness compiles exactly once.
#include "sim/sim_store.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kv/store.hpp"
#include "kv/token.hpp"
#include "kv/types.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace dvv::sim {

SimStoreResult simulate_store(const SimStoreConfig& config) {
  kv::StoreConfig store_config;
  store_config.mechanism = config.mechanism;
  store_config.servers = config.servers;
  store_config.replication = config.replication;
  store_config.vnodes = config.vnodes;
  store_config.capacity = config.capacity;
  store_config.storage = config.storage;
  // Manual-pump SimTransport: fan-out and sync requests sit in real
  // queues until a scheduled pump delivers them — the in-flight window.
  store_config.transport.kind = net::TransportKind::kSim;
  std::uint64_t transport_seed = config.seed + 0x7ea7005ULL;
  store_config.transport.sim.seed = util::splitmix64(transport_seed);
  store_config.transport.sim.drop_probability = config.msg_drop_probability;
  store_config.transport.sim.duplicate_probability =
      config.msg_duplicate_probability;
  store_config.transport.sim.reorder_window = config.msg_reorder_window;
  store_config.transport.sim.auto_settle = false;
  const std::unique_ptr<kv::Store> store_ptr = kv::make_store(store_config);
  DVV_ASSERT_MSG(store_ptr != nullptr, "simulate_store: unknown mechanism name");
  kv::Store& store = *store_ptr;

  EventQueue queue;
  util::Rng rng(config.seed);
  const util::ZipfSampler zipf(config.keys, config.zipf_skew);
  SimStoreResult result;

  // Event tallies ride a LOCAL always-enabled obs::Registry — these
  // counters ARE the result, so they ignore DVV_METRICS (the global
  // registry's knob).  The run bumps handles; the end of the function
  // reads the cells back into the SimStoreResult fields, so callers and
  // tests keep their existing views.
  obs::Registry sim_metrics(/*enabled=*/true);
  const obs::Counter m_cycles = sim_metrics.counter("sim.cycles");
  const obs::Counter m_unavailable = sim_metrics.counter("sim.unavailable_requests");
  const obs::Counter m_op_timeouts = sim_metrics.counter("sim.op_timeouts");
  const obs::Counter m_reads_degraded = sim_metrics.counter("sim.reads_degraded");
  const obs::Counter m_writes_degraded = sim_metrics.counter("sim.writes_degraded");
  const obs::Counter m_replication_drops =
      sim_metrics.counter("sim.replication_drops");
  const obs::Counter m_crashes = sim_metrics.counter("sim.crashes");
  const obs::Counter m_recoveries = sim_metrics.counter("sim.recoveries");
  const obs::Counter m_wal_records = sim_metrics.counter("sim.wal_records_replayed");
  const obs::Counter m_wal_bytes = sim_metrics.counter("sim.wal_bytes_replayed");
  const obs::Counter m_wal_torn = sim_metrics.counter("sim.wal_torn_records");
  const obs::Counter m_partitions = sim_metrics.counter("sim.partitions");
  const obs::Counter m_heals = sim_metrics.counter("sim.heals");
  const obs::Counter m_aae_sessions = sim_metrics.counter("sim.aae_sessions");
  const obs::Counter m_joins = sim_metrics.counter("sim.joins");
  const obs::Counter m_leaves = sim_metrics.counter("sim.leaves");
  const obs::Counter m_rebalance_keys =
      sim_metrics.counter("sim.rebalance_keys_shipped");
  const obs::Counter m_rebalance_bytes =
      sim_metrics.counter("sim.rebalance_wire_bytes");
  const obs::Gauge m_in_flight_peak =
      sim_metrics.gauge("sim.max_requests_in_flight");

  struct ClientState {
    std::size_t remaining = 0;
    kv::CausalToken token{};  ///< opaque context ferried GET -> PUT
    kv::Key key;
    SimTime cycle_start = 0.0;
    SimTime get_start = 0.0;
  };
  std::vector<ClientState> clients(config.clients);
  std::size_t live_clients = config.clients;

  // While a replica is absorbed in a background repair session its
  // foreground replies queue behind the repair work.  Sized to the full
  // provisioned capacity: churn can bring slots >= servers into the ring.
  const std::size_t capacity =
      config.capacity == 0 ? config.servers : config.capacity;
  std::vector<SimTime> repair_busy_until(capacity, 0.0);
  auto server_stall = [&](kv::ReplicaId r) {
    const double stall = std::max(0.0, repair_busy_until[r] - queue.now());
    if (stall > 0.0) result.aae_stall_ms.add(stall);
    return stall;
  };

  // Client operations currently in flight: request id -> continuation
  // state.  Drained by drain_completed() after every pump (and by the
  // per-op deadline watchdogs).
  struct PendingGet {
    std::size_t client = 0;
    kv::ReplicaId source = 0;
  };
  struct PendingPut {
    std::size_t client = 0;
    kv::ReplicaId coordinator = 0;
    SimTime put_start = 0.0;
  };
  std::map<std::uint64_t, PendingGet> pending_gets;
  std::map<std::uint64_t, PendingPut> pending_puts;
  // Quorum-request completion handlers (the GET/PUT halves of the cycle
  // that resume once the coordination engine reports a terminal
  // outcome) and the completion drain, declared up front so the pump
  // hook below can call them.
  std::function<void(std::size_t, std::uint64_t, kv::ReplicaId)> finish_get;
  std::function<void(std::size_t, std::uint64_t, kv::ReplicaId, SimTime)> finish_put;
  std::function<void()> drain_completed;

  // One transport pump: delivers due queued messages (replication
  // fan-out, coordination scatter/replies, hint flows, sync requests),
  // resumes client operations whose quorum completed, and accounts any
  // digest sessions that finished — their wire traffic occupies both
  // endpoints, stalling foreground replies, exactly as before.
  auto pump_transport = [&] {
    store.pump();
    drain_completed();
    for (const auto& done : store.take_completed_syncs()) {
      m_aae_sessions.inc();
      result.aae_stats.merge(done.stats);
      result.aae_session_bytes.add(static_cast<double>(done.stats.wire_bytes));
      const double duration =
          static_cast<double>(done.stats.rounds) * config.network.base_ms +
          static_cast<double>(done.stats.wire_bytes) *
              (1.0 / config.network.bandwidth_bytes_per_ms +
               config.network.cpu_ms_per_byte);
      const SimTime busy = queue.now() + duration;
      repair_busy_until[done.initiator] =
          std::max(repair_busy_until[done.initiator], busy);
      repair_busy_until[done.responder] =
          std::max(repair_busy_until[done.responder], busy);
    }
  };

  // Forward declarations of the per-client phase functions, expressed as
  // std::functions so they can schedule one another on the queue.
  std::function<void(std::size_t)> begin_cycle, do_get, do_put;

  begin_cycle = [&](std::size_t c) {
    ClientState& st = clients[c];
    if (st.remaining == 0) {
      --live_clients;  // this client's loop is done
      return;
    }
    --st.remaining;
    queue.schedule_in(rng.exponential(config.think_ms), [&, c] { do_get(c); });
  };

  // Alive members of a preference list (crash injection can empty it).
  auto alive_of = [&](const std::vector<kv::ReplicaId>& pref) {
    std::vector<kv::ReplicaId> alive;
    for (const kv::ReplicaId r : pref) {
      if (store.alive(r)) alive.push_back(r);
    }
    return alive;
  };

  // GET: request leg to the chosen source replica, which then
  // COORDINATES a quorum read (begin_read_at, R = config.read_quorum).
  // R = 1 completes at the source's local read on the spot; R > 1 puts
  // CoordReadReqMsg scatter and replies in flight on the same faulty
  // queues as replication — finish_get resumes the cycle whenever the
  // quorum (or the deadline) lands.
  do_get = [&](std::size_t c) {
    ClientState& st = clients[c];
    st.key = "key-" + std::to_string(zipf.sample(rng));
    st.cycle_start = queue.now();
    st.get_start = queue.now();

    const auto alive = alive_of(store.preference_list(st.key));
    if (alive.empty()) {
      m_unavailable.inc();
      begin_cycle(c);
      return;
    }
    const kv::ReplicaId source = alive[rng.index(alive.size())];

    // Request leg (tiny: key only), then the coordinated read.
    const double request_leg = config.network.sample(rng, st.key.size() + 16);
    queue.schedule_in(request_leg, [&, c, source] {
      ClientState& state = clients[c];
      if (!store.alive(source)) {
        // Crashed while the request was in flight: timeout, retry later.
        m_unavailable.inc();
        begin_cycle(c);
        return;
      }
      kv::ReadOptions ropts;
      ropts.deadline_ticks = kNoTickDeadline;
      const std::uint64_t id =
          store.begin_read_at(state.key, source, config.read_quorum, ropts);
      m_in_flight_peak.set_max(static_cast<double>(store.requests_in_flight()));
      if (store.request_terminal(id)) {  // R=1: the local read sufficed
        finish_get(c, id, source);
        return;
      }
      pending_gets[id] = {c, source};
      // Scatter and reply legs for the asked peers: each schedules a
      // pump that delivers whatever is due by then.
      for (std::size_t peer = 1; peer < config.read_quorum; ++peer) {
        const double scatter_leg =
            config.network.sample(rng, state.key.size() + 24);
        const double reply_leg = config.network.sample(rng, 64);
        queue.schedule_in(scatter_leg, pump_transport);
        queue.schedule_in(scatter_leg + reply_leg, pump_transport);
      }
      // Deadline watchdog: an op still pending by now is finalized with
      // whatever replies arrived.
      queue.schedule_in(config.op_deadline_ms, [&, id] {
        if (!pending_gets.contains(id)) return;  // already resumed
        (void)store.finalize_request(id);
        drain_completed();
      });
    });
  };

  // Second half of a GET, once its request is terminal: harvest, adopt
  // the reply's opaque token, account the reply leg back to the client.
  finish_get = [&](std::size_t c, std::uint64_t id, kv::ReplicaId source) {
    const kv::StoreReadHarvest harvest = store.take_read_result(id);
    if (harvest.outcome == kv::CoordOutcome::kTimeout ||
        harvest.outcome == kv::CoordOutcome::kUnavailable) {
      m_op_timeouts.inc();
    }
    if (harvest.result.unavailable()) {
      m_unavailable.inc();
      begin_cycle(c);
      return;
    }
    if (harvest.result.degraded) m_reads_degraded.inc();
    const std::size_t reply_bytes = 16 + harvest.state_bytes;
    // The client adopts the reply's opaque causal token on arrival.
    // A replica busy with background repair serves the read late.
    const double reply_leg =
        config.network.sample(rng, reply_bytes) + server_stall(source);
    queue.schedule_in(reply_leg, [&, c, source, reply_bytes,
                                  token = harvest.result.token] {
      ClientState& cs = clients[c];
      if (!store.alive(source)) {
        // Crashed mid-reply: the connection drops, not the token.
        m_unavailable.inc();
        begin_cycle(c);
        return;
      }
      cs.token = token;
      result.get_latency_ms.add(queue.now() - cs.get_start);
      result.get_reply_bytes.add(static_cast<double>(reply_bytes));
      do_put(c);
    });
  };

  do_put = [&](std::size_t c) {
    ClientState& st = clients[c];
    const SimTime put_start = queue.now();

    // Request carries the opaque token plus the value — the token IS
    // the wire form of the context, so its size (header included) is
    // what the client actually uploads.
    const std::size_t request_bytes =
        st.key.size() + st.token.size() + config.value_bytes + 16;
    result.put_request_bytes.add(static_cast<double>(request_bytes));

    const auto pref = store.preference_list(st.key);
    const auto alive = alive_of(pref);
    if (alive.empty()) {
      m_unavailable.inc();
      begin_cycle(c);
      return;
    }
    const kv::ReplicaId coordinator = alive[rng.index(alive.size())];
    const std::string value =
        "c" + std::to_string(c) + "-" + std::to_string(st.remaining) +
        std::string(config.value_bytes, 'x');

    const double request_leg = config.network.sample(rng, request_bytes);
    queue.schedule_in(request_leg, [&, c, coordinator, pref, value, put_start] {
      ClientState& cs = clients[c];
      if (!store.alive(coordinator)) {
        // Crashed while the request was in flight: timeout, retry later.
        m_unavailable.inc();
        begin_cycle(c);
        return;
      }
      // The coordinator applies locally (the first ack) and the fan-out
      // is enqueued on the store's SimTransport — real messages in
      // flight that readers cannot see yet and that a crash of the
      // target (or a partition) destroys.  W=1 acks the client right
      // away; W>1 keeps the operation pending until enough
      // CoordWriteRespMsg acks ride back through the same queues.  Each
      // sampled network leg schedules a pump that delivers what is due.
      kv::WriteOptions opts;
      opts.write_quorum = config.write_quorum;
      opts.deadline_ticks = kNoTickDeadline;
      const kv::StoreWriteBegin begun =
          store.begin_write(cs.key, coordinator, kv::client_actor(c), cs.token,
                            value, pref, opts);
      // The simulator only ferries tokens the store itself minted, so a
      // rejection here would be a harness bug, not client weather.
      DVV_ASSERT_MSG(begun.ok(), "simulate_store: own token rejected");
      const std::uint64_t id = begun.id;
      m_in_flight_peak.set_max(static_cast<double>(store.requests_in_flight()));
      const kv::PutReceipt& receipt = store.peek_write_receipt(id);
      // Targets already dead at send time never even get a message.
      m_replication_drops.inc((pref.size() - 1) - receipt.replicated_to);
      const std::size_t replica_bytes =
          receipt.replicated_to == 0
              ? 0
              : receipt.replication_bytes / receipt.replicated_to;
      for (std::size_t i = 0; i < receipt.replicated_to; ++i) {
        const double fanout_leg = config.network.sample(rng, replica_bytes);
        queue.schedule_in(fanout_leg, pump_transport);
        if (config.write_quorum > 1) {
          // The ack leg back to the coordinator needs its own pump.
          queue.schedule_in(fanout_leg + config.network.sample(rng, 24),
                            pump_transport);
        }
      }
      if (store.request_terminal(id)) {  // W=1: the local apply sufficed
        finish_put(c, id, coordinator, put_start);
        return;
      }
      pending_puts[id] = {c, coordinator, put_start};
      queue.schedule_in(config.op_deadline_ms, [&, id] {
        if (!pending_puts.contains(id)) return;  // already resumed
        (void)store.finalize_request(id);
        drain_completed();
      });
    });
  };

  // Second half of a PUT, once its request is terminal: harvest the
  // receipt and account the ack leg back to the client (late if the
  // coordinator is busy with background repair).
  finish_put = [&](std::size_t c, std::uint64_t id, kv::ReplicaId coordinator,
                   SimTime put_start) {
    const kv::PutReceipt receipt = store.take_write_receipt(id);
    if (receipt.outcome == kv::CoordOutcome::kTimeout ||
        receipt.outcome == kv::CoordOutcome::kUnavailable) {
      m_op_timeouts.inc();
    }
    if (receipt.degraded) m_writes_degraded.inc();
    const double ack_leg =
        config.network.sample(rng, 32) + server_stall(coordinator);
    queue.schedule_in(ack_leg, [&, c, put_start] {
      ClientState& done = clients[c];
      result.put_latency_ms.add(queue.now() - put_start);
      result.cycle_latency_ms.add(queue.now() - done.cycle_start);
      m_cycles.inc();
      begin_cycle(c);
    });
  };

  // Resumes every client operation whose request reached a terminal
  // outcome (quorum met, deadline expired, or finalized).
  drain_completed = [&] {
    for (const std::uint64_t id : store.take_completed_requests()) {
      if (const auto it = pending_gets.find(id); it != pending_gets.end()) {
        const PendingGet p = it->second;
        pending_gets.erase(it);
        finish_get(p.client, id, p.source);
      } else if (const auto it2 = pending_puts.find(id);
                 it2 != pending_puts.end()) {
        const PendingPut p = it2->second;
        pending_puts.erase(it2);
        finish_put(p.client, id, p.coordinator, p.put_start);
      }
      // Ids in neither map were issued and harvested synchronously.
    }
  };

  // Background anti-entropy: periodic digest sync requests between
  // random replica pairs, racing the foreground workload through the
  // same message queues (a partition that cuts the pair kills the
  // request like any other message).  The session runs when the
  // request is pumped; completion accounting lives in pump_transport.
  // Stops rescheduling once every client loop has drained so the queue
  // can empty.
  std::function<void()> aae_tick = [&] {
    if (live_clients == 0) return;
    const std::size_t n = config.servers;
    auto a = static_cast<kv::ReplicaId>(rng.index(n));
    auto b = static_cast<kv::ReplicaId>(rng.index(n - 1));
    if (b >= a) ++b;
    if (store.alive(a) && store.alive(b)) {
      (void)store.request_sync(a, b);
      queue.schedule_in(config.network.sample(rng, 32), pump_transport);
    }
    queue.schedule_in(config.aae_interval_ms, aae_tick);
  };
  if (config.aae_interval_ms > 0.0) {
    queue.schedule_in(config.aae_interval_ms, aae_tick);
  }

  // Partition storms: cut the ring into two random groups, heal after
  // the configured duration.  In-flight messages crossing the cut are
  // lost at delivery time; divergence repairs through background AAE.
  std::function<void()> partition_tick = [&] {
    if (live_clients == 0) return;
    if (!store.transport().partitioned() && config.servers >= 2) {
      store.partition(net::random_split<kv::ReplicaId>(rng, config.servers),
                      "storm");
      m_partitions.inc();
      queue.schedule_in(config.partition_duration_ms, [&] {
        store.heal();
        m_heals.inc();
      });
    }
    queue.schedule_in(rng.exponential(config.partition_interval_ms),
                      partition_tick);
  };
  if (config.partition_interval_ms > 0.0) {
    queue.schedule_in(rng.exponential(config.partition_interval_ms),
                      partition_tick);
  }

  // Crash injection: a random alive replica truly crashes (volatile
  // state and un-flushed log tail gone, possibly with a torn trailing
  // write) and recovers after the configured downtime by replaying its
  // log — which keeps it busy the way background repair does.
  std::function<void()> crash_tick = [&] {
    if (live_clients == 0) return;
    std::vector<kv::ReplicaId> alive;
    for (kv::ReplicaId r = 0; r < config.servers; ++r) {
      if (store.alive(r)) alive.push_back(r);
    }
    // Keep a majority up so most preference lists stay available.
    if (alive.size() >= config.replication) {
      const kv::ReplicaId victim = alive[rng.index(alive.size())];
      const std::size_t torn = rng.chance(config.torn_write_probability)
                                   ? 1 + rng.index(32)
                                   : 0;
      store.crash(victim, torn);
      m_crashes.inc();
      queue.schedule_in(config.crash_downtime_ms, [&, victim] {
        const store::RecoveryStats replay = store.recover(victim);
        m_recoveries.inc();
        m_wal_records.inc(replay.records_replayed);
        m_wal_bytes.inc(replay.bytes_replayed);
        m_wal_torn.inc(replay.torn_records_dropped);
        // Log replay occupies the server like repair traffic does:
        // sequential read + decode of the surviving records.
        const double replay_ms =
            static_cast<double>(replay.bytes_replayed) *
            (1.0 / config.network.bandwidth_bytes_per_ms +
             config.network.cpu_ms_per_byte);
        repair_busy_until[victim] =
            std::max(repair_busy_until[victim], queue.now() + replay_ms);
      });
    }
    queue.schedule_in(rng.exponential(config.crash_interval_ms), crash_tick);
  };
  if (config.crash_interval_ms > 0.0) {
    queue.schedule_in(rng.exponential(config.crash_interval_ms), crash_tick);
  }

  // Ring churn: one membership transition at a time, rebalanced to
  // completion on the spot (the facade's join/leave stop nothing here —
  // the sim transport is inline — but the transfer walks are the same
  // Merkle sessions a real rebalance runs).  A transition needs every
  // transfer source reachable, so an instant with a crashed member or
  // an active partition is skipped, not retried early: churn is an
  // operator action, and operators wait for a healthy ring.
  std::function<void()> churn_tick = [&] {
    if (live_clients == 0) return;
    queue.schedule_in(rng.exponential(config.churn_interval_ms), churn_tick);
    if (store.transport().partitioned()) return;
    const std::vector<kv::ReplicaId> members = store.members();
    for (const kv::ReplicaId m : members) {
      if (!store.alive(m)) return;  // dead transfer source: skip this tick
    }
    std::vector<kv::ReplicaId> joinable;
    for (std::size_t r = 0; r < capacity; ++r) {
      const auto id = static_cast<kv::ReplicaId>(r);
      if (store.alive(id) &&
          std::find(members.begin(), members.end(), id) == members.end()) {
        joinable.push_back(id);
      }
    }
    const bool can_join = !joinable.empty();
    const bool can_leave = members.size() > config.replication;
    if (!can_join && !can_leave) return;
    const bool join = can_join && (!can_leave || rng.chance(0.5));
    if (join) {
      const bool ok = store.join_node(joinable[rng.index(joinable.size())]);
      DVV_ASSERT_MSG(ok, "sim churn: join precondition broken");
      m_joins.inc();
    } else {
      const bool ok = store.leave_node(members[rng.index(members.size())]);
      DVV_ASSERT_MSG(ok, "sim churn: leave precondition broken");
      m_leaves.inc();
    }
    const membership::RebalanceStats done = store.complete_rebalance();
    m_rebalance_keys.inc(done.totals.keys_shipped);
    m_rebalance_bytes.inc(done.totals.wire_bytes);
    // The walks' wire traffic occupies the ring like repair traffic:
    // foreground requests queue behind the rebalance everywhere (the
    // walks touch old owners and new owners across the whole plan).
    const double busy_ms =
        static_cast<double>(done.totals.wire_bytes) *
        (1.0 / config.network.bandwidth_bytes_per_ms +
         config.network.cpu_ms_per_byte);
    if (busy_ms > 0.0) {
      for (const kv::ReplicaId m : store.members()) {
        repair_busy_until[m] =
            std::max(repair_busy_until[m], queue.now() + busy_ms);
      }
    }
  };
  if (config.churn_interval_ms > 0.0) {
    queue.schedule_in(rng.exponential(config.churn_interval_ms), churn_tick);
  }

  for (std::size_t c = 0; c < config.clients; ++c) {
    clients[c].remaining = config.ops_per_client;
    begin_cycle(c);
  }
  queue.run();
  // Drain whatever is still in flight (fan-out whose pump landed before
  // its due tick, duplicate copies, unanswered sync requests).
  while (!store.transport().idle()) pump_transport();

  result.sim_duration_ms = queue.now();
  m_replication_drops.inc(store.delivery_drops().replicate);

  // Fold the registry cells back into the result's view fields.
  result.cycles = m_cycles.value();
  result.unavailable_requests = m_unavailable.value();
  result.op_timeouts = m_op_timeouts.value();
  result.reads_degraded = m_reads_degraded.value();
  result.writes_degraded = m_writes_degraded.value();
  result.replication_drops = m_replication_drops.value();
  result.crashes = m_crashes.value();
  result.recoveries = m_recoveries.value();
  result.wal_records_replayed = m_wal_records.value();
  result.wal_bytes_replayed = m_wal_bytes.value();
  result.wal_torn_records = m_wal_torn.value();
  result.partitions = m_partitions.value();
  result.heals = m_heals.value();
  result.aae_sessions = m_aae_sessions.value();
  result.joins = m_joins.value();
  result.leaves = m_leaves.value();
  result.rebalance_keys_shipped = m_rebalance_keys.value();
  result.rebalance_wire_bytes = m_rebalance_bytes.value();
  result.final_ring_epoch = store.ring_epoch();
  result.max_requests_in_flight =
      static_cast<std::uint64_t>(m_in_flight_peak.value());

  const net::TransportStats& net_stats = store.transport().stats();
  result.messages_sent = net_stats.sent;
  result.messages_delivered = net_stats.delivered;
  result.messages_dropped = net_stats.dropped;
  result.messages_duplicated = net_stats.duplicated;
  result.partition_drops = net_stats.partition_dropped;
  const kv::CoordStats& coord_stats = store.coord_stats();
  result.late_replies_dropped = coord_stats.late_replies_dropped;
  result.duplicate_replies_dropped = coord_stats.duplicate_replies_dropped;
  result.stale_replies_dropped = coord_stats.stale_replies_dropped;
  return result;
}

}  // namespace dvv::sim
