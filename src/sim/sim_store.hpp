// dvv/sim/sim_store.hpp
//
// Event-driven simulation of the full client/server request path — the
// substitute for the paper's physical Riak cluster in the latency
// evaluation (E7, "better latency when serving requests").
//
// Each simulated client runs a closed loop on the shared EventQueue:
//
//   think -> GET request -> (server) -> GET reply -> PUT request
//        -> (coordinator applies, acks; replication fans out ASYNC)
//        -> PUT ack -> think -> ...
//
// Every network leg's delay is sampled from the LatencyModel with the
// *actual serialized size* of what crosses the wire: GET replies carry
// the sibling values plus their clocks, PUT requests carry the causal
// context plus the value.  Mechanisms with bigger clocks therefore pay
// their cost exactly where the paper says they do — on the wire and in
// serialization — and nowhere else.
//
// Client operations are REAL coordinator requests (src/kv/coordinator):
// a GET is begin_read_at (R distinct replies complete it), a PUT is
// begin_write (W distinct acks complete it; the coordinator's local
// apply is the first, so R = W = 1 reproduces the historical
// coordinator-local behavior).  Scatter, replies and acks are queued
// messages in the cluster's SimTransport (src/net) — each sampled
// network leg schedules a transport pump, so "in flight" is state a
// reader cannot see yet and a crash or partition can destroy — and with
// R/W > 1 MANY client operations are concurrently in flight across
// partition storms and crash storms, completing (or timing out at
// `op_deadline_ms`) whenever their quorum of replies lands.
// Determinism: single-threaded event queue, every random choice from
// one seeded Rng (the transport's fault stream is forked from the same
// seed; the coordination engine makes no random choices at all).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include <algorithm>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/latency.hpp"
#include "store/backend.hpp"
#include "sync/anti_entropy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dvv::sim {

/// The simulator times out operations in simulated MILLISECONDS (the
/// op_deadline_ms watchdog events), so the engine's tick deadline is
/// pushed out of the way: coordination ticks advance once per pump,
/// i.e. once per network leg of ANY client, and a tick-based deadline
/// would make one op's patience depend on everyone else's traffic.
inline constexpr std::uint64_t kNoTickDeadline = 1ULL << 62;

struct SimStoreConfig {
  std::size_t clients = 16;
  std::size_t keys = 64;
  double zipf_skew = 0.99;
  std::size_t ops_per_client = 200;  ///< read-modify-write cycles per client
  double think_ms = 2.0;             ///< mean think time between cycles
  std::size_t value_bytes = 64;      ///< payload size per write
  LatencyModel network{};
  std::uint64_t seed = 1;

  /// Cluster topology (was hardcoded 5/3: partition scenarios need to
  /// vary the shape — a 2-server ring cannot even express a split, a
  /// 9-server one can lose a minority group and keep serving).
  std::size_t servers = 5;
  std::size_t replication = 3;
  std::size_t vnodes = 64;

  /// Transport fault injection on the replication/sync message layer
  /// (net::SimTransport): per-message drop/duplicate probability and
  /// reorder window (in pump ticks).
  double msg_drop_probability = 0.0;
  double msg_duplicate_probability = 0.0;
  std::size_t msg_reorder_window = 0;

  /// Partition storms: every ~`partition_interval_ms` (exponential) the
  /// ring is cut into two random groups for `partition_duration_ms`,
  /// then healed.  Messages crossing the cut — including in-flight ones
  /// — are lost; anti-entropy repairs the divergence after heal.
  /// 0 disables partitions.
  double partition_interval_ms = 0.0;
  double partition_duration_ms = 20.0;

  /// Background anti-entropy: every `aae_interval_ms` a random alive
  /// replica pair runs one digest sync session (src/sync).  The session
  /// keeps a replica busy for the simulated duration of its wire
  /// traffic, and foreground requests hitting a busy replica stall for
  /// the residual — repair traffic competes with request latency.
  /// 0 disables background AAE.
  double aae_interval_ms = 0.0;

  /// Per-replica durability model (src/store).  With the default
  /// MemBackend a crash is total state loss; with WalBackend recovery
  /// replays the flushed log.
  store::BackendConfig storage{};

  /// Crash injection: every ~`crash_interval_ms` (exponential) a random
  /// alive replica truly crashes — volatile state dropped, un-flushed
  /// log tail lost — and recovers `crash_downtime_ms` later by storage
  /// replay (which keeps it busy for the replay's simulated duration).
  /// 0 disables crashes.  Requests routed to a crashed replica count as
  /// unavailable; replication deliveries to it are dropped.
  double crash_interval_ms = 0.0;
  double crash_downtime_ms = 25.0;
  /// P(a crash tears the trailing un-flushed record mid-write); the
  /// torn frame is rejected by CRC at recovery.
  double torn_write_probability = 0.0;

  /// Quorum coordination (src/kv/coordinator.hpp): a GET completes at
  /// `read_quorum` distinct replies, a PUT at `write_quorum` distinct
  /// acks (the coordinator's local apply/read is the first of each).
  /// R = W = 1 — the default — completes at the coordinator alone, the
  /// historical behavior; higher values put real scatter/reply traffic
  /// in flight, so concurrent client operations ride the same faulty
  /// queues as replication.  An operation still pending after
  /// `op_deadline_ms` of simulated time is finalized with whatever
  /// replies arrived (a timeout, reported degraded when below quorum).
  std::size_t read_quorum = 1;
  std::size_t write_quorum = 1;
  double op_deadline_ms = 50.0;
};

struct SimStoreResult {
  util::Samples get_latency_ms;   ///< request->reply round trip
  util::Samples put_latency_ms;   ///< request->ack round trip
  util::Samples cycle_latency_ms; ///< full GET+PUT cycle
  util::Samples get_reply_bytes;  ///< serialized reply payloads
  util::Samples put_request_bytes;
  double sim_duration_ms = 0.0;
  std::uint64_t cycles = 0;

  // Background anti-entropy activity (zero when aae_interval_ms == 0).
  std::uint64_t aae_sessions = 0;
  sync::SyncStats aae_stats{};          ///< summed over all sessions
  util::Samples aae_session_bytes;      ///< wire bytes per session
  util::Samples aae_stall_ms;           ///< foreground stalls behind repair

  // Crash/recovery activity (zero when crash_interval_ms == 0).
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t wal_bytes_replayed = 0;
  std::uint64_t wal_torn_records = 0;      ///< CRC-rejected torn tails
  std::uint64_t unavailable_requests = 0;  ///< GET/PUT hit no alive replica
  std::uint64_t replication_drops = 0;     ///< fan-out lost to a dead target

  // Message-layer activity (net::SimTransport + cluster delivery).
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;      ///< seeded drop probability
  std::uint64_t messages_duplicated = 0;
  std::uint64_t partition_drops = 0;       ///< lost to a cut link
  std::uint64_t partitions = 0;            ///< partition events injected
  std::uint64_t heals = 0;

  // Quorum-coordination activity (src/kv/coordinator.hpp).
  std::uint64_t reads_degraded = 0;        ///< completed below read_quorum
  std::uint64_t writes_degraded = 0;       ///< completed below intended fan-out
  std::uint64_t op_timeouts = 0;           ///< finalized at a deadline
  std::uint64_t late_replies_dropped = 0;  ///< reply after completion
  std::uint64_t duplicate_replies_dropped = 0;  ///< same responder twice
  std::uint64_t stale_replies_dropped = 0;      ///< reply to a reused slot
  std::uint64_t max_requests_in_flight = 0;     ///< concurrent client ops peak
};

/// Runs the closed-loop workload for one mechanism.  The cluster is
/// created inside so that every mechanism sees an identical topology.
template <kv::CausalityMechanism M>
SimStoreResult simulate_store(const SimStoreConfig& config, M mechanism) {
  kv::ClusterConfig cluster_config;
  cluster_config.servers = config.servers;
  cluster_config.replication = config.replication;
  cluster_config.vnodes = config.vnodes;
  cluster_config.storage = config.storage;
  // Manual-pump SimTransport: fan-out and sync requests sit in real
  // queues until a scheduled pump delivers them — the in-flight window.
  cluster_config.transport.kind = net::TransportKind::kSim;
  std::uint64_t transport_seed = config.seed + 0x7ea7005ULL;
  cluster_config.transport.sim.seed = util::splitmix64(transport_seed);
  cluster_config.transport.sim.drop_probability = config.msg_drop_probability;
  cluster_config.transport.sim.duplicate_probability =
      config.msg_duplicate_probability;
  cluster_config.transport.sim.reorder_window = config.msg_reorder_window;
  cluster_config.transport.sim.auto_settle = false;
  kv::Cluster<M> cluster(cluster_config, std::move(mechanism));

  EventQueue queue;
  util::Rng rng(config.seed);
  const util::ZipfSampler zipf(config.keys, config.zipf_skew);
  SimStoreResult result;

  struct ClientState {
    std::size_t remaining = 0;
    typename M::Context context{};
    kv::Key key;
    SimTime cycle_start = 0.0;
    SimTime get_start = 0.0;
  };
  std::vector<ClientState> clients(config.clients);
  std::size_t live_clients = config.clients;

  // While a replica is absorbed in a background repair session its
  // foreground replies queue behind the repair work.
  std::vector<SimTime> repair_busy_until(config.servers, 0.0);
  auto server_stall = [&](kv::ReplicaId r) {
    const double stall = std::max(0.0, repair_busy_until[r] - queue.now());
    if (stall > 0.0) result.aae_stall_ms.add(stall);
    return stall;
  };

  const M& mech = cluster.mechanism();

  // Client operations currently in flight: request id -> continuation
  // state.  Drained by drain_completed() after every pump (and by the
  // per-op deadline watchdogs).
  struct PendingGet {
    std::size_t client = 0;
    kv::ReplicaId source = 0;
  };
  struct PendingPut {
    std::size_t client = 0;
    kv::ReplicaId coordinator = 0;
    SimTime put_start = 0.0;
  };
  std::map<std::uint64_t, PendingGet> pending_gets;
  std::map<std::uint64_t, PendingPut> pending_puts;
  // Quorum-request completion handlers (the GET/PUT halves of the cycle
  // that resume once the coordination engine reports a terminal
  // outcome) and the completion drain, declared up front so the pump
  // hook below can call them.
  std::function<void(std::size_t, std::uint64_t, kv::ReplicaId)> finish_get;
  std::function<void(std::size_t, std::uint64_t, kv::ReplicaId, SimTime)> finish_put;
  std::function<void()> drain_completed;

  // One transport pump: delivers due queued messages (replication
  // fan-out, coordination scatter/replies, hint flows, sync requests),
  // resumes client operations whose quorum completed, and accounts any
  // digest sessions that finished — their wire traffic occupies both
  // endpoints, stalling foreground replies, exactly as before.
  auto pump_transport = [&] {
    cluster.pump();
    drain_completed();
    for (const auto& done : cluster.take_completed_syncs()) {
      ++result.aae_sessions;
      result.aae_stats.merge(done.stats);
      result.aae_session_bytes.add(static_cast<double>(done.stats.wire_bytes));
      const double duration =
          static_cast<double>(done.stats.rounds) * config.network.base_ms +
          static_cast<double>(done.stats.wire_bytes) *
              (1.0 / config.network.bandwidth_bytes_per_ms +
               config.network.cpu_ms_per_byte);
      const SimTime busy = queue.now() + duration;
      repair_busy_until[done.initiator] =
          std::max(repair_busy_until[done.initiator], busy);
      repair_busy_until[done.responder] =
          std::max(repair_busy_until[done.responder], busy);
    }
  };

  // Forward declarations of the per-client phase functions, expressed as
  // std::functions so they can schedule one another on the queue.
  std::function<void(std::size_t)> begin_cycle, do_get, do_put;

  begin_cycle = [&](std::size_t c) {
    ClientState& st = clients[c];
    if (st.remaining == 0) {
      --live_clients;  // this client's loop is done
      return;
    }
    --st.remaining;
    queue.schedule_in(rng.exponential(config.think_ms), [&, c] { do_get(c); });
  };

  // Alive members of a preference list (crash injection can empty it).
  auto alive_of = [&](const std::vector<kv::ReplicaId>& pref) {
    std::vector<kv::ReplicaId> alive;
    for (const kv::ReplicaId r : pref) {
      if (cluster.replica(r).alive()) alive.push_back(r);
    }
    return alive;
  };

  // GET: request leg to the chosen source replica, which then
  // COORDINATES a quorum read (begin_read_at, R = config.read_quorum).
  // R = 1 completes at the source's local read on the spot; R > 1 puts
  // CoordReadReqMsg scatter and replies in flight on the same faulty
  // queues as replication — finish_get resumes the cycle whenever the
  // quorum (or the deadline) lands.
  do_get = [&](std::size_t c) {
    ClientState& st = clients[c];
    st.key = "key-" + std::to_string(zipf.sample(rng));
    st.cycle_start = queue.now();
    st.get_start = queue.now();

    const auto alive = alive_of(cluster.preference_list(st.key));
    if (alive.empty()) {
      ++result.unavailable_requests;
      begin_cycle(c);
      return;
    }
    const kv::ReplicaId source = alive[rng.index(alive.size())];

    // Request leg (tiny: key only), then the coordinated read.
    const double request_leg = config.network.sample(rng, st.key.size() + 16);
    queue.schedule_in(request_leg, [&, c, source] {
      ClientState& state = clients[c];
      if (!cluster.replica(source).alive()) {
        // Crashed while the request was in flight: timeout, retry later.
        ++result.unavailable_requests;
        begin_cycle(c);
        return;
      }
      kv::ReadOptions ropts;
      ropts.deadline_ticks = kNoTickDeadline;
      const std::uint64_t id =
          cluster.begin_read_at(state.key, source, config.read_quorum, ropts);
      result.max_requests_in_flight = std::max(
          result.max_requests_in_flight,
          static_cast<std::uint64_t>(cluster.requests_in_flight()));
      if (cluster.request_terminal(id)) {  // R=1: the local read sufficed
        finish_get(c, id, source);
        return;
      }
      pending_gets[id] = {c, source};
      // Scatter and reply legs for the asked peers: each schedules a
      // pump that delivers whatever is due by then.
      for (std::size_t peer = 1; peer < config.read_quorum; ++peer) {
        const double scatter_leg =
            config.network.sample(rng, state.key.size() + 24);
        const double reply_leg = config.network.sample(rng, 64);
        queue.schedule_in(scatter_leg, pump_transport);
        queue.schedule_in(scatter_leg + reply_leg, pump_transport);
      }
      // Deadline watchdog: an op still pending by now is finalized with
      // whatever replies arrived.
      queue.schedule_in(config.op_deadline_ms, [&, id] {
        if (!pending_gets.contains(id)) return;  // already resumed
        (void)cluster.finalize_request(id);
        drain_completed();
      });
    });
  };

  // Second half of a GET, once its request is terminal: harvest, adopt
  // the merged context, account the reply leg back to the client.
  finish_get = [&](std::size_t c, std::uint64_t id, kv::ReplicaId source) {
    const auto harvest = cluster.take_read_result(id);
    if (harvest.outcome == kv::CoordOutcome::kTimeout ||
        harvest.outcome == kv::CoordOutcome::kUnavailable) {
      ++result.op_timeouts;
    }
    if (harvest.result.unavailable) {
      ++result.unavailable_requests;
      begin_cycle(c);
      return;
    }
    if (harvest.result.degraded) ++result.reads_degraded;
    const std::size_t reply_bytes = 16 + harvest.state_bytes;
    // The client adopts the reply's merged causal context on arrival.
    // A replica busy with background repair serves the read late.
    const double reply_leg =
        config.network.sample(rng, reply_bytes) + server_stall(source);
    queue.schedule_in(reply_leg, [&, c, source, reply_bytes,
                                  ctx = harvest.result.context] {
      ClientState& cs = clients[c];
      if (!cluster.replica(source).alive()) {
        // Crashed mid-reply: the connection drops, not the context.
        ++result.unavailable_requests;
        begin_cycle(c);
        return;
      }
      cs.context = ctx;
      result.get_latency_ms.add(queue.now() - cs.get_start);
      result.get_reply_bytes.add(static_cast<double>(reply_bytes));
      do_put(c);
    });
  };

  do_put = [&](std::size_t c) {
    ClientState& st = clients[c];
    const SimTime put_start = queue.now();

    // Request carries the context plus the value.
    codec::Writer ctx_size;
    codec::encode(ctx_size, st.context);
    const std::size_t request_bytes =
        st.key.size() + ctx_size.size() + config.value_bytes + 16;
    result.put_request_bytes.add(static_cast<double>(request_bytes));

    const auto pref = cluster.preference_list(st.key);
    const auto alive = alive_of(pref);
    if (alive.empty()) {
      ++result.unavailable_requests;
      begin_cycle(c);
      return;
    }
    const kv::ReplicaId coordinator = alive[rng.index(alive.size())];
    const std::string value =
        "c" + std::to_string(c) + "-" + std::to_string(st.remaining) +
        std::string(config.value_bytes, 'x');

    const double request_leg = config.network.sample(rng, request_bytes);
    queue.schedule_in(request_leg, [&, c, coordinator, pref, value, put_start] {
      ClientState& cs = clients[c];
      if (!cluster.replica(coordinator).alive()) {
        // Crashed while the request was in flight: timeout, retry later.
        ++result.unavailable_requests;
        begin_cycle(c);
        return;
      }
      // The coordinator applies locally (the first ack) and the fan-out
      // is enqueued on the cluster's SimTransport — real messages in
      // flight that readers cannot see yet and that a crash of the
      // target (or a partition) destroys.  W=1 acks the client right
      // away; W>1 keeps the operation pending until enough
      // CoordWriteRespMsg acks ride back through the same queues.  Each
      // sampled network leg schedules a pump that delivers what is due.
      kv::WriteOptions opts;
      opts.write_quorum = config.write_quorum;
      opts.deadline_ticks = kNoTickDeadline;
      const std::uint64_t id =
          cluster.begin_write(cs.key, coordinator, kv::client_actor(c),
                              cs.context, value, pref, opts);
      result.max_requests_in_flight = std::max(
          result.max_requests_in_flight,
          static_cast<std::uint64_t>(cluster.requests_in_flight()));
      const auto& receipt = cluster.peek_write_receipt(id);
      // Targets already dead at send time never even get a message.
      result.replication_drops += (pref.size() - 1) - receipt.replicated_to;
      const std::size_t replica_bytes =
          receipt.replicated_to == 0
              ? 0
              : receipt.replication_bytes / receipt.replicated_to;
      for (std::size_t i = 0; i < receipt.replicated_to; ++i) {
        const double fanout_leg = config.network.sample(rng, replica_bytes);
        queue.schedule_in(fanout_leg, pump_transport);
        if (config.write_quorum > 1) {
          // The ack leg back to the coordinator needs its own pump.
          queue.schedule_in(fanout_leg + config.network.sample(rng, 24),
                            pump_transport);
        }
      }
      if (cluster.request_terminal(id)) {  // W=1: the local apply sufficed
        finish_put(c, id, coordinator, put_start);
        return;
      }
      pending_puts[id] = {c, coordinator, put_start};
      queue.schedule_in(config.op_deadline_ms, [&, id] {
        if (!pending_puts.contains(id)) return;  // already resumed
        (void)cluster.finalize_request(id);
        drain_completed();
      });
    });
  };

  // Second half of a PUT, once its request is terminal: harvest the
  // receipt and account the ack leg back to the client (late if the
  // coordinator is busy with background repair).
  finish_put = [&](std::size_t c, std::uint64_t id, kv::ReplicaId coordinator,
                   SimTime put_start) {
    const auto receipt = cluster.take_write_receipt(id);
    if (receipt.outcome == kv::CoordOutcome::kTimeout ||
        receipt.outcome == kv::CoordOutcome::kUnavailable) {
      ++result.op_timeouts;
    }
    if (receipt.degraded) ++result.writes_degraded;
    const double ack_leg =
        config.network.sample(rng, 32) + server_stall(coordinator);
    queue.schedule_in(ack_leg, [&, c, put_start] {
      ClientState& done = clients[c];
      result.put_latency_ms.add(queue.now() - put_start);
      result.cycle_latency_ms.add(queue.now() - done.cycle_start);
      ++result.cycles;
      begin_cycle(c);
    });
  };

  // Resumes every client operation whose request reached a terminal
  // outcome (quorum met, deadline expired, or finalized).
  drain_completed = [&] {
    for (const std::uint64_t id : cluster.take_completed_requests()) {
      if (const auto it = pending_gets.find(id); it != pending_gets.end()) {
        const PendingGet p = it->second;
        pending_gets.erase(it);
        finish_get(p.client, id, p.source);
      } else if (const auto it2 = pending_puts.find(id);
                 it2 != pending_puts.end()) {
        const PendingPut p = it2->second;
        pending_puts.erase(it2);
        finish_put(p.client, id, p.coordinator, p.put_start);
      }
      // Ids in neither map were issued and harvested synchronously.
    }
  };

  // Background anti-entropy: periodic digest sync requests between
  // random replica pairs, racing the foreground workload through the
  // same message queues (a partition that cuts the pair kills the
  // request like any other message).  The session runs when the
  // request is pumped; completion accounting lives in pump_transport.
  // Stops rescheduling once every client loop has drained so the queue
  // can empty.
  std::function<void()> aae_tick = [&] {
    if (live_clients == 0) return;
    const std::size_t n = config.servers;
    auto a = static_cast<kv::ReplicaId>(rng.index(n));
    auto b = static_cast<kv::ReplicaId>(rng.index(n - 1));
    if (b >= a) ++b;
    if (cluster.replica(a).alive() && cluster.replica(b).alive()) {
      (void)cluster.request_sync(a, b);
      queue.schedule_in(config.network.sample(rng, 32), pump_transport);
    }
    queue.schedule_in(config.aae_interval_ms, aae_tick);
  };
  if (config.aae_interval_ms > 0.0) {
    queue.schedule_in(config.aae_interval_ms, aae_tick);
  }

  // Partition storms: cut the ring into two random groups, heal after
  // the configured duration.  In-flight messages crossing the cut are
  // lost at delivery time; divergence repairs through background AAE.
  std::function<void()> partition_tick = [&] {
    if (live_clients == 0) return;
    if (!cluster.transport().partitioned() && config.servers >= 2) {
      cluster.partition(net::random_split<kv::ReplicaId>(rng, config.servers),
                        "storm");
      ++result.partitions;
      queue.schedule_in(config.partition_duration_ms, [&] {
        cluster.heal();
        ++result.heals;
      });
    }
    queue.schedule_in(rng.exponential(config.partition_interval_ms),
                      partition_tick);
  };
  if (config.partition_interval_ms > 0.0) {
    queue.schedule_in(rng.exponential(config.partition_interval_ms),
                      partition_tick);
  }

  // Crash injection: a random alive replica truly crashes (volatile
  // state and un-flushed log tail gone, possibly with a torn trailing
  // write) and recovers after the configured downtime by replaying its
  // log — which keeps it busy the way background repair does.
  std::function<void()> crash_tick = [&] {
    if (live_clients == 0) return;
    std::vector<kv::ReplicaId> alive;
    for (kv::ReplicaId r = 0; r < config.servers; ++r) {
      if (cluster.replica(r).alive()) alive.push_back(r);
    }
    // Keep a majority up so most preference lists stay available.
    if (alive.size() >= config.replication) {
      const kv::ReplicaId victim = alive[rng.index(alive.size())];
      const std::size_t torn = rng.chance(config.torn_write_probability)
                                   ? 1 + rng.index(32)
                                   : 0;
      cluster.crash(victim, torn);
      ++result.crashes;
      queue.schedule_in(config.crash_downtime_ms, [&, victim] {
        const store::RecoveryStats replay = cluster.recover(victim);
        ++result.recoveries;
        result.wal_records_replayed += replay.records_replayed;
        result.wal_bytes_replayed += replay.bytes_replayed;
        result.wal_torn_records += replay.torn_records_dropped;
        // Log replay occupies the server like repair traffic does:
        // sequential read + decode of the surviving records.
        const double replay_ms =
            static_cast<double>(replay.bytes_replayed) *
            (1.0 / config.network.bandwidth_bytes_per_ms +
             config.network.cpu_ms_per_byte);
        repair_busy_until[victim] =
            std::max(repair_busy_until[victim], queue.now() + replay_ms);
      });
    }
    queue.schedule_in(rng.exponential(config.crash_interval_ms), crash_tick);
  };
  if (config.crash_interval_ms > 0.0) {
    queue.schedule_in(rng.exponential(config.crash_interval_ms), crash_tick);
  }

  for (std::size_t c = 0; c < config.clients; ++c) {
    clients[c].remaining = config.ops_per_client;
    begin_cycle(c);
  }
  queue.run();
  // Drain whatever is still in flight (fan-out whose pump landed before
  // its due tick, duplicate copies, unanswered sync requests).
  while (!cluster.transport().idle()) pump_transport();

  result.sim_duration_ms = queue.now();
  result.replication_drops += cluster.delivery_drops().replicate;
  const net::TransportStats& net_stats = cluster.transport().stats();
  result.messages_sent = net_stats.sent;
  result.messages_delivered = net_stats.delivered;
  result.messages_dropped = net_stats.dropped;
  result.messages_duplicated = net_stats.duplicated;
  result.partition_drops = net_stats.partition_dropped;
  const kv::CoordStats& coord_stats = cluster.coord_stats();
  result.late_replies_dropped = coord_stats.late_replies_dropped;
  result.duplicate_replies_dropped = coord_stats.duplicate_replies_dropped;
  result.stale_replies_dropped = coord_stats.stale_replies_dropped;
  return result;
}

}  // namespace dvv::sim
