// dvv/sim/sim_store.hpp
//
// Event-driven simulation of the full client/server request path — the
// substitute for the paper's physical Riak cluster in the latency
// evaluation (E7, "better latency when serving requests").
//
// Each simulated client runs a closed loop on the shared EventQueue:
//
//   think -> GET request -> (server) -> GET reply -> PUT request
//        -> (coordinator applies, acks; replication fans out ASYNC)
//        -> PUT ack -> think -> ...
//
// Every network leg's delay is sampled from the LatencyModel with the
// *actual serialized size* of what crosses the wire: GET replies carry
// the sibling values plus their clocks, PUT requests carry the causal
// context plus the value.  Mechanisms with bigger clocks therefore pay
// their cost exactly where the paper says they do — on the wire and in
// serialization — and nowhere else.
//
// Replication is asynchronous (coordinator acks after the local apply,
// like Riak with W=1): the fan-out is REAL queued messages in the
// cluster's SimTransport (src/net) — each sampled network leg schedules
// a transport pump, so "in flight" is state a reader cannot see yet and
// a crash or partition can destroy.  Determinism: single-threaded event
// queue, every random choice from one seeded Rng (the transport's fault
// stream is forked from the same seed).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include <algorithm>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "net/sim_transport.hpp"
#include "net/transport.hpp"
#include "sim/event_queue.hpp"
#include "sim/latency.hpp"
#include "store/backend.hpp"
#include "sync/anti_entropy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace dvv::sim {

struct SimStoreConfig {
  std::size_t clients = 16;
  std::size_t keys = 64;
  double zipf_skew = 0.99;
  std::size_t ops_per_client = 200;  ///< read-modify-write cycles per client
  double think_ms = 2.0;             ///< mean think time between cycles
  std::size_t value_bytes = 64;      ///< payload size per write
  LatencyModel network{};
  std::uint64_t seed = 1;

  /// Cluster topology (was hardcoded 5/3: partition scenarios need to
  /// vary the shape — a 2-server ring cannot even express a split, a
  /// 9-server one can lose a minority group and keep serving).
  std::size_t servers = 5;
  std::size_t replication = 3;
  std::size_t vnodes = 64;

  /// Transport fault injection on the replication/sync message layer
  /// (net::SimTransport): per-message drop/duplicate probability and
  /// reorder window (in pump ticks).
  double msg_drop_probability = 0.0;
  double msg_duplicate_probability = 0.0;
  std::size_t msg_reorder_window = 0;

  /// Partition storms: every ~`partition_interval_ms` (exponential) the
  /// ring is cut into two random groups for `partition_duration_ms`,
  /// then healed.  Messages crossing the cut — including in-flight ones
  /// — are lost; anti-entropy repairs the divergence after heal.
  /// 0 disables partitions.
  double partition_interval_ms = 0.0;
  double partition_duration_ms = 20.0;

  /// Background anti-entropy: every `aae_interval_ms` a random alive
  /// replica pair runs one digest sync session (src/sync).  The session
  /// keeps a replica busy for the simulated duration of its wire
  /// traffic, and foreground requests hitting a busy replica stall for
  /// the residual — repair traffic competes with request latency.
  /// 0 disables background AAE.
  double aae_interval_ms = 0.0;

  /// Per-replica durability model (src/store).  With the default
  /// MemBackend a crash is total state loss; with WalBackend recovery
  /// replays the flushed log.
  store::BackendConfig storage{};

  /// Crash injection: every ~`crash_interval_ms` (exponential) a random
  /// alive replica truly crashes — volatile state dropped, un-flushed
  /// log tail lost — and recovers `crash_downtime_ms` later by storage
  /// replay (which keeps it busy for the replay's simulated duration).
  /// 0 disables crashes.  Requests routed to a crashed replica count as
  /// unavailable; replication deliveries to it are dropped.
  double crash_interval_ms = 0.0;
  double crash_downtime_ms = 25.0;
  /// P(a crash tears the trailing un-flushed record mid-write); the
  /// torn frame is rejected by CRC at recovery.
  double torn_write_probability = 0.0;
};

struct SimStoreResult {
  util::Samples get_latency_ms;   ///< request->reply round trip
  util::Samples put_latency_ms;   ///< request->ack round trip
  util::Samples cycle_latency_ms; ///< full GET+PUT cycle
  util::Samples get_reply_bytes;  ///< serialized reply payloads
  util::Samples put_request_bytes;
  double sim_duration_ms = 0.0;
  std::uint64_t cycles = 0;

  // Background anti-entropy activity (zero when aae_interval_ms == 0).
  std::uint64_t aae_sessions = 0;
  sync::SyncStats aae_stats{};          ///< summed over all sessions
  util::Samples aae_session_bytes;      ///< wire bytes per session
  util::Samples aae_stall_ms;           ///< foreground stalls behind repair

  // Crash/recovery activity (zero when crash_interval_ms == 0).
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t wal_bytes_replayed = 0;
  std::uint64_t wal_torn_records = 0;      ///< CRC-rejected torn tails
  std::uint64_t unavailable_requests = 0;  ///< GET/PUT hit no alive replica
  std::uint64_t replication_drops = 0;     ///< fan-out lost to a dead target

  // Message-layer activity (net::SimTransport + cluster delivery).
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;      ///< seeded drop probability
  std::uint64_t messages_duplicated = 0;
  std::uint64_t partition_drops = 0;       ///< lost to a cut link
  std::uint64_t partitions = 0;            ///< partition events injected
  std::uint64_t heals = 0;
};

/// Runs the closed-loop workload for one mechanism.  The cluster is
/// created inside so that every mechanism sees an identical topology.
template <kv::CausalityMechanism M>
SimStoreResult simulate_store(const SimStoreConfig& config, M mechanism) {
  kv::ClusterConfig cluster_config;
  cluster_config.servers = config.servers;
  cluster_config.replication = config.replication;
  cluster_config.vnodes = config.vnodes;
  cluster_config.storage = config.storage;
  // Manual-pump SimTransport: fan-out and sync requests sit in real
  // queues until a scheduled pump delivers them — the in-flight window.
  cluster_config.transport.kind = net::TransportKind::kSim;
  std::uint64_t transport_seed = config.seed + 0x7ea7005ULL;
  cluster_config.transport.sim.seed = util::splitmix64(transport_seed);
  cluster_config.transport.sim.drop_probability = config.msg_drop_probability;
  cluster_config.transport.sim.duplicate_probability =
      config.msg_duplicate_probability;
  cluster_config.transport.sim.reorder_window = config.msg_reorder_window;
  cluster_config.transport.sim.auto_settle = false;
  kv::Cluster<M> cluster(cluster_config, std::move(mechanism));

  EventQueue queue;
  util::Rng rng(config.seed);
  const util::ZipfSampler zipf(config.keys, config.zipf_skew);
  SimStoreResult result;

  struct ClientState {
    std::size_t remaining = 0;
    typename M::Context context{};
    kv::Key key;
    SimTime cycle_start = 0.0;
    SimTime get_start = 0.0;
  };
  std::vector<ClientState> clients(config.clients);
  std::size_t live_clients = config.clients;

  // While a replica is absorbed in a background repair session its
  // foreground replies queue behind the repair work.
  std::vector<SimTime> repair_busy_until(config.servers, 0.0);
  auto server_stall = [&](kv::ReplicaId r) {
    const double stall = std::max(0.0, repair_busy_until[r] - queue.now());
    if (stall > 0.0) result.aae_stall_ms.add(stall);
    return stall;
  };

  const M& mech = cluster.mechanism();

  // One transport pump: delivers due queued messages (replication
  // fan-out, hint flows, sync requests) and accounts any digest
  // sessions that completed — their wire traffic occupies both
  // endpoints, stalling foreground replies, exactly as before.
  auto pump_transport = [&] {
    cluster.pump();
    for (const auto& done : cluster.take_completed_syncs()) {
      ++result.aae_sessions;
      result.aae_stats.merge(done.stats);
      result.aae_session_bytes.add(static_cast<double>(done.stats.wire_bytes));
      const double duration =
          static_cast<double>(done.stats.rounds) * config.network.base_ms +
          static_cast<double>(done.stats.wire_bytes) *
              (1.0 / config.network.bandwidth_bytes_per_ms +
               config.network.cpu_ms_per_byte);
      const SimTime busy = queue.now() + duration;
      repair_busy_until[done.initiator] =
          std::max(repair_busy_until[done.initiator], busy);
      repair_busy_until[done.responder] =
          std::max(repair_busy_until[done.responder], busy);
    }
  };

  // Forward declarations of the per-client phase functions, expressed as
  // std::functions so they can schedule one another on the queue.
  std::function<void(std::size_t)> begin_cycle, do_get, do_put;

  begin_cycle = [&](std::size_t c) {
    ClientState& st = clients[c];
    if (st.remaining == 0) {
      --live_clients;  // this client's loop is done
      return;
    }
    --st.remaining;
    queue.schedule_in(rng.exponential(config.think_ms), [&, c] { do_get(c); });
  };

  // Alive members of a preference list (crash injection can empty it).
  auto alive_of = [&](const std::vector<kv::ReplicaId>& pref) {
    std::vector<kv::ReplicaId> alive;
    for (const kv::ReplicaId r : pref) {
      if (cluster.replica(r).alive()) alive.push_back(r);
    }
    return alive;
  };

  do_get = [&](std::size_t c) {
    ClientState& st = clients[c];
    st.key = "key-" + std::to_string(zipf.sample(rng));
    st.cycle_start = queue.now();
    st.get_start = queue.now();

    const auto alive = alive_of(cluster.preference_list(st.key));
    if (alive.empty()) {
      ++result.unavailable_requests;
      begin_cycle(c);
      return;
    }
    const kv::ReplicaId source = alive[rng.index(alive.size())];

    // Request leg (tiny: key only), then server-side read, reply leg
    // sized by the actual stored state.
    const double request_leg = config.network.sample(rng, st.key.size() + 16);
    queue.schedule_in(request_leg, [&, c, source] {
      ClientState& state = clients[c];
      if (!cluster.replica(source).alive()) {
        // Crashed while the request was in flight: timeout, retry later.
        ++result.unavailable_requests;
        begin_cycle(c);
        return;
      }
      std::size_t reply_bytes = 16;
      if (const auto* stored = cluster.replica(source).find(state.key)) {
        reply_bytes += mech.total_bytes(*stored);
      }
      // The client adopts the reply's causal context on arrival.  A
      // replica busy with background repair serves the read late.
      const double reply_leg =
          config.network.sample(rng, reply_bytes) + server_stall(source);
      queue.schedule_in(reply_leg, [&, c, source, reply_bytes] {
        ClientState& cs = clients[c];
        if (!cluster.replica(source).alive()) {
          // Crashed mid-reply: the connection drops, not the context.
          ++result.unavailable_requests;
          begin_cycle(c);
          return;
        }
        cs.context = cluster.get(cs.key, source).context;
        result.get_latency_ms.add(queue.now() - cs.get_start);
        result.get_reply_bytes.add(static_cast<double>(reply_bytes));
        do_put(c);
      });
    });
  };

  do_put = [&](std::size_t c) {
    ClientState& st = clients[c];
    const SimTime put_start = queue.now();

    // Request carries the context plus the value.
    codec::Writer ctx_size;
    codec::encode(ctx_size, st.context);
    const std::size_t request_bytes =
        st.key.size() + ctx_size.size() + config.value_bytes + 16;
    result.put_request_bytes.add(static_cast<double>(request_bytes));

    const auto pref = cluster.preference_list(st.key);
    const auto alive = alive_of(pref);
    if (alive.empty()) {
      ++result.unavailable_requests;
      begin_cycle(c);
      return;
    }
    const kv::ReplicaId coordinator = alive[rng.index(alive.size())];
    const std::string value =
        "c" + std::to_string(c) + "-" + std::to_string(st.remaining) +
        std::string(config.value_bytes, 'x');

    const double request_leg = config.network.sample(rng, request_bytes);
    queue.schedule_in(request_leg, [&, c, coordinator, pref, value, put_start] {
      ClientState& cs = clients[c];
      if (!cluster.replica(coordinator).alive()) {
        // Crashed while the request was in flight: timeout, retry later.
        ++result.unavailable_requests;
        begin_cycle(c);
        return;
      }
      // Coordinator applies locally and acks immediately (W=1); the
      // fan-out is enqueued on the cluster's SimTransport — real
      // messages in flight that readers cannot see yet and that a
      // crash of the target (or a partition) destroys.  Each sampled
      // network leg schedules a pump that delivers what is due.
      const auto receipt = cluster.put(cs.key, coordinator, kv::client_actor(c),
                                       cs.context, value, pref);
      // Targets already dead at send time never even get a message.
      result.replication_drops += (pref.size() - 1) - receipt.replicated_to;
      const std::size_t replica_bytes =
          receipt.replicated_to == 0
              ? 0
              : receipt.replication_bytes / receipt.replicated_to;
      for (std::size_t i = 0; i < receipt.replicated_to; ++i) {
        const double fanout_leg = config.network.sample(rng, replica_bytes);
        queue.schedule_in(fanout_leg, pump_transport);
      }

      // Ack leg back to the client (late if the coordinator is busy
      // with background repair).
      const double ack_leg =
          config.network.sample(rng, 32) + server_stall(coordinator);
      queue.schedule_in(ack_leg, [&, c, put_start] {
        ClientState& done = clients[c];
        result.put_latency_ms.add(queue.now() - put_start);
        result.cycle_latency_ms.add(queue.now() - done.cycle_start);
        ++result.cycles;
        begin_cycle(c);
      });
    });
  };

  // Background anti-entropy: periodic digest sync requests between
  // random replica pairs, racing the foreground workload through the
  // same message queues (a partition that cuts the pair kills the
  // request like any other message).  The session runs when the
  // request is pumped; completion accounting lives in pump_transport.
  // Stops rescheduling once every client loop has drained so the queue
  // can empty.
  std::function<void()> aae_tick = [&] {
    if (live_clients == 0) return;
    const std::size_t n = config.servers;
    auto a = static_cast<kv::ReplicaId>(rng.index(n));
    auto b = static_cast<kv::ReplicaId>(rng.index(n - 1));
    if (b >= a) ++b;
    if (cluster.replica(a).alive() && cluster.replica(b).alive()) {
      (void)cluster.request_sync(a, b);
      queue.schedule_in(config.network.sample(rng, 32), pump_transport);
    }
    queue.schedule_in(config.aae_interval_ms, aae_tick);
  };
  if (config.aae_interval_ms > 0.0) {
    queue.schedule_in(config.aae_interval_ms, aae_tick);
  }

  // Partition storms: cut the ring into two random groups, heal after
  // the configured duration.  In-flight messages crossing the cut are
  // lost at delivery time; divergence repairs through background AAE.
  std::function<void()> partition_tick = [&] {
    if (live_clients == 0) return;
    if (!cluster.transport().partitioned() && config.servers >= 2) {
      cluster.partition(net::random_split<kv::ReplicaId>(rng, config.servers),
                        "storm");
      ++result.partitions;
      queue.schedule_in(config.partition_duration_ms, [&] {
        cluster.heal();
        ++result.heals;
      });
    }
    queue.schedule_in(rng.exponential(config.partition_interval_ms),
                      partition_tick);
  };
  if (config.partition_interval_ms > 0.0) {
    queue.schedule_in(rng.exponential(config.partition_interval_ms),
                      partition_tick);
  }

  // Crash injection: a random alive replica truly crashes (volatile
  // state and un-flushed log tail gone, possibly with a torn trailing
  // write) and recovers after the configured downtime by replaying its
  // log — which keeps it busy the way background repair does.
  std::function<void()> crash_tick = [&] {
    if (live_clients == 0) return;
    std::vector<kv::ReplicaId> alive;
    for (kv::ReplicaId r = 0; r < config.servers; ++r) {
      if (cluster.replica(r).alive()) alive.push_back(r);
    }
    // Keep a majority up so most preference lists stay available.
    if (alive.size() >= config.replication) {
      const kv::ReplicaId victim = alive[rng.index(alive.size())];
      const std::size_t torn = rng.chance(config.torn_write_probability)
                                   ? 1 + rng.index(32)
                                   : 0;
      cluster.crash(victim, torn);
      ++result.crashes;
      queue.schedule_in(config.crash_downtime_ms, [&, victim] {
        const store::RecoveryStats replay = cluster.recover(victim);
        ++result.recoveries;
        result.wal_records_replayed += replay.records_replayed;
        result.wal_bytes_replayed += replay.bytes_replayed;
        result.wal_torn_records += replay.torn_records_dropped;
        // Log replay occupies the server like repair traffic does:
        // sequential read + decode of the surviving records.
        const double replay_ms =
            static_cast<double>(replay.bytes_replayed) *
            (1.0 / config.network.bandwidth_bytes_per_ms +
             config.network.cpu_ms_per_byte);
        repair_busy_until[victim] =
            std::max(repair_busy_until[victim], queue.now() + replay_ms);
      });
    }
    queue.schedule_in(rng.exponential(config.crash_interval_ms), crash_tick);
  };
  if (config.crash_interval_ms > 0.0) {
    queue.schedule_in(rng.exponential(config.crash_interval_ms), crash_tick);
  }

  for (std::size_t c = 0; c < config.clients; ++c) {
    clients[c].remaining = config.ops_per_client;
    begin_cycle(c);
  }
  queue.run();
  // Drain whatever is still in flight (fan-out whose pump landed before
  // its due tick, duplicate copies, unanswered sync requests).
  while (!cluster.transport().idle()) pump_transport();

  result.sim_duration_ms = queue.now();
  result.replication_drops += cluster.delivery_drops().replicate;
  const net::TransportStats& net_stats = cluster.transport().stats();
  result.messages_sent = net_stats.sent;
  result.messages_delivered = net_stats.delivered;
  result.messages_dropped = net_stats.dropped;
  result.messages_duplicated = net_stats.duplicated;
  result.partition_drops = net_stats.partition_dropped;
  return result;
}

}  // namespace dvv::sim
