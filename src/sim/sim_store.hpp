// dvv/sim/sim_store.hpp
//
// Event-driven simulation of the full client/server request path — the
// substitute for the paper's physical Riak cluster in the latency
// evaluation (E7, "better latency when serving requests").
//
// Each simulated client runs a closed loop on the shared EventQueue:
//
//   think -> GET request -> (server) -> GET reply -> PUT request
//        -> (coordinator applies, acks; replication fans out ASYNC)
//        -> PUT ack -> think -> ...
//
// Every network leg's delay is sampled from the LatencyModel with the
// *actual serialized size* of what crosses the wire: GET replies carry
// the sibling values plus their clocks, PUT requests carry the causal
// token plus the value.  Mechanisms with bigger clocks therefore pay
// their cost exactly where the paper says they do — on the wire and in
// serialization — and nowhere else.
//
// The simulator drives the type-erased kv::Store facade (src/kv/store):
// the mechanism is a RUNTIME choice (config.mechanism, defaulting to
// env DVV_MECHANISM), so one binary sweeps all six mechanisms without
// instantiating six copies of this whole harness — and the context each
// client carries between its GET and PUT is the same opaque CausalToken
// a real client would ferry, so the wire sizes the simulation meters
// are the wire-visible token sizes, headers included.
//
// Client operations are REAL coordinator requests (src/kv/coordinator):
// a GET is begin_read_at (R distinct replies complete it), a PUT is
// begin_write (W distinct acks complete it; the coordinator's local
// apply is the first, so R = W = 1 reproduces the historical
// coordinator-local behavior).  Scatter, replies and acks are queued
// messages in the store's SimTransport (src/net) — each sampled
// network leg schedules a transport pump, so "in flight" is state a
// reader cannot see yet and a crash or partition can destroy — and with
// R/W > 1 MANY client operations are concurrently in flight across
// partition storms and crash storms, completing (or timing out at
// `op_deadline_ms`) whenever their quorum of replies lands.
// Determinism: single-threaded event queue, every random choice from
// one seeded Rng (the transport's fault stream is forked from the same
// seed; the coordination engine makes no random choices at all).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/latency.hpp"
#include "store/backend.hpp"
#include "sync/anti_entropy.hpp"
#include "util/stats.hpp"

namespace dvv::sim {

/// The simulator times out operations in simulated MILLISECONDS (the
/// op_deadline_ms watchdog events), so the engine's tick deadline is
/// pushed out of the way: coordination ticks advance once per pump,
/// i.e. once per network leg of ANY client, and a tick-based deadline
/// would make one op's patience depend on everyone else's traffic.
inline constexpr std::uint64_t kNoTickDeadline = 1ULL << 62;

struct SimStoreConfig {
  /// Causality mechanism by name ("dvv", "dvvset", "server-vv",
  /// "client-vv", "vve", "causal-history"); empty selects the process
  /// default (env DVV_MECHANISM, else "dvv").
  std::string mechanism{};

  std::size_t clients = 16;
  std::size_t keys = 64;
  double zipf_skew = 0.99;
  std::size_t ops_per_client = 200;  ///< read-modify-write cycles per client
  double think_ms = 2.0;             ///< mean think time between cycles
  std::size_t value_bytes = 64;      ///< payload size per write
  LatencyModel network{};
  std::uint64_t seed = 1;

  /// Cluster topology (was hardcoded 5/3: partition scenarios need to
  /// vary the shape — a 2-server ring cannot even express a split, a
  /// 9-server one can lose a minority group and keep serving).
  std::size_t servers = 5;
  std::size_t replication = 3;
  std::size_t vnodes = 64;

  /// Transport fault injection on the replication/sync message layer
  /// (net::SimTransport): per-message drop/duplicate probability and
  /// reorder window (in pump ticks).
  double msg_drop_probability = 0.0;
  double msg_duplicate_probability = 0.0;
  std::size_t msg_reorder_window = 0;

  /// Partition storms: every ~`partition_interval_ms` (exponential) the
  /// ring is cut into two random groups for `partition_duration_ms`,
  /// then healed.  Messages crossing the cut — including in-flight ones
  /// — are lost; anti-entropy repairs the divergence after heal.
  /// 0 disables partitions.
  double partition_interval_ms = 0.0;
  double partition_duration_ms = 20.0;

  /// Background anti-entropy: every `aae_interval_ms` a random alive
  /// replica pair runs one digest sync session (src/sync).  The session
  /// keeps a replica busy for the simulated duration of its wire
  /// traffic, and foreground requests hitting a busy replica stall for
  /// the residual — repair traffic competes with request latency.
  /// 0 disables background AAE.
  double aae_interval_ms = 0.0;

  /// Per-replica durability model (src/store).  With the default
  /// MemBackend a crash is total state loss; with WalBackend recovery
  /// replays the flushed log.
  store::BackendConfig storage{};

  /// Crash injection: every ~`crash_interval_ms` (exponential) a random
  /// alive replica truly crashes — volatile state dropped, un-flushed
  /// log tail lost — and recovers `crash_downtime_ms` later by storage
  /// replay (which keeps it busy for the replay's simulated duration).
  /// 0 disables crashes.  Requests routed to a crashed replica count as
  /// unavailable; replication deliveries to it are dropped.
  double crash_interval_ms = 0.0;
  double crash_downtime_ms = 25.0;
  /// P(a crash tears the trailing un-flushed record mid-write); the
  /// torn frame is rejected by CRC at recovery.
  double torn_write_probability = 0.0;

  /// Ring churn: every ~`churn_interval_ms` (exponential) the ring takes
  /// ONE membership transition — a provisioned non-member joins (slots
  /// [servers, capacity) start outside the ring; a slot that departed
  /// earlier may rejoin) or a member beyond the replication floor
  /// gracefully leaves — and the rebalance runs to completion on the
  /// spot.  The transfer walks' wire bytes occupy the ring the way
  /// repair traffic does, so foreground requests stall behind a
  /// rebalance exactly as they stall behind anti-entropy.  A transition
  /// is skipped while any member is crashed or a partition is active
  /// (every transfer source must be reachable).  0 disables churn.
  double churn_interval_ms = 0.0;
  std::size_t capacity = 0;  ///< provisioned replica slots (0 = servers)

  /// Quorum coordination (src/kv/coordinator.hpp): a GET completes at
  /// `read_quorum` distinct replies, a PUT at `write_quorum` distinct
  /// acks (the coordinator's local apply/read is the first of each).
  /// R = W = 1 — the default — completes at the coordinator alone, the
  /// historical behavior; higher values put real scatter/reply traffic
  /// in flight, so concurrent client operations ride the same faulty
  /// queues as replication.  An operation still pending after
  /// `op_deadline_ms` of simulated time is finalized with whatever
  /// replies arrived (a timeout, reported degraded when below quorum).
  std::size_t read_quorum = 1;
  std::size_t write_quorum = 1;
  double op_deadline_ms = 50.0;
};

struct SimStoreResult {
  util::Samples get_latency_ms;   ///< request->reply round trip
  util::Samples put_latency_ms;   ///< request->ack round trip
  util::Samples cycle_latency_ms; ///< full GET+PUT cycle
  util::Samples get_reply_bytes;  ///< serialized reply payloads
  util::Samples put_request_bytes;
  double sim_duration_ms = 0.0;
  std::uint64_t cycles = 0;

  // Background anti-entropy activity (zero when aae_interval_ms == 0).
  std::uint64_t aae_sessions = 0;
  sync::SyncStats aae_stats{};          ///< summed over all sessions
  util::Samples aae_session_bytes;      ///< wire bytes per session
  util::Samples aae_stall_ms;           ///< foreground stalls behind repair

  // Crash/recovery activity (zero when crash_interval_ms == 0).
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t wal_bytes_replayed = 0;
  std::uint64_t wal_torn_records = 0;      ///< CRC-rejected torn tails
  std::uint64_t unavailable_requests = 0;  ///< GET/PUT hit no alive replica
  std::uint64_t replication_drops = 0;     ///< fan-out lost to a dead target

  // Message-layer activity (net::SimTransport + cluster delivery).
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;      ///< seeded drop probability
  std::uint64_t messages_duplicated = 0;
  std::uint64_t partition_drops = 0;       ///< lost to a cut link
  std::uint64_t partitions = 0;            ///< partition events injected
  std::uint64_t heals = 0;

  // Ring-churn activity (zero when churn_interval_ms == 0).
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t rebalance_keys_shipped = 0;  ///< states moved by transfers
  std::uint64_t rebalance_wire_bytes = 0;    ///< digests + shipped states
  std::uint64_t final_ring_epoch = 0;        ///< membership epoch at the end

  // Quorum-coordination activity (src/kv/coordinator.hpp).
  std::uint64_t reads_degraded = 0;        ///< completed below read_quorum
  std::uint64_t writes_degraded = 0;       ///< completed below intended fan-out
  std::uint64_t op_timeouts = 0;           ///< finalized at a deadline
  std::uint64_t late_replies_dropped = 0;  ///< reply after completion
  std::uint64_t duplicate_replies_dropped = 0;  ///< same responder twice
  std::uint64_t stale_replies_dropped = 0;      ///< reply to a reused slot
  std::uint64_t max_requests_in_flight = 0;     ///< concurrent client ops peak
};

/// Runs the closed-loop workload for the configured mechanism.  The
/// store is created inside so that every mechanism sees an identical
/// topology.  Aborts (assert) on an unknown mechanism name.
[[nodiscard]] SimStoreResult simulate_store(const SimStoreConfig& config);

}  // namespace dvv::sim
