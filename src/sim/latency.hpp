// dvv/sim/latency.hpp
//
// Latency models for the simulated cluster.
//
// The paper attributes DVV's "better latency when serving requests" to
// smaller causality metadata: every GET reply and PUT acknowledgement
// carries the clock(s), so bigger clocks mean more bytes serialized,
// shipped and parsed per request.  The model makes that causal link
// explicit and nothing else:
//
//     delay(bytes) = base + bytes / bandwidth + per_byte_cpu * bytes
//                    (+ exponential jitter with the given mean)
//
// All parameters are plain data so benches can print exactly what they
// simulated.  Defaults approximate a LAN: 0.20 ms base hop latency,
// 1 GbE-ish effective bandwidth, a small per-byte CPU term for
// serialize/parse work, mild jitter.
#pragma once

#include <cstddef>

#include "util/rng.hpp"

namespace dvv::sim {

struct LatencyModel {
  double base_ms = 0.20;             ///< propagation + fixed request overhead
  double bandwidth_bytes_per_ms = 125'000.0;  ///< ~1 Gb/s
  double cpu_ms_per_byte = 2.0e-6;   ///< serialize + parse cost per byte
  double jitter_mean_ms = 0.05;      ///< exponential jitter; 0 disables

  /// One-way message delay for a payload of `bytes`.
  [[nodiscard]] double sample(util::Rng& rng, std::size_t bytes) const {
    double d = base_ms + static_cast<double>(bytes) / bandwidth_bytes_per_ms +
               cpu_ms_per_byte * static_cast<double>(bytes);
    if (jitter_mean_ms > 0.0) d += rng.exponential(jitter_mean_ms);
    return d;
  }

  /// Deterministic variant (no jitter term), for tests.
  [[nodiscard]] double expected(std::size_t bytes) const noexcept {
    return base_ms + static_cast<double>(bytes) / bandwidth_bytes_per_ms +
           cpu_ms_per_byte * static_cast<double>(bytes) + jitter_mean_ms;
  }
};

}  // namespace dvv::sim
