// dvv/oracle/audit.hpp
//
// The causality oracle: replays a trace *in lockstep* on the mechanism
// under test and on the causal-history cluster (exact by §1 of the
// paper), auditing after every operation.
//
// Because every write in a trace carries a globally unique payload, the
// sibling sets of the two clusters are comparable as sets of strings:
//
//   * a value the truth cluster retains but the subject lost
//       -> LOST UPDATE: the subject's clocks wrongly claimed the value
//          was dominated and discarded it (the Fig. 1b disaster; also
//          a pruning failure mode of E8);
//   * a value the subject retains but the truth has obsoleted
//       -> FALSE SIBLING (false concurrency): the subject's clocks could
//          not prove a dominance that actually holds, resurrecting or
//          retaining stale versions (the other pruning failure mode).
//
// Auditing continuously matters: causality anomalies are frequently
// *transient* — a later read-modify-write collapses the siblings in both
// worlds and erases the evidence — so an end-state-only comparison
// under-counts.  The audit therefore runs per touched key after every
// GET/PUT and cluster-wide after every anti-entropy round and at the
// end; anomalous values are accumulated as sets (a value lost once is
// one lost update no matter how many audits see the hole).
//
// A mechanism is *exact* on a trace iff both sets stay empty — the
// property experiments E8/E9 sweep, and what the paper claims for DVV
// ("precisely track causality") with one entry per replica server.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace dvv::oracle {

struct AuditReport {
  std::uint64_t audits = 0;           ///< audit passes executed
  std::uint64_t keys_checked = 0;     ///< (replica, key) states compared
  std::uint64_t values_checked = 0;   ///< truth-side sibling values seen
  std::set<std::string> lost_values;  ///< truth retained, subject lost
  std::set<std::string> false_values; ///< subject retained, truth obsoleted

  [[nodiscard]] std::uint64_t lost_updates() const noexcept {
    return lost_values.size();
  }
  [[nodiscard]] std::uint64_t false_siblings() const noexcept {
    return false_values.size();
  }
  [[nodiscard]] bool exact() const noexcept {
    return lost_values.empty() && false_values.empty();
  }
};

/// Drives subject and truth clusters through the same trace in lockstep
/// and audits continuously.  The two clusters must share ring geometry
/// (same servers / replication / vnodes), which mirrored_run guarantees.
template <kv::CausalityMechanism M>
class LockstepAuditor {
 public:
  LockstepAuditor(kv::Cluster<M>& subject, kv::Cluster<kv::HistoryMechanism>& truth,
                  const workload::Trace& trace)
      : subject_(&subject),
        truth_(&truth),
        subject_replay_(subject, trace),
        truth_replay_(truth, trace) {}

  /// Runs the whole trace; returns the accumulated report.
  AuditReport run(const workload::Trace& trace) {
    for (const workload::TraceOp& op : trace.ops) {
      subject_replay_.step(op);
      truth_replay_.step(op);
      if (op.kind == workload::TraceOp::Kind::kAntiEntropy) {
        audit_all_keys();
      } else {
        audit_key(op.key);
      }
    }
    audit_all_keys();
    return report_;
  }

  [[nodiscard]] workload::ReplayStats finish_subject() {
    return subject_replay_.finish();
  }
  [[nodiscard]] workload::ReplayStats finish_truth() { return truth_replay_.finish(); }

 private:
  void audit_key(const kv::Key& key) {
    ++report_.audits;
    for (const kv::ReplicaId r : subject_->preference_list(key)) {
      compare_state(r, key);
    }
  }

  void audit_all_keys() {
    ++report_.audits;
    for (std::size_t s = 0; s < truth_->servers(); ++s) {
      for (const kv::Key& key : truth_->replica(s).keys()) {
        compare_state(static_cast<kv::ReplicaId>(s), key);
      }
    }
  }

  void compare_state(kv::ReplicaId r, const kv::Key& key) {
    ++report_.keys_checked;
    std::set<std::string> subject_values;
    if (const auto* stored = subject_->replica(r).find(key)) {
      for (auto& v : subject_->mechanism().values_of(*stored)) {
        subject_values.insert(std::move(v));
      }
    }
    std::set<std::string> truth_values;
    if (const auto* stored = truth_->replica(r).find(key)) {
      for (auto& v : truth_->mechanism().values_of(*stored)) {
        truth_values.insert(std::move(v));
      }
    }
    report_.values_checked += truth_values.size();
    for (const auto& v : truth_values) {
      if (!subject_values.contains(v)) report_.lost_values.insert(v);
    }
    for (const auto& v : subject_values) {
      if (!truth_values.contains(v)) report_.false_values.insert(v);
    }
  }

  kv::Cluster<M>* subject_;
  kv::Cluster<kv::HistoryMechanism>* truth_;
  workload::Replayer<M> subject_replay_;
  workload::Replayer<kv::HistoryMechanism> truth_replay_;
  AuditReport report_;
};

/// Everything a mirrored (subject vs truth) run produces.
template <kv::CausalityMechanism M>
struct MirroredRun {
  kv::Cluster<M> subject;
  kv::Cluster<kv::HistoryMechanism> truth;
  workload::ReplayStats subject_stats;
  workload::ReplayStats truth_stats;
  AuditReport report;
};

/// Generates the trace for `spec`, replays it on both clusters in
/// lockstep with continuous audits.
template <kv::CausalityMechanism M>
[[nodiscard]] MirroredRun<M> mirrored_run(const workload::WorkloadSpec& spec,
                                          const kv::ClusterConfig& config,
                                          M mechanism) {
  MirroredRun<M> run{kv::Cluster<M>(config, std::move(mechanism)),
                     kv::Cluster<kv::HistoryMechanism>(config, kv::HistoryMechanism{}),
                     {},
                     {},
                     {}};
  const workload::Trace trace = workload::generate_trace(spec, config.replication);
  LockstepAuditor<M> auditor(run.subject, run.truth, trace);
  run.report = auditor.run(trace);
  run.subject_stats = auditor.finish_subject();
  run.truth_stats = auditor.finish_truth();
  return run;
}

}  // namespace dvv::oracle
