// sibling_explosion — metadata growth under many concurrent writers.
//
// One hot key, N short-lived clients that each write once without
// reading (think: web handlers behind a load balancer, all appending to
// the same object).  The example prints, for each mechanism, how the
// causality metadata grows as writers accumulate:
//
//   * per-client version vectors gain one entry per writer, forever;
//   * dotted version vectors keep one entry per REPLICA regardless;
//   * DVVSets additionally collapse the per-sibling clocks into one.
//
// This is the paper's "bounded by the degree of replication, and not by
// the number of concurrent writers" claim as a runnable demo — driven
// through the public kv::Store facade, so the mechanisms are swept at
// RUNTIME and the growth is also visible where a client sees it: in the
// size of the opaque causal token every GET returns.
//
//   $ ./sibling_explosion [writers]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "kv/session.hpp"
#include "kv/store.hpp"
#include "util/fmt.hpp"

namespace {

using dvv::kv::Store;
using dvv::kv::StoreConfig;

struct ExplosionResult {
  std::size_t peak_entries = 0;
  std::size_t peak_metadata = 0;
  std::size_t peak_token_bytes = 0;  ///< wire-visible context, as clients see it
  std::size_t entries_after_merge = 0;
};

/// Runs `writers` anonymous one-shot writers against one key; afterwards
/// a reader reconciles.
ExplosionResult run(const std::string& mechanism, std::size_t writers) {
  StoreConfig config;
  config.servers = 5;
  config.replication = 3;
  const auto store = dvv::kv::make_store(mechanism, config);
  const std::string key = "hot";

  ExplosionResult result;
  for (std::size_t w = 0; w < writers; ++w) {
    dvv::kv::Session writer(dvv::kv::client_actor(1000 + w), *store);
    writer.put(key, "order-" + std::to_string(w));

    const auto coordinator = store->default_coordinator(key).value();
    const auto stats = store->key_stats(coordinator, key);
    result.peak_entries = std::max(result.peak_entries, stats.clock_entries);
    result.peak_metadata = std::max(result.peak_metadata, stats.metadata_bytes);
    result.peak_token_bytes = std::max(result.peak_token_bytes,
                                       store->get(key, coordinator).token.size());
  }

  // One reader merges everything.
  dvv::kv::Session reader(dvv::kv::client_actor(999), *store);
  reader.rmw(key, [](const std::vector<std::string>& siblings) {
    return "merged-" + std::to_string(siblings.size());
  });
  result.entries_after_merge =
      store->key_stats(store->default_coordinator(key).value(), key).clock_entries;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t writers =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10)) : 64;

  std::printf("== sibling explosion: %zu one-shot writers on one key "
              "(5 servers, R=3) ==\n\n", writers);

  dvv::util::TextTable table;
  table.header({"mechanism", "peak clock entries", "peak metadata bytes",
                "peak token bytes", "entries after merge"});
  struct Label {
    const char* name;
    const char* label;
  };
  for (const Label m : {Label{"client-vv", "client-vv (Riak classic)"},
                        Label{"dvv", "dvv (this paper)"},
                        Label{"dvvset", "dvvset (compact ext.)"}}) {
    const auto r = run(m.name, writers);
    table.row({m.label, std::to_string(r.peak_entries),
               std::to_string(r.peak_metadata),
               std::to_string(r.peak_token_bytes),
               std::to_string(r.entries_after_merge)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("client-vv entries track the writer count; dvv entries track the\n"
              "sibling count times (dot + R); dvvset stays at one entry per\n"
              "coordinating replica no matter how many writers pile up.  The\n"
              "token column is the same story at the public API: what every\n"
              "client uploads with its next PUT.\n");
  return 0;
}
