// sibling_explosion — metadata growth under many concurrent writers.
//
// One hot key, N short-lived clients that each write once without
// reading (think: web handlers behind a load balancer, all appending to
// the same object).  The example prints, for each mechanism, how the
// causality metadata grows as writers accumulate:
//
//   * per-client version vectors gain one entry per writer, forever;
//   * dotted version vectors keep one entry per REPLICA regardless;
//   * DVVSets additionally collapse the per-sibling clocks into one.
//
// This is the paper's "bounded by the degree of replication, and not by
// the number of concurrent writers" claim as a runnable demo.
//
//   $ ./sibling_explosion [writers]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "util/fmt.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;

/// Runs `writers` anonymous one-shot writers against one key; afterwards
/// a reader reconciles.  Returns {peak clock entries, peak metadata
/// bytes, entries after reconciliation}.
template <typename M>
struct ExplosionResult {
  std::size_t peak_entries = 0;
  std::size_t peak_metadata = 0;
  std::size_t entries_after_merge = 0;
};

template <typename M>
ExplosionResult<M> run(std::size_t writers) {
  ClusterConfig config;
  config.servers = 5;
  config.replication = 3;
  Cluster<M> cluster(config, M{});
  const std::string key = "hot";

  ExplosionResult<M> result;
  for (std::size_t w = 0; w < writers; ++w) {
    dvv::kv::ClientSession<M> writer(dvv::kv::client_actor(1000 + w), cluster);
    writer.put(key, "order-" + std::to_string(w));

    const auto* stored =
        cluster.replica(cluster.default_coordinator(key).value()).find(key);
    const M& mech = cluster.mechanism();
    result.peak_entries = std::max(result.peak_entries, mech.clock_entries(*stored));
    result.peak_metadata =
        std::max(result.peak_metadata, mech.metadata_bytes(*stored));
  }

  // One reader merges everything.
  dvv::kv::ClientSession<M> reader(dvv::kv::client_actor(999), cluster);
  reader.rmw(key, [](const std::vector<std::string>& siblings) {
    return "merged-" + std::to_string(siblings.size());
  });
  const auto* stored = cluster.replica(cluster.default_coordinator(key).value()).find(key);
  result.entries_after_merge = cluster.mechanism().clock_entries(*stored);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t writers =
      argc > 1 ? static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10)) : 64;

  std::printf("== sibling explosion: %zu one-shot writers on one key "
              "(5 servers, R=3) ==\n\n", writers);

  const auto cvv = run<dvv::kv::ClientVvMechanism>(writers);
  const auto dvv_r = run<dvv::kv::DvvMechanism>(writers);
  const auto dvvset = run<dvv::kv::DvvSetMechanism>(writers);

  dvv::util::TextTable table;
  table.header({"mechanism", "peak clock entries", "peak metadata bytes",
                "entries after merge"});
  table.row({"client-vv (Riak classic)", std::to_string(cvv.peak_entries),
             std::to_string(cvv.peak_metadata),
             std::to_string(cvv.entries_after_merge)});
  table.row({"dvv (this paper)", std::to_string(dvv_r.peak_entries),
             std::to_string(dvv_r.peak_metadata),
             std::to_string(dvv_r.entries_after_merge)});
  table.row({"dvvset (compact ext.)", std::to_string(dvvset.peak_entries),
             std::to_string(dvvset.peak_metadata),
             std::to_string(dvvset.entries_after_merge)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("client-vv entries track the writer count; dvv entries track the\n"
              "sibling count times (dot + R); dvvset stays at one entry per\n"
              "coordinating replica no matter how many writers pile up.\n");
  return 0;
}
