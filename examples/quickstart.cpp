// quickstart — the smallest useful tour of the library.
//
// Creates a 5-server cluster with 3-way replication using dotted version
// vectors, walks through the paper's GET/PUT cycle (blind write, racing
// write, sibling resolution), and prints what the clocks look like at
// every step.
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;

namespace {

void show(const char* label, const Cluster<DvvMechanism>& cluster,
          const std::string& key) {
  const auto coordinator = cluster.default_coordinator(key).value();
  const auto* stored = cluster.replica(coordinator).find(key);
  std::printf("%s\n", label);
  if (stored == nullptr || stored->sibling_count() == 0) {
    std::printf("  (no versions)\n\n");
    return;
  }
  for (const auto& version : stored->versions()) {
    std::printf("  value=%-14s clock=%s\n", version.value.c_str(),
                version.clock.to_string(dvv::kv::actor_name).c_str());
  }
  std::printf("  context handed to readers: %s\n\n",
              stored->context().to_string(dvv::kv::actor_name).c_str());
}

}  // namespace

int main() {
  std::printf("== dvv quickstart: a Riak-shaped store with dotted version vectors ==\n\n");

  ClusterConfig config;
  config.servers = 5;
  config.replication = 3;
  Cluster<DvvMechanism> cluster(config, DvvMechanism{});

  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);

  const std::string key = "profile:42";

  // 1. Alice writes without having read anything (a blind write).
  alice.put(key, "alice-v1");
  show("after Alice's first write:", cluster, key);

  // 2. Alice reads (capturing the causal context) and overwrites.
  alice.get(key);
  alice.put(key, "alice-v2");
  show("after Alice's read-modify-write (v1 is causally overwritten):", cluster, key);

  // 3. Bob writes blind: he never read, so his write must NOT clobber
  //    Alice's.  The store keeps both as siblings.
  bob.put(key, "bob-v1");
  show("after Bob's blind write (true concurrency -> siblings):", cluster, key);

  // 4. Carol reads both siblings and reconciles them.  Her PUT carries
  //    the context covering both, so both are replaced by her merge.
  ClientSession<DvvMechanism> carol(dvv::kv::client_actor(2), cluster);
  carol.rmw(key, [](const std::vector<std::string>& siblings) {
    std::string merged = "merged{";
    for (const auto& s : siblings) merged += s + ";";
    merged += "}";
    return merged;
  });
  show("after Carol reads both siblings and writes the reconciliation:", cluster, key);

  // 5. Metadata stayed bounded by the replication degree the whole time.
  const auto fp = cluster.footprint();
  std::printf("cluster footprint: %zu key-copies, %zu siblings, "
              "%zu clock entries, %zu metadata bytes on disk\n",
              fp.keys, fp.siblings, fp.clock_entries, fp.metadata_bytes);
  std::printf("\nNote: every clock above mentions only SERVER ids — never Alice,\n"
              "Bob or Carol.  That is the paper's point: precise client\n"
              "concurrency tracking with metadata bounded by the replication\n"
              "degree, not by the number of clients.\n");
  return 0;
}
