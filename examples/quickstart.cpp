// quickstart — the smallest useful tour of the library's PUBLIC API.
//
// Creates a 5-server store with 3-way replication using dotted version
// vectors (chosen at RUNTIME by name), walks through the paper's
// GET/PUT cycle (blind write, racing write, sibling resolution), and
// prints what the client actually sees at every step: sibling values
// plus an OPAQUE causal token.
//
// The token is the whole client contract: a GET hands it out, the next
// PUT hands it back, and the server mints the dots.  The client never
// inspects it — which is exactly what keeps DVV metadata bounded by the
// replica count instead of the client count.  (To see the clocks
// themselves, run ./dvv_shell — the under-the-hood companion that
// deliberately uses the templated internals.)
//
//   $ ./quickstart
#include <cstdio>
#include <string>

#include "kv/session.hpp"
#include "kv/store.hpp"

using dvv::kv::Session;
using dvv::kv::Store;
using dvv::kv::StoreConfig;

namespace {

/// Renders a token the only way a client legitimately can: opaque bytes.
std::string hex(const dvv::kv::CausalToken& token) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  for (const unsigned char c : token.bytes()) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

void show(const char* label, Store& store, const std::string& key) {
  const auto result = store.get(key);
  std::printf("%s\n", label);
  if (!result.found) {
    std::printf("  (no versions)\n\n");
    return;
  }
  for (const auto& value : result.values) {
    std::printf("  value=%s\n", value.c_str());
  }
  std::printf("  opaque token (%zu bytes): %s\n\n", result.token.size(),
              hex(result.token).c_str());
}

}  // namespace

int main() {
  std::printf("== dvv quickstart: a Riak-shaped store behind the opaque-token "
              "API ==\n\n");

  StoreConfig config;
  config.servers = 5;
  config.replication = 3;
  // The mechanism is a runtime name; try "client-vv" here (or set
  // DVV_MECHANISM and use make_store(config)) and watch the token sizes
  // in the output grow with the number of writers.
  const auto store = dvv::kv::make_store("dvv", config);

  Session alice(dvv::kv::client_actor(0), *store);
  Session bob(dvv::kv::client_actor(1), *store);

  const std::string key = "profile:42";

  // 1. Alice writes without having read anything (a blind write: no
  //    token to return).
  alice.put(key, "alice-v1");
  show("after Alice's first write:", *store, key);

  // 2. Alice reads (pocketing the token) and overwrites.
  alice.get(key);
  alice.put(key, "alice-v2");
  show("after Alice's read-modify-write (v1 is causally overwritten):", *store,
       key);

  // 3. Bob writes blind: he never read, so his write must NOT clobber
  //    Alice's.  The store keeps both as siblings.
  bob.put(key, "bob-v1");
  show("after Bob's blind write (true concurrency -> siblings):", *store, key);

  // 4. Carol reads both siblings and reconciles them.  Her PUT carries
  //    the token covering both, so both are replaced by her merge.
  Session carol(dvv::kv::client_actor(2), *store);
  carol.rmw(key, [](const std::vector<std::string>& siblings) {
    std::string merged = "merged{";
    for (const auto& s : siblings) merged += s + ";";
    merged += "}";
    return merged;
  });
  show("after Carol reads both siblings and writes the reconciliation:", *store,
       key);

  // 5. Metadata stayed bounded by the replication degree the whole time.
  const auto fp = store->footprint();
  std::printf("cluster footprint: %zu key-copies, %zu siblings, "
              "%zu clock entries, %zu metadata bytes on disk\n",
              fp.keys, fp.siblings, fp.clock_entries, fp.metadata_bytes);
  std::printf("\nNote: the token sizes above stayed a few bytes no matter how\n"
              "many clients raced — the paper's point: precise client\n"
              "concurrency tracking with metadata bounded by the replication\n"
              "degree, not by the number of clients.  And because the token is\n"
              "opaque and checksummed, a client cannot forge, truncate or\n"
              "cross-wire one: the store answers kBadToken instead of\n"
              "corrupting causality.\n");
  return 0;
}
