// shopping_cart — the canonical Dynamo-style motivating scenario.
//
// A shopping cart replicated across servers, updated concurrently from
// two devices (phone and laptop) that race.  With dotted version
// vectors no update is ever silently dropped: the racing carts surface
// as siblings, and the application merges them (set union) on the next
// read — the classic "add-wins cart".
//
// The same scenario is then replayed on the per-server version-vector
// baseline of the paper's Figure 1b to show the silent loss DVV exists
// to prevent.
//
// Since the api_redesign the example drives the public kv::Store facade
// (src/kv/store): ONE compiled scenario, and the mechanism is a runtime
// name — exactly how a client application would be written.  The
// devices carry opaque CausalTokens between reads and writes; nothing
// here can see (or needs to see) a clock.
//
//   $ ./shopping_cart
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "kv/session.hpp"
#include "kv/store.hpp"

namespace {

using dvv::kv::Session;
using dvv::kv::Store;
using dvv::kv::StoreConfig;

/// Carts are comma-separated item lists; merge = set union.
std::string merge_carts(const std::vector<std::string>& siblings) {
  std::set<std::string> items;
  for (const auto& cart : siblings) {
    std::stringstream ss(cart);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) items.insert(item);
    }
  }
  std::string merged;
  for (const auto& item : items) {
    if (!merged.empty()) merged += ",";
    merged += item;
  }
  return merged;
}

std::string add_item(const std::vector<std::string>& siblings,
                     const std::string& item) {
  std::string cart = merge_carts(siblings);
  if (!cart.empty()) cart += ",";
  cart += item;
  return cart;
}

std::vector<std::string> read_cart(Store& store, const std::string& key) {
  return store.get(key).values;
}

void print_cart(const char* label, Store& store, const std::string& key) {
  const auto values = read_cart(store, key);
  std::printf("%s\n", label);
  if (values.empty()) {
    std::printf("  (empty)\n");
  }
  for (const auto& v : values) std::printf("  sibling: [%s]\n", v.c_str());
  std::printf("\n");
}

/// The racing scenario, identical for both mechanisms: the phone reads
/// the cart, the laptop reads the cart, then BOTH write their own
/// additions, each through a coordinator of its choice, then the
/// replicas synchronize.
void run_scenario(Store& store, const char* title) {
  std::printf("---- %s ----\n", title);
  const std::string key = "cart:alice";
  Session phone(dvv::kv::client_actor(100), store);
  Session laptop(dvv::kv::client_actor(101), store);

  // A first item, fully propagated.
  phone.get(key);
  phone.put(key, "book");
  store.anti_entropy();

  // Both devices read the same state (each pockets an opaque token)...
  phone.get(key);
  laptop.get(key);
  // ...then race their writes through the SAME coordinator (the paper's
  // Fig. 1 situation: concurrent client updates at one server).
  const auto coordinator = store.default_coordinator(key).value();
  const auto pref = store.preference_list(key);
  phone.put_via(key, coordinator, add_item(read_cart(store, key), "headphones"),
                pref);
  laptop.put_via(key, coordinator, "book,socks", pref);

  store.anti_entropy();
  print_cart("carts after the race + replica sync:", store, key);

  // The next reader merges whatever siblings exist.
  Session merger(dvv::kv::client_actor(102), store);
  merger.rmw(key, merge_carts);
  print_cart("cart after read-merge-write:", store, key);
}

}  // namespace

int main() {
  std::printf("== shopping cart: racing devices, two causality mechanisms ==\n\n");

  StoreConfig config;
  config.servers = 4;
  config.replication = 3;

  // Runtime mechanism selection: same binary, same scenario, different
  // clocks behind the same opaque API.
  run_scenario(*dvv::kv::make_store("dvv", config),
               "dotted version vectors (the paper's mechanism)");
  std::printf("with DVV both additions survive the race: the merged cart\n"
              "contains book, headphones AND socks.\n\n");

  run_scenario(*dvv::kv::make_store("server-vv", config),
               "per-server version vectors (Fig. 1b baseline)");
  std::printf("with per-server VVs the second write's clock falsely dominates\n"
              "the first's ([2,0] < [3,0] in the paper), so after the replica\n"
              "sync one device's addition is GONE — the cart above is missing\n"
              "an item, and nobody was told.\n");
  return 0;
}
