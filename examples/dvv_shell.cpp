// dvv_shell — an interactive (or scripted) shell over the replicated
// store, for exploring causality behaviour by hand.  Reads commands
// from stdin; run it interactively, or pipe a script:
//
//   $ printf 'put alice k v1\nsiblings k\nquit\n' | ./dvv_shell
//
// Commands:
//   put <client> <key> <value>     read-modify-write-free PUT with the
//                                  client's remembered context
//   get <client> <key>             GET (remembers the context)
//   blind <client> <key> <value>   PUT ignoring any remembered context
//   siblings <key>                 show values + clocks at every
//                                  preference replica
//   context <client> <key>         show the client's remembered context
//   fail <server> / recover <server>
//   sync                           one anti-entropy round
//   handoff                        deliver parked hints
//   stats                          cluster metadata footprint
//   help / quit
//
// The demo runs the DVV mechanism; every clock printed is a dot plus a
// (server-only) version vector, exactly as in the paper's Figure 1c.
#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"

namespace {

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::ReplicaId;

class Shell {
 public:
  Shell() : cluster_(make_config(), DvvMechanism{}) {}

  int run() {
    std::printf("dvv shell: 5 servers (A-E), R=3, dotted version vectors.\n");
    std::printf("type 'help' for commands.\n");
    std::string line;
    while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
      if (!dispatch(line)) break;
    }
    return 0;
  }

 private:
  static ClusterConfig make_config() {
    ClusterConfig config;
    config.servers = 5;
    config.replication = 3;
    return config;
  }

  ClientSession<DvvMechanism>& session(const std::string& name) {
    auto it = sessions_.find(name);
    if (it == sessions_.end()) {
      const auto id = dvv::kv::client_actor(next_client_++);
      it = sessions_.emplace(name, ClientSession<DvvMechanism>(id, cluster_)).first;
      std::printf("(new client '%s')\n", name.c_str());
    }
    return it->second;
  }

  /// Returns false on quit.
  bool dispatch(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') return true;

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      std::printf(
          "put <client> <key> <value> | get <client> <key> | "
          "blind <client> <key> <value>\nsiblings <key> | context <client> <key> | "
          "fail <A-E> | recover <A-E>\nsync | handoff | stats | quit\n");
      return true;
    }
    if (cmd == "put" || cmd == "blind") {
      std::string client, key, value;
      if (!(in >> client >> key >> value)) return usage(cmd);
      auto& s = session(client);
      if (cmd == "blind") s.forget(key);
      const auto coordinator = cluster_.default_coordinator(key);
      if (!coordinator.has_value()) {
        std::printf("unavailable: every replica for %s is down\n", key.c_str());
        return true;
      }
      const auto receipt = s.put_with_handoff(key, *coordinator, value);
      std::printf("stored via server %s (replicated to %zu)\n",
                  dvv::kv::actor_name(receipt.coordinator).c_str(),
                  receipt.replicated_to);
      return true;
    }
    if (cmd == "get") {
      std::string client, key;
      if (!(in >> client >> key)) return usage(cmd);
      const auto result = session(client).get(key);
      if (!result.found) {
        std::printf("(not found)\n");
      } else {
        for (const auto& v : result.values) std::printf("  %s\n", v.c_str());
        std::printf("context: %s\n",
                    result.context.to_string(dvv::kv::actor_name).c_str());
      }
      return true;
    }
    if (cmd == "siblings") {
      std::string key;
      if (!(in >> key)) return usage(cmd);
      for (const ReplicaId r : cluster_.preference_list(key)) {
        std::printf("server %s%s:\n", dvv::kv::actor_name(r).c_str(),
                    cluster_.replica(r).alive() ? "" : " (DOWN)");
        const auto* stored = cluster_.replica(r).find(key);
        if (stored == nullptr || stored->sibling_count() == 0) {
          std::printf("  (empty)\n");
          continue;
        }
        for (const auto& v : stored->versions()) {
          std::printf("  %-16s %s\n", v.value.c_str(),
                      v.clock.to_string(dvv::kv::actor_name).c_str());
        }
      }
      return true;
    }
    if (cmd == "context") {
      std::string client, key;
      if (!(in >> client >> key)) return usage(cmd);
      std::printf("%s\n",
                  session(client).context_for(key).to_string(dvv::kv::actor_name).c_str());
      return true;
    }
    if (cmd == "fail" || cmd == "recover") {
      std::string server;
      if (!(in >> server) || server.size() != 1 || server[0] < 'A' || server[0] > 'E') {
        return usage(cmd);
      }
      const auto id = static_cast<ReplicaId>(server[0] - 'A');
      cluster_.replica(id).set_alive(cmd == "recover");
      if (cmd == "recover") {
        const auto delivered = cluster_.deliver_hints();
        std::printf("server %s back; %zu hint(s) delivered\n", server.c_str(),
                    delivered);
      } else {
        std::printf("server %s down\n", server.c_str());
      }
      return true;
    }
    if (cmd == "sync") {
      std::printf("anti-entropy touched %zu states\n", cluster_.anti_entropy());
      return true;
    }
    if (cmd == "handoff") {
      std::printf("%zu hint(s) delivered (%zu still parked)\n",
                  cluster_.deliver_hints(), cluster_.hinted_count());
      return true;
    }
    if (cmd == "stats") {
      const auto fp = cluster_.footprint();
      std::printf("keys(x replicas)=%zu siblings=%zu clock-entries=%zu "
                  "metadata=%zuB total=%zuB hints=%zu\n",
                  fp.keys, fp.siblings, fp.clock_entries, fp.metadata_bytes,
                  fp.total_bytes, cluster_.hinted_count());
      return true;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    return true;
  }

  bool usage(const std::string& cmd) {
    std::printf("usage error for '%s' (try 'help')\n", cmd.c_str());
    return true;
  }

  Cluster<DvvMechanism> cluster_;
  std::map<std::string, ClientSession<DvvMechanism>> sessions_;
  std::uint64_t next_client_ = 0;
};

}  // namespace

int main() { return Shell().run(); }
