// anti_entropy_sync — replica divergence and repair.
//
// Simulates a flaky period: writes that only reach some replicas, a
// server that is down and comes back, and the anti-entropy pass that
// reconciles everything.  Shows that the DVV sync() merge is
// idempotent, order-independent, and never resurrects overwritten data
// — the properties the paper's storage workflow relies on.
//
//   $ ./anti_entropy_sync
#include <cstdio>
#include <string>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"

namespace {

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::ReplicaId;

void survey(const char* label, Cluster<DvvMechanism>& cluster,
            const std::string& key) {
  std::printf("%s\n", label);
  for (const ReplicaId r : cluster.preference_list(key)) {
    const auto got = cluster.get(key, r);
    std::string line = "  server " + dvv::kv::actor_name(r) + ": ";
    if (!got.found) {
      line += "(no data)";
    } else {
      for (const auto& v : got.values) line += "[" + v + "] ";
    }
    if (!cluster.replica(r).alive()) line += "  (DOWN)";
    std::printf("%s\n", line.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== anti-entropy: divergence, failure, repair ==\n\n");

  ClusterConfig config;
  config.servers = 5;
  config.replication = 3;
  Cluster<DvvMechanism> cluster(config, DvvMechanism{});
  const std::string key = "inventory:widget";
  const auto pref = cluster.preference_list(key);

  ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);

  // A write that reaches everyone.
  alice.get(key);
  alice.put(key, "count=100");
  survey("after a fully replicated write:", cluster, key);

  // The third replica goes down; Alice's next update misses it.
  cluster.replica(pref[2]).set_alive(false);
  alice.get(key);
  alice.put(key, "count=90");
  survey("after an update while one replica is down:", cluster, key);

  // Meanwhile Bob, who read the OLD state long ago, writes through the
  // second replica only (his message to the others is lost).
  bob.put_via(key, pref[1], "count=95(bob)", {});
  survey("after Bob's concurrent, partially delivered write:", cluster, key);

  // The dead replica recovers, still holding stale data.
  cluster.replica(pref[2]).set_alive(true);
  survey("after the down replica recovers (note the stale copy):", cluster, key);

  // One anti-entropy round fixes everything: newest data everywhere,
  // Bob's concurrent write preserved as a sibling, stale data gone.
  cluster.anti_entropy();
  survey("after one anti-entropy round:", cluster, key);

  // Idempotence: more rounds change nothing.
  const auto before = cluster.footprint();
  cluster.anti_entropy();
  cluster.anti_entropy();
  const auto after = cluster.footprint();
  std::printf("two more anti-entropy rounds: siblings %zu -> %zu, "
              "metadata bytes %zu -> %zu (unchanged)\n\n",
              before.siblings, after.siblings, before.metadata_bytes,
              after.metadata_bytes);

  // A reader reconciles the true siblings.
  ClientSession<DvvMechanism> carol(dvv::kv::client_actor(2), cluster);
  carol.rmw(key, [](const std::vector<std::string>& siblings) {
    std::printf("reconciling %zu siblings...\n", siblings.size());
    return std::string("count=93(reconciled)");
  });
  cluster.anti_entropy();
  survey("after reconciliation:", cluster, key);
  return 0;
}
