// Mints the committed fuzz seed corpus (tests/fuzz/corpus/) from REAL
// traffic: tokens a real store actually handed to clients, wire frames
// real messages actually encode to, WAL segments a real backend
// actually wrote — plus the handcrafted crashers/ set of adversarial
// inputs that every harness must reject cleanly (tests/fuzz/ replays
// all of it under ctest; see README "Correctness tooling").
//
// Deterministic by construction: fixed keys, values and client ids, no
// clocks, no randomness — regenerating the corpus into a clean tree is
// a no-op diff.  Usage: corpus_gen [corpus-dir]
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "kv/session.hpp"
#include "kv/store.hpp"
#include "net/message.hpp"
#include "server/protocol.hpp"
#include "store/crc32.hpp"
#include "store/wal_backend.hpp"
#include "util/assert.hpp"

namespace {

namespace fs = std::filesystem;

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DVV_ASSERT_MSG(out.good(), "corpus_gen: cannot open output file");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  DVV_ASSERT_MSG(out.good(), "corpus_gen: write failed");
  std::printf("  %s (%zu bytes)\n", path.c_str(), bytes.size());
}

[[nodiscard]] std::string varint_bytes(std::uint64_t v) {
  std::string out;
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
  return out;
}

/// Drives a small sibling-heavy workload through one mechanism's store
/// and returns the store (for state bytes) plus every distinct token
/// the clients saw.
struct Traffic {
  std::unique_ptr<dvv::kv::Store> store;
  std::vector<std::string> tokens;
};

[[nodiscard]] Traffic run_traffic(const std::string& mechanism) {
  Traffic t;
  t.store = dvv::kv::make_store(mechanism, {});
  DVV_ASSERT_MSG(t.store != nullptr, "corpus_gen: unknown mechanism");
  dvv::kv::Store& s = *t.store;

  const auto remember = [&t](const dvv::kv::CausalToken& token) {
    const std::string& b = token.bytes();
    for (const std::string& seen : t.tokens) {
      if (seen == b) return;
    }
    t.tokens.push_back(b);
  };

  // Two clients racing on one key (concurrent siblings), plus a second
  // key with a deeper read-modify-write chain: small and large contexts.
  (void)s.put("cart", 1, {}, "a1");  // blind write
  (void)s.put("cart", 2, {}, "b1");  // concurrent blind write -> siblings
  dvv::kv::StoreGetResult g1 = s.get("cart");
  remember(g1.token);
  (void)s.put("cart", 1, g1.token, "a2");
  dvv::kv::StoreGetResult g2 = s.get("cart");
  remember(g2.token);

  dvv::kv::Session session(7, s);
  for (int i = 0; i < 5; ++i) {
    (void)session.put("chain", "v" + std::to_string(i));
    (void)session.get("chain");
    remember(session.token_for("chain"));
  }
  return t;
}

void mint_tokens(const fs::path& dir) {
  std::printf("token corpus:\n");
  // The empty token (a blind write) is valid for every mechanism.
  write_file(dir / "empty.bin", "");
  for (const std::string& mech : dvv::kv::known_mechanisms()) {
    Traffic t = run_traffic(mech);
    std::size_t i = 0;
    for (const std::string& token : t.tokens) {
      if (token.empty()) continue;
      write_file(dir / (mech + "_" + std::to_string(i++) + ".bin"), token);
    }
  }
}

void mint_wire(const fs::path& dir) {
  std::printf("wire corpus:\n");
  // Real sibling-state payloads: what ReplicateMsg/Hint*/CoordRead
  // actually carry is a replica's full codec encoding.
  Traffic t = run_traffic("dvv");
  const std::vector<dvv::kv::ReplicaId> prefs = t.store->preference_list("cart");
  DVV_ASSERT_MSG(!prefs.empty(), "corpus_gen: empty preference list");
  const std::string state =
      t.store->encoded_state(prefs[0], "cart").value_or(std::string());
  DVV_ASSERT_MSG(!state.empty(), "corpus_gen: no replica state for cart");

  using namespace dvv::net;
  const std::vector<std::pair<const char*, Message>> msgs = {
      {"replicate", ReplicateMsg{"cart", state}},
      {"hint", HintMsg{2, "cart", state}},
      {"hint_deliver", HintDeliverMsg{2, "cart", state}},
      {"hint_ack", HintAckMsg{2, "cart", 0x1122334455667788ULL}},
      {"sync_req", SyncReqMsg{42}},
      {"sync_resp", SyncRespMsg{42, 3, 17, 9, 2, 4096}},
      {"read_req", CoordReadReqMsg{5, "cart"}},
      {"read_resp", CoordReadRespMsg{5, true, state}},
      {"write_req", CoordWriteReqMsg{6, "cart", state}},
      {"write_resp", CoordWriteRespMsg{6}},
      {"join_req", JoinReqMsg{7}},
      {"epoch_announce", EpochAnnounceMsg{3, {0, 1, 2, 7}}},
      {"transfer_done", TransferDoneMsg{3, 0x9ae16a3bULL, 7, 12, 4096}},
  };
  for (const auto& [name, msg] : msgs) {
    write_file(dir / (std::string("msg_") + name + ".bin"),
               encode_to_bytes(msg));
  }

  // A well-formed batch frame: the coalesced shape SimTransport's pump
  // puts on the wire (length-prefixed sub-frames, no nesting).
  BatchMsg batch;
  batch.frames.push_back(encode_to_bytes(Message{ReplicateMsg{"cart", state}}));
  batch.frames.push_back(
      encode_to_bytes(Message{CoordWriteReqMsg{6, "cart", state}}));
  batch.frames.push_back(encode_to_bytes(Message{CoordWriteRespMsg{6}}));
  write_file(dir / "msg_batch.bin", encode_to_bytes(Message{batch}));
}

void mint_wal(const fs::path& dir) {
  std::printf("wal corpus:\n");
  Traffic t = run_traffic("dvvset");
  const std::vector<dvv::kv::ReplicaId> prefs = t.store->preference_list("cart");
  const std::string state =
      t.store->encoded_state(prefs[0], "cart").value_or(std::string());

  // Small segments force rotation and compaction, so the corpus holds
  // sealed, compacted AND active segment shapes.
  dvv::store::WalConfig config;
  config.segment_bytes = 256;
  config.flush_every = 2;
  config.compact_min_segments = 2;
  config.compact_min_garbage = 0.2;
  dvv::store::WalBackend wal(config);
  for (int i = 0; i < 24; ++i) {
    const std::string key = "k" + std::to_string(i % 4);
    wal.append({dvv::store::RecordType::kData, key, 0, state});
    if (i % 5 == 0) {
      wal.append({dvv::store::RecordType::kHint,
                  key, static_cast<dvv::core::ActorId>(1 + i % 3), state});
    }
    if (i % 7 == 0) {
      wal.append({dvv::store::RecordType::kHintDrop,
                  key, static_cast<dvv::core::ActorId>(1 + i % 3), ""});
    }
  }
  wal.flush();
  std::size_t i = 0;
  for (const std::vector<std::byte>& seg : wal.raw_segments()) {
    if (seg.empty()) continue;
    write_file(dir / ("segment_" + std::to_string(i++) + ".bin"),
               std::string(reinterpret_cast<const char*>(seg.data()),
                           seg.size()));
  }
}

/// Seeds for the dvvd client-protocol harness (fuzz_server_frame).  The
/// harness consumes byte 0 as the feed-chunk size, so every seed leads
/// with one: '\0' = feed whole, k = k-byte chunks (split-handling
/// coverage starts from the seeds, not just from mutation).
void mint_server_frames(const fs::path& dir) {
  std::printf("server_frame corpus:\n");
  Traffic t = run_traffic("dvv");
  DVV_ASSERT_MSG(!t.tokens.empty(), "corpus_gen: no dvv token minted");
  const std::string& token = t.tokens.back();

  const auto framed = [](const std::string& payload) {
    std::string out;
    dvv::server::append_frame(out, payload);
    return out;
  };

  std::string get_payload;
  dvv::server::encode_get_request(get_payload, 7, "cart");
  write_file(dir / "get_request.bin", std::string(1, '\0') + framed(get_payload));

  std::string put_payload;
  dvv::server::encode_put_request(put_payload, 8, "cart", token, "a3", 1);
  write_file(dir / "put_request.bin", std::string(1, '\0') + framed(put_payload));

  std::string blind_payload;
  dvv::server::encode_put_request(blind_payload, 9, "chain", "", "v9", 7);
  write_file(dir / "put_blind.bin", std::string(1, '\0') + framed(blind_payload));

  // A pipelined stream (three frames back to back), delivered in
  // 3-byte chunks: frames split across reads are the normal case.
  write_file(dir / "pipelined_split.bin",
             std::string(1, '\x03') + framed(get_payload) +
                 framed(put_payload) + framed(get_payload));

  // Response shapes (the client parser is fuzzed too).
  const dvv::kv::StoreGetResult g = t.store->get("cart");
  std::string get_resp;
  dvv::server::encode_get_response(get_resp, 7, g.found, g.values, g.token);
  write_file(dir / "get_response.bin", std::string(1, '\0') + framed(get_resp));

  std::string put_resp;
  dvv::server::encode_put_response(put_resp, 8, 3);
  write_file(dir / "put_response.bin", std::string(1, '\0') + framed(put_resp));

  std::string err_resp;
  dvv::server::encode_error_response(
      err_resp, dvv::server::ResponseStatus::kBadToken, 8);
  write_file(dir / "error_response.bin", std::string(1, '\0') + framed(err_resp));
}

/// The deliberately-seeded crashers: adversarial inputs that MUST be
/// rejected cleanly by all harness entry points.  Each would (or
/// did) target a specific decode-path weakness; the replay runner
/// feeds crashers/ to every harness on every ctest run.
void mint_crashers(const fs::path& dir) {
  std::printf("crashers:\n");

  // Truncated varint: continuation bits forever.  Pre-hardening this
  // aborted codec::Reader-based paths ("codec: truncated varint").
  write_file(dir / "truncated_varint.bin", std::string(3, '\x80'));

  // Wire frame claiming a huge payload against 1 actual byte — the
  // length-amplification probe (StrictReader caps claims up front).
  write_file(dir / "wire_huge_length_claim.bin",
             std::string(1, '\x00') + varint_bytes(0xFFFFFFFFULL) + "x");

  // Wire frame with an unknown message tag.
  write_file(dir / "wire_unknown_tag.bin", std::string(1, '\x63'));

  // Non-canonical varint (0x80 0x00 encodes 0 with padding): accepted
  // by lenient LEB128 readers, must be rejected by strict decode or
  // the round-trip canonicality property breaks.
  write_file(dir / "wire_noncanonical_varint.bin",
             std::string("\x80\x00", 2));

  // THE seeded WAL crasher: a frame whose CRC is CORRECT over a
  // malformed payload (a bare continuation byte).  Pre-hardening,
  // recovery trusted any CRC-valid payload to the asserting reader and
  // aborted here; post-hardening it is a torn tail, rejected cleanly.
  {
    const std::string payload("\x80", 1);
    std::string frame = varint_bytes(payload.size());
    frame += varint_bytes(dvv::store::crc32(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(payload.data()), payload.size())));
    frame += payload;
    write_file(dir / "wal_valid_crc_malformed_payload.bin", frame);
  }

  // Batch-frame probes against the tag-10 decoder.  A sub-frame that
  // is itself a batch (nesting is banned — unbounded recursion probe),
  // a frame whose count claims more sub-frames than follow, and a
  // well-formed batch with trailing junk (r.done() gate).
  {
    using namespace dvv::net;
    const std::string sub =
        encode_to_bytes(Message{ReplicateMsg{"cart", "state-bytes"}});
    const std::uint64_t batch_tag = std::variant_size_v<Message> - 1;
    const auto frame_of = [&](const std::vector<std::string>& subs,
                              std::uint64_t count) {
      std::string out = varint_bytes(batch_tag) + varint_bytes(count);
      for (const std::string& s : subs) out += varint_bytes(s.size()) + s;
      return out;
    };
    write_file(dir / "wire_batch_nested.bin",
               frame_of({frame_of({sub}, 1)}, 1));
    write_file(dir / "wire_batch_count_overclaim.bin", frame_of({sub}, 3));
    write_file(dir / "wire_batch_trailing_junk.bin",
               frame_of({sub}, 1) + "junk");
  }

  // Membership-frame probes against the tag-11 decoder: an epoch
  // announce whose member list is unsorted (ordering gate), and one
  // whose member count claims more varints than the frame holds (claim
  // cap before any allocation).  Both must come back nullopt.
  {
    write_file(dir / "wire_epoch_unsorted_members.bin",
               std::string("\x0b\x03\x02\x02\x01", 5));
    write_file(dir / "wire_epoch_count_overclaim.bin",
               std::string("\x0b\x03\x7f\x00\x01", 5));
  }

  // Token with a flipped CRC byte, and one with a wrong format version:
  // integrity and version gates, checked before any payload work.
  {
    Traffic t = run_traffic("vve");
    DVV_ASSERT_MSG(!t.tokens.empty() && !t.tokens.back().empty(),
                   "corpus_gen: no vve token minted");
    std::string bitflip = t.tokens.back();
    bitflip.back() = static_cast<char>(bitflip.back() ^ 0x01);
    write_file(dir / "token_crc_bitflip.bin", bitflip);

    std::string wrong_version = t.tokens.back();
    wrong_version[2] = '\x02';
    write_file(dir / "token_wrong_version.bin", wrong_version);
  }

  // dvvd frame crashers.  Each leads with the harness's chunk byte.
  {
    const auto u32le = [](std::uint32_t v) {
      std::string out;
      for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
      }
      return out;
    };
    // Length claim beyond the 1 MiB frame cap: must poison the stream
    // WITHOUT allocating the claimed bytes (the amplification probe).
    write_file(dir / "server_oversized_claim.bin",
               std::string(1, '\x01') + u32le(0xFFFFFF00U) + "x");
    // Zero-length frame: no payload can hold an opcode; stream poison.
    write_file(dir / "server_zero_length_frame.bin",
               std::string(1, '\0') + u32le(0));
    // Well-formed GET payload with trailing junk inside the frame:
    // payload-level reject (kTrailingBytes), stream continues.
    {
      std::string payload;
      dvv::server::encode_get_request(payload, 7, "cart");
      payload += "junk";
      std::string frame;
      dvv::server::append_frame(frame, payload);
      write_file(dir / "server_payload_trailing_junk.bin",
                 std::string(1, '\0') + frame);
    }
    // Unknown opcode 99: payload-level reject (kBadOpcode).
    {
      std::string frame;
      dvv::server::append_frame(frame, varint_bytes(99));
      write_file(dir / "server_bad_opcode.bin", std::string(1, '\0') + frame);
    }
    // A PUT whose value-length claim exceeds the frame: field-level
    // claim cap (kBadFields), byte-split one at a time.
    {
      std::string payload = varint_bytes(2);   // opcode PUT
      payload += varint_bytes(1);              // request id
      payload += varint_bytes(1) + "k";        // key
      payload += varint_bytes(0) ;             // empty token
      payload += varint_bytes(200) + "short";  // value claim > remaining
      std::string frame;
      dvv::server::append_frame(frame, payload);
      write_file(dir / "server_value_length_overclaim.bin",
                 std::string(1, '\x01') + frame);
    }
  }

  // Token claiming ~2^64 VVE exceptions in a tiny payload: the
  // token-bomb probe (claims beyond kMaxTokenEvents rejected before
  // any allocation).  Header + payload-length + payload, CRC-sealed so
  // the claim survives the integrity gate and reaches the parser.
  {
    std::string payload = varint_bytes(1);                  // one entry
    payload += varint_bytes(9);                             // actor
    payload += varint_bytes(5);                             // base
    payload += varint_bytes(0xFFFFFFFFFFFFFFFFULL);         // ex_count claim
    std::string token("\xD7\x70\x01\x05", 4);               // magic,ver,vve
    token += varint_bytes(payload.size());
    token += payload;
    const std::uint32_t crc = dvv::store::crc32(std::span<const std::byte>(
        reinterpret_cast<const std::byte*>(token.data()), token.size()));
    for (int i = 0; i < 4; ++i) {
      token.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
    }
    write_file(dir / "token_vve_exception_bomb.bin", token);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? argv[1] : "tests/fuzz/corpus";
  for (const char* sub : {"token", "wire", "wal", "server_frame", "crashers"}) {
    fs::create_directories(root / sub);
  }
  mint_tokens(root / "token");
  mint_wire(root / "wire");
  mint_wal(root / "wal");
  mint_server_frames(root / "server_frame");
  mint_crashers(root / "crashers");
  std::printf("corpus written under %s\n", root.c_str());
  return 0;
}
