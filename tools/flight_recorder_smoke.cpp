// tools/flight_recorder_smoke.cpp
//
// CI crash-path smoke for the flight recorder: arm the recorder, do
// real replicated work through the kv::Store facade so the ring holds
// genuine span events, then force a DVV_ASSERT failure.  The process
// must abort AND leave a well-formed JSON dump at DVV_FLIGHT_DUMP —
// the CI step runs this binary expecting a non-zero exit and then
// parses the dump.
//
// Exit code 0 here is a FAILURE (the assert did not fire).
#include <cstdio>

#include "kv/store.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

int main() {
  dvv::obs::flight().configure(256);
  dvv::obs::set_metrics_enabled(true);

  const auto store = dvv::kv::make_store("dvv", dvv::kv::StoreConfig{});
  if (store == nullptr) {
    std::fprintf(stderr, "smoke: make_store failed before the assert\n");
    return 2;
  }
  for (int i = 0; i < 8; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto put = store->put(key, dvv::kv::client_actor(0),
                                dvv::kv::CausalToken{}, "v");
    if (!put.ok()) {
      std::fprintf(stderr, "smoke: put failed before the assert\n");
      return 2;
    }
    (void)store->get(key);
  }
  if (dvv::obs::flight().recorded() == 0) {
    std::fprintf(stderr, "smoke: recorder captured nothing\n");
    return 2;
  }

  DVV_ASSERT_MSG(false, "flight_recorder_smoke: deliberate crash");
  std::fprintf(stderr, "smoke: assert did not abort\n");
  return 0;  // unreachable if the assert works; 0 makes CI flag it
}
