// dvv_lint — the project's determinism / decode-boundary lint.
//
// clang-query would be the precision tool, but the build must stay
// green on a bare GCC toolchain, so this is a small regex scanner with
// comment/string stripping: crude enough to audit, strict enough to
// catch the constructs that have actually bitten this codebase (see
// README "Correctness tooling" for the rule table and the whys).
//
// Rules (each checks a property the twin-equivalence suites depend on):
//
//   unordered-container  std::unordered_map / std::unordered_set
//                        anywhere in src/.  Iteration order is stdlib-
//                        implementation-defined; one loop over such a
//                        container in replica, coordinator or transport
//                        state silently breaks byte-identical twins.
//   wall-clock           std::chrono system/steady/high_resolution
//                        clocks and ::time().  Sim time is the only
//                        time source sim-reachable code may read.
//                        Waivable for metrics-only timing.
//   raw-rand             rand()/srand()/random_device.  All randomness
//                        flows from the seeded sim Rng.
//   raw-assert           bare assert() — compiled out under NDEBUG, so
//                        release builds would sail past the violated
//                        invariant.  DVV_ASSERT aborts in every build.
//   nodiscard-status     a header-declared function returning bool or
//                        std::optional whose name says it can fail
//                        (try_/decode/parse/recover...) must be
//                        [[nodiscard]]: a dropped status here is a
//                        swallowed decode failure.
//   pointer-key          ordered containers keyed on raw pointers.
//                        Pointer order is allocation order — another
//                        run, another iteration order.
//   no-alloc-in-hot-path make_shared / naked new / std::vector
//                        construction — but ONLY in files that opt in
//                        with a "dvv-hot-path" marker comment.  The
//                        message fast path is pooled end to end
//                        (src/util/pool.hpp, net::NetPools); an
//                        unwaived allocation in a tagged file is a
//                        send path falling off the pools.  Legitimate
//                        sites (the counted pool misses themselves)
//                        carry site-local waivers.
//
// Waiver: a comment containing
//   dvv-lint: allow(<rule>)
// suppresses that rule on its own line and the next two (multi-line
// chrono expressions); the comment documents why at the site.
//
// Usage:
//   dvv_lint <dir-or-file>...            lint sources, exit 1 on findings
//   dvv_lint --self-test <fixture-dir>   every fixture file must trip
//                                        exactly the rules its
//                                        "expect-lint: <rule>" comments
//                                        name (meta-test: proves the
//                                        lint still catches each banned
//                                        construct)
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Rule {
  const char* name;
  std::regex pattern;
  const char* why;
  /// When set, the rule fires only in files whose raw text contains
  /// this marker (opt-in rules like no-alloc-in-hot-path).
  const char* marker = nullptr;
};

// NOLINTBEGIN — the patterns below mention the banned identifiers.
const std::vector<Rule>& rules() {
  static const std::vector<Rule> kRules = {
      {"unordered-container",
       std::regex(R"((std::|[^:\w])unordered_(map|set|multimap|multiset)\b)"),
       "iteration order is implementation-defined; breaks twin equivalence"},
      {"wall-clock",
       std::regex(
           R"(\b(system_clock|steady_clock|high_resolution_clock)\b|(::|[^\w:.])time\s*\(\s*(NULL|nullptr|0|\&|\)))"),
       "wall-clock time in sim-reachable code; use sim time"},
      {"raw-rand",
       std::regex(R"((::|[^\w:.>])s?rand\s*\(|\brandom_device\b)"),
       "unseeded randomness; all randomness must flow from the sim Rng"},
      {"raw-assert",
       std::regex(R"((^|[^\w:.])assert\s*\()"),
       "bare assert() vanishes under NDEBUG; use DVV_ASSERT"},
      {"nodiscard-status",
       std::regex(
           R"(^\s*(inline\s+|static\s+|constexpr\s+|virtual\s+)*(bool|std::optional<[^;=]*>)\s+(try_|decode|parse|recover|validate|verify)\w*\s*\([^;{]*[;{]\s*$)"),
       "status-returning API without [[nodiscard]]; failures get dropped"},
      {"pointer-key",
       std::regex(R"(\b(std::map|std::set|flat_map)\s*<\s*(const\s+)?\w+(::\w+)*\s*\*)"),
       "pointer-keyed ordering is allocation order; nondeterministic"},
      {"no-alloc-in-hot-path",
       std::regex(R"(\bmake_shared\b|(^|[^\w:.])new[\s(]|\bstd::vector\s*<[^;>]*>\s*[({])"),
       "allocation on the pooled message path; use the net pools or waive "
       "the counted miss",
       "dvv-hot-path"},
  };
  return kRules;
}
// NOLINTEND

/// Blanks out comments and string/char literals (preserving line
/// structure) so rule patterns only see code.  Line continuations and
/// raw strings are rare here; handled conservatively.
std::string strip_comments_and_strings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class St { kCode, kLine, kBlock, kStr, kChr } st = St::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') { st = St::kLine; out += "  "; ++i; }
        else if (c == '/' && next == '*') { st = St::kBlock; out += "  "; ++i; }
        else if (c == '"') { st = St::kStr; out += ' '; }
        else if (c == '\'') { st = St::kChr; out += ' '; }
        else out += c;
        break;
      case St::kLine:
        if (c == '\n') { st = St::kCode; out += c; } else out += ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') { st = St::kCode; out += "  "; ++i; }
        else out += c == '\n' ? c : ' ';
        break;
      case St::kStr:
        if (c == '\\') { out += "  "; ++i; }
        else if (c == '"') { st = St::kCode; out += ' '; }
        else out += c == '\n' ? c : ' ';
        break;
      case St::kChr:
        if (c == '\\') { out += "  "; ++i; }
        else if (c == '\'') { st = St::kCode; out += ' '; }
        else out += c == '\n' ? c : ' ';
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : text) {
    if (c == '\n') { lines.push_back(cur); cur.clear(); }
    else cur += c;
  }
  lines.push_back(cur);
  return lines;
}

struct Finding {
  fs::path file;
  std::size_t line;  // 1-based
  std::string rule;
  std::string why;
};

/// Lints one file.  `raw_lines` (with comments intact) feed the waiver
/// and expect-lint scans; `code_lines` (stripped) feed the rules.
std::vector<Finding> lint_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const std::vector<std::string> raw_lines = split_lines(text);
  const std::vector<std::string> code_lines =
      split_lines(strip_comments_and_strings(text));

  const bool is_header = path.extension() == ".hpp" || path.extension() == ".h";
  const auto waived = [&raw_lines](std::size_t idx, const char* rule) {
    const std::string needle = std::string("dvv-lint: allow(") + rule + ")";
    // The waiver covers its own line and the next two — enough for one
    // wrapped chrono expression, small enough to stay site-local.
    for (std::size_t back = 0; back <= 2 && back <= idx; ++back) {
      if (raw_lines[idx - back].find(needle) != std::string::npos) return true;
    }
    return false;
  };

  std::vector<Finding> findings;
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    for (const Rule& rule : rules()) {
      // nodiscard-status only makes sense at declaration sites; .cpp
      // definitions of header-declared APIs would double-report.
      if (std::string_view(rule.name) == "nodiscard-status" && !is_header) {
        continue;
      }
      // Opt-in rules fire only in files carrying their marker comment.
      if (rule.marker != nullptr && text.find(rule.marker) == std::string::npos) {
        continue;
      }
      if (!std::regex_search(code_lines[i], rule.pattern)) continue;
      // The annotation check reads STRIPPED lines: "[[nodiscard]]" in a
      // comment must not satisfy the rule.
      if (std::string_view(rule.name) == "nodiscard-status" &&
          ((i > 0 && code_lines[i - 1].find("[[nodiscard]]") !=
                         std::string::npos) ||
           code_lines[i].find("[[nodiscard]]") != std::string::npos)) {
        continue;
      }
      if (waived(i, rule.name)) continue;
      findings.push_back({path, i + 1, rule.name, rule.why});
    }
  }
  return findings;
}

[[nodiscard]] bool lintable(const fs::path& p) {
  const auto ext = p.extension();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<fs::path> collect(const std::vector<std::string>& args) {
  std::vector<fs::path> files;
  for (const std::string& arg : args) {
    const fs::path p(arg);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "dvv_lint: no such input: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// --self-test: each fixture declares the rules it must trip via
/// "expect-lint: <rule>" comments; the lint passes the meta-test only
/// if actual findings match expectations exactly, per file.
int self_test(const std::vector<std::string>& args) {
  int failures = 0;
  std::size_t fixtures = 0;
  for (const fs::path& path : collect(args)) {
    ++fixtures;
    std::ifstream in(path, std::ios::binary);
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    std::set<std::string> expected;
    const std::regex expect(R"(expect-lint:\s*([\w-]+))");
    for (auto it = std::sregex_iterator(text.begin(), text.end(), expect);
         it != std::sregex_iterator(); ++it) {
      expected.insert((*it)[1].str());
    }
    std::set<std::string> actual;
    for (const Finding& f : lint_file(path)) actual.insert(f.rule);
    if (actual != expected) {
      ++failures;
      std::fprintf(stderr, "dvv_lint self-test FAIL: %s\n", path.c_str());
      for (const std::string& r : expected) {
        if (!actual.count(r)) {
          std::fprintf(stderr, "  expected rule not tripped: %s\n", r.c_str());
        }
      }
      for (const std::string& r : actual) {
        if (!expected.count(r)) {
          std::fprintf(stderr, "  unexpected finding: %s\n", r.c_str());
        }
      }
    }
  }
  if (fixtures == 0) {
    std::fprintf(stderr, "dvv_lint self-test: no fixtures found\n");
    return 2;
  }
  if (failures == 0) {
    std::printf("dvv_lint self-test: %zu fixtures OK\n", fixtures);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    std::fprintf(stderr,
                 "usage: dvv_lint <dir-or-file>... | --self-test <dir>\n");
    return 2;
  }
  if (args[0] == "--self-test") {
    return self_test({args.begin() + 1, args.end()});
  }

  std::vector<Finding> findings;
  std::size_t files = 0;
  for (const fs::path& path : collect(args)) {
    ++files;
    std::vector<Finding> f = lint_file(path);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.why.c_str());
  }
  if (findings.empty()) {
    std::printf("dvv_lint: %zu files clean\n", files);
    return 0;
  }
  std::fprintf(stderr, "dvv_lint: %zu findings in %zu files\n",
               findings.size(), files);
  return 1;
}
