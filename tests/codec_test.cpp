// Tests for the wire codec: varint primitives, round-trips for every
// clock and kernel type, and the size-accounting functions the metadata
// benches (E5/E6) rely on.
#include "codec/clock_codec.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "kv/types.hpp"
#include "util/rng.hpp"

namespace {

using dvv::codec::Reader;
using dvv::codec::Writer;
using dvv::core::CausalHistory;
using dvv::core::ClientVvSiblings;
using dvv::core::Dot;
using dvv::core::DottedVersionVector;
using dvv::core::DvvSet;
using dvv::core::DvvSiblings;
using dvv::core::HistorySiblings;
using dvv::core::ServerVvSiblings;
using dvv::core::VersionVector;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;

TEST(Wire, VarintRoundTripBoundaries) {
  Writer w;
  const std::uint64_t values[] = {0,
                                  1,
                                  127,
                                  128,
                                  16'383,
                                  16'384,
                                  std::numeric_limits<std::uint32_t>::max(),
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : values) w.varint(v);
  Reader r(w.buffer());
  for (const auto v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, VarintSizeMatchesEncoding) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 21, 1ULL << 63}) {
    Writer w;
    w.varint(v);
    EXPECT_EQ(dvv::codec::varint_size(v), w.size()) << "value " << v;
  }
}

TEST(Wire, BytesRoundTrip) {
  Writer w;
  w.bytes("hello");
  w.bytes("");
  w.bytes(std::string(1000, 'z'));
  Reader r(w.buffer());
  EXPECT_EQ(r.bytes(), "hello");
  EXPECT_EQ(r.bytes(), "");
  EXPECT_EQ(r.bytes(), std::string(1000, 'z'));
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, RandomVarintFuzzRoundTrip) {
  dvv::util::Rng rng(0xc0dec);
  for (int trial = 0; trial < 100; ++trial) {
    Writer w;
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 64; ++i) {
      // Bias toward small values (the clock counter regime) plus spikes.
      const std::uint64_t v =
          rng.chance(0.8) ? rng.below(1000) : rng.next();
      values.push_back(v);
      w.varint(v);
    }
    Reader r(w.buffer());
    for (const auto v : values) ASSERT_EQ(r.varint(), v);
  }
}

TEST(ClockCodec, VersionVectorRoundTrip) {
  const VersionVector vv{{kA, 3}, {kB, 170}, {9, 1}};
  Writer w;
  encode(w, vv);
  Reader r(w.buffer());
  EXPECT_EQ(decode_version_vector(r), vv);
  EXPECT_EQ(w.size(), dvv::codec::encoded_size(vv));
}

TEST(ClockCodec, EmptyVersionVectorIsOneByte) {
  Writer w;
  encode(w, VersionVector{});
  EXPECT_EQ(w.size(), 1u);  // just the zero count
}

TEST(ClockCodec, DotRoundTrip) {
  const Dot d{kB, 4711};
  Writer w;
  encode(w, d);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_dot(r), d);
  EXPECT_EQ(w.size(), dvv::codec::encoded_size(d));
}

TEST(ClockCodec, CausalHistoryRoundTrip) {
  const CausalHistory h{Dot{kA, 1}, Dot{kA, 2}, Dot{kB, 1}};
  Writer w;
  encode(w, h);
  Reader r(w.buffer());
  EXPECT_EQ(decode_causal_history(r), h);
  EXPECT_EQ(w.size(), dvv::codec::encoded_size(h));
}

TEST(ClockCodec, DvvRoundTrip) {
  const DottedVersionVector d(Dot{kA, 4}, VersionVector{{kA, 2}, {kB, 1}});
  Writer w;
  encode(w, d);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_dvv(r), d);
  EXPECT_EQ(w.size(), dvv::codec::encoded_size(d));
}

TEST(ClockCodec, DvvSiblingsRoundTrip) {
  DvvSiblings<std::string> s;
  s.update(kA, VersionVector{}, "v1");
  const auto stale = s.context();
  s.update(kA, stale, "left");
  s.update(kA, stale, "right");

  Writer w;
  encode(w, s);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_dvv_siblings(r), s);
  EXPECT_TRUE(r.exhausted());
}

TEST(ClockCodec, ServerVvSiblingsRoundTrip) {
  ServerVvSiblings<std::string> s;
  s.update(kA, VersionVector{}, "x");
  s.update(kB, s.context(), "y");
  Writer w;
  encode(w, s);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_server_vv_siblings(r), s);
}

TEST(ClockCodec, ClientVvSiblingsRoundTrip) {
  ClientVvSiblings<std::string> s;
  s.update(dvv::kv::client_actor(1), VersionVector{}, "x");
  const auto stale = s.context();
  s.update(dvv::kv::client_actor(2), stale, "y");
  Writer w;
  encode(w, s);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_client_vv_siblings(r), s);
}

TEST(ClockCodec, HistorySiblingsRoundTrip) {
  HistorySiblings<std::string> s;
  s.update(kA, CausalHistory{}, "x");
  const auto stale = s.context();
  s.update(kA, stale, "y");
  s.update(kB, stale, "z");
  Writer w;
  encode(w, s);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_history_siblings(r), s);
}

TEST(ClockCodec, VveRoundTrip) {
  dvv::core::VersionVectorWithExceptions vve;
  vve.add(Dot{kA, 1});
  vve.add(Dot{kA, 4});  // exceptions {2,3}
  vve.add(Dot{kB, 2});  // exception {1}
  Writer w;
  encode(w, vve);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_vve(r), vve);
  EXPECT_EQ(w.size(), dvv::codec::encoded_size(vve));
}

TEST(ClockCodec, VveSiblingsRoundTrip) {
  dvv::core::VveSiblings<std::string> s;
  s.update(kA, {}, "v1");
  const auto stale = s.context();
  s.update(kA, stale, "x");
  s.update(kB, stale, "y");
  Writer w;
  encode(w, s);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_vve_siblings(r), s);
}

TEST(ClockCodec, DvvSetRoundTrip) {
  DvvSet<std::string> s;
  s.update(kA, VersionVector{}, "v1");
  const auto stale = s.context();
  s.update(kA, stale, "c1");
  s.update(kB, stale, "c2");
  Writer w;
  encode(w, s);
  Reader r(w.buffer());
  EXPECT_EQ(dvv::codec::decode_dvv_set(r), s);
}

TEST(ClockCodec, MetadataSizeExcludesPayload) {
  DvvSiblings<std::string> small, large;
  small.update(kA, VersionVector{}, "x");
  large.update(kA, VersionVector{}, std::string(10'000, 'p'));
  // Identical clocks, wildly different payloads: metadata size equal.
  EXPECT_EQ(dvv::codec::metadata_size(small), dvv::codec::metadata_size(large));
  // Total size reflects the payload.
  EXPECT_GT(large.sibling_count(), 0u);
  Writer ws, wl;
  encode(ws, small);
  encode(wl, large);
  EXPECT_GT(wl.size(), ws.size() + 9'000);
}

TEST(ClockCodec, MetadataGrowsWithClockEntriesNotValues) {
  ClientVvSiblings<std::string> few, many;
  for (std::uint64_t c = 0; c < 2; ++c) {
    few.update(dvv::kv::client_actor(c), few.context(), "w");
  }
  for (std::uint64_t c = 0; c < 30; ++c) {
    many.update(dvv::kv::client_actor(c), many.context(), "w");
  }
  EXPECT_GT(dvv::codec::metadata_size(many), dvv::codec::metadata_size(few) * 5);
}

TEST(ClockCodec, DvvSetMetadataSmallerThanPerSiblingUnderExplosion) {
  DvvSet<std::string> set;
  DvvSiblings<std::string> per_sibling;
  set.update(kA, VersionVector{}, "seed");
  per_sibling.update(kA, VersionVector{}, "seed");
  const auto sctx = set.context();
  const auto dctx = per_sibling.context();
  for (int i = 0; i < 20; ++i) {
    set.update(kA, sctx, "w" + std::to_string(i));
    per_sibling.update(kA, dctx, "w" + std::to_string(i));
  }
  EXPECT_LT(dvv::codec::metadata_size(set),
            dvv::codec::metadata_size(per_sibling) / 4)
      << "the E10 compaction claim at codec level";
}

}  // namespace
