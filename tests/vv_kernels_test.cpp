// Tests for the two plain-VV baselines.  The server-VV kernel must
// faithfully reproduce the Fig. 1b *anomaly* (that is its job); the
// client-VV kernel must be sound but unbounded; pruning must break the
// client-VV kernel in exactly the ways the paper warns about.
#include "core/vv_kernels.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/causality.hpp"
#include "core/pruning.hpp"
#include "kv/types.hpp"
#include "util/rng.hpp"

namespace {

using dvv::core::ClientVvSiblings;
using dvv::core::Ordering;
using dvv::core::PruneConfig;
using dvv::core::PruneStats;
using dvv::core::ServerVvSiblings;
using dvv::core::VersionVector;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;
const dvv::core::ActorId kC1 = dvv::kv::client_actor(1);
const dvv::core::ActorId kC2 = dvv::kv::client_actor(2);

// ---------------------------------------------------------------- server-VV

TEST(ServerVv, BlindWriteThenRmw) {
  ServerVvSiblings<std::string> s;
  s.update(kA, VersionVector{}, "v1");
  EXPECT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(s.versions()[0].clock, (VersionVector{{kA, 1}}));

  const auto ctx = s.context();
  s.update(kA, ctx, "v2");
  ASSERT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(s.versions()[0].value, "v2");
  EXPECT_EQ(s.versions()[0].clock, (VersionVector{{kA, 2}}));
}

// Figure 1b, faithfully wrong: the two racing client writes get clocks
// [2,0] and [3,0], and the second *falsely dominates* the first.
TEST(ServerVv, Fig1bFalseDominanceBetweenRacingClients) {
  ServerVvSiblings<std::string> s;
  s.update(kA, VersionVector{}, "v1");      // [1,0]
  const auto stale = s.context();           // both clients read [1,0]

  s.update(kA, stale, "client-1");          // [2,0]
  s.update(kA, stale, "client-2");          // [3,0] — stale ctx detected,
                                            // sibling kept...
  ASSERT_EQ(s.sibling_count(), 2u);
  const auto& first = s.versions()[0].clock;
  const auto& second = s.versions()[1].clock;
  EXPECT_EQ(first, (VersionVector{{kA, 2}}));
  EXPECT_EQ(second, (VersionVector{{kA, 3}}));
  // ...but the clocks lie about their relationship:
  EXPECT_EQ(first.compare(second), Ordering::kBefore)
      << "[2,0] < [3,0]: per-server VVs cannot express this concurrency";
}

// And the lie becomes data loss at the next sync — the paper's server B
// scenario: B already replicated client-1's version [2,0]; when it then
// "receiv[es] the version tagged with VV [3,0]" the falsely-dominated
// true sibling is silently dropped.
TEST(ServerVv, Fig1bSyncLosesTheConcurrentWrite) {
  ServerVvSiblings<std::string> a;
  a.update(kA, VersionVector{}, "v1");
  const auto stale = a.context();
  a.update(kA, stale, "client-1");  // [2,0]

  ServerVvSiblings<std::string> b;  // server B replicates client-1's write
  b.sync(a);
  ASSERT_EQ(b.sibling_count(), 1u);
  ASSERT_EQ(b.versions()[0].value, "client-1");

  a.update(kA, stale, "client-2");  // the racing write gets [3,0]
  ASSERT_EQ(a.sibling_count(), 2u) << "server A still holds both";

  b.sync(a);  // B receives [3,0] — and [2,0] < [3,0] kills the sibling
  EXPECT_EQ(b.sibling_count(), 1u) << "sync collapsed the true siblings";
  EXPECT_EQ(b.versions()[0].value, "client-2")
      << "client-1's write was silently lost";
}

TEST(ServerVv, CrossServerConcurrencyStillDetected) {
  // The scheme is fine for concurrency *between servers* (its original
  // use in Locus/Coda): different entries, no false dominance.
  ServerVvSiblings<std::string> a, b;
  a.update(kA, VersionVector{}, "x");
  b.update(kB, VersionVector{}, "y");
  a.sync(b);
  EXPECT_EQ(a.sibling_count(), 2u);
}

TEST(ServerVv, ClockEntriesBoundedByServers) {
  ServerVvSiblings<std::string> s;
  VersionVector ctx;
  for (int i = 0; i < 50; ++i) {
    s.update(i % 2 == 0 ? kA : kB, ctx, "w");
    ctx = s.context();
  }
  EXPECT_LE(s.context().size(), 2u);
}

// ---------------------------------------------------------------- client-VV

TEST(ClientVv, RacingClientsProduceTrueSiblings) {
  ClientVvSiblings<std::string> s;
  s.update(kC1, VersionVector{}, "v1");
  const auto stale = s.context();
  s.update(kC1, stale, "c1-write");
  s.update(kC2, stale, "c2-write");
  ASSERT_EQ(s.sibling_count(), 2u);
  EXPECT_EQ(s.versions()[0].clock.compare(s.versions()[1].clock),
            Ordering::kConcurrent)
      << "per-client entries keep the concurrency visible";
}

TEST(ClientVv, SyncPreservesBothRacingWrites) {
  ClientVvSiblings<std::string> a;
  a.update(kC1, VersionVector{}, "v1");
  const auto stale = a.context();
  a.update(kC1, stale, "c1-write");
  a.update(kC2, stale, "c2-write");

  ClientVvSiblings<std::string> b;
  b.sync(a);
  EXPECT_EQ(b.sibling_count(), 2u) << "sound baseline: nothing lost";
}

TEST(ClientVv, RmwByOneClientOverwrites) {
  ClientVvSiblings<std::string> s;
  s.update(kC1, VersionVector{}, "v1");
  const auto ctx = s.context();
  s.update(kC1, ctx, "v2");
  ASSERT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(s.versions()[0].value, "v2");
}

// The cost the paper calls out: one entry per distinct writing client,
// forever — metadata grows with writers, not with replicas.
TEST(ClientVv, ClockGrowsWithDistinctClients) {
  ClientVvSiblings<std::string> s;
  constexpr std::uint64_t kClients = 40;
  for (std::uint64_t c = 0; c < kClients; ++c) {
    const auto ctx = s.context();  // each client reads fresh, then writes
    s.update(dvv::kv::client_actor(c), ctx, "w");
  }
  EXPECT_EQ(s.sibling_count(), 1u);       // no concurrency at all...
  EXPECT_EQ(s.context().size(), kClients)  // ...yet 40 clock entries
      << "client-VV metadata is O(#writers)";
}

TEST(ClientVv, ClientCounterMonotonicAcrossItsWrites) {
  ClientVvSiblings<std::string> s;
  for (int i = 1; i <= 5; ++i) {
    const auto ctx = s.context();
    s.update(kC1, ctx, "w" + std::to_string(i));
    EXPECT_EQ(s.context().get(kC1), static_cast<dvv::core::Counter>(i));
  }
}

// ------------------------------------------------------------------ pruning

TEST(ClientVvPruned, PruningCapsEntryCount) {
  ClientVvSiblings<std::string> s;
  const PruneConfig cap{4};
  PruneStats stats;
  for (std::uint64_t c = 0; c < 20; ++c) {
    const auto ctx = s.context();
    s.update(dvv::kv::client_actor(c), ctx, "w", cap, &stats);
  }
  EXPECT_LE(s.context().size(), 4u);
  EXPECT_GT(stats.invocations, 0u);
  EXPECT_GT(stats.entries_dropped, 0u);
}

// Pruning-induced FALSE CONCURRENCY: version Y causally follows X, but
// pruning removed from Y's clock the very entry that proved it, so the
// clocks compare as concurrent and a dominated version survives sync.
TEST(ClientVvPruned, PruningCausesFalseConcurrency) {
  // Build X's clock: writers c10..c14 each wrote once (5 entries).
  ClientVvSiblings<std::string> s;
  for (std::uint64_t c = 10; c < 15; ++c) {
    const auto ctx = s.context();
    s.update(dvv::kv::client_actor(c), ctx, "x-final");
  }
  ASSERT_EQ(s.sibling_count(), 1u);
  const VersionVector x_clock = s.versions()[0].clock;

  // Y reads X (full context) and overwrites it — but Y's clock is pruned
  // to 3 entries, losing some of the evidence that it covers X.
  ClientVvSiblings<std::string> pruned = s;
  const auto ctx = pruned.context();
  PruneStats stats;
  pruned.update(dvv::kv::client_actor(99), ctx, "y", PruneConfig{3}, &stats);
  ASSERT_EQ(pruned.sibling_count(), 1u);
  const VersionVector y_clock = pruned.versions()[0].clock;

  EXPECT_GT(stats.entries_dropped, 0u);
  // Ground truth: y causally follows x.  Pruned verdict: concurrent.
  EXPECT_EQ(x_clock.compare(y_clock), Ordering::kConcurrent)
      << "pruning destroyed the dominance proof";

  // Consequence at sync: a replica still holding X resurrects it next to
  // Y — a stale sibling the application must now resolve again.
  ClientVvSiblings<std::string> stale_replica = s;
  stale_replica.sync(pruned);
  EXPECT_EQ(stale_replica.sibling_count(), 2u) << "false sibling resurrected";
}

// Pruning-induced LOST UPDATE: the pruned entry was client c's own; when
// c writes again its counter restarts low and the new write can be
// dominated by an *older* clock still carrying the original entry.
TEST(ClientVvPruned, PruningCausesLostUpdate) {
  const auto c_old = dvv::kv::client_actor(1);

  // c_old writes 5 times (counter reaches 5); value "precious".
  ClientVvSiblings<std::string> replica_a;
  for (int i = 0; i < 5; ++i) {
    const auto ctx = replica_a.context();
    replica_a.update(c_old, ctx, i == 4 ? "precious" : "old");
  }
  const VersionVector full_clock = replica_a.versions()[0].clock;  // {c1:5}
  ASSERT_EQ(full_clock.get(c_old), 5u);

  // Replica B's copy of the key was (aggressively) pruned: c_old's entry
  // vanished entirely, so B hands out an empty context.
  ClientVvSiblings<std::string> replica_b;
  // c_old writes fresh data through B with the empty context: its
  // counter restarts at 1.
  replica_b.update(c_old, VersionVector{}, "newest");
  const VersionVector restarted = replica_b.versions()[0].clock;  // {c1:1}
  ASSERT_EQ(restarted.get(c_old), 1u);

  // Anti-entropy with A: {c1:1} < {c1:5}, so the NEWEST write loses to
  // data that is semantically five writes older.
  replica_b.sync(replica_a);
  ASSERT_EQ(replica_b.sibling_count(), 1u);
  EXPECT_EQ(replica_b.versions()[0].value, "precious")
      << "the fresh write was silently discarded: a lost update";
}

TEST(PruneFunction, DropsSmallestCountersFirst) {
  VersionVector vv{{1, 5}, {2, 1}, {3, 9}, {4, 2}};
  const PruneStats stats = dvv::core::prune(vv, PruneConfig{2});
  EXPECT_EQ(stats.entries_dropped, 2u);
  EXPECT_EQ(vv.size(), 2u);
  EXPECT_EQ(vv.get(3), 9u);  // largest counters survive
  EXPECT_EQ(vv.get(1), 5u);
  EXPECT_EQ(vv.get(2), 0u);
  EXPECT_EQ(vv.get(4), 0u);
}

TEST(PruneFunction, NoOpWhenWithinCapOrDisabled) {
  VersionVector vv{{1, 5}, {2, 1}};
  EXPECT_EQ(dvv::core::prune(vv, PruneConfig{2}).entries_dropped, 0u);
  EXPECT_EQ(dvv::core::prune(vv, PruneConfig{0}).entries_dropped, 0u);  // disabled
  EXPECT_EQ(vv.size(), 2u);
}

TEST(PruneFunction, TieBreaksByActorIdDeterministically) {
  VersionVector vv{{7, 3}, {2, 3}, {5, 3}};
  dvv::core::prune(vv, PruneConfig{1});
  EXPECT_EQ(vv.size(), 1u);
  EXPECT_EQ(vv.get(7), 3u) << "highest actor id among equal counters survives";
}

}  // namespace
