// Failure-injection property suite: servers crash (fail-stop, durable
// state) and recover mid-workload while clients keep reading and
// writing around them.  The claims under test:
//
//   * DVV and DVVSet remain EXACT vs the causal-history oracle through
//     arbitrary crash/recovery interleavings — sound causality does not
//     depend on node liveness;
//   * after failures stop, anti-entropy converges every key's
//     preference replicas to identical states (eventual convergence);
//   * recovered replicas never resurrect overwritten data through
//     anti-entropy (their stale versions are provably dominated).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kv/mechanism.hpp"
#include "oracle/audit.hpp"
#include "store/backend.hpp"
#include "store/wal_backend.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::DvvSetMechanism;
using dvv::oracle::mirrored_run;
using dvv::workload::WorkloadSpec;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 16;
  return cfg;
}

WorkloadSpec crashy(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.keys = 8;
  spec.zipf_skew = 0.99;
  spec.clients = 12;
  spec.operations = 500;
  spec.read_before_write = 0.7;
  spec.replicate_probability = 0.7;
  spec.anti_entropy_every = 40;
  spec.fail_probability = 0.05;
  spec.recover_probability = 0.10;
  spec.servers = config().servers;
  spec.seed = seed;
  return spec;
}

class FailureSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureSeedSweep, TraceActuallyContainsFailures) {
  const auto trace = dvv::workload::generate_trace(crashy(GetParam()),
                                                   config().replication);
  std::size_t fails = 0, recovers = 0;
  for (const auto& op : trace.ops) {
    fails += op.kind == dvv::workload::TraceOp::Kind::kFail;
    recovers += op.kind == dvv::workload::TraceOp::Kind::kRecover;
  }
  EXPECT_GT(fails, 0u) << "spec must actually inject crashes";
  EXPECT_LE(recovers, fails);
}

TEST_P(FailureSeedSweep, DvvStaysExactThroughCrashes) {
  const auto run = mirrored_run(crashy(GetParam()), config(), DvvMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
  EXPECT_GT(run.subject_stats.failures, 0u);
}

TEST_P(FailureSeedSweep, DvvSetStaysExactThroughCrashes) {
  const auto run = mirrored_run(crashy(GetParam()), config(), DvvSetMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
}

TEST_P(FailureSeedSweep, RecoveryPlusAntiEntropyConverges) {
  const auto spec = crashy(GetParam());
  const auto trace = dvv::workload::generate_trace(spec, config().replication);
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::workload::replay(cluster, trace);

  // Bring everyone back and run one full repair round.
  for (std::size_t s = 0; s < config().servers; ++s) {
    cluster.replica(s).set_alive(true);
  }
  cluster.anti_entropy();

  // Every key: all preference replicas hold identical value sets.
  const auto& mech = cluster.mechanism();
  for (std::size_t s = 0; s < config().servers; ++s) {
    for (const auto& key : cluster.replica(s).keys()) {
      std::multiset<std::string> reference;
      bool first = true;
      for (const auto r : cluster.preference_list(key)) {
        std::multiset<std::string> values;
        if (const auto* stored = cluster.replica(r).find(key)) {
          for (auto& v : mech.values_of(*stored)) values.insert(v);
        }
        if (first) {
          reference = values;
          first = false;
        } else {
          ASSERT_EQ(values, reference) << "key " << key << " replica " << r;
        }
      }
    }
  }
}

TEST_P(FailureSeedSweep, DvvStaysExactWithHintedHandoff) {
  // The sloppy quorum changes WHERE writes land during outages (hints
  // on fallback servers, delivered on recovery) — it must not change
  // causality one bit.
  auto spec = crashy(GetParam());
  spec.hinted_handoff = true;
  const auto run = mirrored_run(spec, config(), DvvMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSeedSweep,
                         ::testing::Values(11, 23, 37, 59, 71, 97));

// ---- true-crash matrix (src/store) ----------------------------------------
//
// The crash/durability matrix for both backends: what survives a real
// crash() — volatile state dropped — and how recover-then-AAE repairs
// the rest from the peers.

ClusterConfig wal_cluster(std::size_t flush_every) {
  ClusterConfig cfg = config();
  cfg.storage.kind = dvv::store::BackendKind::kWal;
  cfg.storage.wal.flush_every = flush_every;
  return cfg;
}

TEST(CrashMatrix, MemBackendCrashIsTotalLossUntilAaeRepairs) {
  ClusterConfig mem_cfg = config();
  mem_cfg.storage.kind = dvv::store::BackendKind::kMem;  // pin: loss intended
  Cluster<DvvMechanism> cluster(mem_cfg, {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const dvv::kv::Key key = "k";
  const auto pref = cluster.preference_list(key);
  alice.get(key);
  alice.put(key, "replicated");

  cluster.crash(pref[1]);
  (void)cluster.recover(pref[1]);
  EXPECT_FALSE(cluster.get(key, pref[1]).found)
      << "no log: recovery restores nothing";

  cluster.anti_entropy();
  const auto got = cluster.get(key, pref[1]);
  ASSERT_TRUE(got.found) << "peers repair the wiped replica";
  EXPECT_EQ(got.values, std::vector<std::string>{"replicated"});
}

TEST(CrashMatrix, WalWriteThroughCrashLosesNothing) {
  Cluster<DvvMechanism> cluster(wal_cluster(/*flush_every=*/1), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const auto pref = cluster.preference_list("k");
  alice.get("k");
  alice.put("k", "v1");

  cluster.crash(pref[0]);
  const auto stats = cluster.recover(pref[0]);
  EXPECT_EQ(stats.records_lost_unflushed, 0u);
  const auto got = cluster.get("k", pref[0]);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.values, std::vector<std::string>{"v1"});
  EXPECT_EQ(cluster.anti_entropy(), 0u) << "nothing to repair";
}

TEST(CrashMatrix, WalCrashBeforeFlushLosesTailThenAaeRestoresIt) {
  // Group commit: the un-flushed tail dies with the crash; the peers
  // that saw the replicated write put it back through anti-entropy.
  Cluster<DvvMechanism> cluster(wal_cluster(/*flush_every=*/0), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const dvv::kv::Key key = "k";
  const auto pref = cluster.preference_list(key);

  alice.get(key);
  alice.put(key, "durable");
  for (const auto r : pref) cluster.replica(r).backend().flush();
  alice.get(key);
  alice.put(key, "in-the-tail");  // appended after the last fsync

  cluster.crash(pref[0]);
  const auto stats = cluster.recover(pref[0]);
  EXPECT_GT(stats.records_lost_unflushed, 0u);
  const auto got = cluster.get(key, pref[0]);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.values, std::vector<std::string>{"durable"})
      << "the tail write must be gone after replay";

  cluster.anti_entropy();
  const auto repaired = cluster.get(key, pref[0]);
  ASSERT_TRUE(repaired.found);
  EXPECT_EQ(repaired.values, std::vector<std::string>{"in-the-tail"})
      << "peers restore the lost tail write";
}

TEST(CrashMatrix, WalCrashMidSegmentTornWriteIsDroppedByCrc) {
  Cluster<DvvMechanism> cluster(wal_cluster(/*flush_every=*/0), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const dvv::kv::Key key = "k";
  const auto pref = cluster.preference_list(key);

  alice.get(key);
  alice.put(key, "durable");
  for (const auto r : pref) cluster.replica(r).backend().flush();
  alice.get(key);
  alice.put(key, "torn-away");

  cluster.crash(pref[0], /*torn_tail_bytes=*/6);  // partial frame survives
  const auto stats = cluster.recover(pref[0]);
  EXPECT_EQ(stats.torn_records_dropped, 1u) << "CRC must reject the torn frame";
  const auto got = cluster.get(key, pref[0]);
  ASSERT_TRUE(got.found);
  EXPECT_EQ(got.values, std::vector<std::string>{"durable"});

  cluster.anti_entropy();
  EXPECT_EQ(cluster.get(key, pref[0]).values,
            std::vector<std::string>{"torn-away"});
}

TEST(CrashMatrix, RecoverThenAaeConvergesUnderChaoticCrashFaults) {
  // The full pipeline under the workload driver: kFail/kRecover realized
  // as true crashes against a write-through WAL, then repair.
  auto spec = crashy(11);
  spec.crash_faults = true;
  spec.hinted_handoff = true;
  const auto trace = dvv::workload::generate_trace(spec, config().replication);
  Cluster<DvvMechanism> cluster(wal_cluster(/*flush_every=*/1), {});
  dvv::workload::replay(cluster, trace);

  for (std::size_t s = 0; s < config().servers; ++s) {
    if (!cluster.replica(s).alive()) (void)cluster.recover(s);
  }
  cluster.deliver_hints();
  cluster.anti_entropy();

  const auto& mech = cluster.mechanism();
  for (std::size_t s = 0; s < config().servers; ++s) {
    for (const auto& key : cluster.replica(s).keys()) {
      std::multiset<std::string> reference;
      bool first = true;
      for (const auto r : cluster.preference_list(key)) {
        std::multiset<std::string> values;
        if (const auto* stored = cluster.replica(r).find(key)) {
          for (auto& v : mech.values_of(*stored)) values.insert(v);
        }
        if (first) {
          reference = values;
          first = false;
        } else {
          ASSERT_EQ(values, reference) << "key " << key << " replica " << r;
        }
      }
    }
  }
}

// Regression for crash-time dot reuse: a replica recovering from a
// LOSSY log has rolled its clocks back, so minting dots from the
// recovered counters would reissue event ids its peers already hold for
// different values — the peer would then "recognize" the new write and
// silently drop it.  Lossy recovery must bump the replica's clock
// incarnation (kv/types.hpp) so the reborn coordinator can never
// collide with its pre-crash self.
TEST(CrashMatrix, LossyRecoveryNeverReusesDots) {
  Cluster<DvvMechanism> cluster(wal_cluster(/*flush_every=*/0), {});
  const dvv::kv::Key key = "k";
  const auto pref = cluster.preference_list(key);

  // Blind write v1 through pref[0]: dot (pref[0], 1) lands on pref[1]
  // too, but pref[0]'s own log never sees a flush.
  cluster.put(key, pref[0], dvv::kv::client_actor(0), {}, "v1", {pref[1]});
  cluster.crash(pref[0]);
  (void)cluster.recover(pref[0]);
  EXPECT_EQ(cluster.replica(pref[0]).incarnation(), 1u) << "lossy rebirth";

  // Blind write v2 through the reborn pref[0].  Without the incarnation
  // bump this would be dot (pref[0], 1) again == v1's id at pref[1].
  cluster.put(key, pref[0], dvv::kv::client_actor(1), {}, "v2", {pref[1]});

  cluster.anti_entropy();
  for (const auto r : {pref[0], pref[1]}) {
    const auto got = cluster.get(key, r);
    ASSERT_TRUE(got.found);
    const std::set<std::string> values(got.values.begin(), got.values.end());
    EXPECT_EQ(values, (std::set<std::string>{"v1", "v2"}))
        << "blind racing writes must both survive at " << r;
  }
}

TEST(CrashMatrix, DvvStaysExactThroughWalCrashFaults) {
  // The oracle audit with REAL crashes: write-through WAL makes a crash
  // recoverable, so DVV must stay exact through arbitrary crash/recover
  // interleavings — the paper's recovery-by-sync safety claim, now
  // against a durability model instead of a pause.
  for (const std::uint64_t seed : {11ULL, 59ULL}) {
    auto spec = crashy(seed);
    spec.crash_faults = true;
    ClusterConfig cfg = wal_cluster(/*flush_every=*/1);
    const auto run = mirrored_run(spec, cfg, DvvMechanism{});
    EXPECT_TRUE(run.report.exact())
        << "lost=" << run.report.lost_updates()
        << " false=" << run.report.false_siblings() << " seed=" << seed;
    EXPECT_GT(run.subject_stats.failures, 0u);
  }
}

// A recovered replica holding month-old state must not push stale
// versions back into the cluster: its versions' dots are inside the
// live versions' causal pasts, so anti-entropy discards them.
TEST(FailureRecovery, StaleReplicaCannotResurrectOverwrittenData) {
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const dvv::kv::Key key = "k";
  const auto pref = cluster.preference_list(key);

  alice.get(key);
  alice.put(key, "v1");  // everywhere

  cluster.replica(pref[2]).set_alive(false);  // crash with v1 on disk
  for (int i = 2; i <= 5; ++i) {
    alice.get(key);
    alice.put(key, "v" + std::to_string(i));  // v1..v4 overwritten
  }
  cluster.replica(pref[2]).set_alive(true);  // back, still holding v1

  cluster.anti_entropy();
  for (const auto r : pref) {
    const auto got = cluster.get(key, r);
    ASSERT_TRUE(got.found);
    ASSERT_EQ(got.values.size(), 1u) << "no resurrected sibling on " << r;
    EXPECT_EQ(got.values[0], "v5");
  }
}

// Symmetric hazard: writes accepted by the SURVIVORS while a replica is
// down must win over the stale copy without the survivors ever having
// seen the crash.
TEST(FailureRecovery, WritesDuringOutageSurviveRepair) {
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  dvv::kv::ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);
  const dvv::kv::Key key = "k";
  const auto pref = cluster.preference_list(key);

  alice.get(key);
  alice.put(key, "base");
  cluster.replica(pref[0]).set_alive(false);  // the usual coordinator dies

  // Bob writes through the fail-over coordinator; Alice writes blind.
  bob.get(key);
  bob.put(key, "bob-during-outage");
  alice.forget(key);
  alice.put(key, "alice-blind");

  cluster.replica(pref[0]).set_alive(true);
  cluster.anti_entropy();

  for (const auto r : pref) {
    const auto got = cluster.get(key, r);
    ASSERT_TRUE(got.found);
    const std::set<std::string> values(got.values.begin(), got.values.end());
    EXPECT_TRUE(values.contains("bob-during-outage"));
    EXPECT_TRUE(values.contains("alice-blind"));
    EXPECT_FALSE(values.contains("base")) << "dominated version must be gone";
  }
}

}  // namespace
