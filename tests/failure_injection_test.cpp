// Failure-injection property suite: servers crash (fail-stop, durable
// state) and recover mid-workload while clients keep reading and
// writing around them.  The claims under test:
//
//   * DVV and DVVSet remain EXACT vs the causal-history oracle through
//     arbitrary crash/recovery interleavings — sound causality does not
//     depend on node liveness;
//   * after failures stop, anti-entropy converges every key's
//     preference replicas to identical states (eventual convergence);
//   * recovered replicas never resurrect overwritten data through
//     anti-entropy (their stale versions are provably dominated).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "kv/mechanism.hpp"
#include "oracle/audit.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::DvvSetMechanism;
using dvv::oracle::mirrored_run;
using dvv::workload::WorkloadSpec;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 16;
  return cfg;
}

WorkloadSpec crashy(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.keys = 8;
  spec.zipf_skew = 0.99;
  spec.clients = 12;
  spec.operations = 500;
  spec.read_before_write = 0.7;
  spec.replicate_probability = 0.7;
  spec.anti_entropy_every = 40;
  spec.fail_probability = 0.05;
  spec.recover_probability = 0.10;
  spec.servers = config().servers;
  spec.seed = seed;
  return spec;
}

class FailureSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FailureSeedSweep, TraceActuallyContainsFailures) {
  const auto trace = dvv::workload::generate_trace(crashy(GetParam()),
                                                   config().replication);
  std::size_t fails = 0, recovers = 0;
  for (const auto& op : trace.ops) {
    fails += op.kind == dvv::workload::TraceOp::Kind::kFail;
    recovers += op.kind == dvv::workload::TraceOp::Kind::kRecover;
  }
  EXPECT_GT(fails, 0u) << "spec must actually inject crashes";
  EXPECT_LE(recovers, fails);
}

TEST_P(FailureSeedSweep, DvvStaysExactThroughCrashes) {
  const auto run = mirrored_run(crashy(GetParam()), config(), DvvMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
  EXPECT_GT(run.subject_stats.failures, 0u);
}

TEST_P(FailureSeedSweep, DvvSetStaysExactThroughCrashes) {
  const auto run = mirrored_run(crashy(GetParam()), config(), DvvSetMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
}

TEST_P(FailureSeedSweep, RecoveryPlusAntiEntropyConverges) {
  const auto spec = crashy(GetParam());
  const auto trace = dvv::workload::generate_trace(spec, config().replication);
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::workload::replay(cluster, trace);

  // Bring everyone back and run one full repair round.
  for (std::size_t s = 0; s < config().servers; ++s) {
    cluster.replica(s).set_alive(true);
  }
  cluster.anti_entropy();

  // Every key: all preference replicas hold identical value sets.
  const auto& mech = cluster.mechanism();
  for (std::size_t s = 0; s < config().servers; ++s) {
    for (const auto& key : cluster.replica(s).keys()) {
      std::multiset<std::string> reference;
      bool first = true;
      for (const auto r : cluster.preference_list(key)) {
        std::multiset<std::string> values;
        if (const auto* stored = cluster.replica(r).find(key)) {
          for (auto& v : mech.values_of(*stored)) values.insert(v);
        }
        if (first) {
          reference = values;
          first = false;
        } else {
          ASSERT_EQ(values, reference) << "key " << key << " replica " << r;
        }
      }
    }
  }
}

TEST_P(FailureSeedSweep, DvvStaysExactWithHintedHandoff) {
  // The sloppy quorum changes WHERE writes land during outages (hints
  // on fallback servers, delivered on recovery) — it must not change
  // causality one bit.
  auto spec = crashy(GetParam());
  spec.hinted_handoff = true;
  const auto run = mirrored_run(spec, config(), DvvMechanism{});
  EXPECT_TRUE(run.report.exact())
      << "lost=" << run.report.lost_updates()
      << " false=" << run.report.false_siblings();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailureSeedSweep,
                         ::testing::Values(11, 23, 37, 59, 71, 97));

// A recovered replica holding month-old state must not push stale
// versions back into the cluster: its versions' dots are inside the
// live versions' causal pasts, so anti-entropy discards them.
TEST(FailureRecovery, StaleReplicaCannotResurrectOverwrittenData) {
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const dvv::kv::Key key = "k";
  const auto pref = cluster.preference_list(key);

  alice.get(key);
  alice.put(key, "v1");  // everywhere

  cluster.replica(pref[2]).set_alive(false);  // crash with v1 on disk
  for (int i = 2; i <= 5; ++i) {
    alice.get(key);
    alice.put(key, "v" + std::to_string(i));  // v1..v4 overwritten
  }
  cluster.replica(pref[2]).set_alive(true);  // back, still holding v1

  cluster.anti_entropy();
  for (const auto r : pref) {
    const auto got = cluster.get(key, r);
    ASSERT_TRUE(got.found);
    ASSERT_EQ(got.values.size(), 1u) << "no resurrected sibling on " << r;
    EXPECT_EQ(got.values[0], "v5");
  }
}

// Symmetric hazard: writes accepted by the SURVIVORS while a replica is
// down must win over the stale copy without the survivors ever having
// seen the crash.
TEST(FailureRecovery, WritesDuringOutageSurviveRepair) {
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  dvv::kv::ClientSession<DvvMechanism> bob(dvv::kv::client_actor(1), cluster);
  const dvv::kv::Key key = "k";
  const auto pref = cluster.preference_list(key);

  alice.get(key);
  alice.put(key, "base");
  cluster.replica(pref[0]).set_alive(false);  // the usual coordinator dies

  // Bob writes through the fail-over coordinator; Alice writes blind.
  bob.get(key);
  bob.put(key, "bob-during-outage");
  alice.forget(key);
  alice.put(key, "alice-blind");

  cluster.replica(pref[0]).set_alive(true);
  cluster.anti_entropy();

  for (const auto r : pref) {
    const auto got = cluster.get(key, r);
    ASSERT_TRUE(got.found);
    const std::set<std::string> values(got.values.begin(), got.values.end());
    EXPECT_TRUE(values.contains("bob-during-outage"));
    EXPECT_TRUE(values.contains("alice-blind"));
    EXPECT_FALSE(values.contains("base")) << "dominated version must be gone";
  }
}

}  // namespace
