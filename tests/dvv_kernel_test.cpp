// Tests for core::DvvSiblings — the paper's server-side update()/sync()
// workflow.  Covers the GET/PUT cycle, sibling creation and overwrite,
// dot uniqueness, the metadata bound, and the algebraic properties of
// sync (commutative / associative / idempotent) under randomized states.
#include "core/dvv_kernel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>

#include "core/causality.hpp"
#include "util/rng.hpp"

namespace {

using dvv::core::Dot;
using dvv::core::DvvSiblings;
using dvv::core::Ordering;
using dvv::core::VersionVector;

constexpr dvv::core::ActorId kA = 0;
constexpr dvv::core::ActorId kB = 1;
constexpr dvv::core::ActorId kC = 2;

using Siblings = DvvSiblings<std::string>;

TEST(DvvKernel, FreshKeyIsEmpty) {
  Siblings s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.sibling_count(), 0u);
  EXPECT_TRUE(s.context().empty());
  EXPECT_EQ(s.clock_entries(), 0u);
}

TEST(DvvKernel, BlindWriteCreatesFirstVersion) {
  Siblings s;
  const Dot d = s.update(kA, VersionVector{}, "v1");
  EXPECT_EQ(d, (Dot{kA, 1}));
  EXPECT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(s.versions()[0].value, "v1");
  EXPECT_TRUE(s.versions()[0].clock.past().empty());
}

TEST(DvvKernel, ReadModifyWriteOverwrites) {
  Siblings s;
  s.update(kA, VersionVector{}, "v1");
  const VersionVector ctx = s.context();
  const Dot d = s.update(kA, ctx, "v2");
  EXPECT_EQ(d, (Dot{kA, 2}));
  ASSERT_EQ(s.sibling_count(), 1u);  // v1 was read, so v1 is replaced
  EXPECT_EQ(s.versions()[0].value, "v2");
}

TEST(DvvKernel, ConcurrentBlindWritesBecomeSiblings) {
  Siblings s;
  s.update(kA, VersionVector{}, "x");
  s.update(kA, VersionVector{}, "y");  // another client, never read
  EXPECT_EQ(s.sibling_count(), 2u);
}

// The paper's Fig. 1c core case: client 1 and client 2 both read version
// (A,1); client 1 writes, then client 2 writes with its (now stale)
// context.  Both writes must survive as concurrent siblings with clocks
// (A,2)[1,0] and (A,3)[1,0].
TEST(DvvKernel, StaleContextWriteCreatesConcurrentSibling) {
  Siblings s;
  s.update(kA, VersionVector{}, "v1");           // (A,1)[]
  const VersionVector read_by_both = s.context();  // [A->1]

  s.update(kA, read_by_both, "from-client-1");   // (A,2)[1,0], replaces v1
  s.update(kA, read_by_both, "from-client-2");   // (A,3)[1,0], sibling!

  ASSERT_EQ(s.sibling_count(), 2u);
  const auto& c1 = s.versions()[0].clock;
  const auto& c2 = s.versions()[1].clock;
  EXPECT_EQ(c1.dot(), (Dot{kA, 2}));
  EXPECT_EQ(c2.dot(), (Dot{kA, 3}));
  EXPECT_EQ(c1.past(), (VersionVector{{kA, 1}}));
  EXPECT_EQ(c2.past(), (VersionVector{{kA, 1}}));
  EXPECT_EQ(c1.compare(c2), Ordering::kConcurrent);
}

TEST(DvvKernel, ContextReadAfterConflictOverwritesBothSiblings) {
  Siblings s;
  s.update(kA, VersionVector{}, "x");
  s.update(kA, VersionVector{}, "y");
  ASSERT_EQ(s.sibling_count(), 2u);
  const VersionVector ctx = s.context();  // covers both dots
  s.update(kA, ctx, "merged");
  ASSERT_EQ(s.sibling_count(), 1u);
  EXPECT_EQ(s.versions()[0].value, "merged");
}

TEST(DvvKernel, DotsNeverReusedEvenAfterDiscard) {
  Siblings s;
  s.update(kA, VersionVector{}, "v1");         // (A,1)
  const auto ctx = s.context();
  const Dot d2 = s.update(kA, ctx, "v2");      // (A,2), discards v1
  const auto ctx2 = s.context();
  const Dot d3 = s.update(kA, ctx2, "v3");     // must be (A,3)
  EXPECT_EQ(d2, (Dot{kA, 2}));
  EXPECT_EQ(d3, (Dot{kA, 3}));
}

TEST(DvvKernel, CounterAdvancesPastContextEvenWithEmptyStore) {
  // A replica that lost its state (or a fresh replica receiving a write
  // whose context already mentions it) must not mint a stale dot.
  Siblings s;
  const VersionVector ctx{{kA, 7}};
  const Dot d = s.update(kA, ctx, "v");
  EXPECT_EQ(d, (Dot{kA, 8}));
}

TEST(DvvKernel, WritesThroughDifferentServersGetDifferentDotNodes) {
  Siblings a, b;
  a.update(kA, VersionVector{}, "from-A");
  b.update(kB, VersionVector{}, "from-B");
  a.sync(b);
  ASSERT_EQ(a.sibling_count(), 2u);
  EXPECT_EQ(a.versions()[0].clock.dot().node, kA);
  EXPECT_EQ(a.versions()[1].clock.dot().node, kB);
}

TEST(DvvKernel, SyncDropsDominatedVersions) {
  Siblings a;
  a.update(kA, VersionVector{}, "old");
  Siblings b = a;  // replicate
  const auto ctx = b.context();
  b.update(kA, ctx, "new");  // b's version dominates a's

  a.sync(b);
  ASSERT_EQ(a.sibling_count(), 1u);
  EXPECT_EQ(a.versions()[0].value, "new");
}

TEST(DvvKernel, SyncKeepsConcurrentVersionsFromBothSides) {
  Siblings a, b;
  a.update(kA, VersionVector{}, "x");
  b.update(kB, VersionVector{}, "y");
  a.sync(b);
  EXPECT_EQ(a.sibling_count(), 2u);
}

TEST(DvvKernel, SyncDeduplicatesSharedVersions) {
  Siblings a;
  a.update(kA, VersionVector{}, "x");
  Siblings b = a;  // identical replicas
  a.sync(b);
  EXPECT_EQ(a.sibling_count(), 1u);
}

TEST(DvvKernel, SyncWithEmptyIsIdentity) {
  Siblings a;
  a.update(kA, VersionVector{}, "x");
  const Siblings before = a;
  a.sync(Siblings{});
  EXPECT_EQ(a, before);

  Siblings empty;
  empty.sync(a);
  EXPECT_EQ(empty, a);
}

TEST(DvvKernel, AbsorbSingleReplicatedVersion) {
  Siblings coord;
  coord.update(kA, VersionVector{}, "v");
  Siblings replica;
  replica.absorb(coord.versions()[0]);
  EXPECT_EQ(replica, coord);
  // Absorbing again changes nothing.
  replica.absorb(coord.versions()[0]);
  EXPECT_EQ(replica.sibling_count(), 1u);
}

// The paper's headline bound: with one entry per replica server, clock
// width never exceeds the number of servers that coordinate writes — no
// matter how many clients race.
TEST(DvvKernel, MetadataBoundedByCoordinatingServersNotClients) {
  Siblings s;
  constexpr int kClients = 100;
  // Every client read the same initial state, then all write through
  // server A: worst-case client concurrency on one server.
  s.update(kA, VersionVector{}, "seed");
  const VersionVector stale = s.context();
  for (int c = 0; c < kClients; ++c) {
    s.update(kA, stale, "client-" + std::to_string(c));
  }
  // Every sibling's clock mentions only server A.
  for (const auto& v : s.versions()) {
    EXPECT_LE(v.clock.past().size(), 1u);
    EXPECT_EQ(v.clock.dot().node, kA);
  }
  // Context covers one server entry, not 100 client entries.
  EXPECT_EQ(s.context().size(), 1u);
}

TEST(DvvKernel, ContextDominatesEverySibling) {
  dvv::util::Rng rng(0xc0ffee);
  for (int trial = 0; trial < 100; ++trial) {
    Siblings s;
    VersionVector client_ctx;
    for (int step = 0; step < 20; ++step) {
      const dvv::core::ActorId server = rng.below(3);
      if (rng.chance(0.5)) client_ctx = s.context();
      if (rng.chance(0.7)) {
        s.update(server, rng.chance(0.3) ? VersionVector{} : client_ctx, "v");
      }
    }
    const VersionVector ctx = s.context();
    for (const auto& v : s.versions()) {
      EXPECT_TRUE(v.clock.obsoleted_by(ctx));
    }
  }
}

// Randomized replica states for the algebra checks below: build three
// replicas that partially share history via random updates and syncs.
std::array<Siblings, 3> random_states(dvv::util::Rng& rng) {
  std::array<Siblings, 3> r;
  std::array<VersionVector, 4> ctx;  // four clients
  for (int step = 0; step < 25; ++step) {
    const auto i = rng.index(3);
    const auto c = rng.index(4);
    switch (rng.below(3)) {
      case 0:
        ctx[c] = r[i].context();
        break;
      case 1:
        r[i].update(static_cast<dvv::core::ActorId>(i), ctx[c],
                    "w" + std::to_string(step));
        break;
      case 2:
        r[i].sync(r[rng.index(3)]);
        break;
    }
  }
  return r;
}

/// Canonical form for comparing sibling sets regardless of order.
std::multiset<std::string> value_set(const Siblings& s) {
  std::multiset<std::string> out;
  for (const auto& v : s.versions()) out.insert(v.value);
  return out;
}

TEST(DvvKernel, SyncIsCommutative) {
  dvv::util::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    auto [a, b, c] = random_states(rng);
    Siblings ab = a, ba = b;
    ab.sync(b);
    ba.sync(a);
    EXPECT_EQ(value_set(ab), value_set(ba)) << "trial " << trial;
    EXPECT_EQ(ab.context(), ba.context()) << "trial " << trial;
  }
}

TEST(DvvKernel, SyncIsAssociative) {
  dvv::util::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    auto [a, b, c] = random_states(rng);
    Siblings left = a;
    left.sync(b);
    left.sync(c);
    Siblings bc = b;
    bc.sync(c);
    Siblings right = a;
    right.sync(bc);
    EXPECT_EQ(value_set(left), value_set(right)) << "trial " << trial;
    EXPECT_EQ(left.context(), right.context()) << "trial " << trial;
  }
}

TEST(DvvKernel, SyncIsIdempotent) {
  dvv::util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    auto [a, b, c] = random_states(rng);
    Siblings once = a;
    once.sync(b);
    Siblings twice = once;
    twice.sync(b);
    EXPECT_EQ(value_set(once), value_set(twice)) << "trial " << trial;
    Siblings self = once;
    self.sync(once);
    EXPECT_EQ(value_set(self), value_set(once)) << "trial " << trial;
  }
}

TEST(DvvKernel, SyncNeverLosesConcurrentValues) {
  // Values retained by both inputs and mutually concurrent must appear
  // in the result: sync only drops *dominated* versions.
  dvv::util::Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    auto [a, b, c] = random_states(rng);
    Siblings merged = a;
    merged.sync(b);
    const auto merged_values = value_set(merged);
    for (const auto& v : a.versions()) {
      bool dominated = false;
      for (const auto& w : b.versions()) {
        if (v.clock.compare(w.clock) == Ordering::kBefore) dominated = true;
      }
      if (!dominated) {
        EXPECT_TRUE(merged_values.contains(v.value)) << "trial " << trial;
      }
    }
  }
}

}  // namespace
