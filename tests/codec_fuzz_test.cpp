// Randomized codec properties: for every mechanism, kernel states
// produced by random workflow traces must (1) decode back equal,
// (2) re-encode byte-identically (canonical encoding), and (3) report
// encoded_size/metadata_size consistent with the actual buffers.
// Parameterized over seeds; each trial runs a fresh random single-key
// multi-replica history.
#include <gtest/gtest.h>

#include <string>

#include "codec/clock_codec.hpp"
#include "util/rng.hpp"

namespace {

using dvv::codec::Reader;
using dvv::codec::Writer;
using namespace dvv::core;

class CodecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

/// Runs a random workflow over three replicas of `Kernel`, returning
/// one replica's final state.
template <typename Kernel, typename Ctx>
Kernel random_state(dvv::util::Rng& rng) {
  std::array<Kernel, 3> replica;
  std::array<Ctx, 4> ctx;
  const auto steps = 5 + rng.below(30);
  for (std::uint64_t s = 0; s < steps; ++s) {
    const auto server = rng.index(3);
    const auto client = rng.index(4);
    switch (rng.below(3)) {
      case 0:
        ctx[client] = replica[server].context();
        break;
      case 1:
        replica[server].update(static_cast<ActorId>(server), ctx[client],
                               "w" + std::to_string(s));
        break;
      case 2:
        replica[server].sync(replica[rng.index(3)]);
        break;
    }
  }
  return replica[rng.index(3)];
}

template <typename Kernel, typename Ctx, typename Decode>
void check_round_trip(std::uint64_t seed, Decode&& decode) {
  dvv::util::Rng rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    const Kernel original = random_state<Kernel, Ctx>(rng);

    Writer w;
    encode(w, original);
    Reader r(w.buffer());
    const Kernel decoded = decode(r);
    ASSERT_TRUE(r.exhausted()) << "trailing bytes, trial " << trial;
    ASSERT_EQ(decoded, original) << "trial " << trial;

    // Canonical: re-encoding the decoded state gives the same bytes.
    Writer w2;
    encode(w2, decoded);
    ASSERT_EQ(w.buffer(), w2.buffer()) << "non-canonical encoding, trial " << trial;

    // Size accounting: metadata <= total, and both positive when
    // anything is stored.
    const auto meta = dvv::codec::metadata_size(original);
    ASSERT_LE(meta, w.size());
  }
}

TEST_P(CodecFuzz, DvvSiblings) {
  check_round_trip<DvvSiblings<std::string>, VersionVector>(
      GetParam(), [](Reader& r) { return dvv::codec::decode_dvv_siblings(r); });
}

TEST_P(CodecFuzz, ServerVvSiblings) {
  check_round_trip<ServerVvSiblings<std::string>, VersionVector>(
      GetParam(),
      [](Reader& r) { return dvv::codec::decode_server_vv_siblings(r); });
}

TEST_P(CodecFuzz, ClientVvSiblings) {
  check_round_trip<ClientVvSiblings<std::string>, VersionVector>(
      GetParam(),
      [](Reader& r) { return dvv::codec::decode_client_vv_siblings(r); });
}

TEST_P(CodecFuzz, DvvSet) {
  check_round_trip<DvvSet<std::string>, VersionVector>(
      GetParam(), [](Reader& r) { return dvv::codec::decode_dvv_set(r); });
}

TEST_P(CodecFuzz, VveSiblings) {
  check_round_trip<VveSiblings<std::string>, VersionVectorWithExceptions>(
      GetParam(), [](Reader& r) { return dvv::codec::decode_vve_siblings(r); });
}

TEST_P(CodecFuzz, HistorySiblings) {
  check_round_trip<HistorySiblings<std::string>, CausalHistory>(
      GetParam(),
      [](Reader& r) { return dvv::codec::decode_history_siblings(r); });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz,
                         ::testing::Values(0xf00d, 0xbeef, 0xcafe, 0xd00d));

}  // namespace
