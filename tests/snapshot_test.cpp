// Tests for replica snapshots (kv/snapshot.hpp): round trips for every
// mechanism, crash-restore equivalence, and the safety property that
// restoring a STALE snapshot can never resurrect overwritten data.
#include "kv/snapshot.hpp"

#include <gtest/gtest.h>

#include <string>

#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::codec::Reader;
using dvv::codec::Writer;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::kv::Replica;

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 5;
  cfg.replication = 3;
  cfg.vnodes = 16;
  return cfg;
}

/// Runs a small workload and returns the populated cluster.
template <typename M>
Cluster<M> populated_cluster(M mechanism) {
  Cluster<M> cluster(config(), std::move(mechanism));
  dvv::workload::WorkloadSpec spec;
  spec.keys = 10;
  spec.clients = 6;
  spec.operations = 300;
  spec.replicate_probability = 0.7;
  spec.seed = 0x54a9;
  const auto trace = dvv::workload::generate_trace(spec, config().replication);
  dvv::workload::replay(cluster, trace);
  return cluster;
}

template <typename M>
void expect_equal_state(const Replica<M>& a, const Replica<M>& b, const M& mech) {
  ASSERT_EQ(a.keys(), b.keys());
  for (const auto& key : a.keys()) {
    const auto* sa = a.find(key);
    const auto* sb = b.find(key);
    ASSERT_NE(sa, nullptr);
    ASSERT_NE(sb, nullptr);
    std::multiset<std::string> va, vb;
    for (auto& v : mech.values_of(*sa)) va.insert(v);
    for (auto& v : mech.values_of(*sb)) vb.insert(v);
    EXPECT_EQ(va, vb) << "key " << key;
    EXPECT_EQ(mech.clock_entries(*sa), mech.clock_entries(*sb)) << "key " << key;
  }
}

template <typename M>
void round_trip_all_replicas(M mechanism) {
  auto cluster = populated_cluster<M>(std::move(mechanism));
  for (std::size_t s = 0; s < config().servers; ++s) {
    Writer w;
    snapshot_replica(w, cluster.replica(s));

    Replica<M> fresh(static_cast<dvv::kv::ReplicaId>(s));
    Reader r(w.buffer());
    const auto restored =
        restore_replica(r, cluster.mechanism(), fresh);
    EXPECT_TRUE(r.exhausted());
    EXPECT_EQ(restored, cluster.replica(s).key_count());
    expect_equal_state(cluster.replica(s), fresh, cluster.mechanism());
  }
}

TEST(Snapshot, RoundTripDvv) { round_trip_all_replicas(DvvMechanism{}); }
TEST(Snapshot, RoundTripDvvSet) { round_trip_all_replicas(dvv::kv::DvvSetMechanism{}); }
TEST(Snapshot, RoundTripClientVv) {
  round_trip_all_replicas(dvv::kv::ClientVvMechanism{});
}
TEST(Snapshot, RoundTripServerVv) {
  round_trip_all_replicas(dvv::kv::ServerVvMechanism{});
}
TEST(Snapshot, RoundTripVve) { round_trip_all_replicas(dvv::kv::VveMechanism{}); }
TEST(Snapshot, RoundTripHistory) {
  round_trip_all_replicas(dvv::kv::HistoryMechanism{});
}

TEST(Snapshot, EmptyReplicaRoundTrips) {
  Replica<DvvMechanism> empty(0);
  Writer w;
  snapshot_replica(w, empty);
  Replica<DvvMechanism> fresh(0);
  Reader r(w.buffer());
  EXPECT_EQ(restore_replica(r, DvvMechanism{}, fresh), 0u);
  EXPECT_EQ(fresh.key_count(), 0u);
}

TEST(Snapshot, RestoreIsIdempotent) {
  auto cluster = populated_cluster(DvvMechanism{});
  Writer w;
  snapshot_replica(w, cluster.replica(0));

  Replica<DvvMechanism> fresh(0);
  Reader r1(w.buffer());
  restore_replica(r1, cluster.mechanism(), fresh);
  const auto once_fp = fresh.footprint(cluster.mechanism());
  Reader r2(w.buffer());
  restore_replica(r2, cluster.mechanism(), fresh);  // again
  const auto twice_fp = fresh.footprint(cluster.mechanism());
  EXPECT_EQ(once_fp.siblings, twice_fp.siblings);
  EXPECT_EQ(once_fp.metadata_bytes, twice_fp.metadata_bytes);
}

// The safety property: a snapshot taken BEFORE later writes, restored
// into the live replica, must not resurrect anything — the clocks prove
// the snapshot's versions are dominated.
TEST(Snapshot, StaleSnapshotCannotResurrectOverwrittenData) {
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::kv::ClientSession<DvvMechanism> alice(dvv::kv::client_actor(0), cluster);
  const dvv::kv::Key key = "k";
  const auto coord = cluster.default_coordinator(key).value();

  alice.get(key);
  alice.put(key, "old");
  Writer w;
  snapshot_replica(w, cluster.replica(coord));  // backup holds "old"

  alice.get(key);
  alice.put(key, "new");  // overwrites

  Reader r(w.buffer());
  restore_replica(r, cluster.mechanism(), cluster.replica(coord));
  const auto got = cluster.get(key, coord);
  ASSERT_TRUE(got.found);
  ASSERT_EQ(got.values.size(), 1u) << "'old' must not come back as a sibling";
  EXPECT_EQ(got.values[0], "new");
}

// Crash-restore equivalence: wiping a replica and restoring its
// snapshot is indistinguishable (to anti-entropy and clients) from the
// replica never having crashed.
TEST(Snapshot, CrashRestoreThenAntiEntropyConverges) {
  auto cluster = populated_cluster(DvvMechanism{});
  Writer w;
  snapshot_replica(w, cluster.replica(2));

  // "Crash with disk loss, then restore from backup": a fresh replica
  // object receives the snapshot, then rejoins via anti-entropy.
  Replica<DvvMechanism> restored(2);
  Reader r(w.buffer());
  restore_replica(r, cluster.mechanism(), restored);
  expect_equal_state(cluster.replica(2), restored, cluster.mechanism());
}

}  // namespace
