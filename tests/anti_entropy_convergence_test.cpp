// Convergence property test for digest-based anti-entropy: for every
// causality mechanism, across seeded random workloads with partial
// replication, replica crashes/recoveries and hinted handoff, the
// digest pass (Cluster::anti_entropy_digest) must drive the cluster to
// a fixed point BYTE-IDENTICAL to the legacy full gather-merge-scatter
// pass (Cluster::anti_entropy) — while shipping state only for
// divergent keys.
//
// Method: the cluster makes no random choices of its own (determinism
// contract), so replaying one seeded op sequence into two fresh
// clusters yields bit-equal stores.  One cluster is repaired with the
// legacy pass, the other with the digest pass; every replica's every
// key is then compared by its full codec encoding.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::util::Rng;

ClusterConfig test_config(bool order_stable_transport = false) {
  ClusterConfig cfg;
  cfg.servers = 5;
  cfg.replication = 3;
  cfg.vnodes = 32;
  if (order_stable_transport) {
    // Server-VV's outcomes are delivery-order-dependent (its false
    // ordering of racing clients means which sibling survives depends
    // on merge order — see transport_chaos_test).  This test compares
    // TWO clusters whose repair passes consume different amounts of
    // the transport's fault stream (the digest pass sends SyncReq/Resp
    // messages, the legacy pass sends nothing), so under the chaos
    // transport their phase-2 hint deliveries replay under DIFFERENT
    // dup/reorder draws — meaningless divergence for an order-dependent
    // mechanism.  Pin it to the inline transport; the five order-stable
    // mechanisms keep their chaos-default coverage.
    cfg.transport.kind = dvv::net::TransportKind::kInline;
    cfg.transport.sim = dvv::net::SimTransportConfig{};
  }
  return cfg;
}

constexpr std::size_t kKeys = 40;
constexpr std::size_t kClients = 6;
constexpr std::size_t kOps = 300;

/// One deterministic chaotic workload: partial replication, blind
/// writes, crashes, recoveries, sloppy-quorum handoff, hint delivery.
/// Identical seeds produce identical cluster states.
template <typename M>
void run_workload(Cluster<M>& cluster, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientSession<M>> sessions;
  sessions.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    sessions.emplace_back(dvv::kv::client_actor(c), cluster);
  }

  const std::size_t servers = cluster.servers();
  auto alive_count = [&] {
    std::size_t n = 0;
    for (ReplicaId r = 0; r < servers; ++r) n += cluster.replica(r).alive();
    return n;
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    // Occasionally crash or recover a server (keep a quorum alive).
    if (rng.chance(0.05)) {
      const auto r = static_cast<ReplicaId>(rng.index(servers));
      if (cluster.replica(r).alive()) {
        if (alive_count() > 3) cluster.replica(r).set_alive(false);
      } else {
        cluster.replica(r).set_alive(true);
      }
    }
    if (rng.chance(0.05)) cluster.deliver_hints();

    auto& session = sessions[rng.index(kClients)];
    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const auto pref = cluster.preference_list(key);
    std::vector<ReplicaId> alive_pref;
    for (const ReplicaId r : pref) {
      if (cluster.replica(r).alive()) alive_pref.push_back(r);
    }
    if (alive_pref.empty()) continue;

    const double kind = rng.uniform01();
    if (kind < 0.35) {
      (void)session.get(key, alive_pref[rng.index(alive_pref.size())]);
    } else if (kind < 0.55) {
      // Sloppy-quorum write: dead preference members get hints parked.
      session.put_with_handoff(key, alive_pref[rng.index(alive_pref.size())],
                               "h" + std::to_string(op));
    } else {
      // Partial replication: each non-coordinator alive member has a
      // 50% chance of receiving the write now — the divergence source.
      const ReplicaId coord = alive_pref[rng.index(alive_pref.size())];
      std::vector<ReplicaId> replicate_to;
      for (const ReplicaId r : alive_pref) {
        if (r != coord && rng.chance(0.5)) replicate_to.push_back(r);
      }
      session.put_via(key, coord, "v" + std::to_string(op), replicate_to);
    }
  }
}

/// Full byte-level snapshot: every replica's every key, codec-encoded.
template <typename M>
std::map<std::pair<ReplicaId, Key>, std::string> full_state(Cluster<M>& cluster) {
  std::map<std::pair<ReplicaId, Key>, std::string> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      dvv::codec::Writer w;
      dvv::codec::encode(w, *cluster.replica(r).find(key));
      const auto* p = reinterpret_cast<const char*>(w.buffer().data());
      out.emplace(std::make_pair(r, key), std::string(p, w.size()));
    }
  }
  return out;
}

template <typename M>
class AntiEntropyConvergenceTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(AntiEntropyConvergenceTest, AllMechanisms);

TYPED_TEST(AntiEntropyConvergenceTest, DigestPassReachesLegacyFixedPoint) {
  constexpr bool kOrderStable =
      std::is_same_v<TypeParam, dvv::kv::ServerVvMechanism>;
  for (const std::uint64_t seed : {1ULL, 42ULL, 20120716ULL}) {
    Cluster<TypeParam> legacy(test_config(kOrderStable), {});
    Cluster<TypeParam> digest(test_config(kOrderStable), {});
    run_workload(legacy, seed);
    run_workload(digest, seed);
    ASSERT_EQ(full_state(legacy), full_state(digest))
        << "workload replay must be deterministic (seed " << seed << ")";

    // Phase 1: repair with possibly-dead replicas still down.
    legacy.anti_entropy();
    const auto report = digest.anti_entropy_digest();
    EXPECT_EQ(full_state(legacy), full_state(digest))
        << "fixed points diverge with dead replicas (seed " << seed << ")";

    // The digest pass must have shipped only per-key repairs, and a
    // second pass must find nothing left to ship.
    EXPECT_LE(report.stats.keys_shipped,
              report.stats.keys_compared * test_config().servers);
    EXPECT_EQ(digest.anti_entropy_digest().stats.keys_shipped, 0u)
        << "digest pass is not a fixed point (seed " << seed << ")";
    EXPECT_EQ(legacy.anti_entropy(), 0u)
        << "legacy pass is not a fixed point (seed " << seed << ")";

    // Phase 2: everyone recovers, parked hints come home, repair again.
    for (ReplicaId r = 0; r < legacy.servers(); ++r) {
      legacy.replica(r).set_alive(true);
      digest.replica(r).set_alive(true);
    }
    legacy.deliver_hints();
    digest.deliver_hints();
    legacy.anti_entropy();
    digest.anti_entropy_digest();
    EXPECT_EQ(full_state(legacy), full_state(digest))
        << "fixed points diverge after recovery (seed " << seed << ")";

    // Convergence proper: every preference replica of every key holds
    // byte-identical state in the digest-repaired cluster.
    const auto snapshot = full_state(digest);
    for (const auto& [where, bytes] : snapshot) {
      const auto& [replica, key] = where;
      for (const ReplicaId peer : digest.preference_list(key)) {
        const auto it = snapshot.find(std::make_pair(peer, key));
        if (it == snapshot.end()) continue;  // non-owner stray
        const auto self = snapshot.find(std::make_pair(replica, key));
        ASSERT_NE(self, snapshot.end());
        EXPECT_EQ(self->second, it->second)
            << "key " << key << " differs between " << replica << " and "
            << peer << " (seed " << seed << ")";
      }
    }
  }
}

}  // namespace
