// The crash-faithfulness property (the point of the storage tentpole):
// for EVERY causality mechanism, a replica that truly crashes (volatile
// state dropped) and recovers by write-ahead-log replay, then runs
// anti-entropy, reaches a digest fixed point BYTE-IDENTICAL to a twin
// cluster that never crashed.
//
// Method: two clusters replay one seeded chaotic workload (the cluster
// makes no random choices, so the interleavings are identical).  The
// twin's failures are pauses (set_alive(false): memory intact — the
// seed's old no-op "crash"); the subject's failures are real crashes
// against a write-through WAL.  Write-through replay restores exactly
// the pre-crash bytes, so every replica's every key — and every parked
// hint — must match the twin at the end, before AND after repair.
//
// A second suite drops write-through for group commit + torn writes:
// recovery then genuinely loses the un-flushed tail, so the subject is
// NOT byte-identical to the twin mid-flight — but recover + hint
// delivery + anti-entropy must still drive every preference list to an
// internally byte-identical fixed point.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/client.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "store/backend.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::ClientSession;
using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::util::Rng;

constexpr std::size_t kKeys = 32;
constexpr std::size_t kClients = 6;
constexpr std::size_t kOps = 300;

ClusterConfig mem_config() {
  ClusterConfig cfg;
  cfg.servers = 5;
  cfg.replication = 3;
  cfg.vnodes = 32;
  cfg.storage.kind = dvv::store::BackendKind::kMem;
  return cfg;
}

ClusterConfig wal_config(std::size_t flush_every) {
  ClusterConfig cfg = mem_config();
  cfg.storage.kind = dvv::store::BackendKind::kWal;
  cfg.storage.wal.flush_every = flush_every;
  return cfg;
}

/// One deterministic chaotic workload.  `crash_faults` selects how the
/// seeded failure schedule is realized: pauses (twin) or true crashes
/// with WAL recovery (subject).  Every random draw happens in both
/// modes, so the interleavings stay identical.
template <typename M>
void run_workload(Cluster<M>& cluster, std::uint64_t seed, bool crash_faults,
                  std::size_t torn_bytes = 0) {
  Rng rng(seed);
  std::vector<ClientSession<M>> sessions;
  sessions.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    sessions.emplace_back(dvv::kv::client_actor(c), cluster);
  }

  const std::size_t servers = cluster.servers();
  auto alive_count = [&] {
    std::size_t n = 0;
    for (ReplicaId r = 0; r < servers; ++r) n += cluster.replica(r).alive();
    return n;
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    if (rng.chance(0.06)) {
      const auto r = static_cast<ReplicaId>(rng.index(servers));
      if (cluster.replica(r).alive()) {
        if (alive_count() > 3) {
          if (crash_faults) {
            cluster.crash(r, torn_bytes);
          } else {
            cluster.replica(r).set_alive(false);
          }
        }
      } else {
        if (crash_faults) {
          (void)cluster.recover(r);
        } else {
          cluster.replica(r).set_alive(true);
        }
      }
    }
    if (rng.chance(0.05)) cluster.deliver_hints();

    auto& session = sessions[rng.index(kClients)];
    const Key key = "key-" + std::to_string(rng.index(kKeys));
    const auto pref = cluster.preference_list(key);
    std::vector<ReplicaId> alive_pref;
    for (const ReplicaId r : pref) {
      if (cluster.replica(r).alive()) alive_pref.push_back(r);
    }
    if (alive_pref.empty()) continue;

    const double kind = rng.uniform01();
    if (kind < 0.3) {
      (void)session.get(key, alive_pref[rng.index(alive_pref.size())]);
    } else if (kind < 0.55) {
      session.put_with_handoff(key, alive_pref[rng.index(alive_pref.size())],
                               "h" + std::to_string(op));
    } else {
      const ReplicaId coord = alive_pref[rng.index(alive_pref.size())];
      std::vector<ReplicaId> replicate_to;
      for (const ReplicaId r : alive_pref) {
        if (r != coord && rng.chance(0.5)) replicate_to.push_back(r);
      }
      session.put_via(key, coord, "v" + std::to_string(op), replicate_to);
    }
  }

  // Everyone comes back; parked hints flow home.
  for (ReplicaId r = 0; r < servers; ++r) {
    if (cluster.replica(r).alive()) continue;
    if (crash_faults) {
      (void)cluster.recover(r);
    } else {
      cluster.replica(r).set_alive(true);
    }
  }
  cluster.deliver_hints();
}

/// Full byte-level snapshot: every replica's every key AND every parked
/// hint, codec-encoded.
template <typename M>
std::map<std::string, std::string> full_state(Cluster<M>& cluster) {
  std::map<std::string, std::string> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      dvv::codec::Writer w;
      dvv::codec::encode(w, *cluster.replica(r).find(key));
      const auto* p = reinterpret_cast<const char*>(w.buffer().data());
      out.emplace("r" + std::to_string(r) + "/" + key, std::string(p, w.size()));
    }
    cluster.replica(r).for_each_hint(
        [&](ReplicaId owner, const Key& key, const auto& stored) {
          dvv::codec::Writer w;
          dvv::codec::encode(w, stored);
          const auto* p = reinterpret_cast<const char*>(w.buffer().data());
          out.emplace("r" + std::to_string(r) + "/hint" +
                          std::to_string(owner) + "/" + key,
                      std::string(p, w.size()));
        });
  }
  return out;
}

template <typename M>
class StoreRecoveryTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(StoreRecoveryTest, AllMechanisms);

TYPED_TEST(StoreRecoveryTest, WalRecoveryMatchesNeverCrashedTwinByteForByte) {
  for (const std::uint64_t seed : {3ULL, 71ULL, 20120716ULL}) {
    Cluster<TypeParam> twin(mem_config(), {});      // pauses, memory intact
    Cluster<TypeParam> subject(wal_config(1), {});  // real crashes, write-through
    run_workload(twin, seed, /*crash_faults=*/false);
    run_workload(subject, seed, /*crash_faults=*/true);

    // Write-through replay is lossless: identical before any repair.
    ASSERT_EQ(full_state(twin), full_state(subject))
        << "WAL replay must restore pre-crash bytes (seed " << seed << ")";

    // And the digest fixed points coincide, key for key, byte for byte.
    twin.anti_entropy_digest();
    subject.anti_entropy_digest();
    EXPECT_EQ(full_state(twin), full_state(subject))
        << "post-AAE fixed points diverge (seed " << seed << ")";
    EXPECT_EQ(subject.anti_entropy_digest().stats.keys_shipped, 0u)
        << "not a fixed point (seed " << seed << ")";

    // Merkle roots agree for every key's partition on every replica.
    for (ReplicaId r = 0; r < subject.servers(); ++r) {
      for (const Key& key : subject.replica(r).keys()) {
        EXPECT_EQ(twin.merkle_tree_for(r, key).root(),
                  subject.merkle_tree_for(r, key).root())
            << "digest trees diverge at replica " << r << " (seed " << seed
            << ")";
      }
    }
  }
}

TYPED_TEST(StoreRecoveryTest, GroupCommitTornCrashesStillConvergeInternally) {
  for (const std::uint64_t seed : {5ULL, 97ULL}) {
    Cluster<TypeParam> cluster(wal_config(/*flush_every=*/16), {});
    run_workload(cluster, seed, /*crash_faults=*/true, /*torn_bytes=*/7);

    cluster.anti_entropy_digest();

    // Whatever the un-flushed tails lost, repair must end with every
    // preference replica of every key holding byte-identical state.
    for (ReplicaId r = 0; r < cluster.servers(); ++r) {
      for (const Key& key : cluster.replica(r).keys()) {
        dvv::codec::Writer mine;
        dvv::codec::encode(mine, *cluster.replica(r).find(key));
        for (const ReplicaId peer : cluster.preference_list(key)) {
          const auto* stored = cluster.replica(peer).find(key);
          if (peer == r || stored == nullptr) continue;
          dvv::codec::Writer theirs;
          dvv::codec::encode(theirs, *stored);
          EXPECT_EQ(mine.buffer(), theirs.buffer())
              << "key " << key << " differs between " << r << " and " << peer
              << " (seed " << seed << ")";
        }
      }
    }
    EXPECT_EQ(cluster.anti_entropy(), 0u) << "legacy pass agrees it is done";
  }
}

}  // namespace
