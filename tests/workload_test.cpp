// Tests for trace generation and replay: determinism, spec knobs, and
// the measurement plumbing the benches consume.
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <set>

#include "kv/mechanism.hpp"
#include "workload/replay.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::DvvMechanism;
using dvv::workload::generate_trace;
using dvv::workload::Trace;
using dvv::workload::TraceOp;
using dvv::workload::WorkloadSpec;

WorkloadSpec small_spec() {
  WorkloadSpec spec;
  spec.keys = 10;
  spec.clients = 4;
  spec.operations = 200;
  spec.seed = 42;
  return spec;
}

ClusterConfig config() {
  ClusterConfig cfg;
  cfg.servers = 5;
  cfg.replication = 3;
  cfg.vnodes = 16;
  return cfg;
}

TEST(Trace, DeterministicForSameSpec) {
  const Trace a = generate_trace(small_spec(), 3);
  const Trace b = generate_trace(small_spec(), 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].key, b.ops[i].key);
    EXPECT_EQ(a.ops[i].client, b.ops[i].client);
    EXPECT_EQ(a.ops[i].rank, b.ops[i].rank);
    EXPECT_EQ(a.ops[i].value, b.ops[i].value);
  }
}

TEST(Trace, DifferentSeedsDiffer) {
  auto spec = small_spec();
  const Trace a = generate_trace(spec, 3);
  spec.seed = 43;
  const Trace b = generate_trace(spec, 3);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.ops[i].key != b.ops[i].key || a.ops[i].client != b.ops[i].client;
  }
  EXPECT_TRUE(differs);
}

TEST(Trace, ContainsOnePutPerOperation) {
  const Trace t = generate_trace(small_spec(), 3);
  std::size_t puts = 0;
  for (const auto& op : t.ops) {
    if (op.kind == TraceOp::Kind::kPut) ++puts;
  }
  EXPECT_EQ(puts, small_spec().operations);
}

TEST(Trace, RmwFractionControlsGets) {
  auto spec = small_spec();
  spec.operations = 2000;

  spec.read_before_write = 1.0;
  const Trace all_rmw = generate_trace(spec, 3);
  std::size_t gets = 0, blind = 0;
  for (const auto& op : all_rmw.ops) {
    if (op.kind == TraceOp::Kind::kGet) ++gets;
    if (op.kind == TraceOp::Kind::kPut && op.blind) ++blind;
  }
  EXPECT_EQ(gets, spec.operations);
  EXPECT_EQ(blind, 0u);

  spec.read_before_write = 0.0;
  const Trace all_blind = generate_trace(spec, 3);
  gets = 0;
  blind = 0;
  for (const auto& op : all_blind.ops) {
    if (op.kind == TraceOp::Kind::kGet) ++gets;
    if (op.kind == TraceOp::Kind::kPut && op.blind) ++blind;
  }
  EXPECT_EQ(gets, 0u);
  EXPECT_EQ(blind, spec.operations);
}

TEST(Trace, ValuesAreGloballyUnique) {
  const Trace t = generate_trace(small_spec(), 3);
  std::set<std::string> values;
  for (const auto& op : t.ops) {
    if (op.kind == TraceOp::Kind::kPut) {
      EXPECT_TRUE(values.insert(op.value).second) << op.value;
    }
  }
}

TEST(Trace, ValueBytesPadsPayloads) {
  auto spec = small_spec();
  spec.value_bytes = 64;
  const Trace t = generate_trace(spec, 3);
  for (const auto& op : t.ops) {
    if (op.kind == TraceOp::Kind::kPut) {
      EXPECT_GE(op.value.size(), 64u);
    }
  }
}

TEST(Trace, AntiEntropyCadence) {
  auto spec = small_spec();
  spec.operations = 100;
  spec.anti_entropy_every = 10;
  const Trace t = generate_trace(spec, 3);
  std::size_t ae = 0;
  for (const auto& op : t.ops) {
    if (op.kind == TraceOp::Kind::kAntiEntropy) ++ae;
  }
  EXPECT_EQ(ae, 9u);  // after ops 10,20,...,90
}

TEST(Trace, ReplicationProbabilityZeroMeansCoordinatorOnly) {
  auto spec = small_spec();
  spec.replicate_probability = 0.0;
  const Trace t = generate_trace(spec, 3);
  for (const auto& op : t.ops) {
    if (op.kind == TraceOp::Kind::kPut) {
      EXPECT_TRUE(op.replicate_ranks.empty());
    }
  }
}

TEST(Trace, RanksStayWithinReplication) {
  const Trace t = generate_trace(small_spec(), 3);
  for (const auto& op : t.ops) {
    EXPECT_LT(op.rank, 3u);
    for (const auto r : op.replicate_ranks) {
      EXPECT_LT(r, 3u);
      EXPECT_NE(r, op.rank);
    }
  }
}

TEST(Replay, CountsMatchTrace) {
  const Trace t = generate_trace(small_spec(), config().replication);
  Cluster<DvvMechanism> cluster(config(), {});
  const auto stats = dvv::workload::replay(cluster, t);
  std::size_t gets = 0, puts = 0;
  for (const auto& op : t.ops) {
    gets += op.kind == TraceOp::Kind::kGet;
    puts += op.kind == TraceOp::Kind::kPut;
  }
  EXPECT_EQ(stats.gets, gets);
  EXPECT_EQ(stats.puts, puts);
  EXPECT_EQ(stats.get_metadata_bytes.count(), gets);
  EXPECT_GT(stats.final_keys, 0u);
  EXPECT_GT(stats.final_metadata_bytes, 0u);
}

TEST(Replay, DeterministicAcrossRuns) {
  const Trace t = generate_trace(small_spec(), config().replication);
  Cluster<DvvMechanism> c1(config(), {});
  Cluster<DvvMechanism> c2(config(), {});
  const auto s1 = dvv::workload::replay(c1, t);
  const auto s2 = dvv::workload::replay(c2, t);
  EXPECT_EQ(s1.final_metadata_bytes, s2.final_metadata_bytes);
  EXPECT_EQ(s1.final_siblings, s2.final_siblings);
  EXPECT_EQ(s1.get_metadata_bytes.mean(), s2.get_metadata_bytes.mean());
}

TEST(Replay, FullReplicationNoAntiEntropyNeededForConvergence) {
  auto spec = small_spec();
  spec.replicate_probability = 1.0;
  const Trace t = generate_trace(spec, config().replication);
  Cluster<DvvMechanism> cluster(config(), {});
  dvv::workload::replay(cluster, t);

  // Every key's preference-list replicas hold identical value sets.
  const auto& mech = cluster.mechanism();
  for (std::size_t s = 0; s < config().servers; ++s) {
    for (const auto& key : cluster.replica(s).keys()) {
      const auto pref = cluster.preference_list(key);
      std::multiset<std::string> reference;
      bool first = true;
      for (const auto r : pref) {
        const auto* stored = cluster.replica(r).find(key);
        ASSERT_NE(stored, nullptr) << "key " << key << " missing on " << r;
        std::multiset<std::string> values;
        for (auto& v : mech.values_of(*stored)) values.insert(v);
        if (first) {
          reference = values;
          first = false;
        } else {
          EXPECT_EQ(values, reference) << "key " << key;
        }
      }
    }
  }
}

}  // namespace
