// The observability layer's cardinal property: instrumentation is
// BEHAVIOR-INVARIANT.  A metrics-on run (global registry enabled,
// flight recorder armed) must be byte-identical to a metrics-off twin
// — every replica's every key, replay measurements, receipts, the
// anti-entropy fixed points — for all six mechanisms, over seeded
// chaotic workloads, on whichever transport DVV_TRANSPORT selects
// (the chaos SimTransport leg is where an instrumentation bug that
// perturbed the fault RNG stream would show up instantly).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "kv/store.hpp"
#include "obs/obs.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::kv::Store;
using dvv::kv::StoreConfig;
using dvv::workload::ReplayStats;
using dvv::workload::Trace;
using dvv::workload::WorkloadSpec;

constexpr std::size_t kServers = 5;

StoreConfig store_config() {
  StoreConfig config;
  config.servers = kServers;
  config.replication = 3;
  config.vnodes = 32;
  return config;
}

/// Full byte-level snapshot: every replica's every key, codec-encoded.
std::map<std::pair<ReplicaId, Key>, std::string> full_state(const Store& store) {
  std::map<std::pair<ReplicaId, Key>, std::string> out;
  for (ReplicaId r = 0; r < store.servers(); ++r) {
    for (const Key& key : store.keys(r)) {
      const auto bytes = store.encoded_state(r, key);
      if (!bytes.has_value()) {
        ADD_FAILURE() << "listed key " << key << " has no state at " << r;
        continue;
      }
      out.emplace(std::make_pair(r, key), *bytes);
    }
  }
  return out;
}

void expect_same_stats(const ReplayStats& a, const ReplayStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.gets, b.gets) << label;
  EXPECT_EQ(a.puts, b.puts) << label;
  EXPECT_EQ(a.anti_entropy_rounds, b.anti_entropy_rounds) << label;
  EXPECT_EQ(a.failures, b.failures) << label;
  EXPECT_EQ(a.recoveries, b.recoveries) << label;
  EXPECT_EQ(a.partitions, b.partitions) << label;
  EXPECT_EQ(a.heals, b.heals) << label;
  EXPECT_EQ(a.ticks, b.ticks) << label;
  EXPECT_EQ(a.op_timeouts, b.op_timeouts) << label;
  EXPECT_EQ(a.max_in_flight, b.max_in_flight) << label;
  EXPECT_EQ(a.get_metadata_bytes.count(), b.get_metadata_bytes.count()) << label;
  EXPECT_DOUBLE_EQ(a.get_metadata_bytes.mean(), b.get_metadata_bytes.mean())
      << label;
  EXPECT_DOUBLE_EQ(a.get_total_bytes.mean(), b.get_total_bytes.mean()) << label;
  EXPECT_DOUBLE_EQ(a.get_siblings.mean(), b.get_siblings.mean()) << label;
  EXPECT_EQ(a.put_replication_bytes.count(), b.put_replication_bytes.count())
      << label;
  EXPECT_DOUBLE_EQ(a.put_replication_bytes.mean(), b.put_replication_bytes.mean())
      << label;
  EXPECT_EQ(a.final_keys, b.final_keys) << label;
  EXPECT_EQ(a.final_siblings, b.final_siblings) << label;
  EXPECT_EQ(a.final_clock_entries, b.final_clock_entries) << label;
  EXPECT_EQ(a.final_metadata_bytes, b.final_metadata_bytes) << label;
  EXPECT_EQ(a.final_total_bytes, b.final_total_bytes) << label;
}

/// Chaotic sync-path workload: partial replication, blind writes,
/// fail/recover, hinted handoff, periodic anti-entropy.
WorkloadSpec chaotic_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.keys = 24;
  spec.clients = 6;
  spec.operations = 400;
  spec.read_before_write = 0.85;
  spec.replicate_probability = 0.6;
  spec.anti_entropy_every = 60;
  spec.value_bytes = 12;
  spec.servers = kServers;
  spec.fail_probability = 0.02;
  spec.recover_probability = 0.05;
  spec.hinted_handoff = true;
  spec.seed = seed;
  return spec;
}

/// Asynchronous-quorum workload with partitions: in-flight coordinated
/// reads/writes, tick pumps, deadline expiries — the path where the
/// coordinator's span instrumentation is densest.
WorkloadSpec async_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.keys = 16;
  spec.clients = 6;
  spec.operations = 300;
  spec.read_before_write = 0.8;
  spec.replicate_probability = 0.8;
  spec.value_bytes = 8;
  spec.servers = kServers;
  spec.partition_probability = 0.02;
  spec.heal_probability = 0.2;
  spec.async_quorum = true;
  spec.read_quorum = 2;
  spec.write_quorum = 2;
  spec.deadline_ticks = 12;
  spec.seed = seed;
  return spec;
}

/// Restores the global metrics/flight state on scope exit so one
/// failing assertion cannot leak an enabled registry into later tests.
struct ObsStateGuard {
  bool was_enabled = dvv::obs::registry().enabled();
  std::size_t flight_capacity = dvv::obs::flight().capacity();
  ~ObsStateGuard() {
    dvv::obs::set_metrics_enabled(was_enabled);
    dvv::obs::flight().configure(flight_capacity);
  }
};

/// Replays `trace` twice through identical facade stores — metrics off,
/// then metrics on with the flight recorder armed — and asserts the
/// runs are byte-identical, including through both anti-entropy fixed
/// points.  Also asserts the ON run actually measured something, so a
/// future regression that silently disconnects the catalogs cannot
/// rot this proof into a no-op-vs-no-op comparison.
void prove_metrics_invariance(const std::string& mechanism, const Trace& trace,
                              std::uint64_t seed) {
  const ObsStateGuard guard;
  const std::string label = mechanism + " seed " + std::to_string(seed);

  dvv::obs::set_metrics_enabled(false);
  dvv::obs::flight().configure(0);
  const auto off = dvv::kv::make_store(mechanism, store_config());
  ASSERT_NE(off, nullptr);
  const ReplayStats off_stats = dvv::workload::replay(*off, trace);

  dvv::obs::set_metrics_enabled(true);
  dvv::obs::flight().configure(4096);
  const auto on = dvv::kv::make_store(mechanism, store_config());
  ASSERT_NE(on, nullptr);
  const ReplayStats on_stats = dvv::workload::replay(*on, trace);

#if !defined(DVV_OBS_DISABLED)
  EXPECT_GT(dvv::obs::registry().counter_value("store.puts"), 0u)
      << label << ": the ON run must actually measure";
  EXPECT_GT(dvv::obs::flight().recorded(), 0u)
      << label << ": the ON run must actually record spans";
#endif

  expect_same_stats(off_stats, on_stats, label);
  EXPECT_EQ(full_state(*off), full_state(*on))
      << label << ": metrics-on replay diverged from the metrics-off twin";

  // Fixed points with instrumentation still ON for the on-twin's pass:
  // the aae.* bumps and flight spans must not perturb repair either.
  dvv::obs::set_metrics_enabled(false);
  off->anti_entropy();
  dvv::obs::set_metrics_enabled(true);
  on->anti_entropy();
  EXPECT_EQ(full_state(*off), full_state(*on))
      << label << ": legacy anti-entropy fixed points diverge";

  dvv::obs::set_metrics_enabled(false);
  const auto off_report = off->anti_entropy_digest();
  dvv::obs::set_metrics_enabled(true);
  const auto on_report = on->anti_entropy_digest();
  EXPECT_EQ(off_report.stats.keys_shipped, on_report.stats.keys_shipped) << label;
  EXPECT_EQ(off_report.stats.wire_bytes, on_report.stats.wire_bytes) << label;
  EXPECT_EQ(full_state(*off), full_state(*on))
      << label << ": digest anti-entropy fixed points diverge";
}

class MetricsInvarianceTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllMechanisms, MetricsInvarianceTest,
                         ::testing::Values("dvv", "dvvset", "server-vv",
                                           "client-vv", "vve",
                                           "causal-history"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(MetricsInvarianceTest, ChaoticWorkloadIsByteIdenticalWithMetricsOn) {
  for (const std::uint64_t seed : {3ULL, 77ULL, 20120716ULL}) {
    const Trace trace = dvv::workload::generate_trace(chaotic_spec(seed), 3);
    prove_metrics_invariance(GetParam(), trace, seed);
  }
}

TEST_P(MetricsInvarianceTest, AsyncQuorumWorkloadIsByteIdenticalWithMetricsOn) {
  for (const std::uint64_t seed : {5ULL, 1234ULL}) {
    const Trace trace = dvv::workload::generate_trace(async_spec(seed), 3);
    prove_metrics_invariance(GetParam(), trace, seed);
  }
}

}  // namespace
