// Tests for the discrete-event engine and latency models that replace
// the paper's physical Riak cluster (DESIGN.md §4).
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/latency.hpp"
#include "util/rng.hpp"

namespace {

using dvv::sim::EventQueue;
using dvv::sim::LatencyModel;

TEST(EventQueue, StartsAtTimeZeroEmpty) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_in(3.0, [&] { order.push_back(3); });
  q.schedule_in(1.0, [&] { order.push_back(1); });
  q.schedule_in(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_in(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.schedule_in(1.0, chain);
  };
  q.schedule_in(1.0, chain);
  EXPECT_EQ(q.run(), 5u);
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 5.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int executed = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule_in(static_cast<double>(i), [&] { ++executed; });
  }
  EXPECT_EQ(q.run_until(5.5), 5u);
  EXPECT_EQ(executed, 5);
  EXPECT_EQ(q.pending(), 5u);
  EXPECT_EQ(q.run(), 5u);
  EXPECT_EQ(executed, 10);
}

TEST(EventQueue, NowAdvancesMonotonically) {
  EventQueue q;
  double last = -1.0;
  dvv::util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    q.schedule_in(rng.uniform01() * 10, [&] {
      EXPECT_GE(q.now(), last);
      last = q.now();
    });
  }
  q.run();
  EXPECT_EQ(q.executed(), 100u);
}

TEST(Latency, ExpectedIsAffineInBytes) {
  LatencyModel m;
  m.jitter_mean_ms = 0.0;
  const double d0 = m.expected(0);
  const double d1k = m.expected(1000);
  const double d2k = m.expected(2000);
  EXPECT_GT(d1k, d0);
  EXPECT_NEAR(d2k - d1k, d1k - d0, 1e-12) << "linear byte cost";
}

TEST(Latency, SampleIsAtLeastDeterministicPart) {
  LatencyModel m;
  dvv::util::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = m.sample(rng, 500);
    EXPECT_GE(d, m.base_ms);
  }
}

TEST(Latency, SampleMeanApproachesExpected) {
  LatencyModel m;
  dvv::util::Rng rng(9);
  double sum = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) sum += m.sample(rng, 1024);
  EXPECT_NEAR(sum / kDraws, m.expected(1024), 0.01);
}

TEST(Latency, BiggerPayloadsAreSlowentOnAverage) {
  LatencyModel m;
  dvv::util::Rng rng(11);
  double small = 0, large = 0;
  for (int i = 0; i < 20'000; ++i) small += m.sample(rng, 100);
  for (int i = 0; i < 20'000; ++i) large += m.sample(rng, 100'000);
  EXPECT_GT(large, small);
}

}  // namespace
