// Tests for the stats toolkit (Welford accumulator, exact quantiles,
// histogram) and the text-formatting helpers the benches rely on.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/fmt.hpp"
#include "util/rng.hpp"

namespace {

using dvv::util::Histogram;
using dvv::util::RunningStats;
using dvv::util::Samples;

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, EmptyExtremaAreNaNNotZero) {
  // min()/max() of nothing used to report 0.0 — indistinguishable from
  // a real observed zero.  The empty case must be UNMISTAKABLE.
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(-2.0);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), -2.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  dvv::util::Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Samples, QuantilesOnKnownData) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.p50(), 50.0);
  EXPECT_DOUBLE_EQ(s.p95(), 95.0);
  EXPECT_DOUBLE_EQ(s.p99(), 99.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, QuantileAfterMoreAdds) {
  Samples s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.p50(), 10.0);
  s.add(20.0);  // adding after a (sorting) quantile call must still work
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  EXPECT_DOUBLE_EQ(s.p50(), 10.0);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

TEST(Samples, EmptyExtremaAreNaNNotZero) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(5.0);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
}

TEST(Fmt, JsonNumberRendersNonFiniteAsNull) {
  // Bare "nan" is not valid JSON; benches serializing empty-accumulator
  // extrema must emit null instead.
  EXPECT_EQ(dvv::util::json_number(1.25, 2), "1.25");
  EXPECT_EQ(dvv::util::json_number(std::nan(""), 2), "null");
  EXPECT_EQ(dvv::util::json_number(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(Histogram, CountsAndOverflowBucket) {
  Histogram h(4);  // buckets 0,1,2,3+
  h.add(0);
  h.add(1);
  h.add(1);
  h.add(3);
  h.add(9);  // clamps into last bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 2u);
}

TEST(Fmt, FixedFormatsDecimals) {
  EXPECT_EQ(dvv::util::fixed(3.14159, 2), "3.14");
  EXPECT_EQ(dvv::util::fixed(2.0, 0), "2");
  EXPECT_EQ(dvv::util::fixed(-1.5, 1), "-1.5");
}

TEST(Fmt, HumanBytes) {
  EXPECT_EQ(dvv::util::human_bytes(512), "512 B");
  EXPECT_EQ(dvv::util::human_bytes(2048), "2.00 KiB");
  EXPECT_EQ(dvv::util::human_bytes(1536 * 1024), "1.50 MiB");
}

TEST(Fmt, JoinConcatenatesWithSeparator) {
  std::vector<int> v{1, 2, 3};
  const auto joined =
      dvv::util::join(v, ", ", [](int x) { return std::to_string(x); });
  EXPECT_EQ(joined, "1, 2, 3");
  std::vector<int> empty;
  EXPECT_EQ(dvv::util::join(empty, ",", [](int x) { return std::to_string(x); }), "");
}

TEST(Fmt, TextTableAlignsColumns) {
  dvv::util::TextTable t;
  t.header({"name", "n"});
  t.row({"a", "100"});
  t.row({"longer", "7"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Every line reaches the second column at the same offset.
  const auto pos1 = out.find("100");
  const auto line_start = out.rfind('\n', pos1);
  const auto pos2 = out.find('7', out.find("longer"));
  const auto line_start2 = out.rfind('\n', pos2);
  EXPECT_EQ(pos1 - line_start, pos2 - line_start2);
}

}  // namespace
