// Tests for the CausalToken wire format (src/kv/token): round-trip
// fidelity for every Context type, the strict-decode rejection matrix
// (magic, version, mechanism tag, CRC, length, payload structure,
// canonical form), and the bounded-work guarantees.
#include "kv/token.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/causal_history.hpp"
#include "core/dot.hpp"
#include "core/version_vector.hpp"
#include "core/vve.hpp"
#include "store/crc32.hpp"

namespace {

using dvv::core::CausalHistory;
using dvv::core::Dot;
using dvv::core::VersionVector;
using dvv::core::VersionVectorWithExceptions;
using dvv::kv::CausalToken;
using dvv::kv::decode_token;
using dvv::kv::encode_token;
using dvv::kv::MechanismId;

VersionVector sample_vv() {
  VersionVector vv;
  vv.set(0, 3);
  vv.set(2, 1);
  vv.set(1'000'007, 129);  // client-range actor, multi-byte varints
  return vv;
}

VersionVectorWithExceptions sample_vve() {
  VersionVectorWithExceptions vve;
  vve.add(Dot{1, 1});
  vve.add(Dot{1, 4});  // creates exceptions {2, 3}
  vve.add(Dot{1, 3});  // fills one hole -> exceptions {2}
  vve.add(Dot{5, 2});  // second actor with exception {1}
  return vve;
}

CausalHistory sample_history() {
  return CausalHistory{Dot{0, 1}, Dot{0, 2}, Dot{3, 1}, Dot{1'000'000, 7}};
}

/// Rebuilds a token with a correct CRC over arbitrary header/payload
/// bytes — the forgery helper the canonical-form tests need (a forger
/// CAN compute a valid checksum; strict decode must still reject
/// non-canonical payloads).
CausalToken forge(std::uint8_t mechanism, const std::string& payload,
                  std::uint8_t magic0 = 0xD7, std::uint8_t magic1 = 0x70,
                  std::uint8_t version = 1) {
  std::string bytes;
  bytes.push_back(static_cast<char>(magic0));
  bytes.push_back(static_cast<char>(magic1));
  bytes.push_back(static_cast<char>(version));
  bytes.push_back(static_cast<char>(mechanism));
  std::uint64_t len = payload.size();
  while (len >= 0x80) {
    bytes.push_back(static_cast<char>((len & 0x7f) | 0x80));
    len >>= 7;
  }
  bytes.push_back(static_cast<char>(len));
  bytes += payload;
  const std::uint32_t crc = dvv::store::crc32(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(bytes.data()), bytes.size()));
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
  }
  return CausalToken::from_bytes(std::move(bytes));
}

// ---- round trips -----------------------------------------------------------

TEST(Token, VersionVectorRoundTripsByteIdentically) {
  const VersionVector vv = sample_vv();
  const CausalToken token = encode_token(MechanismId::kDvv, vv);
  VersionVector decoded;
  ASSERT_TRUE(decode_token(token, MechanismId::kDvv, decoded));
  EXPECT_EQ(decoded, vv);
  EXPECT_EQ(encode_token(MechanismId::kDvv, decoded), token);
}

TEST(Token, VveRoundTripsByteIdentically) {
  const VersionVectorWithExceptions vve = sample_vve();
  const CausalToken token = encode_token(MechanismId::kVve, vve);
  VersionVectorWithExceptions decoded;
  ASSERT_TRUE(decode_token(token, MechanismId::kVve, decoded));
  EXPECT_EQ(decoded, vve);
  EXPECT_EQ(encode_token(MechanismId::kVve, decoded), token);
}

TEST(Token, CausalHistoryRoundTripsByteIdentically) {
  const CausalHistory h = sample_history();
  const CausalToken token = encode_token(MechanismId::kCausalHistory, h);
  CausalHistory decoded;
  ASSERT_TRUE(decode_token(token, MechanismId::kCausalHistory, decoded));
  EXPECT_EQ(decoded, h);
  EXPECT_EQ(encode_token(MechanismId::kCausalHistory, decoded), token);
}

TEST(Token, EmptyTokenIsTheEmptyContext) {
  VersionVector out = sample_vv();  // pre-dirty: decode must clear it
  ASSERT_TRUE(decode_token(CausalToken{}, MechanismId::kDvv, out));
  EXPECT_TRUE(out.empty());
}

TEST(Token, EmptyContextStillMintsAFramedToken) {
  // GET of a missing key returns the empty context as a real (framed,
  // checksummed) token — clients cannot distinguish it from any other.
  const CausalToken token = encode_token(MechanismId::kDvvSet, VersionVector{});
  EXPECT_FALSE(token.empty());
  VersionVector out = sample_vv();
  ASSERT_TRUE(decode_token(token, MechanismId::kDvvSet, out));
  EXPECT_TRUE(out.empty());
}

TEST(Token, MechanismPeekReadsTheTag) {
  EXPECT_EQ(dvv::kv::token_mechanism(encode_token(MechanismId::kVve,
                                                  VersionVectorWithExceptions{})),
            MechanismId::kVve);
  EXPECT_EQ(dvv::kv::token_mechanism(CausalToken{}), std::nullopt);
  EXPECT_EQ(dvv::kv::token_mechanism(CausalToken::from_bytes("junk")),
            std::nullopt);
}

// ---- strict rejection ------------------------------------------------------

TEST(Token, CrossMechanismTagIsRejectedEvenWithSharedContextType) {
  // dvv, dvvset, server-vv and client-vv all use VersionVector contexts;
  // the tag still segregates them pairwise.
  const std::vector<MechanismId> vv_mechs = {
      MechanismId::kDvv, MechanismId::kDvvSet, MechanismId::kServerVv,
      MechanismId::kClientVv};
  for (const MechanismId minted : vv_mechs) {
    const CausalToken token = encode_token(minted, sample_vv());
    for (const MechanismId target : vv_mechs) {
      VersionVector out;
      EXPECT_EQ(decode_token(token, target, out), minted == target);
    }
  }
}

TEST(Token, EveryBitFlipIsRejected) {
  const CausalToken token = encode_token(MechanismId::kDvv, sample_vv());
  for (std::size_t byte = 0; byte < token.size(); ++byte) {
    for (const std::uint8_t mask : {0x01, 0x10, 0x80}) {
      std::string bytes = token.bytes();
      bytes[byte] = static_cast<char>(bytes[byte] ^ mask);
      VersionVector out;
      EXPECT_FALSE(decode_token(CausalToken::from_bytes(std::move(bytes)),
                                MechanismId::kDvv, out))
          << "flip mask " << int(mask) << " at byte " << byte;
    }
  }
}

TEST(Token, EveryTruncationIsRejected) {
  const CausalToken token = encode_token(MechanismId::kVve, sample_vve());
  for (std::size_t len = 1; len < token.size(); ++len) {
    VersionVectorWithExceptions out;
    EXPECT_FALSE(decode_token(CausalToken::from_bytes(token.bytes().substr(0, len)),
                              MechanismId::kVve, out))
        << "prefix length " << len;
  }
}

TEST(Token, TrailingGarbageIsRejected) {
  const CausalToken token = encode_token(MechanismId::kDvv, sample_vv());
  VersionVector out;
  EXPECT_FALSE(decode_token(CausalToken::from_bytes(token.bytes() + '\0'),
                            MechanismId::kDvv, out));
  EXPECT_FALSE(decode_token(CausalToken::from_bytes(token.bytes() + "xx"),
                            MechanismId::kDvv, out));
}

TEST(Token, WrongMagicOrVersionIsRejected) {
  const std::string payload("\x00", 1);  // canonical empty VV
  VersionVector out;
  EXPECT_TRUE(decode_token(forge(1, payload), MechanismId::kDvv, out))
      << "the forge helper itself must build valid tokens";
  EXPECT_FALSE(decode_token(forge(1, payload, 0xD8), MechanismId::kDvv, out));
  EXPECT_FALSE(decode_token(forge(1, payload, 0xD7, 0x71), MechanismId::kDvv, out));
  EXPECT_FALSE(
      decode_token(forge(1, payload, 0xD7, 0x70, 2), MechanismId::kDvv, out))
      << "a future format version must not half-parse";
  EXPECT_FALSE(decode_token(forge(0, payload), MechanismId::kDvv, out))
      << "mechanism tag 0 is reserved";
  EXPECT_FALSE(decode_token(forge(7, payload), MechanismId::kDvv, out))
      << "mechanism tags beyond the six are invalid";
}

/// The decisive strictness tests: forged tokens with VALID checksums
/// whose payloads are parseable-but-non-canonical.  A lax decoder would
/// accept them and silently normalize — and the same context would then
/// have two byte representations in the wild.
TEST(Token, NonCanonicalPayloadsAreRejectedDespiteValidCrc) {
  VersionVector out;
  // Zero counter (canonical form erases the entry instead).
  EXPECT_FALSE(decode_token(forge(1, std::string("\x01\x05\x00", 3)),
                            MechanismId::kDvv, out));
  // Unsorted actors.
  EXPECT_FALSE(decode_token(forge(1, std::string("\x02\x02\x01\x01\x01", 5)),
                            MechanismId::kDvv, out));
  // Duplicate actors.
  EXPECT_FALSE(decode_token(forge(1, std::string("\x02\x01\x01\x01\x02", 5)),
                            MechanismId::kDvv, out));
  // Padded varint (0x80 0x00 also encodes actor 0).
  EXPECT_FALSE(decode_token(forge(1, std::string("\x01\x80\x00\x01", 4)),
                            MechanismId::kDvv, out));
  // Declared payload length shorter than the actual bytes.
  EXPECT_FALSE(decode_token(forge(1, std::string("\x00\x00", 2)),
                            MechanismId::kDvv, out));

  VersionVectorWithExceptions vout;
  // VVE entry with base 0 (canonical form drops empty entries).
  EXPECT_FALSE(decode_token(forge(5, std::string("\x01\x01\x00\x00", 4)),
                            MechanismId::kVve, vout));
  // VVE exception >= base.
  EXPECT_FALSE(decode_token(forge(5, std::string("\x01\x01\x02\x01\x02", 5)),
                            MechanismId::kVve, vout));
  // VVE unsorted exceptions.
  EXPECT_FALSE(decode_token(
      forge(5, std::string("\x01\x01\x05\x02\x03\x02", 6)), MechanismId::kVve,
      vout));

  CausalHistory hout;
  // Unsorted dots.
  EXPECT_FALSE(decode_token(forge(6, std::string("\x02\x01\x02\x01\x01", 5)),
                            MechanismId::kCausalHistory, hout));
  // Duplicate dots.
  EXPECT_FALSE(decode_token(forge(6, std::string("\x02\x01\x02\x01\x02", 5)),
                            MechanismId::kCausalHistory, hout));
  // Zero counter (dots start at 1).
  EXPECT_FALSE(decode_token(forge(6, std::string("\x01\x01\x00", 3)),
                            MechanismId::kCausalHistory, hout));
}

TEST(Token, RejectionLeavesTheOutParameterUntouched) {
  const VersionVector original = sample_vv();
  VersionVector out = original;
  std::string bytes = encode_token(MechanismId::kDvv, VersionVector{}).bytes();
  bytes[bytes.size() - 1] ^= 1;  // break the CRC
  EXPECT_FALSE(
      decode_token(CausalToken::from_bytes(std::move(bytes)), MechanismId::kDvv, out));
  EXPECT_EQ(out, original) << "failed decodes must not leak partial state";
}

TEST(Token, MintDecodeSymmetryHoldsForHugeLegitimateContexts) {
  // No absolute size cap: a mechanism with unbounded metadata (the
  // causal-history oracle) can legitimately mint multi-megabyte tokens,
  // and every token the encoder mints must strictly decode — a genuine
  // uncorrupted token must never come back kBadToken.
  CausalHistory huge;
  for (std::uint64_t c = 1; c <= 300'000; ++c) huge.insert(Dot{1, c});
  const CausalToken token = encode_token(MechanismId::kCausalHistory, huge);
  EXPECT_GT(token.size(), 1u << 20) << "the case must actually be oversized";
  CausalHistory decoded;
  ASSERT_TRUE(decode_token(token, MechanismId::kCausalHistory, decoded));
  EXPECT_EQ(decoded, huge);
  EXPECT_EQ(encode_token(MechanismId::kCausalHistory, decoded), token);
}

void append_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

TEST(Token, VveExceptionBombIsRejected) {
  // A forged VVE claiming more exceptions than kMaxTokenEvents dies on
  // the bound, not on an allocation.
  std::string payload;
  payload.push_back('\x01');  // one entry
  payload.push_back('\x01');  // actor 1
  append_varint(payload, dvv::kv::kMaxTokenEvents + 2);  // base
  // ex_count = kMaxTokenEvents + 1 (the bytes for them never follow —
  // the bound must trip before the reads do).
  append_varint(payload, dvv::kv::kMaxTokenEvents + 1);
  VersionVectorWithExceptions out;
  EXPECT_FALSE(decode_token(forge(5, payload), MechanismId::kVve, out));
}

TEST(Token, VveExceptionBombWraparoundIsRejected) {
  // Two entries whose claimed counts sum past 2^64: one real exception
  // plus a second entry claiming 2^64-1.  A guard that accumulates
  // before checking wraps the total to 0, passes the bound, and dies in
  // reserve() with std::length_error/bad_alloc — decode must return
  // false instead, without throwing.
  std::string payload;
  payload.push_back('\x02');  // two entries
  // Entry 1: actor 1, base 2, one genuine exception {1}.
  payload.push_back('\x01');
  payload.push_back('\x02');
  payload.push_back('\x01');
  payload.push_back('\x01');
  // Entry 2: actor 2, base 2, ex_count = 2^64 - 1 (no bytes follow —
  // the bound must trip before any read or allocation).
  payload.push_back('\x02');
  payload.push_back('\x02');
  append_varint(payload, std::numeric_limits<std::uint64_t>::max());
  VersionVectorWithExceptions out;
  EXPECT_FALSE(decode_token(forge(5, payload), MechanismId::kVve, out));
}

}  // namespace
