// Tests for the event-driven store simulation (src/sim/sim_store.hpp),
// the E7 substrate: determinism, accounting invariants, metadata ->
// latency coupling, and cross-mechanism sanity.
//
// The simulator drives the type-erased kv::Store facade, so the
// mechanism is a runtime name: tests that do not pin one leave
// config.mechanism empty and run under the process default (env
// DVV_MECHANISM — the CI matrix sweeps the whole suite that way).
#include "sim/sim_store.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using dvv::sim::simulate_store;
using dvv::sim::SimStoreConfig;
using dvv::sim::SimStoreResult;

SimStoreConfig with_mechanism(SimStoreConfig config, std::string name) {
  config.mechanism = std::move(name);
  return config;
}

SimStoreConfig small_config() {
  SimStoreConfig config;
  config.clients = 8;
  config.keys = 8;
  config.ops_per_client = 50;
  config.think_ms = 0.5;
  config.seed = 7;
  return config;
}

TEST(SimStore, CompletesEveryCycle) {
  const auto result = simulate_store(small_config());
  EXPECT_EQ(result.cycles, 8u * 50u);
  EXPECT_EQ(result.get_latency_ms.count(), result.cycles);
  EXPECT_EQ(result.put_latency_ms.count(), result.cycles);
  EXPECT_EQ(result.cycle_latency_ms.count(), result.cycles);
  EXPECT_GT(result.sim_duration_ms, 0.0);
}

TEST(SimStore, DeterministicForSameSeed) {
  const auto a = simulate_store(small_config());
  const auto b = simulate_store(small_config());
  EXPECT_DOUBLE_EQ(a.cycle_latency_ms.mean(), b.cycle_latency_ms.mean());
  EXPECT_DOUBLE_EQ(a.get_reply_bytes.mean(), b.get_reply_bytes.mean());
  EXPECT_DOUBLE_EQ(a.sim_duration_ms, b.sim_duration_ms);
}

TEST(SimStore, DifferentSeedsDiffer) {
  auto config = small_config();
  const auto a = simulate_store(config);
  config.seed = 8;
  const auto b = simulate_store(config);
  EXPECT_NE(a.sim_duration_ms, b.sim_duration_ms);
}

TEST(SimStore, LatencyRespectsPhysicalLowerBound) {
  // A cycle is at least: 4 one-way legs (GET req/reply, PUT req/ack),
  // each >= base_ms.
  const auto config = small_config();
  const auto result = simulate_store(config);
  EXPECT_GE(result.cycle_latency_ms.min(), 4 * config.network.base_ms);
  EXPECT_GE(result.get_latency_ms.min(), 2 * config.network.base_ms);
}

TEST(SimStore, CycleAtLeastGetPlusPut) {
  const auto result = simulate_store(small_config());
  EXPECT_GE(result.cycle_latency_ms.mean(),
            result.get_latency_ms.mean() + result.put_latency_ms.mean() - 1e-9);
}

TEST(SimStore, MoreValueBytesMeansSlowerReplies) {
  auto small = small_config();
  auto large = small_config();
  large.value_bytes = 100'000;  // dominate every other term
  const auto fast = simulate_store(small);
  const auto slow = simulate_store(large);
  EXPECT_GT(slow.cycle_latency_ms.mean(), fast.cycle_latency_ms.mean());
  EXPECT_GT(slow.get_reply_bytes.mean(), fast.get_reply_bytes.mean());
}

TEST(SimStore, ClientVvCarriesMoreReplyBytesThanDvvUnderManyClients) {
  SimStoreConfig config;
  config.clients = 64;
  config.keys = 8;  // hot: many writers per key
  config.ops_per_client = 40;
  config.seed = 11;
  const auto cvv = simulate_store(with_mechanism(config, "client-vv"));
  const auto dvv = simulate_store(with_mechanism(config, "dvv"));
  EXPECT_GT(cvv.get_reply_bytes.mean(), dvv.get_reply_bytes.mean() * 1.5)
      << "the E7 mechanism gap must be visible in reply sizes";
}

TEST(SimStore, AllMechanismsCompleteTheWorkload) {
  const auto config = small_config();
  for (const char* mechanism : {"dvv", "dvvset", "server-vv", "client-vv",
                                "vve", "causal-history"}) {
    EXPECT_EQ(simulate_store(with_mechanism(config, mechanism)).cycles, 400u)
        << mechanism;
  }
}

// ---- crash injection (src/store) -------------------------------------------

SimStoreConfig crashy_config() {
  SimStoreConfig config = small_config();
  config.clients = 12;
  config.ops_per_client = 80;
  config.crash_interval_ms = 6.0;
  config.crash_downtime_ms = 10.0;
  config.aae_interval_ms = 4.0;  // repair races the crashes
  return config;
}

TEST(SimStoreCrash, WalClusterSurvivesCrashStorm) {
  auto config = crashy_config();
  config.storage.kind = dvv::store::BackendKind::kWal;
  config.torn_write_probability = 0.5;
  const auto result = simulate_store(config);
  EXPECT_GT(result.crashes, 0u);
  EXPECT_EQ(result.recoveries, result.crashes) << "every crash recovers";
  EXPECT_GT(result.wal_records_replayed, 0u) << "recovery replays the log";
  EXPECT_GT(result.cycles, 0u);
  // Every issued request either completed a cycle or hit an outage.
  EXPECT_EQ(result.cycles + result.unavailable_requests,
            static_cast<std::uint64_t>(config.clients) * config.ops_per_client);
}

TEST(SimStoreCrash, MemClusterReplaysNothingOnRecovery) {
  auto config = crashy_config();
  config.storage.kind = dvv::store::BackendKind::kMem;
  const auto result = simulate_store(config);
  EXPECT_GT(result.crashes, 0u);
  EXPECT_EQ(result.wal_records_replayed, 0u) << "no log, nothing to replay";
}

TEST(SimStoreCrash, DeterministicForSameSeed) {
  auto config = crashy_config();
  config.storage.kind = dvv::store::BackendKind::kWal;
  const auto a = simulate_store(config);
  const auto b = simulate_store(config);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.wal_records_replayed, b.wal_records_replayed);
  EXPECT_DOUBLE_EQ(a.sim_duration_ms, b.sim_duration_ms);
}

TEST(SimStoreCrash, DisabledByDefault) {
  const auto result = simulate_store(small_config());
  EXPECT_EQ(result.crashes, 0u);
  EXPECT_EQ(result.unavailable_requests, 0u);
  EXPECT_EQ(result.replication_drops, 0u);
}

// ---- message-layer faults (src/net) ----------------------------------------

TEST(SimStoreNet, TopologyIsConfigurable) {
  // Satellite regression: servers/replication were hardcoded 5/3.
  auto config = small_config();
  config.servers = 9;
  config.replication = 5;
  const auto result = simulate_store(config);
  EXPECT_EQ(result.cycles, 8u * 50u);
  // A 5-way fan-out sends 4 copies per put: more messages than the
  // 3-way default ships in the same workload.
  auto narrow = small_config();
  const auto three = simulate_store(narrow);
  EXPECT_GT(result.messages_sent, three.messages_sent);
}

TEST(SimStoreNet, ReplicationRidesRealMessages) {
  const auto result = simulate_store(small_config());
  EXPECT_GT(result.messages_sent, 0u);
  EXPECT_EQ(result.messages_dropped, 0u);
  EXPECT_EQ(result.messages_delivered, result.messages_sent)
      << "no faults: every queued message eventually lands";
}

TEST(SimStoreNet, PartitionStormsLoseMessagesAndAaeRepairs) {
  auto config = small_config();
  config.clients = 12;
  config.ops_per_client = 80;
  config.aae_interval_ms = 4.0;
  config.partition_interval_ms = 8.0;
  config.partition_duration_ms = 6.0;
  config.msg_duplicate_probability = 0.05;
  config.msg_reorder_window = 2;
  const auto result = simulate_store(config);
  EXPECT_GT(result.partitions, 0u);
  EXPECT_EQ(result.partitions, result.heals) << "every storm passes";
  EXPECT_GT(result.partition_drops, 0u) << "some fan-out died on the cut";
  EXPECT_GT(result.messages_duplicated, 0u);
  EXPECT_EQ(result.cycles,
            static_cast<std::uint64_t>(config.clients) * config.ops_per_client)
      << "partitions break links, not clients";
}

// ---- quorum coordination (src/kv/coordinator.hpp) ---------------------------

TEST(SimStoreQuorum, CoordinatorLocalDefaultsKeepHistoricalShape) {
  // R = W = 1 completes at the coordinator: no op ever waits on the
  // queues, so there are no timeouts and no degraded completions.
  const auto result = simulate_store(small_config());
  EXPECT_EQ(result.op_timeouts, 0u);
  EXPECT_EQ(result.reads_degraded, 0u);
  EXPECT_EQ(result.writes_degraded, 0u);
}

TEST(SimStoreQuorum, QuorumWritesWaitForRealAcks) {
  auto one = small_config();
  auto two = small_config();
  two.write_quorum = 2;
  two.read_quorum = 2;
  const auto w1 = simulate_store(one);
  const auto w2 = simulate_store(two);
  EXPECT_EQ(w2.cycles, w1.cycles) << "every cycle still completes";
  EXPECT_GT(w2.put_latency_ms.mean(), w1.put_latency_ms.mean())
      << "W=2 acks ride the queues: the client pays a real round trip";
  EXPECT_GT(w2.max_requests_in_flight, 1u)
      << "quorum ops from different clients must genuinely overlap";
}

TEST(SimStoreQuorum, ConcurrentQuorumOpsSurvivePartitionAndCrashStorms) {
  // The tentpole workload: R=W=2 client operations in flight across
  // partition storms, message faults AND crash storms at once — ops
  // time out at their deadline, late acks hit retired request slots,
  // and every issued request still resolves exactly once.
  auto config = small_config();
  config.clients = 12;
  config.ops_per_client = 60;
  config.read_quorum = 2;
  config.write_quorum = 2;
  config.op_deadline_ms = 25.0;
  config.partition_interval_ms = 8.0;
  config.partition_duration_ms = 6.0;
  config.msg_drop_probability = 0.05;
  config.msg_duplicate_probability = 0.05;
  config.msg_reorder_window = 2;
  config.crash_interval_ms = 10.0;
  config.crash_downtime_ms = 8.0;
  config.storage.kind = dvv::store::BackendKind::kWal;
  const auto result = simulate_store(config);

  EXPECT_EQ(result.cycles + result.unavailable_requests,
            static_cast<std::uint64_t>(config.clients) * config.ops_per_client)
      << "every issued request either completed a cycle or hit an outage";
  EXPECT_GT(result.partitions, 0u);
  EXPECT_GT(result.crashes, 0u);
  EXPECT_GT(result.max_requests_in_flight, 1u);
  EXPECT_GT(result.op_timeouts, 0u)
      << "storms must push some quorum ops into their deadline";
  EXPECT_GT(result.late_replies_dropped + result.stale_replies_dropped, 0u)
      << "replies outliving their requests must hit the hygiene path";

  // And the whole storm is reproducible.
  const auto rerun = simulate_store(config);
  EXPECT_EQ(result.cycles, rerun.cycles);
  EXPECT_EQ(result.op_timeouts, rerun.op_timeouts);
  EXPECT_EQ(result.stale_replies_dropped, rerun.stale_replies_dropped);
  EXPECT_DOUBLE_EQ(result.sim_duration_ms, rerun.sim_duration_ms);
}

TEST(SimStoreNet, FaultyTransportIsDeterministic) {
  auto config = small_config();
  config.partition_interval_ms = 10.0;
  config.msg_drop_probability = 0.05;
  config.msg_duplicate_probability = 0.05;
  config.msg_reorder_window = 3;
  config.aae_interval_ms = 5.0;
  const auto a = simulate_store(config);
  const auto b = simulate_store(config);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.partition_drops, b.partition_drops);
  EXPECT_DOUBLE_EQ(a.sim_duration_ms, b.sim_duration_ms);
}

}  // namespace
