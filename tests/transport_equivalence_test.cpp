// InlineTransport equivalence proof: for every causality mechanism,
// driving the cluster through the message-routed public API (put
// fan-out, hinted handoff, ack-guarded hint delivery — all enqueued as
// typed net messages on the inline transport) produces state
// BYTE-IDENTICAL to the pre-refactor direct-call semantics, which this
// test re-implements against the raw Replica methods exactly as
// Cluster::put / put_with_handoff / deliver_hints used to: coordinator
// apply, then merge_key on each alive target in order; stash_hint on
// ring-order fallbacks; Replica::deliver_hints into alive owners.
//
// Both drivers run the same seeded chaotic script (pauses, partial
// replication, sloppy-quorum writes, hint deliveries); state is
// compared byte for byte after the workload AND after the digest
// anti-entropy fixed point — the acceptance bar for extracting the
// transport without changing semantics.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::util::Rng;

ClusterConfig inline_config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 32;
  // Pin the inline transport even when the suite runs under
  // DVV_TRANSPORT=chaos: this test is ABOUT inline equivalence.
  cfg.transport.kind = dvv::net::TransportKind::kInline;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  return cfg;
}

constexpr std::size_t kKeys = 32;
constexpr std::size_t kClients = 6;
constexpr std::size_t kOps = 400;

/// One resolved script step, so both drivers make identical choices.
struct Step {
  enum class Kind { kPause, kUnpause, kDeliver, kPut, kHandoffPut, kQuorumGet } kind;
  ReplicaId server = 0;
  Key key;
  ReplicaId coordinator = 0;
  std::uint64_t client = 0;
  std::string value;
  std::vector<ReplicaId> replicate_to;
  std::size_t quorum = 0;  ///< kQuorumGet: R
};

/// What a quorum read observed — compared field by field (context as
/// its codec encoding) between the two drivers.
struct QuorumObservation {
  bool found = false;
  bool unavailable = false;
  bool degraded = false;
  std::size_t replies = 0;
  std::vector<std::string> values;
  std::string context_bytes;

  bool operator==(const QuorumObservation&) const = default;
};

/// The receipt fields the pre-refactor direct-call semantics pin down:
/// the routed receipts must report exactly these counts.
struct ReceiptObservation {
  ReplicaId coordinator = 0;
  std::size_t targets = 0;
  std::size_t replicated_to = 0;
  std::size_t hinted = 0;
  std::size_t unparked = 0;
  bool degraded = false;
  std::size_t acks = 0;  ///< inline: coordinator + every fan-out target

  bool operator==(const ReceiptObservation&) const = default;
};

template <typename Context>
std::string encode_context(const Context& ctx) {
  dvv::codec::Writer w;
  dvv::codec::encode(w, ctx);
  return std::string(reinterpret_cast<const char*>(w.buffer().data()), w.size());
}

/// Expands a seed into a concrete step list against a given topology.
/// Choices depend only on (seed, aliveness), and aliveness evolves
/// identically under both drivers, so the scripts match.
template <typename M>
std::vector<Step> make_script(Cluster<M>& cluster, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Step> script;
  const std::size_t servers = cluster.servers();
  std::vector<bool> alive(servers, true);
  auto alive_count = [&] {
    std::size_t n = 0;
    for (bool a : alive) n += a;
    return n;
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    if (rng.chance(0.06)) {
      const auto r = static_cast<ReplicaId>(rng.index(servers));
      if (alive[r]) {
        if (alive_count() > 3) {
          alive[r] = false;
          script.push_back({Step::Kind::kPause, r, {}, 0, 0, {}, {}});
        }
      } else {
        alive[r] = true;
        script.push_back({Step::Kind::kUnpause, r, {}, 0, 0, {}, {}});
      }
    }
    if (rng.chance(0.05)) {
      script.push_back({Step::Kind::kDeliver, 0, {}, 0, 0, {}, {}, 0});
    }
    if (rng.chance(0.25)) {
      Step get;
      get.kind = Step::Kind::kQuorumGet;
      get.key = "key-" + std::to_string(rng.index(kKeys));
      get.quorum = 1 + rng.index(3);
      script.push_back(std::move(get));
    }

    Step put;
    put.key = "key-" + std::to_string(rng.index(kKeys));
    const auto pref = cluster.preference_list(put.key);
    std::vector<ReplicaId> alive_pref;
    for (const ReplicaId r : pref) {
      if (alive[r]) alive_pref.push_back(r);
    }
    if (alive_pref.empty()) continue;
    put.coordinator = alive_pref[rng.index(alive_pref.size())];
    put.client = rng.index(kClients);
    put.value = "v" + std::to_string(op);
    if (rng.chance(0.4)) {
      put.kind = Step::Kind::kHandoffPut;
    } else {
      put.kind = Step::Kind::kPut;
      for (const ReplicaId r : alive_pref) {
        if (r != put.coordinator && rng.chance(0.5)) {
          put.replicate_to.push_back(r);
        }
      }
    }
    script.push_back(std::move(put));
  }
  return script;
}

/// Pre-refactor direct-call semantics, verbatim from the old Cluster
/// methods: no transport involved anywhere.  Quorum reads replay the
/// old get_quorum loop against raw replicas; puts record the receipt
/// the old semantics imply, so the routed run's receipts can be pinned
/// against them.
template <typename M>
void run_direct(Cluster<M>& cluster, const std::vector<Step>& script,
                std::vector<QuorumObservation>* gets,
                std::vector<ReceiptObservation>* receipts) {
  const M& mech = cluster.mechanism();
  for (const Step& step : script) {
    switch (step.kind) {
      case Step::Kind::kPause:
        cluster.replica(step.server).set_alive(false);
        break;
      case Step::Kind::kUnpause:
        cluster.replica(step.server).set_alive(true);
        break;
      case Step::Kind::kDeliver:
        // Old Cluster::deliver_hints: every alive holder pushes into
        // alive owners directly, erasing as it goes.
        for (ReplicaId r = 0; r < cluster.servers(); ++r) {
          if (!cluster.replica(r).alive()) continue;
          cluster.replica(r).deliver_hints(
              mech, [&](ReplicaId owner) -> dvv::kv::Replica<M>& {
                return cluster.replica(owner);
              });
        }
        break;
      case Step::Kind::kQuorumGet: {
        // The pre-engine Cluster::get_quorum body, on raw replicas.
        typename M::Stored merged;
        QuorumObservation obs;
        for (const ReplicaId r : cluster.preference_list(step.key)) {
          if (obs.replies == step.quorum) break;
          if (!cluster.replica(r).alive()) continue;
          ++obs.replies;
          if (const auto* s = cluster.replica(r).find(step.key)) {
            mech.sync(merged, *s);
            obs.found = true;
          }
        }
        obs.unavailable = obs.replies == 0;
        obs.degraded = obs.replies < step.quorum;
        if (obs.found) {
          obs.values = mech.values_of(merged);
          obs.context_bytes = encode_context(mech.context_of(merged));
        }
        gets->push_back(std::move(obs));
        break;
      }
      case Step::Kind::kPut: {
        // Old Cluster::put: coordinator applies, targets merge in order.
        auto& coord = cluster.replica(step.coordinator);
        coord.put(mech, step.key, step.coordinator,
                  dvv::kv::client_actor(step.client), {}, step.value);
        const auto* fresh = coord.find(step.key);
        ASSERT_NE(fresh, nullptr);
        ReceiptObservation expect;
        expect.coordinator = step.coordinator;
        for (const ReplicaId r : step.replicate_to) {
          if (r == step.coordinator) continue;
          ++expect.targets;
          if (!cluster.replica(r).alive()) continue;
          cluster.replica(r).merge_key(mech, step.key, *fresh);
          ++expect.replicated_to;
        }
        expect.degraded = expect.replicated_to < expect.targets;
        expect.acks = 1 + expect.replicated_to;  // inline: every merge acks
        receipts->push_back(expect);
        break;
      }
      case Step::Kind::kHandoffPut: {
        // Old Cluster::put_with_handoff: alive members merge, dead
        // members' writes park on distinct ring-order fallbacks.
        const auto pref = cluster.preference_list(step.key);
        std::vector<ReplicaId> alive_targets;
        std::vector<ReplicaId> dead_owners;
        for (const ReplicaId r : pref) {
          (cluster.replica(r).alive() ? alive_targets : dead_owners).push_back(r);
        }
        auto& coord = cluster.replica(step.coordinator);
        coord.put(mech, step.key, step.coordinator,
                  dvv::kv::client_actor(step.client), {}, step.value);
        const auto* fresh = coord.find(step.key);
        ASSERT_NE(fresh, nullptr);
        ReceiptObservation expect;
        expect.coordinator = step.coordinator;
        for (const ReplicaId r : pref) {
          if (r != step.coordinator) ++expect.targets;
        }
        for (const ReplicaId r : alive_targets) {
          if (r == step.coordinator) continue;
          cluster.replica(r).merge_key(mech, step.key, *fresh);
          ++expect.replicated_to;
        }
        const auto order = cluster.ring().ring_order(step.key);
        std::size_t next_fallback = cluster.ring().replication();
        for (const ReplicaId owner : dead_owners) {
          while (next_fallback < order.size() &&
                 !cluster.replica(order[next_fallback]).alive()) {
            ++next_fallback;
          }
          if (next_fallback >= order.size()) {
            ++expect.unparked;
            continue;
          }
          cluster.replica(order[next_fallback])
              .stash_hint(mech, owner, step.key, *fresh);
          ++expect.hinted;
          ++next_fallback;
        }
        expect.degraded = expect.replicated_to + expect.hinted < expect.targets;
        expect.acks = 1 + expect.replicated_to;
        receipts->push_back(expect);
        break;
      }
    }
  }
}

/// The same script through the message-routed public API, observing the
/// shim results and receipts.
template <typename M>
void run_routed(Cluster<M>& cluster, const std::vector<Step>& script,
                std::vector<QuorumObservation>* gets,
                std::vector<ReceiptObservation>* receipts) {
  const auto observe = [&](const typename Cluster<M>::PutReceipt& receipt) {
    ReceiptObservation obs;
    obs.coordinator = receipt.coordinator;
    obs.targets = receipt.targets;
    obs.replicated_to = receipt.replicated_to;
    obs.hinted = receipt.hinted;
    obs.unparked = receipt.unparked;
    obs.degraded = receipt.degraded;
    obs.acks = receipt.acks();
    receipts->push_back(obs);
  };
  for (const Step& step : script) {
    switch (step.kind) {
      case Step::Kind::kPause:
        cluster.replica(step.server).set_alive(false);
        break;
      case Step::Kind::kUnpause:
        cluster.replica(step.server).set_alive(true);
        break;
      case Step::Kind::kDeliver:
        cluster.deliver_hints();
        break;
      case Step::Kind::kQuorumGet: {
        const auto result = cluster.get_quorum(step.key, step.quorum);
        QuorumObservation obs;
        obs.found = result.found;
        obs.unavailable = result.unavailable;
        obs.degraded = result.degraded;
        obs.replies = result.replies;
        obs.values = result.values;
        if (result.found) obs.context_bytes = encode_context(result.context);
        gets->push_back(std::move(obs));
        break;
      }
      case Step::Kind::kPut:
        observe(cluster.put(step.key, step.coordinator,
                            dvv::kv::client_actor(step.client), {}, step.value,
                            step.replicate_to));
        break;
      case Step::Kind::kHandoffPut:
        observe(cluster.put_with_handoff(step.key, step.coordinator,
                                         dvv::kv::client_actor(step.client), {},
                                         step.value));
        break;
    }
  }
}

/// Every replica's every key AND every parked hint, codec-encoded.
template <typename M>
std::map<std::string, std::string> full_state(Cluster<M>& cluster) {
  std::map<std::string, std::string> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      dvv::codec::Writer w;
      dvv::codec::encode(w, *cluster.replica(r).find(key));
      const auto* p = reinterpret_cast<const char*>(w.buffer().data());
      out.emplace("data/" + std::to_string(r) + "/" + key,
                  std::string(p, w.size()));
    }
    cluster.replica(r).for_each_hint(
        [&](ReplicaId owner, const Key& key, const auto& state) {
          dvv::codec::Writer w;
          dvv::codec::encode(w, state);
          const auto* p = reinterpret_cast<const char*>(w.buffer().data());
          out.emplace("hint/" + std::to_string(r) + "/" +
                          std::to_string(owner) + "/" + key,
                      std::string(p, w.size()));
        });
  }
  return out;
}

template <typename M>
class TransportEquivalenceTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(TransportEquivalenceTest, AllMechanisms);

TYPED_TEST(TransportEquivalenceTest, InlineRoutingMatchesDirectCallsByteForByte) {
  for (const std::uint64_t seed : {1ULL, 99ULL, 20120716ULL}) {
    Cluster<TypeParam> direct(inline_config(), {});
    Cluster<TypeParam> routed(inline_config(), {});
    const auto script = make_script(direct, seed);
    ASSERT_FALSE(script.empty());
    std::vector<QuorumObservation> direct_gets;
    std::vector<QuorumObservation> routed_gets;
    std::vector<ReceiptObservation> direct_receipts;
    std::vector<ReceiptObservation> routed_receipts;
    run_direct(direct, script, &direct_gets, &direct_receipts);
    run_routed(routed, script, &routed_gets, &routed_receipts);

    // 1. Raw equivalence: data AND parked hints, before any repair.
    ASSERT_EQ(full_state(direct), full_state(routed))
        << "inline routing must be byte-identical to direct calls (seed "
        << seed << ")";
    EXPECT_GT(routed.transport().stats().sent, 0u)
        << "the routed run must actually have used the transport";
    EXPECT_EQ(routed.transport().stats().dropped, 0u);

    // 1b. Quorum-read results coincide — found/degraded/replies flags,
    // sibling values, and the context's exact codec encoding.
    ASSERT_EQ(direct_gets.size(), routed_gets.size());
    for (std::size_t i = 0; i < direct_gets.size(); ++i) {
      ASSERT_EQ(direct_gets[i], routed_gets[i])
          << "quorum read " << i << " diverged (seed " << seed << ")";
    }
    // 1c. Receipts coincide with what the direct-call semantics imply:
    // same fan-out counts, hint counts, degraded verdicts, and (inline)
    // every fan-out target acked.
    ASSERT_EQ(direct_receipts.size(), routed_receipts.size());
    for (std::size_t i = 0; i < direct_receipts.size(); ++i) {
      ASSERT_EQ(direct_receipts[i], routed_receipts[i])
          << "put receipt " << i << " diverged (seed " << seed << ")";
    }
    EXPECT_EQ(routed.coord_stats().late_replies_dropped, 0u)
        << "inline delivery leaves no reply behind";

    // 2. Digest fixed points coincide byte for byte.
    direct.anti_entropy_digest();
    routed.anti_entropy_digest();
    ASSERT_EQ(full_state(direct), full_state(routed))
        << "digest fixed points diverge (seed " << seed << ")";

    // 3. And stay coincident through recovery + hint drain.
    for (ReplicaId r = 0; r < direct.servers(); ++r) {
      direct.replica(r).set_alive(true);
      routed.replica(r).set_alive(true);
    }
    for (ReplicaId r = 0; r < direct.servers(); ++r) {
      direct.replica(r).deliver_hints(
          direct.mechanism(), [&](ReplicaId owner) -> dvv::kv::Replica<TypeParam>& {
            return direct.replica(owner);
          });
    }
    routed.deliver_hints();
    direct.anti_entropy_digest();
    routed.anti_entropy_digest();
    ASSERT_EQ(full_state(direct), full_state(routed))
        << "post-recovery fixed points diverge (seed " << seed << ")";
    EXPECT_EQ(direct.hinted_count(), 0u);
    EXPECT_EQ(routed.hinted_count(), 0u);
  }
}

}  // namespace
