// InlineTransport equivalence proof: for every causality mechanism,
// driving the cluster through the message-routed public API (put
// fan-out, hinted handoff, ack-guarded hint delivery — all enqueued as
// typed net messages on the inline transport) produces state
// BYTE-IDENTICAL to the pre-refactor direct-call semantics, which this
// test re-implements against the raw Replica methods exactly as
// Cluster::put / put_with_handoff / deliver_hints used to: coordinator
// apply, then merge_key on each alive target in order; stash_hint on
// ring-order fallbacks; Replica::deliver_hints into alive owners.
//
// Both drivers run the same seeded chaotic script (pauses, partial
// replication, sloppy-quorum writes, hint deliveries); state is
// compared byte for byte after the workload AND after the digest
// anti-entropy fixed point — the acceptance bar for extracting the
// transport without changing semantics.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "codec/clock_codec.hpp"
#include "kv/cluster.hpp"
#include "kv/mechanism.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace {

using dvv::kv::Cluster;
using dvv::kv::ClusterConfig;
using dvv::kv::Key;
using dvv::kv::ReplicaId;
using dvv::util::Rng;

ClusterConfig inline_config() {
  ClusterConfig cfg;
  cfg.servers = 6;
  cfg.replication = 3;
  cfg.vnodes = 32;
  // Pin the inline transport even when the suite runs under
  // DVV_TRANSPORT=chaos: this test is ABOUT inline equivalence.
  cfg.transport.kind = dvv::net::TransportKind::kInline;
  cfg.transport.sim = dvv::net::SimTransportConfig{};
  return cfg;
}

constexpr std::size_t kKeys = 32;
constexpr std::size_t kClients = 6;
constexpr std::size_t kOps = 400;

/// One resolved script step, so both drivers make identical choices.
struct Step {
  enum class Kind { kPause, kUnpause, kDeliver, kPut, kHandoffPut } kind;
  ReplicaId server = 0;
  Key key;
  ReplicaId coordinator = 0;
  std::uint64_t client = 0;
  std::string value;
  std::vector<ReplicaId> replicate_to;
};

/// Expands a seed into a concrete step list against a given topology.
/// Choices depend only on (seed, aliveness), and aliveness evolves
/// identically under both drivers, so the scripts match.
template <typename M>
std::vector<Step> make_script(Cluster<M>& cluster, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Step> script;
  const std::size_t servers = cluster.servers();
  std::vector<bool> alive(servers, true);
  auto alive_count = [&] {
    std::size_t n = 0;
    for (bool a : alive) n += a;
    return n;
  };

  for (std::size_t op = 0; op < kOps; ++op) {
    if (rng.chance(0.06)) {
      const auto r = static_cast<ReplicaId>(rng.index(servers));
      if (alive[r]) {
        if (alive_count() > 3) {
          alive[r] = false;
          script.push_back({Step::Kind::kPause, r, {}, 0, 0, {}, {}});
        }
      } else {
        alive[r] = true;
        script.push_back({Step::Kind::kUnpause, r, {}, 0, 0, {}, {}});
      }
    }
    if (rng.chance(0.05)) {
      script.push_back({Step::Kind::kDeliver, 0, {}, 0, 0, {}, {}});
    }

    Step put;
    put.key = "key-" + std::to_string(rng.index(kKeys));
    const auto pref = cluster.preference_list(put.key);
    std::vector<ReplicaId> alive_pref;
    for (const ReplicaId r : pref) {
      if (alive[r]) alive_pref.push_back(r);
    }
    if (alive_pref.empty()) continue;
    put.coordinator = alive_pref[rng.index(alive_pref.size())];
    put.client = rng.index(kClients);
    put.value = "v" + std::to_string(op);
    if (rng.chance(0.4)) {
      put.kind = Step::Kind::kHandoffPut;
    } else {
      put.kind = Step::Kind::kPut;
      for (const ReplicaId r : alive_pref) {
        if (r != put.coordinator && rng.chance(0.5)) {
          put.replicate_to.push_back(r);
        }
      }
    }
    script.push_back(std::move(put));
  }
  return script;
}

/// Pre-refactor direct-call semantics, verbatim from the old Cluster
/// methods: no transport involved anywhere.
template <typename M>
void run_direct(Cluster<M>& cluster, const std::vector<Step>& script) {
  const M& mech = cluster.mechanism();
  for (const Step& step : script) {
    switch (step.kind) {
      case Step::Kind::kPause:
        cluster.replica(step.server).set_alive(false);
        break;
      case Step::Kind::kUnpause:
        cluster.replica(step.server).set_alive(true);
        break;
      case Step::Kind::kDeliver:
        // Old Cluster::deliver_hints: every alive holder pushes into
        // alive owners directly, erasing as it goes.
        for (ReplicaId r = 0; r < cluster.servers(); ++r) {
          if (!cluster.replica(r).alive()) continue;
          cluster.replica(r).deliver_hints(
              mech, [&](ReplicaId owner) -> dvv::kv::Replica<M>& {
                return cluster.replica(owner);
              });
        }
        break;
      case Step::Kind::kPut: {
        // Old Cluster::put: coordinator applies, targets merge in order.
        auto& coord = cluster.replica(step.coordinator);
        coord.put(mech, step.key, step.coordinator,
                  dvv::kv::client_actor(step.client), {}, step.value);
        const auto* fresh = coord.find(step.key);
        ASSERT_NE(fresh, nullptr);
        for (const ReplicaId r : step.replicate_to) {
          if (r == step.coordinator || !cluster.replica(r).alive()) continue;
          cluster.replica(r).merge_key(mech, step.key, *fresh);
        }
        break;
      }
      case Step::Kind::kHandoffPut: {
        // Old Cluster::put_with_handoff: alive members merge, dead
        // members' writes park on distinct ring-order fallbacks.
        const auto pref = cluster.preference_list(step.key);
        std::vector<ReplicaId> alive_targets;
        std::vector<ReplicaId> dead_owners;
        for (const ReplicaId r : pref) {
          (cluster.replica(r).alive() ? alive_targets : dead_owners).push_back(r);
        }
        auto& coord = cluster.replica(step.coordinator);
        coord.put(mech, step.key, step.coordinator,
                  dvv::kv::client_actor(step.client), {}, step.value);
        const auto* fresh = coord.find(step.key);
        ASSERT_NE(fresh, nullptr);
        for (const ReplicaId r : alive_targets) {
          if (r == step.coordinator) continue;
          cluster.replica(r).merge_key(mech, step.key, *fresh);
        }
        const auto order = cluster.ring().ring_order(step.key);
        std::size_t next_fallback = cluster.ring().replication();
        for (const ReplicaId owner : dead_owners) {
          while (next_fallback < order.size() &&
                 !cluster.replica(order[next_fallback]).alive()) {
            ++next_fallback;
          }
          if (next_fallback >= order.size()) continue;
          cluster.replica(order[next_fallback])
              .stash_hint(mech, owner, step.key, *fresh);
          ++next_fallback;
        }
        break;
      }
    }
  }
}

/// The same script through the message-routed public API.
template <typename M>
void run_routed(Cluster<M>& cluster, const std::vector<Step>& script) {
  for (const Step& step : script) {
    switch (step.kind) {
      case Step::Kind::kPause:
        cluster.replica(step.server).set_alive(false);
        break;
      case Step::Kind::kUnpause:
        cluster.replica(step.server).set_alive(true);
        break;
      case Step::Kind::kDeliver:
        cluster.deliver_hints();
        break;
      case Step::Kind::kPut:
        cluster.put(step.key, step.coordinator,
                    dvv::kv::client_actor(step.client), {}, step.value,
                    step.replicate_to);
        break;
      case Step::Kind::kHandoffPut:
        cluster.put_with_handoff(step.key, step.coordinator,
                                 dvv::kv::client_actor(step.client), {},
                                 step.value);
        break;
    }
  }
}

/// Every replica's every key AND every parked hint, codec-encoded.
template <typename M>
std::map<std::string, std::string> full_state(Cluster<M>& cluster) {
  std::map<std::string, std::string> out;
  for (ReplicaId r = 0; r < cluster.servers(); ++r) {
    for (const Key& key : cluster.replica(r).keys()) {
      dvv::codec::Writer w;
      dvv::codec::encode(w, *cluster.replica(r).find(key));
      const auto* p = reinterpret_cast<const char*>(w.buffer().data());
      out.emplace("data/" + std::to_string(r) + "/" + key,
                  std::string(p, w.size()));
    }
    cluster.replica(r).for_each_hint(
        [&](ReplicaId owner, const Key& key, const auto& state) {
          dvv::codec::Writer w;
          dvv::codec::encode(w, state);
          const auto* p = reinterpret_cast<const char*>(w.buffer().data());
          out.emplace("hint/" + std::to_string(r) + "/" +
                          std::to_string(owner) + "/" + key,
                      std::string(p, w.size()));
        });
  }
  return out;
}

template <typename M>
class TransportEquivalenceTest : public ::testing::Test {};

using AllMechanisms =
    ::testing::Types<dvv::kv::DvvMechanism, dvv::kv::DvvSetMechanism,
                     dvv::kv::ServerVvMechanism, dvv::kv::ClientVvMechanism,
                     dvv::kv::VveMechanism, dvv::kv::HistoryMechanism>;
TYPED_TEST_SUITE(TransportEquivalenceTest, AllMechanisms);

TYPED_TEST(TransportEquivalenceTest, InlineRoutingMatchesDirectCallsByteForByte) {
  for (const std::uint64_t seed : {1ULL, 99ULL, 20120716ULL}) {
    Cluster<TypeParam> direct(inline_config(), {});
    Cluster<TypeParam> routed(inline_config(), {});
    const auto script = make_script(direct, seed);
    ASSERT_FALSE(script.empty());
    run_direct(direct, script);
    run_routed(routed, script);

    // 1. Raw equivalence: data AND parked hints, before any repair.
    ASSERT_EQ(full_state(direct), full_state(routed))
        << "inline routing must be byte-identical to direct calls (seed "
        << seed << ")";
    EXPECT_GT(routed.transport().stats().sent, 0u)
        << "the routed run must actually have used the transport";
    EXPECT_EQ(routed.transport().stats().dropped, 0u);

    // 2. Digest fixed points coincide byte for byte.
    direct.anti_entropy_digest();
    routed.anti_entropy_digest();
    ASSERT_EQ(full_state(direct), full_state(routed))
        << "digest fixed points diverge (seed " << seed << ")";

    // 3. And stay coincident through recovery + hint drain.
    for (ReplicaId r = 0; r < direct.servers(); ++r) {
      direct.replica(r).set_alive(true);
      routed.replica(r).set_alive(true);
    }
    for (ReplicaId r = 0; r < direct.servers(); ++r) {
      direct.replica(r).deliver_hints(
          direct.mechanism(), [&](ReplicaId owner) -> dvv::kv::Replica<TypeParam>& {
            return direct.replica(owner);
          });
    }
    routed.deliver_hints();
    direct.anti_entropy_digest();
    routed.anti_entropy_digest();
    ASSERT_EQ(full_state(direct), full_state(routed))
        << "post-recovery fixed points diverge (seed " << seed << ")";
    EXPECT_EQ(direct.hinted_count(), 0u);
    EXPECT_EQ(routed.hinted_count(), 0u);
  }
}

}  // namespace
